"""Blocked right-looking panel Cholesky — the paper's Figure 9 algorithm.

Policy P4 performs the whole factor-update on the GPU.  Because CUBLAS
has no potrf, the paper factors the (m+k) x k panel [L1; L2] in blocks of
``w`` columns: a light-weight w x w potrf kernel, a wide trsm spanning the
rest of L1 *and* L2, a syrk updating the trailing part of L1, a gemm
updating the trailing part of L2, and a final syrk per step partially
updating U.  This module implements the algorithm generically over a
*kernel provider*, so the same code runs

* on the host in float64 (used by tests as the reference), and
* on the simulated GPU in float32 with per-kernel time charging
  (:class:`repro.gpu.cublas.CublasContext` provides the kernels).

``blocked_factor_update`` yields the exact kernel call sequence, which is
also what the performance model uses to price P4.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol

import numpy as np

from repro.dense import kernels as hk

__all__ = [
    "KernelProvider",
    "HostKernels",
    "blocked_cholesky_panels",
    "blocked_factor_update",
    "default_panel_width",
]


class KernelProvider(Protocol):
    """The four dense kernels the blocked algorithm needs.

    Array arguments follow the host conventions; implementations may
    convert dtypes internally (the simulated GPU computes in float32).
    """

    def potrf(self, a: np.ndarray) -> np.ndarray: ...

    def trsm(self, b: np.ndarray, l: np.ndarray) -> np.ndarray: ...

    def syrk(self, c: np.ndarray, x: np.ndarray) -> np.ndarray: ...

    def gemm(self, c: np.ndarray, a: np.ndarray, b: np.ndarray) -> np.ndarray: ...


class HostKernels:
    """float64 host kernels; the reference KernelProvider."""

    def __init__(self, counts: hk.KernelCounts | None = None):
        self.counts = counts

    def potrf(self, a):
        return hk.potrf(a, counts=self.counts)

    def trsm(self, b, l):
        return hk.trsm_right_lower(b, l, counts=self.counts)

    def syrk(self, c, x):
        return hk.syrk(c, x, counts=self.counts)

    def gemm(self, c, a, b):
        return hk.gemm(c, a, b, counts=self.counts)


def default_panel_width(k: int) -> int:
    """Panel width heuristic: wider panels amortize the slow w x w potrf
    kernel and kernel-launch overheads on large fronts.  Matches the
    calibration used for Table V (see repro.gpu.perfmodel)."""
    return int(min(max(64, k // 48), 512))


def blocked_cholesky_panels(
    f: np.ndarray, k: int, w: int, provider: KernelProvider
) -> None:
    """Factor the leading k columns of the (s x s) frontal matrix ``f`` in
    panels of width ``w``, updating the trailing U block, in place.

    After the call, ``f[:k, :k]`` holds L1 (lower), ``f[k:, :k]`` holds
    L2, and ``f[k:, k:]`` has been updated by ``- L2 @ L2.T``.  Follows
    Figure 9: per panel j of width w,

    1. potrf on the w x w diagonal block,
    2. trsm on the (s - j - w) x w sub-panel spanning the rest of L1 and
       all of L2,
    3. syrk on the trailing (k - j - w) block of L1,
    4. gemm updating the L2 rows against the new panel,
    5. syrk partially updating U.

    (Steps 3-5 are the split of the trailing update into the L1, L2 and U
    regions exactly as the paper draws them.)
    """
    s = f.shape[0]
    if f.shape != (s, s):
        raise ValueError("frontal matrix must be square")
    if not 0 < k <= s:
        raise ValueError("invalid pivot-block size")
    if w <= 0:
        raise ValueError("panel width must be positive")
    for j in range(0, k, w):
        wj = min(w, k - j)
        # 1. factor the diagonal block
        f[j:j + wj, j:j + wj] = provider.potrf(f[j:j + wj, j:j + wj])
        panel_l = f[j:j + wj, j:j + wj]
        rest = j + wj
        if rest < s:
            # 2. one trsm spanning the remaining L1 rows and all of L2
            f[rest:, j:j + wj] = provider.trsm(f[rest:, j:j + wj], panel_l)
            panel = f[rest:, j:j + wj]
            if rest < k:
                # 3. syrk: trailing L1 block
                provider.syrk(
                    f[rest:k, rest:k], panel[: k - rest]
                )
                # 4. gemm: L2 rows against the new panel
                provider.gemm(
                    f[k:, rest:k], panel[k - rest:], panel[: k - rest].T
                )
                # keep F numerically symmetric for downstream full-storage
                # consumers (only the lower triangle is semantically live)
                f[rest:k, k:] = f[k:, rest:k].T
                # 5. syrk: partial update of U
                provider.syrk(f[k:, k:], panel[k - rest:])
            else:
                provider.syrk(f[k:, k:], panel)
    # zero the strictly upper part of the factored panel for cleanliness
    iu = np.triu_indices(k, 1)
    f[: k, : k][iu] = 0.0


def blocked_factor_update(
    f: np.ndarray, k: int, provider: KernelProvider, *, w: int | None = None
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Run the Figure-9 algorithm on a frontal matrix and return views
    ``(L1, L2, U)`` of its factored blocks."""
    if w is None:
        w = default_panel_width(k)
    blocked_cholesky_panels(f, k, w, provider)
    return f[:k, :k], f[k:, :k], f[k:, k:]
