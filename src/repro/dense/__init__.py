"""Dense kernels used by the factor-update operation.

``kernels`` holds the host (CPU, float64) reference implementations of
potrf/trsm/syrk/gemm with exact flop accounting; ``blocked`` implements
the right-looking blocked panel Cholesky of the paper's Figure 9 (the
algorithm policy P4 runs on the GPU).
"""

from repro.dense.kernels import (
    KernelCounts,
    gemm,
    potrf,
    potrf_flops,
    syrk,
    syrk_flops,
    trsm_flops,
    trsm_right_lower,
)
from repro.dense.blocked import blocked_cholesky_panels, blocked_factor_update

__all__ = [
    "potrf",
    "trsm_right_lower",
    "syrk",
    "gemm",
    "potrf_flops",
    "trsm_flops",
    "syrk_flops",
    "KernelCounts",
    "blocked_cholesky_panels",
    "blocked_factor_update",
]
