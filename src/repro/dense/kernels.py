"""Host dense kernels with flop accounting.

These are the Level-3 BLAS/LAPACK operations the factor-update (F-U)
operation decomposes into (paper Fig. 1):

* ``potrf`` — dense Cholesky of the k x k pivot block L1,
* ``trsm_right_lower`` — triangular solve ``X = B L^-T`` applied to the
  m x k panel L2,
* ``syrk`` — symmetric rank-k update ``C -= X X^T`` forming the m x m
  update matrix U,
* ``gemm`` — general update used inside the blocked panel algorithm.

Each kernel returns its result and the numerics run in whatever dtype the
inputs carry: the host path uses float64, the simulated-GPU path calls
the same routines through :mod:`repro.gpu.cublas` in float32.  Flop
helpers follow the paper's asymptotic counts (Section IV-B):
``N_P = k^3/3``, ``N_T = m k^2``, ``N_S = m^2 k``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "potrf",
    "trsm_right_lower",
    "syrk",
    "gemm",
    "potrf_flops",
    "trsm_flops",
    "syrk_flops",
    "gemm_flops",
    "KernelCounts",
    "NotPositiveDefiniteError",
]


class NotPositiveDefiniteError(np.linalg.LinAlgError):
    """Raised when a pivot block is not positive definite."""


def potrf_flops(k: int) -> float:
    """Operation count of a k x k Cholesky (paper's asymptotic N_P)."""
    return k**3 / 3.0


def trsm_flops(m: int, k: int) -> float:
    """Operation count of an m x k right triangular solve (N_T)."""
    return float(m) * k * k


def syrk_flops(m: int, k: int) -> float:
    """Operation count of an m x m rank-k update (N_S)."""
    return float(m) * m * k


def gemm_flops(m: int, n: int, k: int) -> float:
    """Operation count of an (m x k) @ (k x n) multiply-accumulate."""
    return 2.0 * m * n * k


@dataclass
class KernelCounts:
    """Mutable accumulator of kernel invocations and flops (used by tests
    and the instrumentation layer to cross-check the performance model)."""

    calls: dict[str, int] = field(default_factory=dict)
    flops: dict[str, float] = field(default_factory=dict)

    def add(self, kernel: str, flops: float) -> None:
        self.calls[kernel] = self.calls.get(kernel, 0) + 1
        self.flops[kernel] = self.flops.get(kernel, 0.0) + flops

    def total_flops(self) -> float:
        return float(sum(self.flops.values()))


def potrf(a: np.ndarray, *, counts: KernelCounts | None = None) -> np.ndarray:
    """Cholesky factor (lower) of a symmetric positive definite block.

    Returns a new array L with ``L @ L.T == a`` (lower triangular; the
    strictly-upper part of the result is zero).  Raises
    :class:`NotPositiveDefiniteError` if ``a`` is not SPD.
    """
    a = np.asarray(a)
    if a.ndim != 2 or a.shape[0] != a.shape[1]:
        raise ValueError(f"potrf expects a square block, got {a.shape}")
    try:
        l = np.linalg.cholesky(a)
    except np.linalg.LinAlgError as exc:
        raise NotPositiveDefiniteError(str(exc)) from exc
    if counts is not None:
        counts.add("potrf", potrf_flops(a.shape[0]))
    return l


def trsm_right_lower(
    b: np.ndarray, l: np.ndarray, *, counts: KernelCounts | None = None
) -> np.ndarray:
    """Solve ``X L^T = B`` for X, with L lower triangular (the panel solve
    ``L2 <- L2 L1^-T`` of the F-U operation).

    Implemented as a blocked forward substitution over columns of X so the
    work stays in matrix-matrix operations (no explicit inverse, matching
    the numerical behaviour of a BLAS trsm).
    """
    b = np.asarray(b)
    l = np.asarray(l)
    k = l.shape[0]
    if l.shape != (k, k):
        raise ValueError("L must be square")
    if b.shape[1] != k:
        raise ValueError(f"shape mismatch: B {b.shape} vs L {l.shape}")
    x = b.astype(b.dtype, copy=True)
    # X L^T = B  =>  column block j of X depends on previous blocks:
    # X[:, j] = (B[:, j] - X[:, :j] @ L[j, :j].T) / L[j, j]
    nb = 32
    for j0 in range(0, k, nb):
        j1 = min(j0 + nb, k)
        if j0:
            x[:, j0:j1] -= x[:, :j0] @ l[j0:j1, :j0].T
        # solve the small diagonal block by substitution
        ljj = l[j0:j1, j0:j1]
        for jj in range(j1 - j0):
            if jj:
                x[:, j0 + jj] -= x[:, j0:j0 + jj] @ ljj[jj, :jj]
            x[:, j0 + jj] /= ljj[jj, jj]
    if counts is not None:
        counts.add("trsm", trsm_flops(b.shape[0], k))
    return x


def syrk(
    c: np.ndarray, x: np.ndarray, *, counts: KernelCounts | None = None
) -> np.ndarray:
    """Symmetric rank-k update ``C <- C - X X^T`` (in place, full storage).

    The multifrontal update keeps U as a full symmetric array; only the
    lower triangle is ever consumed, but storing both halves keeps the
    extend-add scatter a single vectorized ``ix_`` assignment.
    """
    c = np.asarray(c)
    x = np.asarray(x)
    if c.shape != (x.shape[0], x.shape[0]):
        raise ValueError(f"shape mismatch: C {c.shape} vs X {x.shape}")
    c -= x @ x.T
    if counts is not None:
        counts.add("syrk", syrk_flops(x.shape[0], x.shape[1]))
    return c


def gemm(
    c: np.ndarray,
    a: np.ndarray,
    b: np.ndarray,
    *,
    alpha: float = -1.0,
    counts: KernelCounts | None = None,
) -> np.ndarray:
    """General update ``C <- C + alpha * A @ B`` (in place)."""
    c = np.asarray(c)
    if c.shape != (a.shape[0], b.shape[1]) or a.shape[1] != b.shape[0]:
        raise ValueError(
            f"shape mismatch: C {c.shape}, A {a.shape}, B {b.shape}"
        )
    c += alpha * (a @ b)
    if counts is not None:
        counts.add("gemm", gemm_flops(a.shape[0], b.shape[1], a.shape[1]))
    return c
