"""Aggregations over factor-update call records.

These produce exactly the series the paper's analysis section plots:

* :func:`time_fraction_grid` — Fig. 2: fraction of total F-U time per
  m x k bin (with or without copy components).
* :func:`component_times` / :func:`component_fractions` — Figs. 5/6:
  per-component timings (absolute / normalized) against the call's total
  operation count.
* :func:`rate_series` — Figs. 4/7/8/10: effective flop rate vs operation
  count for any (device, kernel, policy) timing source.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.analysis.binning import GridBinner
from repro.multifrontal.numeric import FURecord

__all__ = [
    "time_fraction_grid",
    "component_times",
    "component_fractions",
    "rate_series",
    "records_mk",
]

#: component categories excluded when reporting "without copy" variants
COPY_CATEGORIES = ("copy", "alloc")


def records_mk(records: Sequence[FURecord]) -> tuple[np.ndarray, np.ndarray]:
    m = np.array([r.m for r in records], dtype=np.int64)
    k = np.array([r.k for r in records], dtype=np.int64)
    return m, k


def _record_time(r: FURecord, *, include_copy: bool) -> float:
    if include_copy:
        return sum(r.components.values())
    return sum(v for c, v in r.components.items() if c not in COPY_CATEGORIES)


def time_fraction_grid(
    records: Sequence[FURecord],
    binner: GridBinner,
    *,
    include_copy: bool = True,
) -> np.ndarray:
    """Fig. 2: fraction of total computation time per m x k bin."""
    m, k = records_mk(records)
    w = np.array([_record_time(r, include_copy=include_copy) for r in records])
    return binner.fraction(m, k, w)


def component_times(
    records: Sequence[FURecord],
    components: Iterable[str] = ("potrf", "trsm", "syrk", "copy"),
) -> dict[str, np.ndarray]:
    """Fig. 5: per-component busy seconds, plus the ops axis.

    Returns ``{"ops": ..., "<component>": ...}`` arrays aligned with the
    record order.
    """
    out: dict[str, np.ndarray] = {
        "ops": np.array([r.total_flops for r in records])
    }
    for comp in components:
        out[comp] = np.array([r.components.get(comp, 0.0) for r in records])
    return out


def component_fractions(
    records: Sequence[FURecord],
    components: Iterable[str] = ("potrf", "trsm", "syrk", "copy"),
) -> dict[str, np.ndarray]:
    """Fig. 6: component shares of each call's total time."""
    raw = component_times(records, components)
    totals = np.zeros_like(raw["ops"])
    for comp in components:
        totals += raw[comp]
    out = {"ops": raw["ops"]}
    with np.errstate(invalid="ignore", divide="ignore"):
        for comp in components:
            out[comp] = np.where(totals > 0, raw[comp] / totals, 0.0)
    return out


def rate_series(
    ops: np.ndarray, seconds: np.ndarray, *, n_points: int = 40
) -> tuple[np.ndarray, np.ndarray]:
    """Geometric-mean flop-rate curve on a log-spaced ops axis.

    Matches how the paper presents rate-vs-ops scatter: we aggregate into
    log bins so the monotone trend and transition points are readable in
    text output.
    """
    ops = np.asarray(ops, dtype=np.float64)
    seconds = np.asarray(seconds, dtype=np.float64)
    keep = (ops > 0) & (seconds > 0)
    ops, seconds = ops[keep], seconds[keep]
    if ops.size == 0:
        return np.empty(0), np.empty(0)
    lo, hi = np.log10(ops.min()), np.log10(ops.max())
    if hi - lo < 1e-9:
        return np.array([ops.mean()]), np.array([(ops / seconds).mean()])
    edges = np.logspace(lo, hi, n_points + 1)
    centers, rates = [], []
    rate = ops / seconds
    for i in range(n_points):
        sel = (ops >= edges[i]) & (ops < edges[i + 1])
        if not sel.any():
            continue
        centers.append(np.sqrt(edges[i] * edges[i + 1]))
        rates.append(float(np.exp(np.log(rate[sel]).mean())))
    return np.asarray(centers), np.asarray(rates)
