"""ASCII rendering of the paper's heatmaps and policy maps.

The benchmark harness regenerates every figure as text: numeric grids
(Figs. 2/14) become shaded-character heatmaps, categorical grids
(Figs. 12/13) become letter maps (1..4 for P1..P4).  Row 0 is the
smallest k, printed last so the vertical axis increases upward like the
paper's plots.
"""

from __future__ import annotations

import numpy as np

__all__ = ["ascii_heatmap", "ascii_policy_map"]

_SHADES = " .:-=+*#%@"


def ascii_heatmap(
    grid: np.ndarray,
    *,
    title: str = "",
    xlabel: str = "m",
    ylabel: str = "k",
    fmt: str = "{:.3g}",
) -> str:
    """Render a (k-bins x m-bins) numeric grid as shaded characters.

    NaNs render as blanks.  The value range is annotated so the text is
    quantitatively interpretable.
    """
    grid = np.asarray(grid, dtype=np.float64)
    finite = grid[np.isfinite(grid)]
    lo = float(finite.min()) if finite.size else 0.0
    hi = float(finite.max()) if finite.size else 0.0
    span = hi - lo
    lines = []
    if title:
        lines.append(title)
    lines.append(
        f"  [{ylabel} increases upward; {xlabel} rightward] "
        f"range: {fmt.format(lo)} .. {fmt.format(hi)}"
    )
    for r in range(grid.shape[0] - 1, -1, -1):
        chars = []
        for c in range(grid.shape[1]):
            v = grid[r, c]
            if not np.isfinite(v):
                chars.append(" ")
            elif span <= 0:
                chars.append(_SHADES[-1] if v > 0 else _SHADES[0])
            else:
                idx = int((v - lo) / span * (len(_SHADES) - 1))
                chars.append(_SHADES[idx])
        lines.append("  |" + "".join(chars) + "|")
    lines.append("  +" + "-" * grid.shape[1] + "+")
    return "\n".join(lines)


def ascii_policy_map(
    grid: np.ndarray,
    *,
    title: str = "",
    symbols: dict[str, str] | None = None,
) -> str:
    """Render a categorical (k-bins x m-bins) grid of policy names.

    Defaults to the digit of the policy (P1 -> '1'); empty cells are
    blank.
    """
    grid = np.asarray(grid, dtype=object)
    lines = []
    if title:
        lines.append(title)
    used: set[str] = set()
    for r in range(grid.shape[0] - 1, -1, -1):
        chars = []
        for c in range(grid.shape[1]):
            name = str(grid[r, c])
            if not name:
                chars.append(" ")
                continue
            used.add(name)
            if symbols and name in symbols:
                chars.append(symbols[name])
            else:
                chars.append(name[-1] if name[-1].isdigit() else name[-1])
        lines.append("  |" + "".join(chars) + "|")
    lines.append("  +" + "-" * grid.shape[1] + "+")
    if used:
        lines.append("  legend: " + ", ".join(sorted(used)))
    return "\n".join(lines)
