"""Plain-text table formatting for the benchmark harness."""

from __future__ import annotations

from typing import Iterable, Sequence

__all__ = ["format_table"]


def _cell(v, fmt: str | None) -> str:
    if isinstance(v, float):
        return (fmt or "{:.3g}").format(v)
    return str(v)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence],
    *,
    title: str = "",
    float_fmt: str = "{:.3g}",
) -> str:
    """Render a fixed-width table; floats use ``float_fmt``."""
    str_rows = [[_cell(v, float_fmt) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError("row length does not match headers")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    out = []
    if title:
        out.append(title)
    out.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    out.append(sep)
    for row in str_rows:
        out.append(" | ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(out)
