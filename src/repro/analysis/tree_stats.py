"""Elimination-tree profiles: where the calls, flops and time live.

The paper's Section IV narrative is a profile of the supernodal tree:
97% of calls are small, the flops concentrate in a handful of top
separators, potrf matters only near the root.  This module computes
that profile for any :class:`SymbolicFactor` (real or synthetic) so the
story can be printed for arbitrary inputs — used by the CLI, the
examples, and the workload sanity tests.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.symbolic.etree import NO_PARENT
from repro.symbolic.symbolic import SymbolicFactor, factor_update_flops

__all__ = ["TreeProfile", "profile_tree", "format_profile"]


@dataclass(frozen=True)
class TreeProfile:
    """Aggregate statistics of a supernodal elimination tree."""

    n: int
    n_supernodes: int
    depth: int
    total_flops: float
    nnz_factor: int
    small_call_fraction: float        # k <= 500 and m <= 1000 (paper units)
    flops_in_top10_calls: float       # fraction
    flops_by_depth: np.ndarray        # root = depth 0
    calls_by_depth: np.ndarray
    widths: np.ndarray                # per-supernode k
    max_front: int                    # largest k + m
    amalgamation: str = "default"     # preset label of the profiled tree

    @property
    def mean_width(self) -> float:
        return float(self.widths.mean()) if self.widths.size else 0.0


def _supernode_depths(sf: SymbolicFactor) -> np.ndarray:
    depth = np.zeros(sf.n_supernodes, dtype=np.int64)
    # parents always have larger ids than children in our construction
    for s in range(sf.n_supernodes - 1, -1, -1):
        p = sf.sparent[s]
        if p != NO_PARENT:
            depth[s] = depth[p] + 1
    return depth


def profile_tree(
    sf: SymbolicFactor, *, amalgamation: str = "default"
) -> TreeProfile:
    """Compute the tree profile of a symbolic factorization.

    The profile describes ``sf`` exactly as given — post-amalgamation:
    fronts, widths and depth are those of the supernode partition the
    numeric phase will actually execute, not the fundamental one.
    ``amalgamation`` is a label recording which preset produced ``sf``
    (callers that amalgamated by hand can pass anything descriptive).
    """
    mk = sf.mk_pairs()
    m, k = mk[:, 0], mk[:, 1]
    flops = np.array(
        [sum(factor_update_flops(int(mm), int(kk))) for mm, kk in mk]
    )
    depth = _supernode_depths(sf)
    max_depth = int(depth.max()) if depth.size else 0
    flops_by_depth = np.zeros(max_depth + 1)
    calls_by_depth = np.zeros(max_depth + 1, dtype=np.int64)
    np.add.at(flops_by_depth, depth, flops)
    np.add.at(calls_by_depth, depth, 1)
    total = float(flops.sum())
    top10 = float(np.sort(flops)[-10:].sum() / total) if total > 0 else 0.0
    small = float(((k <= 500) & (m <= 1000)).mean()) if mk.size else 0.0
    return TreeProfile(
        n=sf.n,
        n_supernodes=sf.n_supernodes,
        depth=max_depth,
        total_flops=total,
        nnz_factor=sf.nnz_factor,
        small_call_fraction=small,
        flops_in_top10_calls=top10,
        flops_by_depth=flops_by_depth,
        calls_by_depth=calls_by_depth,
        widths=k.copy(),
        max_front=int((m + k).max()) if mk.size else 0,
        amalgamation=amalgamation,
    )


def format_profile(profile: TreeProfile, *, max_levels: int = 8) -> str:
    """Human-readable rendering of a tree profile."""
    lines = [
        f"n = {profile.n}, supernodes = {profile.n_supernodes}, "
        f"tree depth = {profile.depth} "
        f"(amalgamation: {profile.amalgamation})",
        f"nnz(L) = {profile.nnz_factor}, factor flops = {profile.total_flops:.4g}",
        f"small calls (k<=500, m<=1000): {profile.small_call_fraction:.1%}",
        f"flops in the 10 largest calls: {profile.flops_in_top10_calls:.1%}",
        f"largest front: {profile.max_front}, mean supernode width: "
        f"{profile.mean_width:.1f}",
        "flops by tree depth (root first):",
    ]
    total = max(profile.total_flops, 1e-300)
    for d in range(min(max_levels, profile.flops_by_depth.size)):
        share = profile.flops_by_depth[d] / total
        bar = "#" * int(round(40 * share))
        lines.append(
            f"  depth {d:2d}: {share:6.1%} ({profile.calls_by_depth[d]} calls) {bar}"
        )
    if profile.flops_by_depth.size > max_levels:
        rest = profile.flops_by_depth[max_levels:].sum() / total
        lines.append(f"  deeper : {rest:6.1%}")
    return "\n".join(lines)
