"""Instrumentation analysis and report formatting.

Turns the per-call :class:`~repro.multifrontal.numeric.FURecord` streams
into the quantities the paper plots: m x k grid fractions (Fig. 2),
component timings vs operation count (Figs. 5/6), flop-rate series
(Figs. 4/7/8/10), policy maps and speedup heatmaps (Figs. 12-14) — plus
the ASCII renderers the benchmark harness prints them with.
"""

from repro.analysis.binning import GridBinner
from repro.analysis.instrument import (
    component_fractions,
    component_times,
    rate_series,
    time_fraction_grid,
)
from repro.analysis.heatmap import ascii_heatmap, ascii_policy_map
from repro.analysis.reports import format_table
from repro.analysis.tree_stats import TreeProfile, format_profile, profile_tree

__all__ = [
    "GridBinner",
    "time_fraction_grid",
    "component_times",
    "component_fractions",
    "rate_series",
    "ascii_heatmap",
    "ascii_policy_map",
    "format_table",
    "TreeProfile",
    "profile_tree",
    "format_profile",
]
