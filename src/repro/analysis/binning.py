"""m x k grid binning of per-call quantities (the Figure 2/12/13/14 axes).

The paper bins factor-update calls on an m x k grid (500 x 500 bins up
to 10000; our scaled problems use proportionally smaller extents) and
plots per-bin aggregates: fraction of total time, best policy, speedup.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["GridBinner"]


@dataclass(frozen=True)
class GridBinner:
    """Uniform 2-D binner over (m, k).

    Attributes
    ----------
    bin_size : int
        Edge length of one square bin.
    extent : int
        Upper bound of both axes; values beyond are clamped into the
        last bin (the paper's plots saturate the same way).
    """

    bin_size: int = 500
    extent: int = 10000

    @property
    def n_bins(self) -> int:
        return max(1, self.extent // self.bin_size)

    def bin_index(self, m, k) -> tuple[np.ndarray, np.ndarray]:
        m = np.asarray(m, dtype=np.int64)
        k = np.asarray(k, dtype=np.int64)
        bm = np.clip(m // self.bin_size, 0, self.n_bins - 1)
        bk = np.clip(k // self.bin_size, 0, self.n_bins - 1)
        return bm, bk

    def accumulate(self, m, k, weights) -> np.ndarray:
        """Sum ``weights`` into their (m, k) bins; returns a
        (n_bins, n_bins) array indexed [k_bin, m_bin] like the paper's
        plots (k on the vertical axis)."""
        bm, bk = self.bin_index(m, k)
        out = np.zeros((self.n_bins, self.n_bins))
        np.add.at(out, (bk, bm), np.asarray(weights, dtype=np.float64))
        return out

    def fraction(self, m, k, weights) -> np.ndarray:
        """Like :meth:`accumulate`, normalized to sum to 1."""
        grid = self.accumulate(m, k, weights)
        total = grid.sum()
        return grid / total if total > 0 else grid

    def majority_label(self, m, k, labels, *, fill: str = "") -> np.ndarray:
        """Per-bin majority label (for policy maps); empty bins get
        ``fill``."""
        bm, bk = self.bin_index(m, k)
        labels = np.asarray(labels, dtype=object)
        out = np.full((self.n_bins, self.n_bins), fill, dtype=object)
        votes: dict[tuple[int, int], dict[str, int]] = {}
        for i in range(labels.size):
            cell = (int(bk[i]), int(bm[i]))
            votes.setdefault(cell, {})
            votes[cell][labels[i]] = votes[cell].get(labels[i], 0) + 1
        for (r, c), v in votes.items():
            out[r, c] = max(v.items(), key=lambda kv: kv[1])[0]
        return out

    def mean(self, m, k, values) -> np.ndarray:
        """Per-bin mean of ``values``; empty bins are NaN."""
        sums = self.accumulate(m, k, values)
        counts = self.accumulate(m, k, np.ones(np.asarray(m).shape))
        with np.errstate(invalid="ignore"):
            return np.where(counts > 0, sums / np.maximum(counts, 1), np.nan)
