"""Elimination tree construction and traversal.

The elimination tree of an SPD matrix A (Liu 1986) has
``parent(j) = min{ i > j : L[i, j] != 0 }``; it encodes every column
dependency of the Cholesky factor and is the task graph the multifrontal
method walks.  We build it with Liu's union-find algorithm with path
compression, O(nnz * alpha(n)).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.matrices.csc import CSCMatrix

__all__ = ["EliminationTree", "elimination_tree", "postorder"]

#: Sentinel parent of a tree root.
NO_PARENT = -1


@dataclass(frozen=True)
class EliminationTree:
    """Elimination tree plus derived traversal data.

    Attributes
    ----------
    parent : int64 array
        ``parent[j]`` is the etree parent of column ``j``; ``-1`` for roots.
    post : int64 array
        A postorder of the tree: ``post[t]`` is the t-th column eliminated.
        Children always precede parents.
    first_child / next_sibling : int64 arrays
        Child lists in linked form (both ``-1``-terminated), ordered so
        that traversing siblings yields increasing column numbers.
    """

    parent: np.ndarray
    post: np.ndarray
    first_child: np.ndarray
    next_sibling: np.ndarray

    @property
    def n(self) -> int:
        return int(self.parent.size)

    def roots(self) -> np.ndarray:
        return np.flatnonzero(self.parent == NO_PARENT)

    def children(self, j: int) -> list[int]:
        out = []
        c = int(self.first_child[j])
        while c != NO_PARENT:
            out.append(c)
            c = int(self.next_sibling[c])
        return out

    def depths(self) -> np.ndarray:
        """Depth of every node (roots have depth 0); vectorizable because
        parents always have larger indices than children."""
        depth = np.zeros(self.n, dtype=np.int64)
        for j in range(self.n - 1, -1, -1):
            p = self.parent[j]
            if p != NO_PARENT:
                depth[j] = depth[p] + 1
        return depth

    def subtree_sizes(self) -> np.ndarray:
        size = np.ones(self.n, dtype=np.int64)
        for j in range(self.n):
            p = self.parent[j]
            if p != NO_PARENT:
                size[p] += size[j]
        return size


def _parents_from_matrix(a: CSCMatrix) -> np.ndarray:
    """Liu's algorithm: process columns left to right; for each nonzero
    A[i, j] with i < j, climb the compressed ancestor chain from i and
    graft the top onto j."""
    n = a.n_cols
    parent = np.full(n, NO_PARENT, dtype=np.int64)
    ancestor = np.full(n, NO_PARENT, dtype=np.int64)
    indptr, indices = a.indptr, a.indices
    for j in range(n):
        for i in indices[indptr[j]:indptr[j + 1]]:
            if i >= j:
                continue
            # climb from i to the current root of its tree, compressing
            r = int(i)
            while ancestor[r] != NO_PARENT and ancestor[r] != j:
                nxt = int(ancestor[r])
                ancestor[r] = j
                r = nxt
            if ancestor[r] == NO_PARENT:
                ancestor[r] = j
                parent[r] = j
    return parent


def postorder(parent: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Postorder a forest given parent pointers.

    Returns ``(post, first_child, next_sibling)``.  Sibling lists are built
    in decreasing column order so the DFS visits children in increasing
    order, giving the canonical postorder used by supernode detection.
    """
    n = parent.size
    first_child = np.full(n, NO_PARENT, dtype=np.int64)
    next_sibling = np.full(n, NO_PARENT, dtype=np.int64)
    for j in range(n - 1, -1, -1):
        p = parent[j]
        if p != NO_PARENT:
            next_sibling[j] = first_child[p]
            first_child[p] = j
    post = np.empty(n, dtype=np.int64)
    t = 0
    for root in range(n):
        if parent[root] != NO_PARENT:
            continue
        # iterative DFS emitting nodes on the way back up
        stack = [(root, False)]
        while stack:
            node, expanded = stack.pop()
            if expanded:
                post[t] = node
                t += 1
                continue
            stack.append((node, True))
            c = int(first_child[node])
            kids = []
            while c != NO_PARENT:
                kids.append(c)
                c = int(next_sibling[c])
            for c in reversed(kids):
                stack.append((c, False))
    if t != n:
        raise ValueError("parent array does not describe a forest")
    return post, first_child, next_sibling


def elimination_tree(a: CSCMatrix) -> EliminationTree:
    """Build the elimination tree of the symmetric pattern of ``a``.

    ``a`` may store the full symmetric matrix or only its lower triangle;
    Liu's algorithm only reads entries above the diagonal, so we feed it
    the upper-triangle view (transpose of the lower storage).
    """
    if a.n_rows != a.n_cols:
        raise ValueError("elimination tree requires a square matrix")
    full = a if a.is_structurally_symmetric() else a.symmetrize_from_lower()
    parent = _parents_from_matrix(full)
    post, first_child, next_sibling = postorder(parent)
    return EliminationTree(parent, post, first_child, next_sibling)
