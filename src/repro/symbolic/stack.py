"""Update-stack working-memory analysis and stack-minimizing traversal.

The multifrontal method keeps the *update matrices* of already-factored
children alive until their parent assembles.  The peak of that stack
depends on the order siblings are visited; Liu (1986) showed the
sequence visiting children in decreasing ``peak_i - post_i`` order (the
child whose subtree needs the most transient memory *beyond* what it
leaves behind goes first) minimizes the peak.

This matters doubly on the paper's hardware: host memory bounds the
largest solvable problem, and the same ordering principle governs the
GPU-resident working set when fronts are device-resident (P4).

``stack_minimizing_postorder`` returns a new supernode schedule (a valid
postorder) implementing Liu's rule; ``estimate_peak_update_bytes``
prices any schedule with exactly the accounting the numeric driver uses,
so the estimate is testable against the real factorization's measured
peak.
"""

from __future__ import annotations

import numpy as np

from repro.symbolic.etree import NO_PARENT
from repro.symbolic.symbolic import SymbolicFactor

__all__ = [
    "update_bytes",
    "estimate_peak_update_bytes",
    "stack_minimizing_postorder",
]

_WORD = 8  # float64 update matrices


def update_bytes(sf: SymbolicFactor, s: int) -> int:
    """Bytes of supernode ``s``'s dense update matrix."""
    m = sf.update_size(s)
    return m * m * _WORD


def estimate_peak_update_bytes(
    sf: SymbolicFactor, spost: np.ndarray | None = None
) -> int:
    """Peak live update-stack bytes under a given schedule.

    Mirrors the numeric driver: a child's update is freed when its
    parent assembles; the parent's own update appears when the parent's
    factor-update completes.
    """
    order = sf.spost if spost is None else np.asarray(spost, dtype=np.int64)
    kids = sf.schildren()
    live = 0
    peak = 0
    produced: set[int] = set()
    for s in order:
        s = int(s)
        for c in kids[s]:
            if c not in produced:
                raise ValueError(
                    f"invalid schedule: supernode {s} assembled before its "
                    f"child {c} was factored"
                )
            produced.discard(c)
            live -= update_bytes(sf, c)
        u = update_bytes(sf, s)
        produced.add(s)
        live += u
        peak = max(peak, live)
    return peak


def stack_minimizing_postorder(sf: SymbolicFactor) -> np.ndarray:
    """Liu's stack-minimizing postorder of the supernodal tree.

    For each parent, children are visited in decreasing
    ``peak(child) - update(child)`` order, where ``peak`` is the child
    subtree's own peak under its (recursively optimized) schedule.
    """
    n_super = sf.n_supernodes
    kids = sf.schildren()
    # bottom-up pass computing each subtree's peak under the optimal
    # child order, and recording that order
    peak = np.zeros(n_super, dtype=np.int64)
    child_order: list[list[int]] = [[] for _ in range(n_super)]
    for s in sf.spost:  # children before parents
        s = int(s)
        u_self = update_bytes(sf, s)
        cs = kids[s]
        if not cs:
            peak[s] = u_self
            continue
        ordered = sorted(
            cs, key=lambda c: -(int(peak[c]) - update_bytes(sf, c))
        )
        child_order[s] = ordered
        live = 0
        p = 0
        for c in ordered:
            p = max(p, live + int(peak[c]))
            live += update_bytes(sf, c)
        # after all children: they are freed at assembly, replaced by
        # this supernode's own update
        peak[s] = max(p, u_self)
    # emit the DFS with the chosen child orders
    roots = [s for s in range(n_super) if sf.sparent[s] == NO_PARENT]
    roots.sort(key=lambda s: -(int(peak[s]) - update_bytes(sf, s)))
    out = np.empty(n_super, dtype=np.int64)
    t = 0
    for root in roots:
        stack = [(root, False)]
        while stack:
            node, expanded = stack.pop()
            if expanded:
                out[t] = node
                t += 1
                continue
            stack.append((node, True))
            cs = child_order[node] if child_order[node] else kids[node]
            for c in reversed(cs):
                stack.append((c, False))
    if t != n_super:
        raise AssertionError("traversal missed supernodes")
    return out
