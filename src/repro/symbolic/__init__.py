"""Symbolic analysis for supernodal multifrontal Cholesky.

Given a permuted SPD matrix, this subpackage computes everything the
numeric phase needs before touching a floating-point number:

* the (column) elimination tree and its postorder (:mod:`etree`),
* the per-column nonzero patterns / column counts of the factor
  (:mod:`colcounts`),
* the fundamental supernode partition and relaxed amalgamation
  (:mod:`supernodes`),
* the assembled :class:`SymbolicFactor` — per-supernode row structures,
  the supernodal tree, and flop/byte counts per factor-update call
  (:mod:`symbolic`).
"""

from repro.symbolic.etree import EliminationTree, elimination_tree, postorder
from repro.symbolic.colcounts import column_counts, column_patterns
from repro.symbolic.supernodes import (
    AMALGAMATION_PRESETS,
    AmalgamationParams,
    amalgamate,
    amalgamation_preset,
    fundamental_supernodes,
)
from repro.symbolic.symbolic import SymbolicFactor, symbolic_factorize

__all__ = [
    "EliminationTree",
    "elimination_tree",
    "postorder",
    "column_counts",
    "column_patterns",
    "fundamental_supernodes",
    "amalgamate",
    "AmalgamationParams",
    "AMALGAMATION_PRESETS",
    "amalgamation_preset",
    "SymbolicFactor",
    "symbolic_factorize",
]
