"""Per-column factor patterns and column counts.

``column_patterns`` performs a structural (symbolic) Cholesky: the
below-diagonal pattern of column ``j`` of L is the union of A's
below-diagonal pattern in column ``j`` with the patterns of ``j``'s etree
children, minus ``j`` itself:

    rowpat(j) = rows(A[:, j], > j)  U  ( U_{c : parent(c)=j} rowpat(c) \\ {j} )

Since etree parents always carry larger indices than their children, a
single ascending sweep suffices, and each column's pattern is merged into
its parent exactly once, so the total work is O(nnz(L)) with the unions
done by vectorized ``np.unique`` calls.
"""

from __future__ import annotations

import numpy as np

from repro.matrices.csc import CSCMatrix
from repro.symbolic.etree import NO_PARENT

__all__ = ["column_patterns", "column_counts"]


def column_patterns(a: CSCMatrix, parent: np.ndarray) -> list[np.ndarray]:
    """Below-diagonal row patterns of every column of the Cholesky factor.

    Parameters
    ----------
    a : CSCMatrix
        Full symmetric (or lower-stored) matrix, already permuted into its
        elimination order.
    parent : int64 array
        Elimination-tree parents for that order.

    Returns
    -------
    list of int64 arrays, ``patterns[j]`` sorted strictly-below-diagonal
    row indices of L[:, j].
    """
    n = a.n_cols
    # collect A's strictly-below-diagonal pattern per column (works for
    # both full-symmetric and lower-triangle storage: filtering rows > j
    # discards the upper part if present)
    patterns: list[np.ndarray] = [None] * n  # type: ignore[list-item]
    pending: list[list[np.ndarray]] = [[] for _ in range(n)]
    for j in range(n):
        rows, _ = a.column(j)
        below = rows[rows > j]
        pieces = pending[j]
        pieces.append(below)
        if len(pieces) == 1:
            pat = np.array(below, dtype=np.int64)
        else:
            pat = np.unique(np.concatenate(pieces))
        patterns[j] = pat
        pending[j] = []  # release
        p = parent[j]
        if p != NO_PARENT:
            pending[p].append(pat[pat != p])
        elif pat.size:
            raise ValueError(
                f"column {j} has below-diagonal entries but no etree parent"
            )
    return patterns


def column_counts(a: CSCMatrix, parent: np.ndarray) -> np.ndarray:
    """Column counts of L, diagonal included: ``cnt[j] = |rowpat(j)| + 1``."""
    patterns = column_patterns(a, parent)
    return np.array([p.size + 1 for p in patterns], dtype=np.int64)
