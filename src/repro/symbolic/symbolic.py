"""Full symbolic factorization: the :class:`SymbolicFactor` object.

``symbolic_factorize`` runs the complete analysis pipeline:

1. fill-reducing ordering (delegated to :mod:`repro.ordering`),
2. elimination tree of the permuted matrix + postordering (the overall
   permutation is composed so columns of a supernode are consecutive),
3. per-column factor patterns and counts,
4. fundamental supernode detection + relaxed amalgamation,
5. per-supernode row structure, the supernodal tree, and the (m, k) and
   flop statistics of every factor-update call — the quantities the
   paper's Figures 2/5/6 are drawn from and the features the auto-tuner
   consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.matrices.csc import CSCMatrix
from repro.ordering import compute_ordering
from repro.symbolic.colcounts import column_patterns
from repro.symbolic.etree import NO_PARENT, EliminationTree, elimination_tree
from repro.symbolic.supernodes import (
    AmalgamationParams,
    amalgamate,
    fundamental_supernodes,
)

__all__ = ["SymbolicFactor", "symbolic_factorize"]


def factor_update_flops(m: int, k: int) -> tuple[float, float, float]:
    """Asymptotic operation counts of one factor-update call, following
    the paper's Section IV-B: ``N_P = k^3/3`` (potrf), ``N_T = m k^2``
    (trsm), ``N_S = m^2 k`` (syrk)."""
    return (k**3 / 3.0, float(m) * k * k, float(m) * m * k)


@dataclass
class SymbolicFactor:
    """Everything the numeric phase needs, plus analysis metadata.

    Attributes
    ----------
    n : int
        Matrix order.
    perm : int64 array
        Overall new-to-old permutation (ordering composed with etree
        postorder); the numeric phase factors ``P A P^T``.
    super_ptr : int64 array, length n_super + 1
        Supernode ``s`` owns (permuted) columns ``super_ptr[s]:super_ptr[s+1]``.
    rows : list of int64 arrays
        ``rows[s]`` — sorted global row indices of supernode ``s``'s front,
        *including* its own ``k`` columns first; length ``k + m``.
    sparent : int64 array
        Supernodal elimination tree (-1 for roots).
    spost : int64 array
        Postorder of the supernodal tree (valid numeric schedule).
    etree : EliminationTree
        Column elimination tree of the permuted matrix.
    nnz_factor : int
        Stored entries of L (supernodal lower triangles, fill included).
    """

    n: int
    perm: np.ndarray
    super_ptr: np.ndarray
    rows: list[np.ndarray]
    sparent: np.ndarray
    spost: np.ndarray
    etree: EliminationTree
    nnz_factor: int
    ordering: str = "nd"
    amalgamation: AmalgamationParams = field(default_factory=AmalgamationParams)

    # ------------------------------------------------------------------
    @property
    def n_supernodes(self) -> int:
        return int(self.super_ptr.size - 1)

    def width(self, s: int) -> int:
        """k — number of pivot columns of supernode ``s``."""
        return int(self.super_ptr[s + 1] - self.super_ptr[s])

    def update_size(self, s: int) -> int:
        """m — rows below the pivot block (size of the update matrix)."""
        return int(self.rows[s].size - self.width(s))

    def mk_pairs(self) -> np.ndarray:
        """(n_super, 2) array of the (m, k) dimensions of every F-U call."""
        out = np.empty((self.n_supernodes, 2), dtype=np.int64)
        for s in range(self.n_supernodes):
            k = self.width(s)
            out[s, 0] = self.rows[s].size - k
            out[s, 1] = k
        return out

    def schildren(self) -> list[list[int]]:
        kids: list[list[int]] = [[] for _ in range(self.n_supernodes)]
        for s in range(self.n_supernodes):
            p = self.sparent[s]
            if p != NO_PARENT:
                kids[p].append(s)
        return kids

    def total_flops(self) -> float:
        """Total factor-update flops (the paper's 'number of operations')."""
        total = 0.0
        for m, k in self.mk_pairs():
            total += sum(factor_update_flops(int(m), int(k)))
        return total

    def factor_nnz_by_column(self) -> np.ndarray:
        """Stored entries of L per column (supernodal storage, fill incl.)."""
        out = np.zeros(self.n, dtype=np.int64)
        for s in range(self.n_supernodes):
            f = int(self.super_ptr[s])
            k = self.width(s)
            rows = self.rows[s].size
            for j in range(k):
                out[f + j] = rows - j
        return out

    def validate(self) -> None:
        """Structural invariants; raises AssertionError on violation."""
        assert self.super_ptr[0] == 0 and self.super_ptr[-1] == self.n
        assert np.all(np.diff(self.super_ptr) > 0)
        for s in range(self.n_supernodes):
            f, l = int(self.super_ptr[s]), int(self.super_ptr[s + 1])
            rows = self.rows[s]
            k = l - f
            assert rows.size >= k
            assert np.array_equal(rows[:k], np.arange(f, l)), (
                f"supernode {s}: leading rows must equal its own columns"
            )
            assert np.all(np.diff(rows) > 0), f"supernode {s}: rows unsorted"
            if rows.size > k:
                assert rows[k] >= l
            # extend-add closure: update rows must exist in the parent front
            p = int(self.sparent[s])
            if p != NO_PARENT:
                missing = np.setdiff1d(rows[k:], self.rows[p], assume_unique=True)
                assert missing.size == 0, (
                    f"supernode {s}: update rows {missing[:5]} not in parent front"
                )
            else:
                assert rows.size == k, "root supernode must have empty update"


def symbolic_factorize(
    a: CSCMatrix,
    *,
    ordering: str = "nd",
    amalgamation: AmalgamationParams | None = None,
    perm: np.ndarray | None = None,
) -> SymbolicFactor:
    """Run the full symbolic analysis of SPD matrix ``a``.

    Parameters
    ----------
    a : CSCMatrix
        Full symmetric or lower-triangle-stored SPD matrix.
    ordering : str
        Fill-reducing ordering name (see :mod:`repro.ordering`); ignored
        when ``perm`` is given.
    amalgamation : AmalgamationParams, optional
        Relaxation parameters; default merges aggressively enough to match
        typical multifrontal codes.  ``AmalgamationParams(max_width=0)``
        disables amalgamation.
    perm : array, optional
        Externally supplied new-to-old permutation (it will still be
        composed with an etree postorder).
    """
    if a.n_rows != a.n_cols:
        raise ValueError("matrix must be square")
    params = amalgamation if amalgamation is not None else AmalgamationParams()

    base_perm = perm if perm is not None else compute_ordering(a, ordering)
    base_perm = np.asarray(base_perm, dtype=np.int64)
    permuted = a.permute_symmetric(base_perm)

    # postorder the etree and fold the postorder into the permutation so
    # that supernodes come out as contiguous column ranges
    tree0 = elimination_tree(permuted)
    full_perm = base_perm[tree0.post]
    permuted = a.permute_symmetric(full_perm)
    tree = elimination_tree(permuted)

    patterns = column_patterns(permuted, tree.parent)
    counts = np.array([p.size + 1 for p in patterns], dtype=np.int64)

    super_ptr = fundamental_supernodes(tree.parent, counts)
    super_ptr = amalgamate(super_ptr, tree.parent, counts, params)
    n_super = super_ptr.size - 1

    # per-supernode row structure: own columns then the union of member
    # column patterns restricted to rows past the supernode
    rows: list[np.ndarray] = []
    nnz_factor = 0
    for s in range(n_super):
        f, l = int(super_ptr[s]), int(super_ptr[s + 1])
        own = np.arange(f, l, dtype=np.int64)
        below_parts = [patterns[j] for j in range(f, l)]
        below = (
            np.unique(np.concatenate(below_parts)) if below_parts else
            np.empty(0, dtype=np.int64)
        )
        below = below[below >= l]
        front_rows = np.concatenate([own, below])
        rows.append(front_rows)
        k = l - f
        nnz_factor += int(front_rows.size * k - k * (k - 1) // 2)

    # supernodal tree
    super_of = np.empty(a.n_rows, dtype=np.int64)
    for s in range(n_super):
        super_of[super_ptr[s]:super_ptr[s + 1]] = s
    sparent = np.full(n_super, NO_PARENT, dtype=np.int64)
    for s in range(n_super):
        last = int(super_ptr[s + 1]) - 1
        p = tree.parent[last]
        if p != NO_PARENT:
            sparent[s] = super_of[p]
    # supernode ids increase with column number, so ascending id order is
    # already a valid postorder-compatible schedule; keep an explicit
    # postorder for schedulers that want subtree locality
    spost = _postorder_supernodes(sparent)

    sf = SymbolicFactor(
        n=a.n_rows,
        perm=full_perm,
        super_ptr=super_ptr,
        rows=rows,
        sparent=sparent,
        spost=spost,
        etree=tree,
        nnz_factor=nnz_factor,
        ordering=ordering if perm is None else "custom",
        amalgamation=params,
    )
    return sf


def _postorder_supernodes(sparent: np.ndarray) -> np.ndarray:
    n_super = sparent.size
    kids: list[list[int]] = [[] for _ in range(n_super)]
    roots = []
    for s in range(n_super):
        p = sparent[s]
        if p == NO_PARENT:
            roots.append(s)
        else:
            kids[p].append(s)
    post = np.empty(n_super, dtype=np.int64)
    t = 0
    for root in roots:
        stack = [(root, False)]
        while stack:
            node, expanded = stack.pop()
            if expanded:
                post[t] = node
                t += 1
            else:
                stack.append((node, True))
                for c in reversed(kids[node]):
                    stack.append((c, False))
    if t != n_super:
        raise AssertionError("supernodal tree is not a forest")
    return post
