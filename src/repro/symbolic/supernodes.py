"""Fundamental supernode detection and relaxed amalgamation.

A *fundamental supernode* is a maximal run of consecutive columns
``f..l`` whose factor columns share one nonzero pattern (each column's
pattern is the previous one minus its own row).  The detection criterion
(Liu/Ng/Peyton) needs only etree parents and column counts: column ``j``
extends the supernode of ``j-1`` iff

    parent(j-1) == j  and  cnt(j-1) == cnt(j) + 1
    and j-1 is the only child of j that reaches it this way
    (equivalently: j has exactly one etree child among columns of the
    current run's frontier — we use the standard first-child test).

*Relaxed amalgamation* then merges small child supernodes into their
parents even when patterns differ slightly, trading a bounded number of
explicit zeros for larger dense blocks.  This matters doubly here: WSMP
amalgamates, and the m x k distribution of factor-update calls — the very
thing the paper's hybrid policies are trained on — depends on it (see the
ablation bench ``test_ablation_amalgamation``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.symbolic.etree import NO_PARENT

__all__ = [
    "fundamental_supernodes",
    "AmalgamationParams",
    "AMALGAMATION_PRESETS",
    "amalgamation_preset",
    "amalgamate",
]


def fundamental_supernodes(parent: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Partition columns into fundamental supernodes.

    Parameters
    ----------
    parent : int64 array
        Elimination-tree parents (postordered labeling, parents > children).
    counts : int64 array
        Column counts of L including the diagonal.

    Returns
    -------
    ``super_ptr`` : int64 array of length ``n_super + 1`` — supernode ``s``
    spans columns ``super_ptr[s] : super_ptr[s+1]``.
    """
    n = parent.size
    if n == 0:
        return np.zeros(1, dtype=np.int64)
    n_children = np.zeros(n, dtype=np.int64)
    for j in range(n):
        p = parent[j]
        if p != NO_PARENT:
            n_children[p] += 1
    starts = [0]
    for j in range(1, n):
        extends = (
            parent[j - 1] == j
            and counts[j - 1] == counts[j] + 1
            and n_children[j] == 1
        )
        if not extends:
            starts.append(j)
    starts.append(n)
    return np.asarray(starts, dtype=np.int64)


@dataclass(frozen=True)
class AmalgamationParams:
    """Controls relaxed supernode amalgamation.

    Attributes
    ----------
    max_zeros_fraction : float
        A child may merge into its parent only if explicit zeros would make
        up at most this fraction of the merged supernode's stored triangle.
    max_width : int
        Upper bound on the merged supernode's column count; 0 disables
        amalgamation entirely.
    small_child : int
        Children at most this wide are always considered for merging
        (typical multifrontal codes aggressively fold tiny supernodes).
    max_zeros : int or None
        Absolute cap on the explicit zeros any single merge may add, on
        top of the relative budget; ``None`` (the default) applies no
        absolute cap.
    passes : int
        Number of greedy bottom-up sweeps.  One sweep (the default) only
        merges supernodes that were adjacent in the *fundamental*
        partition; later sweeps see the merged partition, so chains of
        small supernodes keep folding until the budgets stop them.
    """

    max_zeros_fraction: float = 0.15
    max_width: int = 256
    small_child: int = 16
    max_zeros: int | None = None
    passes: int = 1

    @classmethod
    def off(cls) -> "AmalgamationParams":
        """The paper-faithful fundamental-supernode tree (no merging)."""
        return cls(max_width=0)

    @classmethod
    def aggressive(cls) -> "AmalgamationParams":
        """Trade noticeably more explicit-zero fill for far fewer, fatter
        fronts (fewer per-front dispatches; normwise-equivalent factor)."""
        return cls(
            max_zeros_fraction=0.35, max_width=512, small_child=48, passes=3
        )


#: named presets accepted by CLI flags and the verification lattice
AMALGAMATION_PRESETS = ("default", "off", "aggressive")


def amalgamation_preset(name: str) -> AmalgamationParams:
    """Resolve a preset name to parameters (``default | off | aggressive``)."""
    if name == "default":
        return AmalgamationParams()
    if name == "off":
        return AmalgamationParams.off()
    if name == "aggressive":
        return AmalgamationParams.aggressive()
    raise ValueError(
        f"unknown amalgamation preset {name!r} "
        f"(expected one of {', '.join(AMALGAMATION_PRESETS)})"
    )


def _supernode_parent(super_of: np.ndarray, super_ptr: np.ndarray,
                      parent: np.ndarray) -> np.ndarray:
    """Supernodal tree: parent supernode of ``s`` is the supernode holding
    the etree parent of the last column of ``s``."""
    n_super = super_ptr.size - 1
    sparent = np.full(n_super, NO_PARENT, dtype=np.int64)
    for s in range(n_super):
        last = super_ptr[s + 1] - 1
        p = parent[last]
        if p != NO_PARENT:
            sparent[s] = super_of[p]
    return sparent


def _amalgamation_sweep(
    super_ptr: np.ndarray,
    parent: np.ndarray,
    front_rows: np.ndarray,
    params: AmalgamationParams,
) -> tuple[np.ndarray, np.ndarray, bool]:
    """One greedy bottom-up merging sweep over a contiguous partition.

    ``front_rows`` carries the (possibly amalgamated) row count of each
    supernode's front, so later sweeps budget against the true merged
    size rather than the first column's count.  Returns the new
    ``super_ptr``, the carried-forward row counts, and whether any merge
    happened.
    """
    n = parent.size
    n_super = super_ptr.size - 1
    super_of = np.empty(n, dtype=np.int64)
    for s in range(n_super):
        super_of[super_ptr[s]:super_ptr[s + 1]] = s
    sparent = _supernode_parent(super_of, super_ptr, parent)

    # union-find over supernodes that were merged into their successor
    merged_into = np.arange(n_super, dtype=np.int64)

    def find(s: int) -> int:
        while merged_into[s] != s:
            merged_into[s] = merged_into[merged_into[s]]
            s = merged_into[s]
        return s

    # current (start, width, front row count) per representative
    start = super_ptr[:-1].astype(np.int64).copy()
    width = np.diff(super_ptr).astype(np.int64)
    first_count = front_rows.astype(np.int64).copy()
    merged_any = False

    for s in range(n_super - 1):
        rep = find(s)
        p = sparent[s]
        if p == NO_PARENT:
            continue
        prep = find(int(p))
        if prep == rep:
            continue
        # contiguity: parent must start right after this supernode ends
        if start[prep] != start[rep] + width[rep]:
            continue
        w_child, w_parent = int(width[rep]), int(width[prep])
        w_new = w_child + w_parent
        if w_new > params.max_width and w_child > params.small_child:
            continue
        # zero cost: merged front keeps the child's row span; the parent's
        # columns gain rows the child had but they lack.
        rows_child = int(first_count[rep])          # rows in child front
        rows_parent = int(first_count[prep])
        # stored triangle sizes (column j of a supernode of R rows and W
        # cols stores R - j entries): total = sum_{j<W} (R - j)
        def tri(rows: int, w: int) -> int:
            return rows * w - w * (w - 1) // 2

        merged_rows = max(rows_child, rows_parent + w_child)
        stored = tri(merged_rows, w_new)
        useful = tri(rows_child, w_child) + tri(rows_parent, w_parent)
        zeros = stored - useful
        if w_child > params.small_child and zeros > params.max_zeros_fraction * stored:
            continue
        if zeros > 4 * params.max_zeros_fraction * stored:
            # even tiny children shouldn't blow the budget completely
            continue
        if params.max_zeros is not None and zeros > params.max_zeros:
            continue
        # merge child rep into parent rep
        merged_into[rep] = prep
        start[prep] = start[rep]
        width[prep] = w_new
        first_count[prep] = merged_rows
        sparent[s] = NO_PARENT  # consumed
        merged_any = True

    reps = sorted({find(s) for s in range(n_super)}, key=lambda s: int(start[s]))
    new_ptr = np.empty(len(reps) + 1, dtype=np.int64)
    new_rows = np.empty(len(reps), dtype=np.int64)
    for i, s in enumerate(reps):
        new_ptr[i] = start[s]
        new_rows[i] = first_count[s]
    new_ptr[-1] = n
    if not np.all(np.diff(new_ptr) > 0):
        raise AssertionError("amalgamation produced a non-contiguous partition")
    return new_ptr, new_rows, merged_any


def amalgamate(
    super_ptr: np.ndarray,
    parent: np.ndarray,
    counts: np.ndarray,
    params: AmalgamationParams = AmalgamationParams(),
) -> np.ndarray:
    """Relaxed amalgamation of a fundamental-supernode partition.

    Greedy bottom-up sweeps: a supernode is merged into its parent when
    the parent directly follows it in column order (so the merged node
    stays a contiguous column range) and the explicit-zero budget holds.
    ``params.passes`` sweeps run (stopping early once a sweep merges
    nothing); each later sweep sees the merged partition, so chains of
    small supernodes keep folding.  Returns a new ``super_ptr``.
    """
    if params.max_width <= 0:
        return super_ptr
    if params.passes < 1:
        raise ValueError("AmalgamationParams.passes must be >= 1")
    # count of the first column of a fundamental supernode = rows in front
    front_rows = counts[super_ptr[:-1]]
    ptr = super_ptr
    for _ in range(params.passes):
        ptr, front_rows, merged_any = _amalgamation_sweep(
            ptr, parent, front_rows, params
        )
        if not merged_any:
            break
    return ptr
