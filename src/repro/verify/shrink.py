"""Delta-debugging shrinker for failing matrices.

When the fuzz driver finds a matrix that violates a promise, the raw
witness is typically hundreds of rows of random sparsity — useless in a
bug report.  ``shrink_matrix`` minimizes it while the failure persists:

1. **index reduction** (the ddmin loop): repeatedly try dropping blocks
   of row/column indices, keeping the *principal submatrix* on the
   surviving indices.  A principal submatrix of an SPD matrix is SPD, so
   every candidate is a legal input by construction.  Block sizes halve
   from n/2 down to single indices, restarting whenever a drop succeeds
   — classic delta debugging over the vertex set.
2. **value simplification**: try rounding the surviving entries to a few
   significant digits (symmetrically, preserving SPD-by-construction is
   not guaranteed here, so a candidate whose predicate raises is simply
   treated as "does not reproduce").

The predicate receives a candidate :class:`CSCMatrix` and returns True
when the failure still reproduces.  Any exception inside the predicate
is treated as False — a shrink step must never turn "wrong answer" into
"crash elsewhere" unnoticed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.matrices.csc import CSCMatrix

__all__ = ["ShrinkResult", "principal_submatrix", "shrink_matrix"]


@dataclass
class ShrinkResult:
    """The minimized witness plus shrink statistics."""

    matrix: CSCMatrix
    original_n: int
    tests: int                    # predicate evaluations spent
    rounds: int                   # successful reductions

    @property
    def n(self) -> int:
        return self.matrix.n_rows


def principal_submatrix(a: CSCMatrix, keep: np.ndarray) -> CSCMatrix:
    """Principal submatrix of ``a`` on the (sorted, unique) ``keep`` ids."""
    keep = np.asarray(keep, dtype=np.int64)
    n_new = keep.size
    remap = np.full(a.n_rows, -1, dtype=np.int64)
    remap[keep] = np.arange(n_new, dtype=np.int64)
    cols = np.repeat(
        np.arange(a.n_cols, dtype=np.int64), np.diff(a.indptr)
    )
    new_rows = remap[a.indices]
    new_cols = remap[cols]
    mask = (new_rows >= 0) & (new_cols >= 0)
    return CSCMatrix.from_coo(
        new_rows[mask], new_cols[mask], a.data[mask], (n_new, n_new)
    )


def _safe_predicate(predicate, a: CSCMatrix) -> bool:
    try:
        return bool(predicate(a))
    except Exception:
        return False


def shrink_matrix(
    a: CSCMatrix,
    predicate,
    *,
    max_tests: int = 400,
    simplify_values: bool = True,
) -> ShrinkResult:
    """Minimize a failing matrix with delta debugging.

    Parameters
    ----------
    a : CSCMatrix
        The original failing input; ``predicate(a)`` must be True.
    predicate : callable(CSCMatrix) -> bool
        True while the failure reproduces.  Exceptions count as False.
    max_tests : int
        Budget on predicate evaluations (shrinking is best-effort).
    simplify_values : bool
        Attempt the value-rounding pass after index reduction.
    """
    if not _safe_predicate(predicate, a):
        raise ValueError("predicate does not fail on the original matrix")
    original_n = a.n_rows
    tests = 0
    rounds = 0
    current = a
    keep = np.arange(a.n_rows, dtype=np.int64)

    block = max(1, keep.size // 2)
    while block >= 1 and tests < max_tests:
        shrunk_this_block = False
        start = 0
        while start < keep.size and keep.size > 1 and tests < max_tests:
            candidate_keep = np.concatenate(
                [keep[:start], keep[start + block:]]
            )
            if candidate_keep.size == 0:
                start += block
                continue
            candidate = principal_submatrix(a, candidate_keep)
            tests += 1
            if _safe_predicate(predicate, candidate):
                keep = candidate_keep
                current = candidate
                rounds += 1
                shrunk_this_block = True
                # same start position now addresses the next block
            else:
                start += block
        if not shrunk_this_block or block > keep.size:
            block //= 2
        else:
            block = min(block, max(1, keep.size // 2))

    if simplify_values and tests < max_tests:
        for digits in (1, 2, 4):
            rounded = np.round(
                current.data,
                decimals=int(digits - np.floor(
                    np.log10(np.abs(current.data).max() or 1.0)
                )),
            )
            candidate = CSCMatrix(
                current.shape, current.indptr.copy(),
                current.indices.copy(), rounded, check=False,
            )
            tests += 1
            if _safe_predicate(predicate, candidate):
                current = candidate
                rounds += 1
                break

    return ShrinkResult(
        matrix=current, original_n=original_n, tests=tests, rounds=rounds
    )
