"""Adversarial SPD generators, the fuzz driver, and the regression corpus.

The generators stress the corners the standard generator suite is too
polite to reach:

* ``near_singular`` — graph Laplacians with a vanishing diagonal shift
  (condition numbers around 1e8; fp32 factors of these are where the
  refinement promise earns its keep);
* ``wide_front`` — an arrow matrix (sparse body + dense border) whose
  root front is as wide as the border, exercising the large-(m, k)
  kernel paths and device-memory demand in one supernode;
* ``skinny_chain`` — path-graph Laplacians: maximal-depth elimination
  trees of width-1 supernodes, the worst case for per-call overheads and
  the update-stack ledger;
* ``duplicate_pattern`` — one pattern, rescaled values: the cache-key
  purity axis (same pattern key, distinct values keys);
* ``permutation_heavy`` — a grid problem pre-scrambled by a random
  symmetric permutation, so the fill-reducing ordering has real work to
  undo and two orderings genuinely disagree;
* ``amalgamation_chain`` — a deep path with pendant leaves: maximal
  chains of 1-column supernodes whose fronts differ just enough that
  relaxed amalgamation has to spend its explicit-zero budget folding
  them (the multi-pass merge logic's worst case);
* ``tiny_leaf_forest`` — many bit-identical tiny blocks coupled to one
  shared root: a forest of same-shape leaf fronts, the best and worst
  case for batched small-front grouping.

Failing cases are shrunk (:mod:`repro.verify.shrink`) and persisted as
JSON witnesses; the corpus under ``tests/corpus/`` is replayed by the
test suite and by ``python -m repro verify`` so every past failure stays
fixed.  JSON round-trips Python floats exactly (shortest-repr), so
replay is bit-deterministic.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.matrices.csc import CSCMatrix
from repro.matrices.generators import grid_laplacian_2d, random_spd

__all__ = [
    "FUZZ_GENERATORS",
    "FuzzCase",
    "FuzzFailure",
    "FuzzReport",
    "generate_case",
    "save_case",
    "load_case",
    "load_corpus",
    "replay_corpus",
    "run_fuzz",
]


# ----------------------------------------------------------------------
# adversarial generators
# ----------------------------------------------------------------------
def near_singular(rng: np.random.Generator) -> CSCMatrix:
    n = int(rng.integers(20, 90))
    return random_spd(
        n, avg_degree=4.0, seed=int(rng.integers(0, 2**31)), shift=1e-7
    )


def wide_front(rng: np.random.Generator) -> CSCMatrix:
    """Arrow matrix: sparse Laplacian body plus a dense border block."""
    n_body = int(rng.integers(20, 60))
    border = int(rng.integers(4, 12))
    body = random_spd(n_body, avg_degree=3.0, seed=int(rng.integers(0, 2**31)))
    n = n_body + border
    rows = [body.indices]
    cols = [np.repeat(np.arange(n_body, dtype=np.int64), np.diff(body.indptr))]
    vals = [body.data]
    # dense coupling of every body node to every border node
    bi = np.arange(n_body, dtype=np.int64)
    for j in range(border):
        col = n_body + j
        w = rng.uniform(0.01, 0.1, size=n_body)
        rows += [bi, np.full(n_body, col, dtype=np.int64)]
        cols += [np.full(n_body, col, dtype=np.int64), bi]
        vals += [-w, -w]
    # border diagonal: dominate the row sums to stay SPD
    bd = np.arange(n_body, n, dtype=np.int64)
    rows.append(bd)
    cols.append(bd)
    vals.append(np.full(border, 0.1 * n_body + 1.0))
    # strengthen the body diagonal by the coupling it just gained
    rows.append(bi)
    cols.append(bi)
    vals.append(np.full(n_body, 0.1 * border + 0.1))
    return CSCMatrix.from_coo(
        np.concatenate(rows), np.concatenate(cols), np.concatenate(vals),
        (n, n),
    )


def skinny_chain(rng: np.random.Generator) -> CSCMatrix:
    n = int(rng.integers(30, 120))
    ids = np.arange(n - 1, dtype=np.int64)
    w = rng.uniform(0.5, 1.5, size=n - 1)
    diag = np.zeros(n)
    np.add.at(diag, ids, w)
    np.add.at(diag, ids + 1, w)
    rows = np.concatenate([ids, ids + 1, np.arange(n, dtype=np.int64)])
    cols = np.concatenate([ids + 1, ids, np.arange(n, dtype=np.int64)])
    vals = np.concatenate([-w, -w, diag + 0.05])
    return CSCMatrix.from_coo(rows, cols, vals, (n, n))


def duplicate_pattern(rng: np.random.Generator) -> CSCMatrix:
    base = grid_laplacian_2d(
        int(rng.integers(4, 9)), int(rng.integers(4, 9))
    )
    scale = float(rng.uniform(0.25, 4.0))
    return CSCMatrix(
        base.shape, base.indptr, base.indices, base.data * scale, check=False
    )


def permutation_heavy(rng: np.random.Generator) -> CSCMatrix:
    a = grid_laplacian_2d(int(rng.integers(5, 10)), int(rng.integers(5, 10)))
    perm = rng.permutation(a.n_rows).astype(np.int64)
    return a.permute_symmetric(perm)


def amalgamation_chain(rng: np.random.Generator) -> CSCMatrix:
    """Deep path with pendant leaves hung off every ``stride``-th vertex.

    The path alone folds into supernodes with no explicit zeros; each
    pendant perturbs the adjacent fronts so the amalgamation sweep has
    to weigh real fill against the merge — and multi-pass folding has
    long 1-column chains to collapse between the pendants.
    """
    depth = int(rng.integers(40, 150))
    stride = int(rng.integers(3, 7))
    path = np.arange(depth - 1, dtype=np.int64)
    anchors = np.arange(0, depth, stride, dtype=np.int64)
    pendants = depth + np.arange(anchors.size, dtype=np.int64)
    n = depth + anchors.size
    # undirected edges once, then mirrored with one shared weight vector
    und_i = np.concatenate([path, anchors])
    und_j = np.concatenate([path + 1, pendants])
    w = rng.uniform(0.5, 1.5, size=und_i.size)
    ei = np.concatenate([und_i, und_j])
    ej = np.concatenate([und_j, und_i])
    wv = np.concatenate([w, w])
    diag = np.zeros(n)
    np.add.at(diag, ei, wv)
    ids = np.arange(n, dtype=np.int64)
    rows = np.concatenate([ei, ids])
    cols = np.concatenate([ej, ids])
    vals = np.concatenate([-wv, diag + 0.05])
    return CSCMatrix.from_coo(rows, cols, vals, (n, n))


def tiny_leaf_forest(rng: np.random.Generator) -> CSCMatrix:
    """Many copies of one tiny path block, each coupled to one root.

    Every block carries the *same* values, so its leaf fronts are
    bit-identical and all land in one batch group; the shared root keeps
    the matrix irreducible and gives the groups a common parent to
    extend-add into.
    """
    b = int(rng.integers(3, 7))
    copies = int(rng.integers(8, 30))
    w = rng.uniform(0.5, 1.5, size=b - 1)   # one weight vector, all copies
    couple = float(rng.uniform(0.1, 0.4))
    n = b * copies + 1
    root = n - 1
    rows_l, cols_l, vals_l = [], [], []
    for c in range(copies):
        base = c * b
        ids = base + np.arange(b - 1, dtype=np.int64)
        rows_l += [ids, ids + 1]
        cols_l += [ids + 1, ids]
        vals_l += [-w, -w]
        # couple the block's last vertex to the shared root
        last = base + b - 1
        rows_l += [np.array([last, root]), np.array([root, last])]
        cols_l += [np.array([root, last]), np.array([last, root])]
        vals_l += [np.array([-couple] * 2), np.array([-couple] * 2)]
    ei = np.concatenate(rows_l)
    w_all = -np.concatenate(vals_l)
    diag = np.zeros(n)
    np.add.at(diag, ei, w_all)
    ids = np.arange(n, dtype=np.int64)
    rows = np.concatenate([ei, ids])
    cols = np.concatenate([np.concatenate(cols_l), ids])
    vals = np.concatenate([np.concatenate(vals_l), diag + 0.05])
    return CSCMatrix.from_coo(rows, cols, vals, (n, n))


FUZZ_GENERATORS = {
    "near_singular": near_singular,
    "wide_front": wide_front,
    "skinny_chain": skinny_chain,
    "duplicate_pattern": duplicate_pattern,
    "permutation_heavy": permutation_heavy,
    "amalgamation_chain": amalgamation_chain,
    "tiny_leaf_forest": tiny_leaf_forest,
}


@dataclass
class FuzzCase:
    """One generated input."""

    generator: str
    seed: int
    a: CSCMatrix

    @property
    def label(self) -> str:
        return f"{self.generator}#{self.seed} (n={self.a.n_rows})"


def generate_case(seed: int) -> FuzzCase:
    """Deterministically derive one case from an integer seed."""
    rng = np.random.default_rng(seed)
    name = list(FUZZ_GENERATORS)[int(rng.integers(0, len(FUZZ_GENERATORS)))]
    return FuzzCase(generator=name, seed=seed, a=FUZZ_GENERATORS[name](rng))


# ----------------------------------------------------------------------
# corpus persistence
# ----------------------------------------------------------------------
def save_case(path, a: CSCMatrix, meta: dict | None = None) -> None:
    """Persist a matrix (bit-exact) plus metadata as a JSON corpus case."""
    payload = dict(meta or {})
    payload.update(
        {
            "n": int(a.n_rows),
            "indptr": [int(x) for x in a.indptr],
            "indices": [int(x) for x in a.indices],
            "data": [float(x) for x in a.data],
        }
    )
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=1)
        fh.write("\n")


def load_case(path) -> tuple[CSCMatrix, dict]:
    """Load one corpus case; returns (matrix, metadata)."""
    with open(path) as fh:
        payload = json.load(fh)
    n = int(payload["n"])
    a = CSCMatrix(
        (n, n),
        np.asarray(payload["indptr"], dtype=np.int64),
        np.asarray(payload["indices"], dtype=np.int64),
        np.asarray(payload["data"], dtype=np.float64),
    )
    meta = {
        k: v for k, v in payload.items()
        if k not in ("n", "indptr", "indices", "data")
    }
    return a, meta


def load_corpus(directory) -> list[tuple[str, CSCMatrix, dict]]:
    """All ``*.json`` cases under ``directory``, sorted by filename."""
    directory = Path(directory)
    if not directory.is_dir():
        return []
    out = []
    for path in sorted(directory.glob("*.json")):
        a, meta = load_case(path)
        out.append((path.name, a, meta))
    return out


def replay_corpus(directory, pairs=None) -> list["FuzzFailure"]:
    """Re-verify every persisted corpus case; returns the failures."""
    from repro.verify.lattice import verify_matrix

    failures: list[FuzzFailure] = []
    for name, a, meta in load_corpus(directory):
        for report in verify_matrix(a, pairs):
            if not report.ok:
                failures.append(
                    FuzzFailure(
                        case_label=f"corpus:{name}",
                        check=report.pair.name,
                        violations=list(report.violations),
                        witness=a,
                    )
                )
    return failures


# ----------------------------------------------------------------------
# the fuzz driver
# ----------------------------------------------------------------------
@dataclass
class FuzzFailure:
    """One reproduced violation, with its (possibly shrunk) witness."""

    case_label: str
    check: str
    violations: list[str]
    witness: CSCMatrix
    shrunk_from: int | None = None
    witness_path: str | None = None


@dataclass
class FuzzReport:
    """Outcome of one fuzz run."""

    cases_run: int = 0
    elapsed_seconds: float = 0.0
    failures: list[FuzzFailure] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures


def _check_case(a: CSCMatrix, pairs) -> tuple[str, list[str], object] | None:
    """First failing check on ``a``: (check name, violations, predicate).

    The returned predicate re-evaluates *that specific check* on a
    candidate matrix — this is what the shrinker minimizes against.
    """
    from repro.verify.invariants import (
        check_amalgamated_structure,
        check_factor_residual,
        check_symbolic_structure,
        check_update_conservation,
    )
    from repro.verify.lattice import verify_pair
    from repro.symbolic.symbolic import symbolic_factorize

    def structural(m: CSCMatrix) -> list[str]:
        full = m if m.is_structurally_symmetric() else m.symmetrize_from_lower()
        sf = symbolic_factorize(full, ordering="amd")
        return (
            check_symbolic_structure(sf)
            + check_update_conservation(sf)
            + check_amalgamated_structure(full)
        )

    checks: list[tuple[str, object]] = [
        ("structural-invariants", structural),
        ("factor-residual", check_factor_residual),
    ]
    for pair in pairs:
        checks.append(
            (pair.name, lambda m, p=pair: verify_pair(m, p).violations)
        )
    for name, fn in checks:
        violations = fn(a)
        if violations:
            predicate = lambda m, f=fn: bool(f(m))  # noqa: E731
            return name, violations, predicate
    return None


def run_fuzz(
    *,
    budget_seconds: float = 60.0,
    seed: int = 0,
    pairs=None,
    max_cases: int | None = None,
    shrink_failures: bool = True,
    witness_dir=None,
    max_failures: int = 5,
) -> FuzzReport:
    """Generate-and-verify until the time budget (or case cap) runs out.

    Every failure is shrunk to a minimal witness and, when
    ``witness_dir`` is given, persisted in the corpus JSON format so it
    can be committed as a regression case.
    """
    from repro.verify.lattice import default_pairs
    from repro.verify.shrink import shrink_matrix

    if pairs is None:
        pairs = default_pairs()
    report = FuzzReport()
    # the wall-clock budget is the fuzzer's contract: case *content* is
    # fully seed-determined, only how many cases fit the budget varies
    t0 = time.perf_counter()  # repro-lint: disable=RPL010 -- wall-clock budget is the feature
    case_seed = seed
    while True:
        report.elapsed_seconds = time.perf_counter() - t0  # repro-lint: disable=RPL010 -- budget accounting
        if report.elapsed_seconds >= budget_seconds:
            break
        if max_cases is not None and report.cases_run >= max_cases:
            break
        if len(report.failures) >= max_failures:
            break
        case = generate_case(case_seed)
        case_seed += 1
        report.cases_run += 1
        found = _check_case(case.a, pairs)
        if found is None:
            continue
        check_name, violations, predicate = found
        witness = case.a
        shrunk_from = None
        if shrink_failures:
            try:
                shrunk = shrink_matrix(case.a, predicate)
                witness = shrunk.matrix
                shrunk_from = shrunk.original_n
            except ValueError:
                pass  # flaky failure: keep the original witness
        failure = FuzzFailure(
            case_label=case.label,
            check=check_name,
            violations=violations,
            witness=witness,
            shrunk_from=shrunk_from,
        )
        if witness_dir is not None:
            fname = f"witness_{case.generator}_{case.seed}.json"
            path = os.path.join(str(witness_dir), fname)
            save_case(
                path, witness,
                meta={
                    "generator": case.generator,
                    "seed": case.seed,
                    "check": check_name,
                    "violations": violations[:4],
                    "shrunk_from_n": shrunk_from,
                },
            )
            failure.witness_path = path
        report.failures.append(failure)
    report.elapsed_seconds = time.perf_counter() - t0  # repro-lint: disable=RPL010 -- budget accounting
    return report
