"""Composable invariant checkers for the factorization pipeline.

Each checker inspects one structural promise of the system and returns a
list of human-readable violations (empty = invariant holds), so they
compose into suites, the fuzz driver, and the shrinker's predicates
without raising mid-run.  The checkers are deliberately *independent* of
the code they check: update-stack conservation, for instance, re-derives
the produced/consumed ledger from the symbolic tree rather than trusting
the numeric driver's own accounting.

Checkers
--------
* :func:`check_symbolic_structure` — supernode partition, postorder
  validity, and the extend-add containment (every child's update rows
  appear in its parent's front).
* :func:`check_update_conservation` — every update matrix produced by a
  schedule is consumed exactly once, by the producer's parent, after it
  was produced; nothing is left on the stack at the end.
* :func:`check_amalgamated_structure` — every amalgamation preset's
  coarser tree still satisfies extend-add containment and update-stack
  conservation, and each amalgamated supernode boundary coincides with
  a fundamental-supernode boundary (amalgamation only merges, it never
  splits or shifts columns).
* :func:`check_schedule_precedence` — a timed (possibly parallel)
  schedule runs every supernode exactly once and never starts a parent
  before its children finished.
* :func:`check_allocator_state` — after a run, every device pool has
  released what it held, and the grow-only capacity matches its own
  high-water statistics.
* :func:`check_cache_key_purity` — same cache key implies same factor
  bytes: factoring the same matrix twice under one config fingerprints
  equal, and the key derivation is deterministic.
* :func:`check_factor_residual` — the factor actually factors the
  matrix (randomized ``L L^T v`` vs ``P A P^T v`` probe); this is the
  oracle that catches an injected kernel bug on *both* sides of a
  bitwise pair.
* :func:`check_degraded_still_solves` — under total injected GPU kernel
  failure the dynamic backend degrades to P1 but still produces a
  factor that solves to double-precision backward error.
* :func:`check_fleet_failover` — with the affinity-primary node of a
  sharded fleet taken down by injected faults, the router fails over to
  a replica, the outcome is flagged degraded, the factor is never
  cached on the dead primary, and the answer still solves.
* :func:`check_tier_coherence` — a factor that round-trips through the
  storage hierarchy (spilled and promoted back) or crosses the fleet
  interconnect (peer-fetched) carries the same BLAKE2b
  ``factor_fingerprint`` as a fresh local refactorization, and
  timed-out / degraded requests never populate any tier.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.matrices.csc import CSCMatrix
from repro.symbolic.etree import NO_PARENT
from repro.symbolic.symbolic import SymbolicFactor

__all__ = [
    "InvariantReport",
    "check_symbolic_structure",
    "check_update_conservation",
    "check_amalgamated_structure",
    "check_schedule_precedence",
    "check_allocator_state",
    "check_cache_key_purity",
    "check_factor_residual",
    "check_degraded_still_solves",
    "check_fleet_failover",
    "check_tier_coherence",
    "run_invariants",
]


@dataclass
class InvariantReport:
    """Outcome of one named invariant check."""

    name: str
    ok: bool
    violations: list[str] = field(default_factory=list)

    def __str__(self) -> str:
        status = "ok" if self.ok else "FAIL"
        msg = f"[{status}] {self.name}"
        for v in self.violations:
            msg += f"\n    {v}"
        return msg


def _report(name: str, violations: list[str]) -> InvariantReport:
    return InvariantReport(name=name, ok=not violations, violations=violations)


# ----------------------------------------------------------------------
# structural invariants
# ----------------------------------------------------------------------
def check_symbolic_structure(sf: SymbolicFactor) -> list[str]:
    """Supernode partition, postorder and extend-add containment."""
    violations: list[str] = []
    try:
        sf.validate()
    except AssertionError as exc:
        violations.append(f"SymbolicFactor.validate failed: {exc}")
        return violations

    n_super = sf.n_supernodes
    if sorted(int(s) for s in sf.spost) != list(range(n_super)):
        violations.append("spost is not a permutation of the supernodes")
    pos = {int(s): i for i, s in enumerate(sf.spost)}
    for s in range(n_super):
        p = int(sf.sparent[s])
        if p == NO_PARENT:
            continue
        if not 0 <= p < n_super:
            violations.append(f"supernode {s}: parent {p} out of range")
            continue
        if pos.get(p, -1) <= pos.get(s, -1):
            violations.append(
                f"spost visits parent {p} before its child {s}"
            )
        k = sf.width(s)
        update_rows = sf.rows[s][k:]
        missing = update_rows[~np.isin(update_rows, sf.rows[p])]
        if missing.size:
            violations.append(
                f"extend-add containment: rows {missing[:5].tolist()} of "
                f"supernode {s}'s update are absent from parent {p}'s front"
            )
        if update_rows.size and int(update_rows[0]) >= int(sf.super_ptr[p + 1]):
            violations.append(
                f"supernode {s}: first update row {int(update_rows[0])} is "
                f"past its parent {p}'s columns — wrong parent link"
            )
    return violations


def check_update_conservation(
    sf: SymbolicFactor, order: np.ndarray | list[int] | None = None
) -> list[str]:
    """Every extend-add produced exactly once and consumed exactly once."""
    violations: list[str] = []
    schedule = sf.spost if order is None else np.asarray(order, dtype=np.int64)
    if sorted(int(s) for s in schedule) != list(range(sf.n_supernodes)):
        return ["schedule is not a permutation of the supernodes"]
    kids = sf.schildren()
    produced: set[int] = set()
    consumed: set[int] = set()
    for s in schedule:
        s = int(s)
        for c in kids[s]:
            if c not in produced:
                violations.append(
                    f"supernode {s} assembles child {c} before it was factored"
                )
            elif c in consumed:
                violations.append(f"child {c} consumed twice")
            consumed.add(c)
        produced.add(s)
    leftovers = {
        s for s in produced - consumed if int(sf.sparent[s]) != NO_PARENT
    }
    if leftovers:
        violations.append(
            f"unconsumed update matrices at end of schedule: "
            f"{sorted(leftovers)[:8]}"
        )
    return violations


def check_amalgamated_structure(
    a: CSCMatrix, *, ordering: str = "amd"
) -> list[str]:
    """Amalgamated supernode trees keep the structural promises.

    Symbolically factors ``a`` under every amalgamation preset and
    checks, for each resulting tree, that extend-add containment and
    update-stack conservation still hold (under both schedule
    flavours).  Additionally the coarser partitions must *refine into*
    the fundamental one: every amalgamated supernode boundary is also a
    fundamental-supernode boundary, and amalgamation never increases
    the supernode count.
    """
    from repro.symbolic.stack import stack_minimizing_postorder
    from repro.symbolic.supernodes import (
        AMALGAMATION_PRESETS,
        amalgamation_preset,
    )
    from repro.symbolic.symbolic import symbolic_factorize

    violations: list[str] = []
    full = a if a.is_structurally_symmetric() else a.symmetrize_from_lower()
    factors = {
        preset: symbolic_factorize(
            full, ordering=ordering,
            amalgamation=amalgamation_preset(preset),
        )
        for preset in AMALGAMATION_PRESETS
    }
    fundamental = {int(p) for p in factors["off"].super_ptr}
    for preset, sf in factors.items():
        tag = f"amalgamation={preset}"
        violations += [f"{tag}: {v}" for v in check_symbolic_structure(sf)]
        violations += [
            f"{tag}/post: {v}" for v in check_update_conservation(sf)
        ]
        violations += [
            f"{tag}/liu: {v}"
            for v in check_update_conservation(
                sf, stack_minimizing_postorder(sf)
            )
        ]
        if preset == "off":
            continue
        stray = [int(p) for p in sf.super_ptr if int(p) not in fundamental]
        if stray:
            violations.append(
                f"{tag}: supernode boundaries {stray[:5]} do not coincide "
                "with fundamental-supernode boundaries — amalgamation "
                "split or shifted columns instead of merging"
            )
        if sf.n_supernodes > factors["off"].n_supernodes:
            violations.append(
                f"{tag}: {sf.n_supernodes} supernodes exceeds the "
                f"fundamental count {factors['off'].n_supernodes}"
            )
    return violations


def check_schedule_precedence(sf: SymbolicFactor, schedule) -> list[str]:
    """Timed-schedule sanity: each sid once, parents after children.

    ``schedule`` is a list of objects with ``sid``, ``start`` and ``end``
    attributes (:class:`repro.parallel.scheduler.ScheduledTask`).
    """
    violations: list[str] = []
    seen: dict[int, object] = {}
    for t in schedule:
        if t.sid in seen:
            violations.append(f"supernode {t.sid} scheduled twice")
        seen[t.sid] = t
        if t.end < t.start:
            violations.append(
                f"supernode {t.sid}: end {t.end} precedes start {t.start}"
            )
    missing = set(range(sf.n_supernodes)) - set(seen)
    if missing:
        violations.append(f"unscheduled supernodes: {sorted(missing)[:8]}")
        return violations
    for s in range(sf.n_supernodes):
        p = int(sf.sparent[s])
        if p == NO_PARENT:
            continue
        if seen[p].start < seen[s].end - 1e-12:
            violations.append(
                f"parent {p} starts at {seen[p].start} before child {s} "
                f"ends at {seen[s].end}"
            )
    return violations


def check_allocator_state(node) -> list[str]:
    """Post-run pool consistency on every simulated GPU of ``node``."""
    violations: list[str] = []
    for g, gpu in enumerate(getattr(node, "gpus", [])):
        for pool_name in ("device_pool", "pinned_pool"):
            pool = getattr(gpu, pool_name, None)
            if pool is None:
                continue
            in_use = getattr(pool, "in_use", 0)
            capacity = getattr(pool, "capacity", 0)
            stats = getattr(pool, "stats", None)
            if in_use < 0:
                violations.append(
                    f"gpu{g}.{pool_name}: negative in_use {in_use}"
                )
            if in_use > capacity:
                violations.append(
                    f"gpu{g}.{pool_name}: in_use {in_use} exceeds "
                    f"capacity {capacity}"
                )
            if stats is not None and capacity > stats.high_water:
                violations.append(
                    f"gpu{g}.{pool_name}: capacity {capacity} above its own "
                    f"high-water statistic {stats.high_water}"
                )
    return violations


# ----------------------------------------------------------------------
# behavioural invariants (these run factorizations)
# ----------------------------------------------------------------------
def check_cache_key_purity(a: CSCMatrix, config=None) -> list[str]:
    """Same key => same factor bytes, and key derivation is pure."""
    from repro.service.keys import matrix_key
    from repro.verify.lattice import VerifyConfig, factor_fingerprint

    violations: list[str] = []
    key1, _ = matrix_key(a)
    key2, _ = matrix_key(a.copy())
    if key1 != key2:
        violations.append("matrix_key is not deterministic on equal content")
    config = config if config is not None else VerifyConfig()
    prints = []
    for _ in range(2):
        solver = config.build_solver(a)
        solver.analyze().factorize()
        prints.append(factor_fingerprint(solver.factor))
    if prints[0] != prints[1]:
        violations.append(
            f"cache-key purity: two factorizations under {config.label} "
            "produced different factor bytes for one values key"
        )
    return violations


def check_factor_residual(
    a: CSCMatrix, config=None, *, tol: float | None = None
) -> list[str]:
    """The factor reproduces ``P A P^T`` to a policy-appropriate tolerance."""
    from repro.verify.lattice import VerifyConfig

    config = config if config is not None else VerifyConfig()
    if tol is None:
        tol = 1e-8 if config.policy.upper() == "P1" or config.precision == "dp" else 5e-3
    solver = config.build_solver(a)
    solver.analyze().factorize()
    res = solver.factor.residual_norm(solver.a)
    if res > tol:
        return [
            f"factor residual {res:.3e} exceeds {tol:.3e} under {config.label}"
        ]
    return []


def check_degraded_still_solves(
    a: CSCMatrix, *, tol: float = 1e-9
) -> list[str]:
    """Total injected GPU failure must degrade — not break — the solve."""
    from repro.runtime.faults import FaultInjector
    from repro.verify.lattice import (
        VerifyConfig,
        normwise_backward_error,
    )

    violations: list[str] = []
    config = VerifyConfig(policy="P4", backend="dynamic")
    solver = config.build_solver(
        a, faults=FaultInjector(kernel_failure_rate=1.0)
    )
    solver.analyze().factorize()
    runtime = getattr(solver.parallel, "runtime", None)
    had_gpu_work = any(
        solver.symbolic.update_size(s) > 0
        for s in range(solver.symbolic.n_supernodes)
    )
    if had_gpu_work and runtime is not None and not runtime.degraded_sids:
        # the policy may legitimately place every call on the CPU for
        # tiny fronts; only flag when device work was actually planned
        planned_device = any(
            t.policy != "P1" for t in solver.parallel.schedule
        )
        if planned_device:
            violations.append(
                "total kernel-failure injection produced no degraded tasks"
            )
    b = np.ones(a.n_rows)
    res = solver.solve_refined(b, max_iter=10)
    eta = normwise_backward_error(solver.a, res.x, b)
    if eta > tol:
        violations.append(
            f"degraded run failed to solve: backward error {eta:.3e} "
            f"exceeds {tol:.3e}"
        )
    return violations


def check_fleet_failover(a: CSCMatrix, *, tol: float = 1e-9) -> list[str]:
    """A dead affinity primary must fail over — degraded, never cached
    under the healthy key space — and the replica's answer must solve."""
    from repro.cluster.fleet import ShardedSolverService
    from repro.runtime.faults import FaultInjector
    from repro.service.keys import canonicalize
    from repro.verify.lattice import normwise_backward_error

    violations: list[str] = []
    # a probe fleet (no faults) tells us which node owns this pattern
    with ShardedSolverService(2, policy="P1") as probe:
        primary = probe.primary_for(a)
    fleet = ShardedSolverService(
        2,
        policy="P1",
        node_faults=FaultInjector(fail_sids=frozenset({primary})),
    )
    try:
        b = np.ones(a.n_rows)
        outcome = fleet.solve(a, b)
        if not outcome.degraded:
            violations.append(
                "failed-over solve was not flagged degraded "
                f"(primary node {primary} was down)"
            )
        if fleet.metrics.counter("failovers") < 1:
            violations.append("fleet metrics recorded no failover")
        if len(fleet.shards[primary].cache) != 0:
            violations.append(
                f"factor was cached on the dead primary node {primary} — "
                "failover leaked into the healthy key space"
            )
        eta = normwise_backward_error(canonicalize(a), outcome.x, b)
        if eta > tol:
            violations.append(
                f"failed-over solve inaccurate: backward error {eta:.3e} "
                f"exceeds {tol:.3e}"
            )
    finally:
        fleet.shutdown()
    return violations


def check_tier_coherence(a: CSCMatrix) -> list[str]:
    """The storage hierarchy must never change factor bytes or keep
    bytes it was told not to keep.

    Three promises, checked independently of the cache's own counters:

    * **spill/promote identity** — a factor pushed out of RAM into a
      lower tier and read back has the same BLAKE2b
      ``factor_fingerprint`` as a fresh local refactorization;
    * **peer-fetch identity** — a factor pulled over the fleet
      interconnect from a peer shard fingerprints identically too;
    * **failure isolation** — a timed-out request leaves every tier
      empty, and a degraded (fault-injected) run never publishes a
      numeric factor to *any* tier, not just RAM.
    """
    from repro.cluster.fleet import ShardedSolverService
    from repro.runtime.faults import FaultInjector
    from repro.service.service import SolverService
    from repro.service.tiers import TierConfig, TierSpec
    from repro.verify.lattice import factor_fingerprint

    violations: list[str] = []
    b = np.ones(a.n_rows)

    class _Filler:
        """Synthetic payload used to force evictions."""

    def _tiering() -> TierConfig:
        return TierConfig(
            ram_bytes=1 << 20,
            disk=TierSpec("disk", 256 << 20, 5e8, 5e-3),
            object_store=None,
        )

    # reference fingerprint: a fresh factorization, no tier movement
    with SolverService(n_workers=1, policy="P1") as ref_svc:
        ref_svc.solve(a, b)
        _, num_key = ref_svc.keys_for(a)
        reference = factor_fingerprint(ref_svc.cache.peek_numeric(num_key))

    # 1. spill → promote round trip preserves the factor bytes
    with SolverService(n_workers=1, policy="P1", tiering=_tiering()) as svc:
        svc.solve(a, b)
        filler_bytes = svc.cache.max_bytes // 2 + 1
        for i in range(2):  # evict everything resident in RAM
            svc.cache.put_numeric(f"__filler{i}", _Filler(),
                                  nbytes=filler_bytes)
        if ("numeric", num_key) in svc.cache.keys():
            violations.append("factor survived a forced RAM eviction")
        promoted = svc.cache.get_numeric(num_key)
        if promoted is None:
            violations.append("factor lost in the spill/promote round trip")
        elif factor_fingerprint(promoted) != reference:
            violations.append(
                "promoted factor fingerprint differs from a fresh "
                "refactorization — a tier changed factor bytes"
            )
        for problem in svc.cache.check_conservation():
            violations.append(f"byte ledger after round trip: {problem}")

    # 2. a peer-fetched factor fingerprints like a local one
    with ShardedSolverService(
        2, policy="P1", tiering=_tiering(), peer_fetch="always"
    ) as fleet:
        target = fleet.primary_for(a)
        other = 1 - target
        fleet.shards[other].solve(a, b)
        fleet.solve(a, b)
        if fleet.metrics.counter("peer_fetches") < 1:
            violations.append(
                "peer-fetch did not trigger with the factor resident "
                "only on the non-primary shard"
            )
        else:
            _, fleet_key = fleet.shards[target].keys_for(a)
            fetched = fleet.shards[target].cache.peek_numeric(fleet_key)
            if fetched is None:
                violations.append("peer-fetched factor not found on target")
            elif factor_fingerprint(fetched) != reference:
                violations.append(
                    "peer-fetched factor fingerprint differs from a "
                    "fresh refactorization"
                )

    # 3a. a timed-out request leaves every tier empty
    with SolverService(n_workers=1, policy="P1", tiering=_tiering()) as svc:
        req = svc.submit(a, b, timeout=-1.0)
        try:
            req.result(timeout=60)
        except TimeoutError:
            pass
        else:
            violations.append("expired request did not raise TimeoutError")
        if svc.cache.total_entries() != 0:
            violations.append(
                "timed-out request populated the tiered cache: "
                f"{svc.cache.total_entries()} entries across tiers"
            )

    # 3b. a degraded run publishes no numeric factor to any tier
    with SolverService(
        n_workers=1, policy="P4", ordering="amd", backend="dynamic",
        faults=FaultInjector(kernel_failure_rate=1.0), tiering=_tiering(),
    ) as svc:
        outcome = svc.solve(a, b)
        if not outcome.degraded:
            violations.append("fault-injected run was not flagged degraded")
        numeric_keys = [k for k in svc.cache.keys() if k[0] == "numeric"]
        for name in svc.cache.tiers[1:]:
            numeric_keys += [
                k for k in svc.cache.tier(name).keys() if k[0] == "numeric"
            ]
        if numeric_keys:
            violations.append(
                "degraded run published a numeric factor to a tier: "
                f"{numeric_keys}"
            )
    return violations


# ----------------------------------------------------------------------
# suite entry point
# ----------------------------------------------------------------------
def run_invariants(
    a: CSCMatrix, *, include_behavioural: bool = True
) -> list[InvariantReport]:
    """Run the applicable invariant checkers on one matrix."""
    from repro.symbolic.stack import stack_minimizing_postorder
    from repro.symbolic.symbolic import symbolic_factorize
    from repro.verify.lattice import VerifyConfig

    full = a if a.is_structurally_symmetric() else a.symmetrize_from_lower()
    sf = symbolic_factorize(full, ordering="amd")
    reports = [
        _report("symbolic-structure", check_symbolic_structure(sf)),
        _report("update-conservation/post", check_update_conservation(sf)),
        _report(
            "update-conservation/liu",
            check_update_conservation(sf, stack_minimizing_postorder(sf)),
        ),
        _report("amalgamated-structure", check_amalgamated_structure(full)),
    ]
    if include_behavioural:
        config = VerifyConfig()
        solver = config.build_solver(full)
        solver.analyze().factorize()
        reports.append(
            _report("allocator-state", check_allocator_state(solver.node))
        )
        reports.append(
            _report("cache-key-purity", check_cache_key_purity(full, config))
        )
        reports.append(
            _report("factor-residual", check_factor_residual(full, config))
        )
        reports.append(
            _report("degraded-still-solves", check_degraded_still_solves(full))
        )
        reports.append(
            _report("fleet-failover", check_fleet_failover(full))
        )
        reports.append(
            _report("tier-coherence", check_tier_coherence(full))
        )
    return reports
