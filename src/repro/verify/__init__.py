"""Differential verification: config lattice, invariants, fuzzing.

See ``docs/architecture.md`` ("Verification") for the promise matrix —
which configuration pairs are bitwise-identical and which are only
bounded by a Higham-style normwise backward error.
"""

from repro.verify.harness import (
    SuiteResult,
    format_suite,
    generator_suite,
    verify_suite,
)
from repro.verify.invariants import (
    InvariantReport,
    check_allocator_state,
    check_amalgamated_structure,
    check_cache_key_purity,
    check_degraded_still_solves,
    check_factor_residual,
    check_fleet_failover,
    check_schedule_precedence,
    check_symbolic_structure,
    check_tier_coherence,
    check_update_conservation,
    run_invariants,
)
from repro.verify.lattice import (
    ConfigPair,
    PairReport,
    VerifyConfig,
    default_pairs,
    factor_fingerprint,
    normwise_backward_error,
    pairs_by_name,
    verify_matrix,
    verify_pair,
)
from repro.verify.shrink import ShrinkResult, principal_submatrix, shrink_matrix
from repro.verify.fuzz import (
    FUZZ_GENERATORS,
    FuzzCase,
    FuzzFailure,
    FuzzReport,
    generate_case,
    load_case,
    load_corpus,
    replay_corpus,
    run_fuzz,
    save_case,
)

__all__ = [
    "SuiteResult",
    "format_suite",
    "generator_suite",
    "verify_suite",
    "InvariantReport",
    "check_allocator_state",
    "check_amalgamated_structure",
    "check_cache_key_purity",
    "check_degraded_still_solves",
    "check_factor_residual",
    "check_fleet_failover",
    "check_schedule_precedence",
    "check_symbolic_structure",
    "check_tier_coherence",
    "check_update_conservation",
    "run_invariants",
    "ConfigPair",
    "PairReport",
    "VerifyConfig",
    "default_pairs",
    "factor_fingerprint",
    "normwise_backward_error",
    "pairs_by_name",
    "verify_matrix",
    "verify_pair",
    "ShrinkResult",
    "principal_submatrix",
    "shrink_matrix",
    "FUZZ_GENERATORS",
    "FuzzCase",
    "FuzzFailure",
    "FuzzReport",
    "generate_case",
    "load_case",
    "load_corpus",
    "replay_corpus",
    "run_fuzz",
    "save_case",
]
