"""The configuration lattice and the differential oracle over it.

The design promises that many execution knobs change *performance but
not the answer*: the serial, static-list-scheduled and dynamic
event-driven backends compute every factor-update exactly once with the
same kernels, and Liu's stack-minimizing order is just a different
valid postorder of the same tree.  Other knobs change the floating
point stream on purpose — GPU policies compute in float32, panel width
reorders the blocked update, orderings permute the whole problem — and
there the promise is Higham-style normwise accuracy after iterative
refinement, not identity.

This module makes both promises executable:

* :class:`VerifyConfig` — one point of the lattice (policy x schedule x
  backend x precision x ordering x panel width), buildable into a
  :class:`~repro.multifrontal.solver.SparseCholeskySolver`;
* :func:`factor_fingerprint` — a content hash of the factor (permutation
  plus every supernode panel, bit-for-bit);
* :class:`ConfigPair` — two configurations plus the *promise* that binds
  them (``"bitwise"`` or ``"normwise"``);
* :func:`verify_pair` / :func:`verify_matrix` — run the same matrix
  through both sides of each pair and check the promise, reporting
  rich diagnostics on violation.

The normwise oracle follows Higham (Accuracy and Stability of Numerical
Algorithms, ch. 7): each side's *normwise backward error*

    eta(x) = ||b - A x||_inf / (||A||_inf ||x||_inf + ||b||_inf)

must be small after refinement, and the two solutions must agree to

    ||x1 - x2||_inf / ||x2||_inf  <=  safety * cond_1(A) * (eta1 + eta2)

with ``cond_1`` from Hager's 1-norm condition estimator (which costs a
handful of triangular solves against the already-computed factor).
"""

from __future__ import annotations

import dataclasses
import hashlib
from dataclasses import dataclass, field

import numpy as np

from repro.gpu.device import SimulatedNode
from repro.gpu.perfmodel import tesla_t10_model
from repro.matrices.csc import CSCMatrix
from repro.multifrontal.batched import BatchParams
from repro.multifrontal.solver import SparseCholeskySolver
from repro.policies.base import PolicyP4, make_policy
from repro.symbolic.supernodes import AMALGAMATION_PRESETS, amalgamation_preset

__all__ = [
    "VerifyConfig",
    "ConfigRun",
    "ConfigPair",
    "PairReport",
    "factor_fingerprint",
    "condest_1",
    "normwise_backward_error",
    "default_pairs",
    "run_config",
    "verify_pair",
    "verify_matrix",
]

#: machine epsilon of the float64 arithmetic the promises are stated in
_U64 = float(np.finfo(np.float64).eps)
#: machine epsilon of the device float32 arithmetic
_U32 = float(np.finfo(np.float32).eps)
#: the fp32+refinement promise holds only while ``cond(A) * u32`` is
#: comfortably below 1 (Higham ch. 12: the refinement iteration contracts
#: at rate ~ cond(A) * u_factor); beyond this the pair is vacuous
FP32_COND_LIMIT = 0.25 / _U32


@dataclass(frozen=True)
class VerifyConfig:
    """One point of the configuration lattice."""

    policy: str = "P1"
    schedule: str = "post"             # "post" | "liu" (serial only)
    backend: str = "serial"            # "serial" | "static" | "dynamic" | "cluster"
    precision: str = "sp"              # GPU compute precision: "sp" | "dp"
    ordering: str = "amd"
    panel_width: int | None = None     # P4 blocked panel width override
    nodes: int = 1                     # cluster rank count (cluster only)
    amalgamation: str = "default"      # "default" | "off" | "aggressive"
    batch_cutoff: int = 0              # stack leaf fronts <= this; 0 = off

    def __post_init__(self):
        if self.schedule not in ("post", "liu"):
            raise ValueError(f"unknown schedule {self.schedule!r}")
        if self.backend not in ("serial", "static", "dynamic", "cluster"):
            raise ValueError(f"unknown backend {self.backend!r}")
        if self.precision not in ("sp", "dp"):
            raise ValueError(f"unknown precision {self.precision!r}")
        if self.schedule == "liu" and self.backend != "serial":
            raise ValueError("schedule='liu' requires the serial backend")
        if self.nodes < 1:
            raise ValueError("nodes must be >= 1")
        if self.nodes > 1 and self.backend != "cluster":
            raise ValueError("nodes > 1 requires backend='cluster'")
        if self.amalgamation not in AMALGAMATION_PRESETS:
            raise ValueError(
                f"unknown amalgamation preset {self.amalgamation!r}"
            )
        if self.batch_cutoff < 0:
            raise ValueError("batch_cutoff must be >= 0")
        if self.batch_cutoff > 0 and self.backend == "cluster":
            raise ValueError("batching is not supported on the cluster backend")

    @property
    def label(self) -> str:
        backend = self.backend
        if backend == "cluster":
            backend = f"cluster{self.nodes}"
        parts = [self.policy, self.schedule, backend, self.precision,
                 self.ordering]
        if self.panel_width is not None:
            parts.append(f"w{self.panel_width}")
        if self.amalgamation != "default":
            parts.append(f"amalg-{self.amalgamation}")
        if self.batch_cutoff > 0:
            parts.append(f"batch{self.batch_cutoff}")
        return "/".join(parts)

    # ------------------------------------------------------------------
    def make_node(self) -> SimulatedNode:
        """A fresh simulated node honouring this config's GPU precision."""
        model = tesla_t10_model()
        if self.precision != model.precision:
            model = dataclasses.replace(model, precision=self.precision)
        n_cpus = 1 if self.backend in ("serial", "cluster") else 2
        return SimulatedNode(model=model, n_cpus=n_cpus, n_gpus=1)

    def make_policy(self):
        name = self.policy
        if name.upper().startswith("P4") and self.panel_width is not None:
            return PolicyP4(
                copy_optimized=name.lower() == "p4c",
                panel_width=self.panel_width,
            )
        return make_policy(name)

    def build_solver(self, a: CSCMatrix, **kwargs) -> SparseCholeskySolver:
        node = self.make_node()
        cluster = None
        if self.backend == "cluster":
            from repro.cluster.topology import ClusterSpec

            cluster = ClusterSpec(
                n_ranks=self.nodes, gpus_per_rank=1, model=node.model
            )
        amalgamation = (
            None if self.amalgamation == "default"
            else amalgamation_preset(self.amalgamation)
        )
        batching = (
            BatchParams(front_cutoff=self.batch_cutoff)
            if self.batch_cutoff > 0 else None
        )
        return SparseCholeskySolver(
            a,
            ordering=self.ordering,
            policy=self.make_policy(),
            node=node,
            schedule=self.schedule,
            backend=self.backend,
            cluster=cluster,
            amalgamation=amalgamation,
            batching=batching,
            **kwargs,
        )


def factor_fingerprint(factor) -> str:
    """BLAKE2b over the permutation, supernode partition and every panel
    byte — two factors fingerprint equal iff they are bitwise identical."""
    h = hashlib.blake2b(digest_size=16)
    h.update(np.ascontiguousarray(factor.sf.perm, dtype=np.int64).tobytes())
    h.update(np.ascontiguousarray(factor.sf.super_ptr, dtype=np.int64).tobytes())
    for panel in factor.panels:
        h.update(np.ascontiguousarray(panel, dtype=np.float64).tobytes())
        h.update(b"|")
    return h.hexdigest()


def normwise_backward_error(a: CSCMatrix, x: np.ndarray, b: np.ndarray) -> float:
    """Higham's normwise backward error ``eta(x)`` in the inf-norm."""
    r = b - a.matvec(x)
    a_norm = _inf_norm_matrix(a)
    denom = a_norm * float(np.abs(x).max(initial=0.0)) + float(
        np.abs(b).max(initial=0.0)
    )
    if denom == 0.0:
        return float(np.abs(r).max(initial=0.0))
    return float(np.abs(r).max(initial=0.0) / denom)


def _inf_norm_matrix(a: CSCMatrix) -> float:
    """``||A||_inf`` (max row abs sum; equals the 1-norm for symmetric A)."""
    sums = np.zeros(a.n_rows)
    np.add.at(sums, a.indices, np.abs(a.data))
    return float(sums.max(initial=0.0))


def condest_1(a: CSCMatrix, factor) -> float:
    """Hager/Higham 1-norm condition estimate ``||A||_1 ||A^-1||_1``.

    ``A`` is SPD so ``A^-1`` is too; each estimator step is one solve
    against the already-computed factor.  The estimate is a lower bound
    that is rarely off by more than a small factor — exactly what a
    forward-error *tolerance* needs.
    """
    from repro.multifrontal.solve import solve_factored

    n = a.n_rows
    if n == 0:
        return 1.0
    x = np.full(n, 1.0 / n)
    est = 0.0
    for _ in range(5):
        y = solve_factored(factor, x)          # y = A^-1 x
        est_new = float(np.abs(y).sum())
        xi = np.sign(y)
        xi[xi == 0] = 1.0
        z = solve_factored(factor, xi)         # z = A^-T xi = A^-1 xi
        j = int(np.argmax(np.abs(z)))
        if float(np.abs(z).max()) <= float(z @ x) or est_new <= est:
            est = max(est, est_new)
            break
        est = est_new
        x = np.zeros(n)
        x[j] = 1.0
    return _inf_norm_matrix(a) * max(est, 1.0)


# ----------------------------------------------------------------------
# running one configuration
# ----------------------------------------------------------------------
@dataclass
class ConfigRun:
    """Everything one (matrix, config) execution produced."""

    config: VerifyConfig
    solver: SparseCholeskySolver
    fingerprint: str
    x: np.ndarray
    backward_error: float
    refinement_iterations: int

    @property
    def factor(self):
        return self.solver.factor


def run_config(
    a: CSCMatrix,
    config: VerifyConfig,
    b: np.ndarray | None = None,
    *,
    tol: float = 1e-12,
    max_iter: int = 8,
) -> ConfigRun:
    """Factor ``a`` under ``config`` and solve one refined system."""
    if b is None:
        b = np.ones(a.n_rows)
    solver = config.build_solver(a)
    solver.analyze().factorize()
    res = solver.solve_refined(b, tol=tol, max_iter=max_iter)
    return ConfigRun(
        config=config,
        solver=solver,
        fingerprint=factor_fingerprint(solver.factor),
        x=res.x,
        backward_error=normwise_backward_error(solver.a, res.x, np.asarray(b, dtype=np.float64)),
        refinement_iterations=res.iterations,
    )


# ----------------------------------------------------------------------
# pairs and their promises
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ConfigPair:
    """Two lattice points plus the promise that binds them."""

    name: str
    left: VerifyConfig
    right: VerifyConfig
    promise: str                       # "bitwise" | "normwise"
    backward_tol: float | None = None  # normwise: per-side eta ceiling
    forward_safety: float = 100.0      # normwise: slack on the cond bound

    def __post_init__(self):
        if self.promise not in ("bitwise", "normwise"):
            raise ValueError(f"unknown promise {self.promise!r}")


@dataclass
class PairReport:
    """Outcome of one differential check."""

    pair: ConfigPair
    ok: bool
    violations: list[str] = field(default_factory=list)
    details: dict = field(default_factory=dict)

    def __str__(self) -> str:
        status = "ok" if self.ok else "FAIL"
        msg = f"[{status}] {self.pair.name} ({self.pair.promise})"
        for v in self.violations:
            msg += f"\n    {v}"
        return msg


def default_pairs(*, gpu_policy: str = "P4") -> list[ConfigPair]:
    """The promised pairs every PR must keep honouring.

    Bitwise: the four backends (including the cluster backend at any
    rank count) and the two serial schedules are pure reorderings of
    identical factor-update calls.  Normwise: fp32 GPU
    compute, panel width, GPU precision and fill-reducing ordering all
    change the float stream, but refinement must restore double-precision
    backward error and the two solutions must agree to a
    condition-scaled bound.

    Amalgamation pairs are normwise (a coarser supernode partition
    reorders the float stream); batching pairs are **bitwise** because
    stacked small-front execution must not change a single bit of the
    factors.
    """
    p1 = VerifyConfig(policy="P1")
    gpu = VerifyConfig(policy=gpu_policy)
    return [
        ConfigPair(
            "serial/post vs serial/liu", p1,
            dataclasses.replace(p1, schedule="liu"), "bitwise",
        ),
        ConfigPair(
            "serial vs static", p1,
            dataclasses.replace(p1, backend="static"), "bitwise",
        ),
        ConfigPair(
            "serial vs dynamic", p1,
            dataclasses.replace(p1, backend="dynamic"), "bitwise",
        ),
        ConfigPair(
            f"static vs dynamic ({gpu_policy})",
            dataclasses.replace(gpu, backend="static"),
            dataclasses.replace(gpu, backend="dynamic"), "bitwise",
        ),
        ConfigPair(
            "serial vs cluster (1 node)", p1,
            dataclasses.replace(p1, backend="cluster", nodes=1), "bitwise",
        ),
        ConfigPair(
            "serial vs cluster (2 nodes)", p1,
            dataclasses.replace(p1, backend="cluster", nodes=2), "bitwise",
        ),
        ConfigPair(
            "serial vs cluster (4 nodes)", p1,
            dataclasses.replace(p1, backend="cluster", nodes=4), "bitwise",
        ),
        ConfigPair(
            f"fp64 (P1) vs fp32+refine ({gpu_policy})", p1, gpu, "normwise",
        ),
        ConfigPair(
            "fp64 (P1) vs fp32+refine (P2)", p1,
            VerifyConfig(policy="P2"), "normwise",
        ),
        ConfigPair(
            "P4 panel width 64 vs 256",
            dataclasses.replace(gpu, panel_width=64),
            dataclasses.replace(gpu, panel_width=256), "normwise",
        ),
        ConfigPair(
            "P4 sp vs dp", gpu,
            dataclasses.replace(gpu, precision="dp"), "normwise",
        ),
        ConfigPair(
            "ordering amd vs nd", p1,
            dataclasses.replace(p1, ordering="nd"), "normwise",
        ),
        ConfigPair(
            "amalgamation default vs aggressive (serial)", p1,
            dataclasses.replace(p1, amalgamation="aggressive"), "normwise",
        ),
        ConfigPair(
            "amalgamation default vs aggressive (static)",
            dataclasses.replace(p1, backend="static"),
            dataclasses.replace(p1, backend="static",
                                amalgamation="aggressive"), "normwise",
        ),
        ConfigPair(
            "amalgamation default vs aggressive (dynamic)",
            dataclasses.replace(p1, backend="dynamic"),
            dataclasses.replace(p1, backend="dynamic",
                                amalgamation="aggressive"), "normwise",
        ),
        ConfigPair(
            "amalgamation default vs off (serial)", p1,
            dataclasses.replace(p1, amalgamation="off"), "normwise",
        ),
        ConfigPair(
            "batched vs unbatched (serial)", p1,
            dataclasses.replace(p1, batch_cutoff=48), "bitwise",
        ),
        ConfigPair(
            "batched vs unbatched (static)",
            dataclasses.replace(p1, backend="static"),
            dataclasses.replace(p1, backend="static", batch_cutoff=48),
            "bitwise",
        ),
    ]


def pairs_by_name(name: str, **kwargs) -> list[ConfigPair]:
    """Select a pair set: ``default`` (all), ``bitwise`` or ``normwise``."""
    pairs = default_pairs(**kwargs)
    if name in ("default", "all"):
        return pairs
    if name in ("bitwise", "normwise"):
        return [p for p in pairs if p.promise == name]
    raise ValueError(f"unknown pair set {name!r} (default | bitwise | normwise)")


def _default_backward_tol(n: int) -> float:
    """Generous Higham-style ceiling ``c n u`` with c = 1e4 (floored so
    tiny problems are not held to sub-refinement-tolerance accuracy)."""
    return max(1e-9, 1e4 * n * _U64)


def verify_pair(
    a: CSCMatrix,
    pair: ConfigPair,
    b: np.ndarray | None = None,
) -> PairReport:
    """Run both sides of ``pair`` on ``a`` and check the promise."""
    if b is None:
        rng = np.random.default_rng(20260805)
        b = rng.standard_normal(a.n_rows)
    left = run_config(a, pair.left, b)
    right = run_config(a, pair.right, b)
    violations: list[str] = []
    details: dict = {
        "left": pair.left.label,
        "right": pair.right.label,
        "left_eta": left.backward_error,
        "right_eta": right.backward_error,
    }

    if pair.promise == "bitwise":
        details["left_fingerprint"] = left.fingerprint
        details["right_fingerprint"] = right.fingerprint
        if not np.array_equal(left.factor.sf.perm, right.factor.sf.perm):
            violations.append(
                "permutation differs between "
                f"{pair.left.label} and {pair.right.label}"
            )
        elif left.fingerprint != right.fingerprint:
            sid = _first_differing_panel(left.factor, right.factor)
            violations.append(
                f"factor bytes differ (first differing supernode: {sid}) "
                f"between {pair.left.label} and {pair.right.label}"
            )
    else:
        tol = (
            pair.backward_tol
            if pair.backward_tol is not None
            else _default_backward_tol(a.n_rows)
        )
        details["backward_tol"] = tol
        cond = condest_1(left.solver.a, left.factor)
        details["cond_estimate"] = cond
        uses_fp32 = any(
            c.precision == "sp" and c.policy.upper() != "P1"
            for c in (pair.left, pair.right)
        )
        if uses_fp32 and cond > FP32_COND_LIMIT:
            # outside the promise's precondition: refinement against an
            # fp32 factor contracts at ~ cond(A) * u32, which is >= 1 here
            details["skipped"] = (
                f"cond(A) ~ {cond:.2e} beyond the fp32-refinement "
                f"guarantee ({FP32_COND_LIMIT:.2e})"
            )
            return PairReport(pair=pair, ok=True, details=details)
        for side, run in (("left", left), ("right", right)):
            if run.backward_error > tol:
                violations.append(
                    f"{side} ({run.config.label}) backward error "
                    f"{run.backward_error:.3e} exceeds {tol:.3e}"
                )
        # forward agreement, scaled by the (estimated) conditioning
        bound = pair.forward_safety * cond * (
            max(left.backward_error, _U64) + max(right.backward_error, _U64)
        )
        x_scale = float(np.abs(right.x).max(initial=0.0)) or 1.0
        diff = float(np.abs(left.x - right.x).max(initial=0.0)) / x_scale
        details["forward_diff"] = diff
        details["forward_bound"] = bound
        if diff > bound:
            violations.append(
                f"solutions disagree: rel diff {diff:.3e} exceeds "
                f"cond-scaled bound {bound:.3e} (cond ~ {cond:.3e})"
            )

    return PairReport(pair=pair, ok=not violations, violations=violations,
                      details=details)


def _first_differing_panel(f1, f2) -> int:
    for s, (p1, p2) in enumerate(zip(f1.panels, f2.panels)):
        if p1.shape != p2.shape or not np.array_equal(p1, p2):
            return s
    return -1


def verify_matrix(
    a: CSCMatrix,
    pairs: list[ConfigPair] | None = None,
    b: np.ndarray | None = None,
) -> list[PairReport]:
    """Run every pair on one matrix; returns one report per pair."""
    if pairs is None:
        pairs = default_pairs()
    return [verify_pair(a, pair, b) for pair in pairs]
