"""Suite runner: the generator suite through the lattice + invariants.

This is the engine behind ``python -m repro verify``: run every matrix
of the standard generator suite through the selected configuration
pairs, run the invariant checkers, replay the persisted regression
corpus, and render one table.  Exit-code semantics live in the CLI; the
harness only gathers results.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.matrices.csc import CSCMatrix
from repro.matrices.generators import (
    elasticity_3d,
    grid_laplacian_2d,
    grid_laplacian_3d,
    random_spd,
)
from repro.verify.invariants import InvariantReport, run_invariants
from repro.verify.lattice import PairReport, pairs_by_name, verify_matrix

__all__ = ["SuiteResult", "generator_suite", "verify_suite", "format_suite"]

#: directory of committed regression witnesses (relative to the repo root)
DEFAULT_CORPUS = Path(__file__).resolve().parents[3] / "tests" / "corpus"


def generator_suite(scale: str = "small") -> list[tuple[str, CSCMatrix]]:
    """The named matrices the verification suite runs on.

    ``small`` keeps the suite interactive (~seconds); ``full`` adds the
    larger stress variants for the scheduled CI job.
    """
    suite = [
        ("lap2d-8x8", grid_laplacian_2d(8, 8)),
        ("lap3d-5x5x5", grid_laplacian_3d(5, 5, 5)),
        ("elasticity-3x3x3", elasticity_3d(3, 3, 3)),
        ("random-spd-80", random_spd(80, seed=11)),
    ]
    if scale == "full":
        suite += [
            ("lap2d-20x20", grid_laplacian_2d(20, 20)),
            ("lap3d-8x8x8", grid_laplacian_3d(8, 8, 8)),
            ("elasticity-4x4x4", elasticity_3d(4, 4, 4)),
            ("random-spd-300", random_spd(300, seed=5)),
        ]
    elif scale != "small":
        raise ValueError(f"unknown suite scale {scale!r} (small | full)")
    return suite


@dataclass
class SuiteResult:
    """Everything one verification run produced."""

    pair_reports: dict[str, list[PairReport]] = field(default_factory=dict)
    invariant_reports: dict[str, list[InvariantReport]] = field(
        default_factory=dict
    )
    corpus_failures: list = field(default_factory=list)
    corpus_cases: int = 0

    @property
    def ok(self) -> bool:
        return (
            all(r.ok for rs in self.pair_reports.values() for r in rs)
            and all(r.ok for rs in self.invariant_reports.values() for r in rs)
            and not self.corpus_failures
        )

    def failures(self) -> list[str]:
        out = []
        for matrix, reports in self.pair_reports.items():
            for r in reports:
                if not r.ok:
                    out.append(f"{matrix}: {r}")
        for matrix, reports in self.invariant_reports.items():
            for r in reports:
                if not r.ok:
                    out.append(f"{matrix}: {r}")
        for f in self.corpus_failures:
            out.append(f"{f.case_label}: {f.check}: {'; '.join(f.violations)}")
        return out


def verify_suite(
    pairs: str = "default",
    *,
    scale: str = "small",
    invariants: bool = True,
    corpus_dir=None,
    rhs_seed: int = 20260805,
) -> SuiteResult:
    """Run the full verification: lattice pairs + invariants + corpus."""
    from repro.verify.fuzz import load_corpus, replay_corpus

    pair_list = pairs_by_name(pairs)
    result = SuiteResult()
    rng = np.random.default_rng(rhs_seed)
    for name, a in generator_suite(scale):
        b = rng.standard_normal(a.n_rows)
        result.pair_reports[name] = verify_matrix(a, pair_list, b)
        if invariants:
            result.invariant_reports[name] = run_invariants(a)
    corpus = DEFAULT_CORPUS if corpus_dir is None else Path(corpus_dir)
    result.corpus_cases = len(load_corpus(corpus))
    result.corpus_failures = replay_corpus(corpus, pair_list)
    return result


def format_suite(result: SuiteResult) -> str:
    """Plain-text rendering of a :class:`SuiteResult`."""
    from repro.analysis import format_table

    rows = []
    for matrix, reports in result.pair_reports.items():
        for r in reports:
            status = "ok" if r.ok else "FAIL"
            if r.details.get("skipped"):
                status = "skip"
            rows.append([matrix, r.pair.name, r.pair.promise, status])
    for matrix, reports in result.invariant_reports.items():
        for r in reports:
            rows.append([matrix, r.name, "invariant", "ok" if r.ok else "FAIL"])
    text = format_table(
        ["matrix", "check", "kind", "status"], rows,
        title="differential verification",
    )
    text += (
        f"\ncorpus: {result.corpus_cases} case(s) replayed, "
        f"{len(result.corpus_failures)} failure(s)"
    )
    failures = result.failures()
    if failures:
        text += "\n\nfailures:\n" + "\n".join(f"  {f}" for f in failures)
    return text
