"""Multi-RHS aggregation of solve requests that share one factorization.

The triangular sweeps in :func:`repro.multifrontal.solve.solve_factored`
already handle a block of right-hand sides with matrix-matrix work —
the whole point of the paper's "multiple systems with the same
coefficient matrix" motivation.  :class:`BatchPlan` is the bookkeeping
around that: stack the (1-D or multi-column) right-hand sides of
several requests into one ``(n, nrhs)`` block, run a single blocked
solve, and scatter the solution columns back to their requests with
their original shapes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["BatchPlan"]


@dataclass
class BatchPlan:
    """Column layout of one aggregated solve call."""

    requests: list
    block: np.ndarray                    # (n, nrhs) stacked right-hand sides
    _cols: list[tuple[int, int, bool]]   # (lo, hi, was_1d) per request

    @classmethod
    def build(cls, requests, n: int) -> "BatchPlan":
        """Stack the requests' right-hand sides into one block."""
        if not requests:
            raise ValueError("cannot batch zero requests")
        pieces: list[np.ndarray] = []
        cols: list[tuple[int, int, bool]] = []
        at = 0
        for req in requests:
            b = np.asarray(req.b, dtype=np.float64)
            if b.shape[0] != n or b.ndim not in (1, 2):
                raise ValueError(
                    f"rhs must have shape ({n},) or ({n}, nrhs), got {b.shape}"
                )
            was_1d = b.ndim == 1
            b2 = b[:, None] if was_1d else b
            pieces.append(b2)
            cols.append((at, at + b2.shape[1], was_1d))
            at += b2.shape[1]
        return cls(list(requests), np.hstack(pieces), cols)

    @property
    def nrhs(self) -> int:
        return int(self.block.shape[1])

    def scatter(self, x: np.ndarray):
        """Yield (request, solution) pairs, restoring each rhs's shape."""
        for req, (lo, hi, was_1d) in zip(self.requests, self._cols):
            xi = x[:, lo:hi]
            yield req, (xi[:, 0] if was_1d else xi)
