"""Tiered factor cache: RAM → local disk → shared object store.

The paper's reuse argument — "the potential for reusing the
factorization when solving multiple systems with the same coefficient
matrix" — is only as good as the cache that holds the factors.  At
fleet scale the hot set does not fit one RAM budget, and every LRU
eviction of :class:`~repro.service.cache.FactorizationCache` silently
became a future full refactorization.  This module turns that cliff
into a slope: a simulated storage hierarchy where evicted factors
**spill down** (RAM → local disk → shared object tier) instead of
being dropped, and reads **pull up** through the tiers, every movement
priced by the same ``latency + bytes / bandwidth`` virtual-cost model
the cluster interconnect uses (:mod:`repro.cluster.topology`).

Everything below RAM is *simulated* storage: payloads stay in process
memory, but capacity, bandwidth and latency are modeled per tier, so
the serving layer experiences — and the benchmarks can pin — the
byte movement and transfer time a real hierarchy would cost.

Three pluggable policy families, each a named registry (mirroring the
``placement_policy`` / ``transfer_policy`` pattern the ROADMAP names):

* **placement** — what happens to an entry evicted from a tier:
  ``spill`` (always move it one tier down), ``drop`` (the legacy
  drop-on-evict behaviour; the bench baseline), ``spill-threshold``
  (spill only when the modeled write cost is repaid by the modeled
  cost of recomputing the factor — the P1–P4-style cost-model
  discipline applied to storage);
* **transfer** — what happens on a lower-tier hit: ``pull-on-read``
  (promote to RAM), ``read-through`` (serve in place, refresh
  recency), ``cheapest-transfer`` (promote only when RAM has free
  headroom, so the promotion never triggers an eviction cascade);
* **ttl** — ``no-ttl`` or ``fixed-ttl`` expiry off an injectable
  clock (entries older than ``ttl_seconds`` are lazily expired at
  lookup, never served).

:class:`TieredFactorCache` subclasses
:class:`~repro.service.cache.FactorizationCache` — the base class *is*
the RAM tier — so it drops into :class:`~repro.service.SolverService`
unchanged.  A byte ledger backs the conservation invariant the
property tests pin: every byte ever inserted is either resident in
some tier, dropped (with a counted reason), or exported to a shared
tier (imports count symmetrically), and no tier ever holds more than
its budget.

The shared object tier is how a fleet shares factors: every shard's
cache chains onto one :class:`StorageTier` (``shared=True``), so a
factor spilled by shard A is readable — and promotable — by shard B
(see :class:`repro.cluster.fleet.ShardedSolverService`).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, TypeVar

from repro.service.cache import CacheLookup, FactorizationCache

__all__ = [
    "TierSpec",
    "TierEntry",
    "StorageTier",
    "TierConfig",
    "TieredFactorCache",
    "ManualClock",
    "PlacementPolicy",
    "TransferPolicy",
    "TtlPolicy",
    "PLACEMENT_POLICIES",
    "TRANSFER_POLICIES",
    "TTL_POLICIES",
    "make_placement_policy",
    "make_transfer_policy",
    "make_ttl_policy",
    "default_disk_spec",
    "default_object_spec",
]


# ----------------------------------------------------------------------
# tier model
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class TierSpec:
    """Shape of one storage tier: capacity plus a transfer-cost model.

    ``transfer_time`` prices one read *or* write of ``nbytes`` —
    the same ``latency + bytes / bandwidth`` form as
    :class:`~repro.cluster.topology.InterconnectParams`, riding the
    virtual clock rather than the wall clock.
    """

    name: str
    capacity_bytes: int
    bandwidth: float               # bytes/s
    latency: float                 # seconds per access

    def __post_init__(self) -> None:
        if self.capacity_bytes <= 0:
            raise ValueError(f"tier {self.name!r}: capacity must be positive")
        if self.bandwidth <= 0:
            raise ValueError(f"tier {self.name!r}: bandwidth must be positive")
        if self.latency < 0:
            raise ValueError(f"tier {self.name!r}: latency must be >= 0")

    def transfer_time(self, nbytes: int) -> float:
        return self.latency + nbytes / self.bandwidth


def default_disk_spec(capacity_bytes: int = 1 << 30) -> TierSpec:
    """Local-disk tier defaults (~2011-era SSD: 500 MB/s, 5 ms seek)."""
    return TierSpec("disk", capacity_bytes, bandwidth=5e8, latency=5e-3)


def default_object_spec(capacity_bytes: int = 8 << 30) -> TierSpec:
    """Shared object-store defaults (network hop: 250 MB/s, 50 ms)."""
    return TierSpec("object", capacity_bytes, bandwidth=2.5e8, latency=5e-2)


@dataclass
class TierEntry:
    """One resident entry of a below-RAM tier."""

    payload: object
    nbytes: int
    inserted_at: float             # injectable-clock timestamp
    produce_seconds: float = 0.0   # modeled cost of recomputing the payload


class StorageTier:
    """One simulated below-RAM tier: LRU entries under a byte budget.

    The tier has its own reentrant lock so a *shared* tier can be
    chained under several :class:`TieredFactorCache` instances (one
    per fleet shard) — the composite cache always acquires its own
    lock first, then the tier's, a fixed order with no cycles.
    """

    def __init__(self, spec: TierSpec, *, shared: bool = False) -> None:
        self.spec = spec
        self.shared = shared
        self._lock = threading.RLock()
        self._entries: OrderedDict[tuple[str, str], TierEntry] = OrderedDict()
        self.resident_bytes = 0
        self.read_seconds = 0.0
        self.write_seconds = 0.0
        self.stats: dict[str, int] = {
            "hits": 0,
            "misses": 0,
            "insertions": 0,
            "evictions": 0,
            "expired": 0,
            "rejected_oversize": 0,
            "read_bytes": 0,
            "write_bytes": 0,
        }

    @property
    def name(self) -> str:
        return self.spec.name

    def peek(self, full_key: tuple[str, str]) -> TierEntry | None:
        """Entry for ``full_key`` without touching recency or stats."""
        with self._lock:
            return self._entries.get(full_key)

    def touch(self, full_key: tuple[str, str]) -> None:
        with self._lock:
            if full_key in self._entries:
                self._entries.move_to_end(full_key)

    def put(
        self, full_key: tuple[str, str], entry: TierEntry
    ) -> tuple[bool, list[tuple[tuple[str, str], TierEntry]]]:
        """Insert ``entry``; returns ``(accepted, lru_evicted)``.

        An entry larger than the whole tier is rejected (``accepted``
        False).  Otherwise cold entries are LRU-evicted until the new
        one fits; the caller decides their fate (spill further down or
        drop) — the tier itself never destroys bytes silently.
        """
        with self._lock:
            if entry.nbytes > self.spec.capacity_bytes:
                self.stats["rejected_oversize"] += 1
                return False, []
            old = self._entries.pop(full_key, None)
            if old is not None:
                self.resident_bytes -= old.nbytes
            evicted: list[tuple[tuple[str, str], TierEntry]] = []
            while (
                self.resident_bytes + entry.nbytes > self.spec.capacity_bytes
            ):
                key, cold = self._entries.popitem(last=False)
                self.resident_bytes -= cold.nbytes
                self.stats["evictions"] += 1
                evicted.append((key, cold))
            self._entries[full_key] = entry
            self.resident_bytes += entry.nbytes
            self.stats["insertions"] += 1
            self.write_seconds += self.spec.transfer_time(entry.nbytes)
            self.stats["write_bytes"] += entry.nbytes
            return True, evicted

    def remove(self, full_key: tuple[str, str]) -> TierEntry | None:
        with self._lock:
            entry = self._entries.pop(full_key, None)
            if entry is not None:
                self.resident_bytes -= entry.nbytes
            return entry

    def account_read(self, nbytes: int) -> float:
        """Record one modeled read; returns the transfer seconds."""
        seconds = self.spec.transfer_time(nbytes)
        with self._lock:
            self.read_seconds += seconds
            self.stats["read_bytes"] += nbytes
        return seconds

    def keys(self) -> list[tuple[str, str]]:
        with self._lock:
            return list(self._entries.keys())

    def clear(self) -> list[TierEntry]:
        with self._lock:
            dropped = list(self._entries.values())
            self._entries.clear()
            self.resident_bytes = 0
            return dropped

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"StorageTier({self.name!r}, entries={len(self)}, "
            f"bytes={self.resident_bytes}/{self.spec.capacity_bytes})"
        )


# ----------------------------------------------------------------------
# policy registries
# ----------------------------------------------------------------------
class PlacementPolicy:
    """Decides whether an evicted entry may land on a candidate tier."""

    name = "placement"

    def should_spill(
        self, full_key: tuple[str, str], entry: TierEntry,
        tier: StorageTier,
    ) -> bool:
        raise NotImplementedError


class TransferPolicy:
    """Decides whether a lower-tier hit is promoted back to RAM."""

    name = "transfer"

    def should_promote(
        self,
        full_key: tuple[str, str],
        entry: TierEntry,
        tier: StorageTier,
        cache: "TieredFactorCache",
    ) -> bool:
        raise NotImplementedError


class TtlPolicy:
    """Decides whether an entry has aged out."""

    name = "ttl"

    def expired(self, inserted_at: float, now: float) -> bool:
        raise NotImplementedError


PLACEMENT_POLICIES: dict[str, Callable[..., PlacementPolicy]] = {}
TRANSFER_POLICIES: dict[str, Callable[..., TransferPolicy]] = {}
TTL_POLICIES: dict[str, Callable[..., TtlPolicy]] = {}

_P = TypeVar("_P")


def _register(
    registry: dict[str, Callable[..., _P]], name: str
) -> Callable[[type[_P]], type[_P]]:
    def deco(factory: type[_P]) -> type[_P]:
        if name in registry:
            raise ValueError(f"duplicate policy {name!r}")
        registry[name] = factory
        factory.name = name  # type: ignore[attr-defined]
        return factory

    return deco


def _resolve(
    registry: dict[str, Callable[..., _P]],
    spec: "str | _P",
    base: "type[_P]",
    kind: str,
    **kwargs: object,
) -> _P:
    if isinstance(spec, base):
        return spec
    factory = registry.get(str(spec))
    if factory is None:
        raise KeyError(
            f"unknown {kind} policy {spec!r}; "
            f"known: {', '.join(sorted(registry))}"
        )
    return factory(**kwargs)


def make_placement_policy(
    spec: str | PlacementPolicy, **kwargs: object
) -> PlacementPolicy:
    return _resolve(PLACEMENT_POLICIES, spec, PlacementPolicy, "placement",
                    **kwargs)


def make_transfer_policy(
    spec: str | TransferPolicy, **kwargs: object
) -> TransferPolicy:
    return _resolve(TRANSFER_POLICIES, spec, TransferPolicy, "transfer",
                    **kwargs)


def make_ttl_policy(spec: str | TtlPolicy, **kwargs: object) -> TtlPolicy:
    return _resolve(TTL_POLICIES, spec, TtlPolicy, "ttl", **kwargs)


@_register(PLACEMENT_POLICIES, "spill")
class SpillPlacement(PlacementPolicy):
    """Always spill an evicted entry to the next tier that fits it."""

    def should_spill(
        self, full_key: tuple[str, str], entry: TierEntry,
        tier: StorageTier,
    ) -> bool:
        return True


@_register(PLACEMENT_POLICIES, "drop")
class DropPlacement(PlacementPolicy):
    """Legacy drop-on-evict: nothing ever spills (the bench baseline)."""

    def should_spill(
        self, full_key: tuple[str, str], entry: TierEntry,
        tier: StorageTier,
    ) -> bool:
        return False


@_register(PLACEMENT_POLICIES, "spill-threshold")
class ThresholdPlacement(PlacementPolicy):
    """Spill only when the write cost is repaid by the recompute cost.

    The storage analog of the paper's P1–P4 selection: the modeled
    write time to the candidate tier must not exceed
    ``spill_factor x`` the modeled cost of reproducing the entry
    (``produce_seconds``, the factorization's simulated makespan).  An
    entry whose recompute cost is unknown (0 — e.g. a symbolic factor)
    is always spilled: dropping it can only lose.
    """

    def __init__(self, *, spill_factor: float = 1.0) -> None:
        if spill_factor <= 0:
            raise ValueError("spill_factor must be positive")
        self.spill_factor = float(spill_factor)

    def should_spill(
        self, full_key: tuple[str, str], entry: TierEntry,
        tier: StorageTier,
    ) -> bool:
        if entry.produce_seconds <= 0.0:
            return True
        write_time = tier.spec.transfer_time(entry.nbytes)
        return write_time <= self.spill_factor * entry.produce_seconds


@_register(TRANSFER_POLICIES, "pull-on-read")
class PullOnRead(TransferPolicy):
    """Every lower-tier hit is promoted to RAM (if it fits at all)."""

    def should_promote(
        self, full_key: tuple[str, str], entry: TierEntry,
        tier: StorageTier, cache: "TieredFactorCache",
    ) -> bool:
        return entry.nbytes <= cache.max_bytes


@_register(TRANSFER_POLICIES, "read-through")
class ReadThrough(TransferPolicy):
    """Serve lower-tier hits in place; only recency is refreshed."""

    def should_promote(
        self, full_key: tuple[str, str], entry: TierEntry,
        tier: StorageTier, cache: "TieredFactorCache",
    ) -> bool:
        return False


@_register(TRANSFER_POLICIES, "cheapest-transfer")
class CheapestTransfer(TransferPolicy):
    """Promote only into free RAM headroom.

    A promotion that forces RAM evictions pays the read *plus* a
    cascade of spill writes; the cheapest overall movement is to
    promote only when the entry fits the currently free budget, and
    serve in place otherwise.
    """

    def should_promote(
        self, full_key: tuple[str, str], entry: TierEntry,
        tier: StorageTier, cache: "TieredFactorCache",
    ) -> bool:
        return entry.nbytes <= cache.max_bytes - cache.stored_bytes


@_register(TTL_POLICIES, "no-ttl")
class NoTtl(TtlPolicy):
    def expired(self, inserted_at: float, now: float) -> bool:
        return False


@_register(TTL_POLICIES, "fixed-ttl")
class FixedTtl(TtlPolicy):
    """Entries older than ``ttl_seconds`` (injectable clock) are dead."""

    def __init__(self, *, ttl_seconds: float = 3600.0) -> None:
        if ttl_seconds <= 0:
            raise ValueError("ttl_seconds must be positive")
        self.ttl_seconds = float(ttl_seconds)

    def expired(self, inserted_at: float, now: float) -> bool:
        return now - inserted_at >= self.ttl_seconds


# ----------------------------------------------------------------------
# clock
# ----------------------------------------------------------------------
class ManualClock:
    """Deterministic injectable clock for TTL policies and tests."""

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    def advance(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError("time only moves forward")
        self._now += seconds

    def now(self) -> float:
        return self._now

    def __call__(self) -> float:
        return self._now


def _zero_clock() -> float:
    """Default clock: time never passes, so nothing ever expires."""
    return 0.0


# ----------------------------------------------------------------------
# configuration bundle
# ----------------------------------------------------------------------
@dataclass
class TierConfig:
    """Everything needed to build one :class:`TieredFactorCache`.

    ``disk`` / ``object_store`` may be None to omit that tier; the
    fleet replaces ``object_store`` with one *shared*
    :class:`StorageTier` chained under every shard.
    """

    ram_bytes: int = 256 << 20
    disk: TierSpec | None = field(default_factory=default_disk_spec)
    object_store: TierSpec | None = field(default_factory=default_object_spec)
    placement: str | PlacementPolicy = "spill"
    transfer: str | TransferPolicy = "pull-on-read"
    ttl: str | TtlPolicy = "no-ttl"
    ttl_seconds: float | None = None
    clock: Callable[[], float] | None = None

    def build(
        self, *, shared: StorageTier | None = None
    ) -> "TieredFactorCache":
        lower: list[StorageTier] = []
        if self.disk is not None:
            lower.append(StorageTier(self.disk))
        if shared is not None:
            lower.append(shared)
        elif self.object_store is not None:
            lower.append(StorageTier(self.object_store))
        ttl = self.ttl
        if self.ttl_seconds is not None and not isinstance(ttl, TtlPolicy):
            ttl = make_ttl_policy("fixed-ttl", ttl_seconds=self.ttl_seconds)
        return TieredFactorCache(
            max_bytes=self.ram_bytes,
            lower_tiers=lower,
            placement=self.placement,
            transfer=self.transfer,
            ttl=ttl,
            clock=self.clock,
        )

    def build_shared_tier(self) -> StorageTier:
        """The fleet-wide object tier every shard chains onto."""
        spec = (
            self.object_store
            if self.object_store is not None
            else default_object_spec()
        )
        return StorageTier(spec, shared=True)


# ----------------------------------------------------------------------
# the tiered cache
# ----------------------------------------------------------------------
class TieredFactorCache(FactorizationCache):
    """RAM LRU (the base class) chained over simulated lower tiers.

    Drop-in for :class:`FactorizationCache`: ``lookup`` /
    ``put_symbolic`` / ``put_numeric`` / ``stats`` keep their
    semantics, with ``stored_bytes`` / ``max_bytes`` describing the
    RAM tier (the quantity admission control cares about).  Beyond
    that:

    * RAM evictions route through the placement policy and spill down
      instead of dropping;
    * lookups fall through RAM to each lower tier in order, account
      the modeled read, and promote per the transfer policy;
    * every entry carries an injectable-clock timestamp checked
      against the TTL policy at read time (lazy expiry);
    * a byte ledger (``bytes_inserted`` / ``bytes_dropped`` /
      ``bytes_exported`` / ``bytes_imported``) makes conservation an
      assertable invariant.
    """

    def __init__(
        self,
        *,
        max_bytes: int = 256 << 20,
        lower_tiers: list[StorageTier] | None = None,
        placement: str | PlacementPolicy = "spill",
        transfer: str | TransferPolicy = "pull-on-read",
        ttl: str | TtlPolicy = "no-ttl",
        clock: Callable[[], float] | None = None,
    ) -> None:
        super().__init__(max_bytes=max_bytes)
        self._lower = list(lower_tiers) if lower_tiers else []
        names = ["ram"] + [t.name for t in self._lower]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate tier names: {names}")
        self.placement = make_placement_policy(placement)
        self.transfer = make_transfer_policy(transfer)
        self.ttl = make_ttl_policy(ttl)
        self._clock = clock if clock is not None else _zero_clock
        #: RAM-entry timestamps (lower tiers stamp their TierEntry)
        self._ram_inserted_at: dict[tuple[str, str], float] = {}
        self.ledger: dict[str, int] = {
            "bytes_inserted": 0,
            "bytes_dropped": 0,
            "bytes_exported": 0,
            "bytes_imported": 0,
        }
        self.transfer_seconds = 0.0
        # per-tier movement counters, RAM included
        self._ram_stats: dict[str, int] = {
            "hits": 0,
            "misses": 0,
            "expired": 0,
            "promoted_in": 0,
            "promoted_in_bytes": 0,
            "spilled_out": 0,
            "spilled_out_bytes": 0,
            "dropped": 0,
            "dropped_bytes": 0,
        }
        self._lower_moves: dict[str, dict[str, int]] = {
            t.name: {
                "spilled_in": 0,
                "spilled_in_bytes": 0,
                "promoted_out": 0,
                "promoted_out_bytes": 0,
                "dropped": 0,
                "dropped_bytes": 0,
            }
            for t in self._lower
        }
        # reentrancy guard: promotions re-enter _put and must not be
        # double-counted as external insertions
        self._promoting = False

    # -- tier plumbing -----------------------------------------------------
    @property
    def tiers(self) -> list[str]:
        return ["ram"] + [t.name for t in self._lower]

    def tier(self, name: str) -> StorageTier:
        for t in self._lower:
            if t.name == name:
                return t
        raise KeyError(f"no tier named {name!r} (have {self.tiers})")

    def resident_bytes_by_tier(self) -> dict[str, int]:
        with self._lock:
            out = {"ram": int(self.stored_bytes)}
            for t in self._lower:
                out[t.name] = int(t.resident_bytes)
            return out

    def tier_stats(self) -> dict[str, dict[str, object]]:
        """Per-tier counters for reports / metric exposition."""
        with self._lock:
            out: dict[str, dict[str, object]] = {
                "ram": {
                    "resident_bytes": int(self.stored_bytes),
                    "capacity_bytes": int(self.max_bytes),
                    "entries": len(self._entries),
                    **self._ram_stats,
                }
            }
            for t in self._lower:
                out[t.name] = {
                    "resident_bytes": int(t.resident_bytes),
                    "capacity_bytes": int(t.spec.capacity_bytes),
                    "entries": len(t),
                    "shared": t.shared,
                    "read_seconds": t.read_seconds,
                    "write_seconds": t.write_seconds,
                    **t.stats,
                    **self._lower_moves[t.name],
                }
            return out

    def total_resident_bytes(self) -> int:
        with self._lock:
            return self.stored_bytes + sum(
                t.resident_bytes for t in self._lower
            )

    def total_entries(self) -> int:
        with self._lock:
            return len(self._entries) + sum(len(t) for t in self._lower)

    # -- lookups -----------------------------------------------------------
    def lookup(self, symbolic_key: str, numeric_key: str) -> CacheLookup:
        with self._lock:
            self.stats["lookups"] += 1
            num = self._get_any((self.NUMERIC, numeric_key))
            if num is not None:
                self.stats["numeric_hits"] += 1
                sym = self._get_any((self.SYMBOLIC, symbolic_key))
                return CacheLookup(self.NUMERIC, symbolic=sym, numeric=num)
            sym = self._get_any((self.SYMBOLIC, symbolic_key))
            if sym is not None:
                self.stats["symbolic_hits"] += 1
                return CacheLookup(self.SYMBOLIC, symbolic=sym)
            self.stats["misses"] += 1
            return CacheLookup("miss")

    def get_symbolic(self, key: str) -> object | None:
        with self._lock:
            return self._get_any((self.SYMBOLIC, key))

    def get_numeric(self, key: str) -> object | None:
        with self._lock:
            return self._get_any((self.NUMERIC, key))

    def peek_numeric_entry(self, key: str) -> TierEntry | None:
        """The numeric entry for ``key`` in any tier — no recency
        touch, no stats, no promotion.  The fleet's peer-probe hook."""
        full_key = (self.NUMERIC, key)
        with self._lock:
            now = self._clock()
            ram = self._entries.get(full_key)
            if ram is not None:
                inserted = self._ram_inserted_at.get(full_key, now)
                if not self.ttl.expired(inserted, now):
                    return TierEntry(
                        ram[0], ram[1], inserted,
                        self._produce_seconds(ram[0]),
                    )
            for t in self._lower:
                entry = t.peek(full_key)
                if entry is not None and not self.ttl.expired(
                    entry.inserted_at, now
                ):
                    return entry
            return None

    def has_numeric(self, key: str) -> bool:
        return self.peek_numeric_entry(key) is not None

    def peek_numeric(self, key: str) -> object | None:
        entry = self.peek_numeric_entry(key)
        return entry.payload if entry is not None else None

    def _get_any(self, full_key: tuple[str, str]) -> object | None:
        """Find ``full_key`` in RAM or below; expire, account, promote."""
        now = self._clock()
        if full_key in self._entries:
            if self._expire_ram(full_key, now):
                pass  # expired: fall through to the lower tiers
            else:
                self._ram_stats["hits"] += 1
                return self._touch(full_key)
        self._ram_stats["misses"] += 1
        for i, t in enumerate(self._lower):
            entry = t.peek(full_key)
            if entry is None:
                t.stats["misses"] += 1
                continue
            if self.ttl.expired(entry.inserted_at, now):
                t.remove(full_key)
                t.stats["expired"] += 1
                self._ledger_drop(t, entry.nbytes, expiry=True)
                continue
            t.stats["hits"] += 1
            self.transfer_seconds += t.account_read(entry.nbytes)
            if self.transfer.should_promote(full_key, entry, t, self):
                self._promote(full_key, entry, t)
            else:
                t.touch(full_key)
            return entry.payload
        return None

    def _expire_ram(self, full_key: tuple[str, str], now: float) -> bool:
        inserted = self._ram_inserted_at.get(full_key)
        if inserted is None or not self.ttl.expired(inserted, now):
            return False
        payload, nbytes = self._entries.pop(full_key)
        self.stored_bytes -= nbytes
        self._ram_inserted_at.pop(full_key, None)
        self._ram_stats["expired"] += 1
        self._ram_stats["dropped"] += 1
        self._ram_stats["dropped_bytes"] += nbytes
        self.ledger["bytes_dropped"] += nbytes
        return True

    def _promote(
        self, full_key: tuple[str, str], entry: TierEntry,
        source: StorageTier,
    ) -> None:
        """Move ``entry`` up from ``source`` into RAM (pull-on-read)."""
        source.remove(full_key)
        moves = self._lower_moves[source.name]
        moves["promoted_out"] += 1
        moves["promoted_out_bytes"] += entry.nbytes
        if source.shared:
            self.ledger["bytes_imported"] += entry.nbytes
        self._ram_stats["promoted_in"] += 1
        self._ram_stats["promoted_in_bytes"] += entry.nbytes
        self._promoting = True
        try:
            super()._put(full_key, entry.payload, entry.nbytes)
        finally:
            self._promoting = False
        self._ram_inserted_at[full_key] = entry.inserted_at

    # -- insertion / spilling ----------------------------------------------
    @staticmethod
    def _produce_seconds(payload: object) -> float:
        """Modeled cost of recomputing ``payload`` (0 when unknown).

        Numeric factors carry their simulated factorization makespan;
        that is exactly the refactorize side of the spill-vs-drop and
        peer-fetch-vs-refactorize cost comparisons.
        """
        try:
            return float(getattr(payload, "makespan", 0.0))
        except (TypeError, ValueError):
            return 0.0

    def _put(
        self, full_key: tuple[str, str], payload: object, nbytes: int
    ) -> bool:
        nbytes = int(nbytes)
        with self._lock:
            # a fresh external insert supersedes any stale lower-tier copy
            for t in self._lower:
                stale = t.remove(full_key)
                if stale is not None:
                    self._ledger_drop(t, stale.nbytes, expiry=False)
            old = self._entries.get(full_key)
            if old is not None:
                # overwrite: the replaced bytes leave the cache — evict
                # the old entry here so the oversize branch below (which
                # never reaches the base-class overwrite) stays honest
                self._entries.pop(full_key)
                self.stored_bytes -= old[1]
                self._ram_inserted_at.pop(full_key, None)
                self._ram_stats["dropped"] += 1
                self._ram_stats["dropped_bytes"] += old[1]
                self.ledger["bytes_dropped"] += old[1]
            if nbytes > self.max_bytes:
                # too big for RAM: route straight down the spill path
                # rather than rejecting outright — "capacity rejection
                # at each tier" means each tier gets its own say
                self.stats["rejected_oversize"] += 1
                entry = TierEntry(
                    payload, nbytes, self._clock(),
                    self._produce_seconds(payload),
                )
                # the cache takes custody of the bytes either way: they
                # end up resident below, exported, or counted dropped
                self.ledger["bytes_inserted"] += nbytes
                placed = self._spill(full_key, entry, from_index=-1)
                if placed:
                    self.stats["insertions"] += 1
                return placed
            accepted = super()._put(full_key, payload, nbytes)
            if accepted:
                self._ram_inserted_at[full_key] = self._clock()
                self.ledger["bytes_inserted"] += nbytes
            return accepted

    def _on_evict(
        self, full_key: tuple[str, str], payload: object, nbytes: int
    ) -> None:
        """RAM LRU eviction → spill down instead of dropping."""
        inserted_at = self._ram_inserted_at.pop(full_key, self._clock())
        entry = TierEntry(
            payload, nbytes, inserted_at, self._produce_seconds(payload)
        )
        self._spill(full_key, entry, from_index=-1, from_ram=True)

    def _spill(
        self, full_key: tuple[str, str], entry: TierEntry, *,
        from_index: int,
        from_ram: bool = False, in_books: bool = True,
    ) -> bool:
        """Place an evicted entry on the first acceptable tier below
        ``from_index``; cascade that tier's own evictions further down;
        drop (counted) when no tier takes it.

        ``in_books`` is False for entries displaced out of a *shared*
        tier: their bytes were exported by whichever cache spilled
        them, so this cache's ledger must not count their fate.
        """
        for i in range(from_index + 1, len(self._lower)):
            t = self._lower[i]
            if not self.placement.should_spill(full_key, entry, t):
                continue
            accepted, displaced = t.put(full_key, entry)
            if not accepted:
                continue  # oversize for this tier; try the next one down
            self.transfer_seconds += t.spec.transfer_time(entry.nbytes)
            moves = self._lower_moves[t.name]
            moves["spilled_in"] += 1
            moves["spilled_in_bytes"] += entry.nbytes
            if from_ram:
                self._ram_stats["spilled_out"] += 1
                self._ram_stats["spilled_out_bytes"] += entry.nbytes
            if t.shared and in_books:
                self.ledger["bytes_exported"] += entry.nbytes
            for cold_key, cold in displaced:
                self._spill(
                    cold_key, cold, from_index=i, in_books=not t.shared
                )
            return True
        # nowhere to go: the bytes leave the cache
        if from_ram:
            self._ram_stats["dropped"] += 1
            self._ram_stats["dropped_bytes"] += entry.nbytes
        if in_books:
            self.ledger["bytes_dropped"] += entry.nbytes
        return False

    def _ledger_drop(
        self, tier: StorageTier, nbytes: int, *, expiry: bool
    ) -> None:
        moves = self._lower_moves[tier.name]
        moves["dropped"] += 1
        moves["dropped_bytes"] += nbytes
        # bytes expiring or displaced in a *shared* tier were already
        # exported out of this cache's books when they were spilled
        if not tier.shared:
            self.ledger["bytes_dropped"] += nbytes

    # -- ledger ------------------------------------------------------------
    def check_conservation(self) -> list[str]:
        """Byte-accounting conservation (the property tests' oracle).

        ``inserted + imported == resident(private tiers) + dropped +
        exported``; a shared tier keeps its own books (its bytes were
        exported when they left this cache).  Returns violations
        (empty = invariant holds).
        """
        with self._lock:
            resident = self.stored_bytes + sum(
                t.resident_bytes for t in self._lower if not t.shared
            )
            lhs = (
                self.ledger["bytes_inserted"] + self.ledger["bytes_imported"]
            )
            rhs = (
                resident
                + self.ledger["bytes_dropped"]
                + self.ledger["bytes_exported"]
            )
            violations = []
            if lhs != rhs:
                violations.append(
                    f"byte ledger unbalanced: inserted+imported={lhs} != "
                    f"resident+dropped+exported={rhs} ({self.ledger})"
                )
            if self.stored_bytes > self.max_bytes:
                violations.append(
                    f"ram over budget: {self.stored_bytes} > {self.max_bytes}"
                )
            for t in self._lower:
                if t.resident_bytes > t.spec.capacity_bytes:
                    violations.append(
                        f"tier {t.name} over budget: {t.resident_bytes} > "
                        f"{t.spec.capacity_bytes}"
                    )
            return violations

    def clear(self) -> None:
        """Empty RAM and private lower tiers (a shared tier belongs to
        the fleet, not to one shard, and is left alone)."""
        with self._lock:
            self.ledger["bytes_dropped"] += self.stored_bytes
            super().clear()
            self._ram_inserted_at.clear()
            for t in self._lower:
                if t.shared:
                    continue
                for entry in t.clear():
                    self.ledger["bytes_dropped"] += entry.nbytes

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        lower = ", ".join(
            f"{t.name}={t.resident_bytes}/{t.spec.capacity_bytes}"
            for t in self._lower
        )
        return (
            f"TieredFactorCache(ram={self.stored_bytes}/{self.max_bytes}"
            + (f", {lower}" if lower else "")
            + ")"
        )
