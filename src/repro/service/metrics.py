"""Request-level observability for the solver service.

Three kinds of instruments, all thread-safe:

* **counters** — cache hits/misses/evictions, factorizations, timeouts,
  degraded requests, batch totals;
* **latency histograms** — log-spaced bins from microseconds to minutes,
  one per pipeline stage (queue wait, analyze, factorize, solve, total),
  with approximate percentiles read off the bin edges;
* **spans** — (name, category, engine, start, end) wall-clock slices of
  every stage of every request, exportable through the existing
  :mod:`repro.gpu.trace` Chrome-trace machinery so a service run can be
  inspected in Perfetto exactly like a simulated factorization.

``report()`` renders everything as one plain dict (JSON-ready).
"""

from __future__ import annotations

import bisect
import json
import math
import threading

from repro.gpu.clock import SimTask

__all__ = ["LatencyHistogram", "ServiceMetrics"]


class LatencyHistogram:
    """Log-spaced histogram of durations in seconds.

    Percentiles are approximate: the reported value is the upper edge of
    the bin holding the requested quantile, clamped to the observed
    min/max — good to one bin width (default 8 bins per decade, ~33%),
    which is plenty for p50/p95 service dashboards.
    """

    def __init__(self, *, lo: float = 1e-6, hi: float = 600.0,
                 bins_per_decade: int = 8):
        n = max(1, int(round(math.log10(hi / lo) * bins_per_decade)))
        # edges[i] is the upper bound of bin i; one extra bin catches overflow
        self.edges = [lo * 10 ** ((i + 1) / bins_per_decade) for i in range(n)]
        self.counts = [0] * (n + 1)
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = 0.0

    def record(self, seconds: float) -> None:
        seconds = max(float(seconds), 0.0)
        i = bisect.bisect_left(self.edges, seconds)
        self.counts[i] += 1
        self.count += 1
        self.total += seconds
        self.min = min(self.min, seconds)
        self.max = max(self.max, seconds)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, p: float) -> float:
        """Approximate p-th percentile (p in [0, 100])."""
        if self.count == 0:
            return 0.0
        target = p / 100.0 * self.count
        seen = 0
        for i, c in enumerate(self.counts):
            seen += c
            if seen >= target and c > 0:
                edge = self.edges[i] if i < len(self.edges) else self.max
                return min(max(edge, self.min), self.max)
        return self.max

    def summary(self) -> dict:
        return {
            "count": self.count,
            "mean": self.mean,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "min": self.min if self.count else 0.0,
            "max": self.max,
        }


class ServiceMetrics:
    """Counters + per-stage latency histograms + Chrome-trace spans."""

    def __init__(self):
        self._lock = threading.RLock()
        self._counters: dict[str, int] = {}
        self._gauges: dict[str, float] = {}
        self._histograms: dict[str, LatencyHistogram] = {}
        self._spans: list[SimTask] = []

    # -- counters ----------------------------------------------------------
    def incr(self, name: str, by: int = 1) -> None:
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + by

    def counter(self, name: str) -> int:
        with self._lock:
            return self._counters.get(name, 0)

    # -- gauges ------------------------------------------------------------
    def gauge(self, name: str, value: float) -> None:
        """Record the latest value and track the high-water mark."""
        with self._lock:
            self._gauges[name] = value
            peak = name + "_max"
            self._gauges[peak] = max(self._gauges.get(peak, value), value)

    # -- histograms --------------------------------------------------------
    def observe(self, stage: str, seconds: float) -> None:
        with self._lock:
            hist = self._histograms.get(stage)
            if hist is None:
                hist = self._histograms[stage] = LatencyHistogram()
            hist.record(seconds)

    def histogram(self, stage: str) -> LatencyHistogram | None:
        with self._lock:
            return self._histograms.get(stage)

    # -- spans -------------------------------------------------------------
    def span(self, name: str, category: str, engine: str,
             start: float, end: float) -> None:
        """Record one wall-clock slice (seconds relative to service start)."""
        task = SimTask(name, engine, max(end - start, 0.0), (), category)
        task.start = start
        task.end = max(end, start)
        with self._lock:
            self._spans.append(task)

    def chrome_trace(self) -> dict:
        from repro.gpu.trace import tasks_to_chrome_trace

        with self._lock:
            spans = list(self._spans)
        return tasks_to_chrome_trace(spans)

    def write_chrome_trace(self, path) -> None:
        with open(path, "w") as fh:
            json.dump(self.chrome_trace(), fh)

    # -- reporting ---------------------------------------------------------
    def snapshot(self) -> dict[str, object]:
        """Flat ``name -> value`` view of every instrument, sorted by name.

        Names are namespaced by instrument family — ``counter.<name>``,
        ``gauge.<name>``, ``latency.<stage>.<stat>`` and ``spans.count``
        — so the flat map cannot collide across families.  The family
        set and the per-stage stat set are fixed; the ``<name>`` parts
        are statically known at every call site (pinned by the RPL040
        metrics-hygiene lint), so the exposition is enumerable: the
        same workload always produces the same name set.
        """
        with self._lock:
            out: dict[str, object] = {}
            for name, value in self._counters.items():
                out[f"counter.{name}"] = value
            for name, value in self._gauges.items():
                out[f"gauge.{name}"] = value
            for stage, hist in self._histograms.items():
                for stat, value in hist.summary().items():
                    out[f"latency.{stage}.{stat}"] = value
            out["spans.count"] = len(self._spans)
        return dict(sorted(out.items()))

    def render_text(self) -> str:
        """Plain-text exposition: one ``name value`` line per instrument.

        The stable formatting contract shared by ``/v1/metrics`` and the
        CLIs (so neither hand-rolls its own): names sorted, integers
        rendered as integers, floats via ``repr`` (round-trippable),
        one trailing newline.
        """
        lines = []
        for name, value in self.snapshot().items():
            if isinstance(value, bool):
                value = int(value)
            if isinstance(value, float):
                rendered = repr(value) if math.isfinite(value) else "0"
            else:
                rendered = str(value)
            lines.append(f"{name} {rendered}")
        return "\n".join(lines) + "\n"

    def report(self) -> dict:
        with self._lock:
            return {
                "counters": dict(self._counters),
                "gauges": dict(self._gauges),
                "latency": {
                    stage: h.summary() for stage, h in self._histograms.items()
                },
                "spans": len(self._spans),
            }

    def to_json(self, *, indent: int | None = 2) -> str:
        return json.dumps(self.report(), indent=indent, sort_keys=True)
