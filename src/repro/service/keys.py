"""Canonical cache keys for sparse matrices: pattern tier and values tier.

The serving layer reuses factorizations across requests, so it needs a
stable identity for "same sparsity pattern" (symbolic analysis can be
reused) and "same pattern and same numbers" (the whole numeric factor
can be reused).  Both are content hashes of the *canonical* form of the
matrix — the full symmetric CSC structure the solver itself factors —
so the keys are insensitive to how the caller assembled the matrix:

* triplets in any order, with duplicates split across entries, hash
  equal once :meth:`CSCMatrix.from_coo` has sorted and summed them;
* a lower-triangle store and the equivalent full symmetric store hash
  equal, because both canonicalize to the same full pattern.

Hashes are BLAKE2b over the raw ``indptr``/``indices`` (and, for the
values tier, ``data``) buffers — bitwise on the float64 values, so
``-0.0`` vs ``0.0`` or differently-rounded entries are distinct keys
(a conservative choice: a spurious miss costs a refactorization, a
spurious hit would corrupt results).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

import numpy as np

from repro.matrices.csc import CSCMatrix

__all__ = ["MatrixKey", "canonicalize", "pattern_key", "values_key", "matrix_key"]


def canonicalize(a: CSCMatrix) -> CSCMatrix:
    """The full symmetric form the solver factors (identity if already so)."""
    return a if a.is_structurally_symmetric() else a.symmetrize_from_lower()


def _digest(tag: str, *parts) -> str:
    h = hashlib.blake2b(digest_size=16)
    h.update(tag.encode())
    for p in parts:
        if isinstance(p, np.ndarray):
            h.update(np.ascontiguousarray(p).tobytes())
        else:
            h.update(str(p).encode())
        h.update(b"|")
    return h.hexdigest()


def pattern_key(a: CSCMatrix, *, canonical: CSCMatrix | None = None) -> str:
    """Hash of the canonical sparsity pattern (values ignored)."""
    full = canonical if canonical is not None else canonicalize(a)
    return _digest(
        "pattern",
        full.n_rows,
        full.n_cols,
        np.asarray(full.indptr, dtype=np.int64),
        np.asarray(full.indices, dtype=np.int64),
    )


def values_key(a: CSCMatrix, *, canonical: CSCMatrix | None = None) -> str:
    """Hash of the canonical pattern *and* the float64 values."""
    full = canonical if canonical is not None else canonicalize(a)
    return _digest(
        "values",
        full.n_rows,
        full.n_cols,
        np.asarray(full.indptr, dtype=np.int64),
        np.asarray(full.indices, dtype=np.int64),
        np.asarray(full.data, dtype=np.float64),
    )


@dataclass(frozen=True)
class MatrixKey:
    """The two-tier identity of one matrix."""

    pattern: str
    values: str


def matrix_key(a: CSCMatrix) -> tuple[MatrixKey, CSCMatrix]:
    """Compute both keys, canonicalizing once; returns (key, canonical)."""
    full = canonicalize(a)
    return (
        MatrixKey(
            pattern=pattern_key(a, canonical=full),
            values=values_key(a, canonical=full),
        ),
        full,
    )
