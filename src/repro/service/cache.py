"""Two-tier LRU factorization cache bounded by an estimated-bytes budget.

The paper motivates direct methods with "the potential for reusing the
factorization when solving multiple systems with the same coefficient
matrix"; this cache is that reuse made explicit, in two tiers:

* **symbolic tier** — keyed by the sparsity-pattern hash (plus ordering
  and amalgamation settings).  A hit skips the expensive ordering +
  symbolic analysis and re-runs only the numeric factorization — the
  Newton-iteration / time-stepping fast path.
* **numeric tier** — keyed by the values hash (plus policy).  A hit
  skips *all* factorization work and goes straight to the triangular
  solves.

Both tiers share one LRU list and one byte budget, so a burst of large
numeric factors evicts cold symbolic entries too (and vice versa).
Sizes are estimated from the stored arrays (factor panels, supernode
row lists); an entry larger than the whole budget is rejected rather
than inserted-then-evicted.  All operations are thread-safe.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass

__all__ = [
    "CacheLookup",
    "FactorizationCache",
    "symbolic_nbytes",
    "numeric_nbytes",
]


def symbolic_nbytes(sf) -> int:
    """Estimated resident bytes of a :class:`SymbolicFactor`."""
    total = (
        sf.perm.nbytes + sf.super_ptr.nbytes + sf.sparent.nbytes + sf.spost.nbytes
    )
    total += sum(r.nbytes for r in sf.rows)
    for name in ("parent", "post"):
        arr = getattr(sf.etree, name, None)
        if arr is not None and hasattr(arr, "nbytes"):
            total += arr.nbytes
    return int(total)


def numeric_nbytes(factor) -> int:
    """Estimated resident bytes of a :class:`NumericFactor` (panels + symbolic)."""
    return int(sum(p.nbytes for p in factor.panels)) + symbolic_nbytes(factor.sf)


@dataclass
class CacheLookup:
    """Outcome of one two-tier lookup."""

    tier: str                      # "numeric" | "symbolic" | "miss"
    symbolic: object | None = None
    numeric: object | None = None


class FactorizationCache:
    """LRU cache of symbolic and numeric factorizations under a byte budget."""

    SYMBOLIC = "symbolic"
    NUMERIC = "numeric"

    def __init__(self, *, max_bytes: int = 256 << 20):
        if max_bytes <= 0:
            raise ValueError("max_bytes must be positive")
        self.max_bytes = int(max_bytes)
        self._lock = threading.RLock()
        # (tier, key) -> (payload, nbytes); insertion/access order = LRU order
        self._entries: OrderedDict[tuple[str, str], tuple[object, int]] = (
            OrderedDict()
        )
        self.stored_bytes = 0
        self.stats: dict[str, int] = {
            "lookups": 0,
            "numeric_hits": 0,
            "symbolic_hits": 0,
            "misses": 0,
            "insertions": 0,
            "evictions": 0,
            "rejected_oversize": 0,
        }

    # -- lookups -----------------------------------------------------------
    def lookup(self, symbolic_key: str, numeric_key: str) -> CacheLookup:
        """Tiered lookup: full numeric hit beats symbolic hit beats miss."""
        with self._lock:
            self.stats["lookups"] += 1
            num = self._touch((self.NUMERIC, numeric_key))
            if num is not None:
                self.stats["numeric_hits"] += 1
                # refresh the symbolic entry too: it backs the numeric one
                sym = self._touch((self.SYMBOLIC, symbolic_key))
                return CacheLookup(self.NUMERIC, symbolic=sym, numeric=num)
            sym = self._touch((self.SYMBOLIC, symbolic_key))
            if sym is not None:
                self.stats["symbolic_hits"] += 1
                return CacheLookup(self.SYMBOLIC, symbolic=sym)
            self.stats["misses"] += 1
            return CacheLookup("miss")

    def get_symbolic(self, key: str):
        with self._lock:
            return self._touch((self.SYMBOLIC, key))

    def get_numeric(self, key: str):
        with self._lock:
            return self._touch((self.NUMERIC, key))

    def _touch(self, full_key):
        entry = self._entries.get(full_key)
        if entry is None:
            return None
        self._entries.move_to_end(full_key)
        return entry[0]

    # -- insertion / eviction ----------------------------------------------
    def put_symbolic(self, key: str, sf, *, nbytes: int | None = None) -> bool:
        return self._put(
            (self.SYMBOLIC, key), sf,
            nbytes if nbytes is not None else symbolic_nbytes(sf),
        )

    def put_numeric(self, key: str, factor, *, nbytes: int | None = None) -> bool:
        return self._put(
            (self.NUMERIC, key), factor,
            nbytes if nbytes is not None else numeric_nbytes(factor),
        )

    def _put(self, full_key, payload, nbytes: int) -> bool:
        nbytes = int(nbytes)
        with self._lock:
            if nbytes > self.max_bytes:
                self.stats["rejected_oversize"] += 1
                return False
            old = self._entries.pop(full_key, None)
            if old is not None:
                self.stored_bytes -= old[1]
            self._entries[full_key] = (payload, nbytes)
            self.stored_bytes += nbytes
            self.stats["insertions"] += 1
            while self.stored_bytes > self.max_bytes:
                key, (victim, evicted_bytes) = self._entries.popitem(
                    last=False
                )
                self.stored_bytes -= evicted_bytes
                self.stats["evictions"] += 1
                self._on_evict(key, victim, evicted_bytes)
            return True

    def _on_evict(self, full_key, payload, nbytes: int) -> None:
        """Eviction hook, called under the lock for every LRU victim.

        The base cache drops the entry (the payload is simply garbage
        once this returns); :class:`~repro.service.tiers.
        TieredFactorCache` overrides this to spill it down the storage
        hierarchy instead.
        """

    def peek_numeric(self, key: str):
        """The numeric payload for ``key`` without touching recency or
        stats (tiered subclasses also search their lower tiers)."""
        with self._lock:
            entry = self._entries.get((self.NUMERIC, key))
            return entry[0] if entry is not None else None

    # -- introspection -----------------------------------------------------
    @property
    def pattern_hit_rate(self) -> float:
        """Fraction of lookups that at least hit the symbolic tier (a
        numeric hit implies its pattern was known too)."""
        n = self.stats["lookups"]
        if n == 0:
            return 0.0
        return (self.stats["numeric_hits"] + self.stats["symbolic_hits"]) / n

    @property
    def numeric_hit_rate(self) -> float:
        n = self.stats["lookups"]
        return self.stats["numeric_hits"] / n if n else 0.0

    def keys(self) -> list[tuple[str, str]]:
        """(tier, key) pairs in LRU order, coldest first."""
        with self._lock:
            return list(self._entries.keys())

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self.stored_bytes = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"FactorizationCache(entries={len(self)}, "
            f"bytes={self.stored_bytes}/{self.max_bytes})"
        )
