"""Solver-as-a-service: a concurrent front-end over the multifrontal solver.

:class:`SolverService` accepts solve requests (matrix + right-hand side)
on a thread-safe queue and drives a pool of worker threads, reusing
factorizations through the two-tier :class:`FactorizationCache`:

* **numeric hit** — the exact matrix (pattern *and* values) was factored
  before: go straight to the blocked triangular solves, zero
  factorization work;
* **symbolic hit** — the pattern was analyzed before with the same
  ordering/amalgamation settings: skip ordering + symbolic analysis and
  re-run only the numeric factorization
  (:meth:`SparseCholeskySolver.from_symbolic`);
* **miss** — full ``analyze().factorize()`` pipeline; both tiers are
  populated for the requests that follow.

Requests that resolve to the same cached factor are aggregated into one
blocked ``solve_factored`` call (see :mod:`repro.service.batching`):
after resolving a factor the worker drains every compatible queued
request, optionally waiting ``batch_window`` seconds for stragglers.

Requests carry optional deadlines — an expired request is completed
with :class:`TimeoutError`, never silently dropped — and degrade
gracefully: if the configured (simulated-GPU) policy raises during
factorization, the request is retried on the CPU-only ``P1`` policy and
flagged ``degraded`` in its result.

Every stage is timed into :class:`ServiceMetrics` (latency histograms,
cache and batch counters, queue-depth gauge, Chrome-trace spans).
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field

import numpy as np

from repro.dense.kernels import NotPositiveDefiniteError
from repro.gpu.device import SimulatedNode
from repro.multifrontal.refine import iterative_refinement
from repro.multifrontal.solve import solve_factored
from repro.multifrontal.solver import SparseCholeskySolver
from repro.policies.base import Policy
from repro.service.batching import BatchPlan
from repro.service.cache import FactorizationCache
from repro.service.keys import matrix_key
from repro.service.tiers import TierConfig
from repro.service.metrics import ServiceMetrics
from repro.symbolic.supernodes import AmalgamationParams

__all__ = ["SolveOutcome", "SolveRequest", "SolverService"]


@dataclass
class SolveOutcome:
    """What a completed request resolves to."""

    x: np.ndarray
    request_id: int
    tier: str                      # "numeric" | "symbolic" | "miss" | "batched"
    degraded: bool = False         # True when the GPU policy fell back to P1
    batch_size: int = 1            # how many requests shared the solve call
    timings: dict[str, float] = field(default_factory=dict)


class SolveRequest:
    """Future-like handle returned by :meth:`SolverService.submit`."""

    __slots__ = (
        "request_id", "a", "canonical", "b", "sym_key", "num_key",
        "policy_spec", "refine", "tol", "max_iter", "deadline", "submitted",
        "_event", "_outcome", "_error",
    )

    def __init__(self, request_id: int, a, canonical, b, *, sym_key, num_key,
                 policy_spec, refine, tol, max_iter, deadline, submitted):
        self.request_id = request_id
        self.a = a
        self.canonical = canonical
        self.b = b
        self.sym_key = sym_key
        self.num_key = num_key
        self.policy_spec = policy_spec
        self.refine = refine
        self.tol = tol
        self.max_iter = max_iter
        self.deadline = deadline
        self.submitted = submitted
        self._event = threading.Event()
        self._outcome: SolveOutcome | None = None
        self._error: BaseException | None = None

    def done(self) -> bool:
        return self._event.is_set()

    def result(self, timeout: float | None = None) -> SolveOutcome:
        """Block until the request completes; raises its error if it failed."""
        if not self._event.wait(timeout):
            raise TimeoutError(
                f"request {self.request_id} not completed within {timeout}s"
            )
        if self._error is not None:
            raise self._error
        assert self._outcome is not None
        return self._outcome

    # -- worker side -------------------------------------------------------
    def _fulfill(self, outcome: SolveOutcome) -> None:
        self._outcome = outcome
        self._event.set()

    def _fail(self, error: BaseException) -> None:
        self._error = error
        self._event.set()


class SolverService:
    """Concurrent solve service with pattern-keyed factorization reuse.

    Parameters
    ----------
    n_workers : int
        Worker threads driving solves.
    policy : str or Policy
        Default placement policy for factorizations (per-request override
        via :meth:`submit`).
    backend : str
        How factorizations execute: ``"serial"`` (default), ``"static"``
        list scheduler, the ``"dynamic"`` event-driven runtime of
        :mod:`repro.runtime`, or the ``"cluster"`` fleet loop of
        :mod:`repro.cluster` (shape via ``cluster``).  All backends
        produce bit-identical factors, so cached factors are shared
        across backends.
    cluster : ClusterSpec, optional
        Fleet shape for ``backend="cluster"`` factorizations.
    ordering, amalgamation :
        Symbolic-analysis settings; part of the symbolic cache key.
    batching : BatchParams, optional
        Batched small-front execution forwarded to every factorization
        (:class:`repro.multifrontal.batched.BatchParams`); bit-identical
        numerics, so it does not enter the numeric cache key.  Rejected
        for ``backend="cluster"``.
    cache : FactorizationCache, optional
        Shared cache instance; by default a fresh one bounded by
        ``max_cache_bytes``.
    tiering : TierConfig, optional
        Build the cache as a :class:`~repro.service.tiers.
        TieredFactorCache` (RAM → disk → object store with
        policy-driven spill/promote) instead of the flat LRU.
        Mutually exclusive with ``cache``; ``max_cache_bytes`` is
        ignored in favour of ``tiering.ram_bytes``.
    batch_window : float
        Extra seconds a worker waits for more same-factor requests to
        arrive before solving (already-queued matches are always taken).
    max_batch : int
        Upper bound on requests aggregated into one solve call.
    node_factory : callable, optional
        Builds the :class:`SimulatedNode` used by each factorization
        (one per factorization, so workers never share engine state).
    faults : FaultInjector, optional
        Injected GPU faults forwarded to every factorization; requires
        ``backend="dynamic"`` (the only backend that can degrade and
        retry mid-run).  A fault-degraded factor is produced by the P1
        fallback path, so it is *not* published under the requested
        policy's numeric cache key.
    shadow_verify_rate : float
        Fraction of requests (0..1) whose resolved factor is re-derived
        under an alternate backend and fingerprint-compared — the
        serving-layer hook into :mod:`repro.verify`.  Sampling is a
        deterministic accumulator, so a rate of 0.25 checks exactly
        every 4th processed request.  Outcomes land in the
        ``shadow_checks`` / ``shadow_mismatches`` counters.
    """

    def __init__(
        self,
        *,
        n_workers: int = 2,
        policy: str | Policy = "P1",
        backend: str = "serial",
        ordering: str = "amd",
        amalgamation: AmalgamationParams | None = None,
        batching=None,
        cache: FactorizationCache | None = None,
        tiering: TierConfig | None = None,
        max_cache_bytes: int = 256 << 20,
        batch_window: float = 0.0,
        max_batch: int = 32,
        metrics: ServiceMetrics | None = None,
        node_factory=None,
        faults=None,
        shadow_verify_rate: float = 0.0,
        cluster=None,
    ):
        if n_workers < 1:
            raise ValueError("need at least one worker")
        if backend not in ("serial", "static", "dynamic", "cluster"):
            raise ValueError(
                f"unknown backend {backend!r} "
                "(serial | static | dynamic | cluster)"
            )
        if faults is not None and backend != "dynamic":
            raise ValueError("faults require backend='dynamic'")
        if batching is not None and backend == "cluster":
            raise ValueError("batching is not supported by backend='cluster'")
        if cluster is not None and backend != "cluster":
            raise ValueError("cluster spec requires backend='cluster'")
        if not 0.0 <= shadow_verify_rate <= 1.0:
            raise ValueError("shadow_verify_rate must be in [0, 1]")
        self.policy = policy
        self.backend = backend
        self.cluster = cluster
        self.faults = faults
        self.shadow_verify_rate = float(shadow_verify_rate)
        self._shadow_acc = 0.0
        self._shadow_lock = threading.Lock()
        self.ordering = ordering
        self.amalgamation = amalgamation
        self.batching = batching
        if cache is not None and tiering is not None:
            raise ValueError("pass either cache or tiering, not both")
        if cache is not None:
            self.cache = cache
        elif tiering is not None:
            self.cache = tiering.build()
        else:
            self.cache = FactorizationCache(max_bytes=max_cache_bytes)
        self.metrics = metrics if metrics is not None else ServiceMetrics()
        self.batch_window = float(batch_window)
        self.max_batch = int(max_batch)
        self._node_factory = node_factory or (
            lambda: SimulatedNode(n_cpus=1, n_gpus=1)
        )
        self._classifier = None
        self._classifier_lock = threading.Lock()
        self._queue: deque[SolveRequest] = deque()
        self._cond = threading.Condition()
        self._inflight: dict[str, threading.Event] = {}
        self._inflight_lock = threading.Lock()
        self._stop = False
        self._next_id = 0
        self._t0 = time.perf_counter()
        self._amalg_tag = repr(
            amalgamation if amalgamation is not None else AmalgamationParams()
        )
        self._workers = [
            threading.Thread(
                target=self._worker_loop, args=(i,),
                name=f"solver-worker-{i}", daemon=True,
            )
            for i in range(n_workers)
        ]
        for w in self._workers:
            w.start()

    # ------------------------------------------------------------------
    # client API
    # ------------------------------------------------------------------
    def submit(
        self,
        a,
        b,
        *,
        policy: str | Policy | None = None,
        timeout: float | None = None,
        refine: bool = False,
        tol: float = 1e-12,
        max_iter: int = 5,
    ) -> SolveRequest:
        """Enqueue ``A x = b``; returns a future-like :class:`SolveRequest`.

        ``timeout`` is a deadline in seconds from submission: a request
        still queued past it completes with :class:`TimeoutError`.
        """
        now = time.perf_counter()
        key, canonical = matrix_key(a)
        b = np.asarray(b, dtype=np.float64)
        if b.shape[0] != canonical.n_rows or b.ndim not in (1, 2):
            raise ValueError(
                f"rhs must have shape ({canonical.n_rows},) or "
                f"({canonical.n_rows}, nrhs), got {b.shape}"
            )
        spec = policy if policy is not None else self.policy
        sym_key, num_key = self._derive_keys(key, spec)
        with self._cond:
            # checked under the lock: a shutdown seen here is definitive,
            # not a stale read racing _shutdown's write
            if self._stop:
                raise RuntimeError("service is shut down")
            self._next_id += 1
            req = SolveRequest(
                self._next_id, a, canonical, b,
                sym_key=sym_key,
                num_key=num_key,
                policy_spec=spec,
                refine=refine, tol=tol, max_iter=max_iter,
                deadline=None if timeout is None else now + timeout,
                submitted=now,
            )
            self._queue.append(req)
            depth = len(self._queue)
            self._cond.notify()
        self.metrics.incr("submitted")
        self.metrics.gauge("queue_depth", depth)
        return req

    def solve(self, a, b, **kwargs) -> SolveOutcome:
        """Synchronous convenience wrapper around :meth:`submit`."""
        return self.submit(a, b, **kwargs).result()

    def _derive_keys(self, key, spec) -> tuple[str, str]:
        return (
            f"{key.pattern}|ord={self.ordering}|{self._amalg_tag}",
            f"{key.values}|ord={self.ordering}|pol={self._policy_tag(spec)}",
        )

    def keys_for(self, a, *, policy=None) -> tuple[str, str]:
        """The (symbolic, numeric) cache keys a submit of ``a`` would
        use — the fleet router derives peer-probe keys through this so
        they can never drift from the service's own."""
        key, _ = matrix_key(a)
        spec = policy if policy is not None else self.policy
        return self._derive_keys(key, spec)

    def shutdown(self, *, wait: bool = True) -> None:
        """Stop accepting work; workers drain the queue, then exit."""
        with self._cond:
            self._stop = True
            self._cond.notify_all()
        if wait:
            for w in self._workers:
                w.join()

    def __enter__(self) -> "SolverService":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()

    def health(self) -> dict:
        """Cheap liveness/pressure snapshot — no locks beyond the queue's.

        This is the serving-layer admission hook: the API front door
        polls it per request to decide whether to keep admitting work,
        so it must stay O(1) — counters and gauges only, never a
        factorization or a cache walk.
        """
        with self._cond:
            queue_depth = len(self._queue)
            accepting = not self._stop
        out = {
            "status": "ok" if accepting else "stopped",
            "accepting": accepting,
            "workers": len(self._workers),
            "queue_depth": queue_depth,
            "cache_entries": len(self.cache),
            "cache_bytes": self.cache.stored_bytes,
            "cache_max_bytes": self.cache.max_bytes,
            "cache_utilization": self.cache.stored_bytes / self.cache.max_bytes,
        }
        tier_stats = getattr(self.cache, "tier_stats", None)
        if tier_stats is not None:
            tiers = tier_stats()
            out["cache_resident_bytes"] = self.cache.total_resident_bytes()
            out["cache_tiers"] = {
                name: {
                    "resident_bytes": st["resident_bytes"],
                    "capacity_bytes": st["capacity_bytes"],
                    "entries": st["entries"],
                }
                for name, st in tiers.items()
            }
            self._export_tier_gauges(tiers)
        return out

    def _export_tier_gauges(self, tiers: dict) -> None:
        """Mirror per-tier cache counters into :class:`ServiceMetrics`
        gauges so they ride the ``/v1/metrics`` exposition.  Tier names
        come from the fixed ``ram/disk/object`` set, so cardinality is
        bounded; the ``tier.`` prefix keeps the names enumerable."""
        for name, st in sorted(tiers.items()):
            for stat, value in sorted(st.items()):
                if isinstance(value, bool) or not isinstance(
                    value, (int, float)
                ):
                    continue
                self.metrics.gauge(f"tier.{name}.{stat}", value)
        self.metrics.gauge(
            "tier.transfer_seconds", self.cache.transfer_seconds
        )

    def report(self) -> dict:
        """Merged metrics + cache statistics snapshot."""
        out = self.metrics.report()
        out["cache"] = dict(self.cache.stats)
        out["cache"]["stored_bytes"] = self.cache.stored_bytes
        out["cache"]["entries"] = len(self.cache)
        out["cache"]["pattern_hit_rate"] = self.cache.pattern_hit_rate
        out["cache"]["numeric_hit_rate"] = self.cache.numeric_hit_rate
        tier_stats = getattr(self.cache, "tier_stats", None)
        if tier_stats is not None:
            tiers = tier_stats()
            self._export_tier_gauges(tiers)
            out["cache"]["tiers"] = tiers
            out["cache"]["ledger"] = dict(self.cache.ledger)
            out["cache"]["transfer_seconds"] = self.cache.transfer_seconds
            out["gauges"] = dict(self.metrics.report()["gauges"])
        return out

    # ------------------------------------------------------------------
    # worker internals
    # ------------------------------------------------------------------
    @staticmethod
    def _policy_tag(spec) -> str:
        if isinstance(spec, Policy):
            return getattr(spec, "name", spec.__class__.__name__)
        return str(spec).lower()

    @staticmethod
    def _is_cpu_only(spec) -> bool:
        if isinstance(spec, Policy):
            return not getattr(spec, "needs_gpu", True)
        return str(spec).lower() == "p1"

    def _worker_loop(self, idx: int) -> None:
        while True:
            with self._cond:
                while not self._queue and not self._stop:
                    self._cond.wait()
                if self._queue:
                    req = self._queue.popleft()
                else:  # stopped and drained
                    return
            try:
                self._process(req, idx)
            except BaseException as exc:  # never let a worker die silently
                self.metrics.incr("failed")
                if not req.done():
                    req._fail(exc)

    def _now(self) -> float:
        return time.perf_counter() - self._t0

    def _build_solver(
        self, canonical, symbolic, spec, *, backend=None
    ) -> SparseCholeskySolver:
        backend = backend if backend is not None else self.backend
        faults = self.faults if backend == "dynamic" else None
        cluster = self.cluster if backend == "cluster" else None
        batching = self.batching if backend != "cluster" else None
        classifier = None
        if not isinstance(spec, Policy) and str(spec).lower() == "model":
            with self._classifier_lock:
                classifier = self._classifier
            if classifier is None:
                from repro.autotune import train_default_classifier

                # train outside the lock: training takes whole seconds
                # and would stall every worker resolving a "model"
                # policy; losers of the publish race discard their copy
                trained = train_default_classifier(self._node_factory().model)
                with self._classifier_lock:
                    if self._classifier is None:
                        self._classifier = trained
                    classifier = self._classifier
        if symbolic is not None:
            return SparseCholeskySolver.from_symbolic(
                canonical, symbolic, policy=spec,
                node=self._node_factory(), classifier=classifier,
                backend=backend, faults=faults, cluster=cluster,
                batching=batching,
            )
        return SparseCholeskySolver(
            canonical, ordering=self.ordering, policy=spec,
            node=self._node_factory(), amalgamation=self.amalgamation,
            classifier=classifier, backend=backend, faults=faults,
            cluster=cluster, batching=batching,
        )

    def _process(self, req: SolveRequest, worker: int) -> None:
        # the cpu. prefix keys the Chrome-trace exporter's lane ordering
        # (repro.gpu.trace._ENGINE_ORDER)
        engine = f"cpu.worker{worker}"
        now = time.perf_counter()
        self.metrics.observe("queue_wait", now - req.submitted)
        self.metrics.gauge("queue_depth", len(self._queue))
        if req.deadline is not None and now > req.deadline:
            self._expire(req)
            return

        factor, tier, degraded = self._resolve_factor(req, engine)

        if not degraded and self._shadow_sample():
            self._shadow_verify(req, factor, engine)

        batch = [req]
        if not req.refine and self.max_batch > 1:
            batch += self._collect_batch(req)

        t0 = self._now()
        plan = BatchPlan.build(batch, req.canonical.n_rows)
        x = solve_factored(factor, plan.block)
        t1 = self._now()
        self.metrics.observe("solve", t1 - t0)
        self.metrics.span(f"req{req.request_id}:solve", "solve", engine, t0, t1)
        self.metrics.observe("batch_size", len(batch))
        if len(batch) > 1:
            self.metrics.incr("batches")
            self.metrics.incr("batched_requests", len(batch) - 1)

        for r, xr in plan.scatter(x):
            if r.refine:
                res = iterative_refinement(
                    r.canonical, factor, r.b, tol=r.tol, max_iter=r.max_iter
                )
                xr = res.x
            # batch members rode the anchor's factor: from the request's
            # point of view that is a full factorization reuse
            r_tier = tier if r is req else "batched"
            done = time.perf_counter()
            self.metrics.observe("total", done - r.submitted)
            self.metrics.incr("completed")
            self.metrics.incr(f"requests_{r_tier}")
            r._fulfill(
                SolveOutcome(
                    x=xr,
                    request_id=r.request_id,
                    tier=r_tier,
                    degraded=degraded,
                    batch_size=len(batch),
                    timings={"total": done - r.submitted},
                )
            )

    # -- shadow verification ----------------------------------------------
    def _shadow_sample(self) -> bool:
        """Deterministic rate sampler (error-diffusion accumulator)."""
        if self.shadow_verify_rate <= 0.0:
            return False
        with self._shadow_lock:
            self._shadow_acc += self.shadow_verify_rate
            if self._shadow_acc >= 1.0:
                self._shadow_acc -= 1.0
                return True
        return False

    def _shadow_verify(self, req: SolveRequest, factor, engine: str) -> None:
        """Re-factor under an alternate backend; fingerprints must agree.

        Serial, static and dynamic backends promise bit-identical
        factors (see :mod:`repro.verify.lattice`), so a mismatch means
        the factor the service is about to serve — possibly from cache —
        differs from a freshly computed reference.  Mismatches are
        counted, never raised: shadow verification is advisory.
        """
        from repro.verify.lattice import factor_fingerprint

        alt_backend = "static" if self.backend == "serial" else "serial"
        t0 = self._now()
        try:
            look = self.cache.lookup(req.sym_key, req.num_key)
            solver = self._build_solver(
                req.canonical, look.symbolic, req.policy_spec,
                backend=alt_backend,
            )
            if solver.symbolic is None:
                solver.analyze()
            solver.factorize()
            mismatch = (
                factor_fingerprint(factor) != factor_fingerprint(solver.factor)
            )
        except Exception:
            # a reference that cannot even be computed is itself a signal
            mismatch = True
        t1 = self._now()
        self.metrics.incr("shadow_checks")
        self.metrics.observe("shadow_verify", t1 - t0)
        self.metrics.span(
            f"req{req.request_id}:shadow", "shadow_verify", engine, t0, t1
        )
        if mismatch:
            self.metrics.incr("shadow_mismatches")

    def _expire(self, req: SolveRequest) -> None:
        self.metrics.incr("timeouts")
        req._fail(
            TimeoutError(
                f"request {req.request_id} missed its deadline before service"
            )
        )

    # -- factor resolution -------------------------------------------------
    def _resolve_factor(self, req: SolveRequest, engine: str):
        look = self.cache.lookup(req.sym_key, req.num_key)
        if look.tier == FactorizationCache.NUMERIC:
            return look.numeric, "numeric", False

        # in-flight coalescing: if another worker is already factoring this
        # exact (values, policy) key, wait for it instead of duplicating
        # the factorization
        with self._inflight_lock:
            pending = self._inflight.get(req.num_key)
            if pending is None:
                self._inflight[req.num_key] = threading.Event()
        if pending is not None:
            pending.wait()
            look = self.cache.lookup(req.sym_key, req.num_key)
            if look.tier == FactorizationCache.NUMERIC:
                return look.numeric, "numeric", False
            # the owner failed or was evicted immediately; compute ourselves
            # (without registering — worst case is one duplicated factor)
            return self._compute_factor(req, engine, look)
        try:
            return self._compute_factor(req, engine, look)
        finally:
            with self._inflight_lock:
                event = self._inflight.pop(req.num_key, None)
            if event is not None:
                event.set()

    def _compute_factor(self, req: SolveRequest, engine: str, look):
        if look.tier == FactorizationCache.SYMBOLIC:
            solver = self._build_solver(
                req.canonical, look.symbolic, req.policy_spec
            )
        else:
            t0 = self._now()
            solver = self._build_solver(req.canonical, None, req.policy_spec)
            solver.analyze()
            t1 = self._now()
            self.metrics.observe("analyze", t1 - t0)
            self.metrics.span(
                f"req{req.request_id}:analyze", "analyze", engine, t0, t1
            )
            self.cache.put_symbolic(req.sym_key, solver.symbolic)

        degraded = False
        t0 = self._now()
        try:
            solver.factorize()
        except NotPositiveDefiniteError:
            raise
        except Exception:
            # graceful degradation: anything the (simulated) GPU path
            # raises is retried on the CPU-only policy — the request is
            # flagged, not dropped
            if self._is_cpu_only(req.policy_spec):
                raise
            degraded = True
            self.metrics.incr("degraded")
            solver = SparseCholeskySolver.from_symbolic(
                req.canonical, solver.symbolic, policy="P1",
                node=self._node_factory(),
            )
            solver.factorize()
        else:
            # the dynamic runtime degrades individual tasks to P1 after
            # repeated injected GPU failures *without raising* — those
            # factors are partially P1-produced and must not be published
            # under the non-degraded policy key either
            if solver.parallel is not None and solver.parallel.degraded:
                degraded = True
                self.metrics.incr("degraded")
        t1 = self._now()
        self.metrics.incr("numeric_factorizations")
        self.metrics.observe("factorize", t1 - t0)
        self.metrics.span(
            f"req{req.request_id}:factorize", "factorize", engine, t0, t1
        )
        if not degraded:
            # a degraded factor is P1-produced under a different policy
            # key; do not publish it under the requested policy's key
            self.cache.put_numeric(req.num_key, solver.factor)
        return solver.factor, look.tier, degraded

    # -- batching ----------------------------------------------------------
    def _collect_batch(self, anchor: SolveRequest) -> list[SolveRequest]:
        """Drain queued requests solvable with ``anchor``'s factor."""
        got: list[SolveRequest] = []
        deadline_wait = self.batch_window
        while True:
            expired: list[SolveRequest] = []
            done = True
            with self._cond:
                keep: deque[SolveRequest] = deque()
                while self._queue and len(got) < self.max_batch - 1:
                    cand = self._queue.popleft()
                    if cand.num_key == anchor.num_key and not cand.refine:
                        if (
                            cand.deadline is not None
                            and time.perf_counter() > cand.deadline
                        ):
                            # expiry fires a client-visible Event; do it
                            # after the condition is released so a woken
                            # waiter can never re-enter the service while
                            # a worker still holds the queue lock
                            expired.append(cand)
                            continue
                        self.metrics.observe(
                            "queue_wait", time.perf_counter() - cand.submitted
                        )
                        got.append(cand)
                    else:
                        keep.append(cand)
                keep.extend(self._queue)
                self._queue = keep
                if deadline_wait > 0 and len(got) < self.max_batch - 1:
                    self._cond.wait(deadline_wait)
                    deadline_wait = 0.0
                    done = False
            for cand in expired:
                self._expire(cand)
            if done:
                return got
