"""Solver-as-a-service: factorization reuse, concurrency, observability.

The serving layer on top of :class:`~repro.multifrontal.solver.
SparseCholeskySolver` — the production face of the paper's motivating
observation that a factorization can be amortized over many solves:

* :mod:`repro.service.keys` — canonical pattern/values hashes of a matrix;
* :mod:`repro.service.cache` — two-tier (symbolic / numeric) LRU cache
  bounded by an estimated-bytes budget;
* :mod:`repro.service.tiers` — the simulated storage hierarchy behind
  it: RAM → local disk → shared object tier with policy-driven
  placement/TTL/transfer and modeled byte movement;
* :mod:`repro.service.batching` — multi-RHS aggregation of requests that
  share a cached factor;
* :mod:`repro.service.service` — the concurrent :class:`SolverService`
  front-end (request queue, worker pool, deadlines, CPU fallback);
* :mod:`repro.service.metrics` — latency histograms, counters and
  Chrome-trace spans for every request.
"""

from repro.service.batching import BatchPlan
from repro.service.cache import (
    CacheLookup,
    FactorizationCache,
    numeric_nbytes,
    symbolic_nbytes,
)
from repro.service.keys import (
    MatrixKey,
    canonicalize,
    matrix_key,
    pattern_key,
    values_key,
)
from repro.service.metrics import LatencyHistogram, ServiceMetrics
from repro.service.service import SolveOutcome, SolveRequest, SolverService
from repro.service.tiers import (
    ManualClock,
    StorageTier,
    TierConfig,
    TieredFactorCache,
    TierSpec,
)

__all__ = [
    "ManualClock",
    "StorageTier",
    "TierConfig",
    "TieredFactorCache",
    "TierSpec",
    "BatchPlan",
    "CacheLookup",
    "FactorizationCache",
    "numeric_nbytes",
    "symbolic_nbytes",
    "MatrixKey",
    "canonicalize",
    "matrix_key",
    "pattern_key",
    "values_key",
    "LatencyHistogram",
    "ServiceMetrics",
    "SolveOutcome",
    "SolveRequest",
    "SolverService",
]
