"""Incremental lint cache: skip re-analysis of unchanged content.

The cache exploits the :attr:`~repro.lint.core.Checker.scope` split:

* **file-scope** checkers produce findings that depend only on one
  file's content, so their findings are cached per file under a key of
  ``sha256(path + content)`` — editing one module re-lints one module;
* **program-scope** checkers (the call-graph and dataflow passes)
  depend on every file at once, so their findings are cached under a
  single *tree key* hashing every ``(path, content-hash)`` pair — any
  edit anywhere invalidates them, but the no-change re-run (the common
  CI retry) is free.

Both keys also fold in the checker set (rule ids) and the
:class:`~repro.lint.core.LintConfig`, so flipping a config knob or
adding a rule invalidates stale entries instead of serving them.

Entries are stored as JSON under ``.lint-cache/`` (one file per
scope).  The store is pruned on save: only keys touched by the current
run survive, so the directory never grows beyond the working tree.
Cached findings are *raw* — inline suppressions and the baseline are
re-applied on every run, so editing a suppression comment changes the
outcome even on a cache hit.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, fields
from pathlib import Path

from repro.lint.core import Finding, LintConfig

__all__ = ["LintCache", "file_key", "tree_key"]


def _config_fingerprint(config: LintConfig) -> str:
    """Canonical, process-stable serialization of the config.

    ``repr(config)`` is *not* stable: frozenset fields iterate in
    hash-seed order, which differs per interpreter process and would
    silently defeat every cross-run cache hit.
    """
    parts = []
    for f in sorted(fields(config), key=lambda f: f.name):
        value = getattr(config, f.name)
        if isinstance(value, (frozenset, set)):
            value = sorted(value)
        parts.append(f"{f.name}={value!r}")
    return ";".join(parts)

#: bump when the cached representation (or finding semantics baked into
#: messages) changes incompatibly
CACHE_VERSION = 1


def _digest(*parts: str) -> str:
    h = hashlib.sha256()
    for part in parts:
        h.update(part.encode())
        h.update(b"\x00")
    return h.hexdigest()


def file_key(
    path: str, text: str, rule_ids: tuple[str, ...], config: LintConfig
) -> str:
    """Cache key for one file's file-scope findings."""
    return _digest(
        f"v{CACHE_VERSION}", path, text, ",".join(rule_ids),
        _config_fingerprint(config),
    )


def tree_key(
    entries: list[tuple[str, str]],
    rule_ids: tuple[str, ...],
    config: LintConfig,
) -> str:
    """Cache key for the whole tree's program-scope findings.

    *entries* is ``(path, content-hash)`` per file; order-insensitive.
    """
    body = "\n".join(f"{p}\t{h}" for p, h in sorted(entries))
    return _digest(
        f"v{CACHE_VERSION}", body, ",".join(rule_ids),
        _config_fingerprint(config),
    )


def content_hash(text: str) -> str:
    return hashlib.sha256(text.encode()).hexdigest()


class LintCache:
    """A small two-table JSON store under ``.lint-cache/``."""

    def __init__(self, root: Path):
        self.root = root
        self._files: dict[str, list[dict]] = self._load("files.json")
        self._program: dict[str, list[dict]] = self._load("program.json")
        self._touched_files: set[str] = set()
        self._touched_program: set[str] = set()
        self.hits = 0
        self.misses = 0

    def _load(self, name: str) -> dict[str, list[dict]]:
        try:
            obj = json.loads((self.root / name).read_text())
        except (OSError, ValueError):
            return {}
        return obj if isinstance(obj, dict) else {}

    # -- lookups --------------------------------------------------------
    def get_file(self, key: str) -> list[Finding] | None:
        return self._get(self._files, self._touched_files, key)

    def get_program(self, key: str) -> list[Finding] | None:
        return self._get(self._program, self._touched_program, key)

    def _get(
        self,
        table: dict[str, list[dict]],
        touched: set[str],
        key: str,
    ) -> list[Finding] | None:
        entry = table.get(key)
        if entry is None:
            self.misses += 1
            return None
        touched.add(key)
        self.hits += 1
        try:
            return [Finding(**d) for d in entry]
        except TypeError:
            # a stale/foreign entry: treat as a miss
            del table[key]
            touched.discard(key)
            self.misses += 1
            return None

    # -- stores ---------------------------------------------------------
    def put_file(self, key: str, findings: list[Finding]) -> None:
        self._files[key] = [asdict(f) for f in findings]
        self._touched_files.add(key)

    def put_program(self, key: str, findings: list[Finding]) -> None:
        self._program[key] = [asdict(f) for f in findings]
        self._touched_program.add(key)

    # -- persistence ----------------------------------------------------
    def save(self) -> None:
        """Write both tables, pruned to the keys this run touched."""
        self.root.mkdir(parents=True, exist_ok=True)
        gitignore = self.root / ".gitignore"
        if not gitignore.exists():
            gitignore.write_text("*\n")
        for name, table, touched in (
            ("files.json", self._files, self._touched_files),
            ("program.json", self._program, self._touched_program),
        ):
            pruned = {k: v for k, v in table.items() if k in touched}
            (self.root / name).write_text(
                json.dumps(pruned, sort_keys=True)
            )
