"""Render a :class:`LintResult` as text, JSON, GitHub, or SARIF.

All formats emit findings in a deterministic order (path, line,
column, rule id) so golden tests and CI diffs are stable.  The SARIF
renderer targets SARIF 2.1.0 — the interchange format GitHub code
scanning ingests — and includes the full rule catalogue in the tool
descriptor so suppressed runs still document what was checked.
"""

from __future__ import annotations

import json

from repro.lint.core import Finding, Rule
from repro.lint.runner import LintResult

__all__ = ["FORMATS", "render"]

FORMATS = ("text", "json", "github", "sarif")

SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)


def render(
    result: LintResult, fmt: str, *, rules: list[Rule] | None = None
) -> str:
    if fmt == "text":
        return _render_text(result)
    if fmt == "json":
        return _render_json(result)
    if fmt == "github":
        return _render_github(result)
    if fmt == "sarif":
        return _render_sarif(result, rules or [])
    raise ValueError(f"unknown format {fmt!r}; expected one of {FORMATS}")


def _line(f: Finding) -> str:
    hint = f"  [hint: {f.hint}]" if f.hint else ""
    return (
        f"{f.path}:{f.line}:{f.col + 1}: {f.rule_id} "
        f"{f.severity}: {f.message}{hint}"
    )


def _render_text(result: LintResult) -> str:
    lines = [_line(f) for f in result.findings]
    for path, err in result.parse_errors:
        lines.append(f"{path}:1:1: RPL000 error: unparseable file ({err})")
    summary = (
        f"{len(result.findings)} finding(s) in "
        f"{result.files_checked} file(s)"
    )
    extras = []
    if result.suppressed:
        extras.append(f"{len(result.suppressed)} suppressed inline")
    if result.baselined:
        extras.append(f"{len(result.baselined)} accepted by baseline")
    if extras:
        summary += f" ({', '.join(extras)})"
    lines.append(summary)
    return "\n".join(lines)


def _finding_dict(f: Finding) -> dict[str, object]:
    return {
        "rule_id": f.rule_id,
        "severity": f.severity,
        "path": f.path,
        "line": f.line,
        "col": f.col,
        "message": f.message,
        "hint": f.hint,
    }


def _render_json(result: LintResult) -> str:
    payload = {
        "ok": result.ok,
        "files_checked": result.files_checked,
        "findings": [_finding_dict(f) for f in result.findings],
        "suppressed": [_finding_dict(f) for f in result.suppressed],
        "baselined": [_finding_dict(f) for f in result.baselined],
        "parse_errors": [
            {"path": p, "error": e} for p, e in result.parse_errors
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def _render_github(result: LintResult) -> str:
    """GitHub Actions workflow-command annotations."""
    lines = []
    for f in result.findings:
        level = "error" if f.severity == "error" else "warning"
        message = f.message.replace("\n", " ")
        if f.hint:
            message += f" (hint: {f.hint})"
        lines.append(
            f"::{level} file={f.path},line={f.line},col={f.col + 1},"
            f"title={f.rule_id}::{message}"
        )
    for path, err in result.parse_errors:
        lines.append(
            f"::error file={path},line=1,title=RPL000::unparseable "
            f"file ({err})"
        )
    return "\n".join(lines)


def _sarif_level(severity: str) -> str:
    return "error" if severity == "error" else "warning"


def _sarif_result(
    f: Finding, *, suppressed: bool = False, baselined: bool = False
) -> dict[str, object]:
    out: dict[str, object] = {
        "ruleId": f.rule_id,
        "level": _sarif_level(f.severity),
        "message": {
            "text": f.message + (f"\nhint: {f.hint}" if f.hint else "")
        },
        "locations": [
            {
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": f.path.replace("\\", "/"),
                        "uriBaseId": "SRCROOT",
                    },
                    "region": {
                        "startLine": max(f.line, 1),
                        "startColumn": f.col + 1,
                    },
                }
            }
        ],
    }
    if suppressed or baselined:
        out["suppressions"] = [
            {
                "kind": "inSource" if suppressed else "external",
                "justification": (
                    "inline repro-lint suppression"
                    if suppressed
                    else "accepted by committed baseline"
                ),
            }
        ]
    return out


def _render_sarif(result: LintResult, rules: list[Rule]) -> str:
    """SARIF 2.1.0 — one run, full rule catalogue, suppressions kept."""
    results = [_sarif_result(f) for f in result.findings]
    results += [
        _sarif_result(f, suppressed=True) for f in result.suppressed
    ]
    results += [
        _sarif_result(f, baselined=True) for f in result.baselined
    ]
    for path, err in result.parse_errors:
        results.append(
            {
                "ruleId": "RPL000",
                "level": "error",
                "message": {"text": f"unparseable file ({err})"},
                "locations": [
                    {
                        "physicalLocation": {
                            "artifactLocation": {
                                "uri": path.replace("\\", "/"),
                                "uriBaseId": "SRCROOT",
                            },
                            "region": {"startLine": 1, "startColumn": 1},
                        }
                    }
                ],
            }
        )
    payload = {
        "$schema": SARIF_SCHEMA,
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "informationUri": (
                            "https://example.invalid/repro-lint"
                        ),
                        "rules": [
                            {
                                "id": r.rule_id,
                                "name": r.name,
                                "shortDescription": {"text": r.summary},
                                "help": {"text": r.hint or r.summary},
                                "defaultConfiguration": {
                                    "level": _sarif_level(r.severity)
                                },
                            }
                            for r in sorted(
                                rules, key=lambda r: r.rule_id
                            )
                        ],
                    }
                },
                "columnKind": "utf16CodeUnits",
                "results": results,
            }
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=True)
