"""Render a :class:`LintResult` as text, JSON, or GitHub annotations.

All three formats emit findings in a deterministic order (path, line,
column, rule id) so golden tests and CI diffs are stable.
"""

from __future__ import annotations

import json

from repro.lint.core import Finding
from repro.lint.runner import LintResult

__all__ = ["FORMATS", "render"]

FORMATS = ("text", "json", "github")


def render(result: LintResult, fmt: str) -> str:
    if fmt == "text":
        return _render_text(result)
    if fmt == "json":
        return _render_json(result)
    if fmt == "github":
        return _render_github(result)
    raise ValueError(f"unknown format {fmt!r}; expected one of {FORMATS}")


def _line(f: Finding) -> str:
    hint = f"  [hint: {f.hint}]" if f.hint else ""
    return (
        f"{f.path}:{f.line}:{f.col + 1}: {f.rule_id} "
        f"{f.severity}: {f.message}{hint}"
    )


def _render_text(result: LintResult) -> str:
    lines = [_line(f) for f in result.findings]
    for path, err in result.parse_errors:
        lines.append(f"{path}:1:1: RPL000 error: unparseable file ({err})")
    summary = (
        f"{len(result.findings)} finding(s) in "
        f"{result.files_checked} file(s)"
    )
    extras = []
    if result.suppressed:
        extras.append(f"{len(result.suppressed)} suppressed inline")
    if result.baselined:
        extras.append(f"{len(result.baselined)} accepted by baseline")
    if extras:
        summary += f" ({', '.join(extras)})"
    lines.append(summary)
    return "\n".join(lines)


def _finding_dict(f: Finding) -> dict[str, object]:
    return {
        "rule_id": f.rule_id,
        "severity": f.severity,
        "path": f.path,
        "line": f.line,
        "col": f.col,
        "message": f.message,
        "hint": f.hint,
    }


def _render_json(result: LintResult) -> str:
    payload = {
        "ok": result.ok,
        "files_checked": result.files_checked,
        "findings": [_finding_dict(f) for f in result.findings],
        "suppressed": [_finding_dict(f) for f in result.suppressed],
        "baselined": [_finding_dict(f) for f in result.baselined],
        "parse_errors": [
            {"path": p, "error": e} for p, e in result.parse_errors
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def _render_github(result: LintResult) -> str:
    """GitHub Actions workflow-command annotations."""
    lines = []
    for f in result.findings:
        level = "error" if f.severity == "error" else "warning"
        message = f.message.replace("\n", " ")
        if f.hint:
            message += f" (hint: {f.hint})"
        lines.append(
            f"::{level} file={f.path},line={f.line},col={f.col + 1},"
            f"title={f.rule_id}::{message}"
        )
    for path, err in result.parse_errors:
        lines.append(
            f"::error file={path},line=1,title=RPL000::unparseable "
            f"file ({err})"
        )
    return "\n".join(lines)
