"""Committed lint baseline: accepted findings that do not gate CI.

The baseline file is JSON — one entry per accepted finding, keyed by
the line-number-free fingerprint ``(rule_id, path, stripped source
line)`` so entries survive edits that merely shift code up or down.
``--write-baseline`` regenerates it; a finding disappears from the
baseline the moment the offending line is fixed, so the debt can only
shrink.  ``--no-baseline`` ignores the file entirely (strict mode for
the scheduled fuzz-verify workflow).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.lint.core import Finding, SourceFile

__all__ = ["Baseline"]

_FORMAT_VERSION = 1


@dataclass
class Baseline:
    """Set of accepted finding fingerprints."""

    entries: set[tuple[str, str, str]] = field(default_factory=set)

    # ------------------------------------------------------------------
    @classmethod
    def load(cls, path: Path) -> "Baseline":
        data = json.loads(path.read_text())
        if data.get("version") != _FORMAT_VERSION:
            raise ValueError(
                f"unsupported baseline version {data.get('version')!r} "
                f"in {path}"
            )
        entries = {
            (e["rule_id"], e["path"], e["line_text"])
            for e in data.get("findings", [])
        }
        return cls(entries=entries)

    def save(self, path: Path) -> None:
        findings = [
            {"rule_id": r, "path": p, "line_text": t}
            for (r, p, t) in sorted(self.entries)
        ]
        payload = {
            "version": _FORMAT_VERSION,
            "comment": (
                "Accepted repro-lint findings. Regenerate with "
                "`python -m repro lint --write-baseline`. Entries are "
                "line-number-free; fixing the offending line removes "
                "the entry on the next --write-baseline."
            ),
            "findings": findings,
        }
        path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")

    # ------------------------------------------------------------------
    @staticmethod
    def fingerprint(
        finding: Finding, files: dict[str, SourceFile]
    ) -> tuple[str, str, str]:
        sf = files.get(finding.path)
        line_text = sf.source_line(finding.line) if sf is not None else ""
        return finding.fingerprint(line_text)

    @classmethod
    def from_findings(
        cls, findings: list[Finding], files: dict[str, SourceFile]
    ) -> "Baseline":
        return cls(
            entries={cls.fingerprint(f, files) for f in findings}
        )

    def contains(
        self, finding: Finding, files: dict[str, SourceFile]
    ) -> bool:
        return self.fingerprint(finding, files) in self.entries
