"""Concurrency checkers: lock-order graph, blocking and callbacks under locks.

The pass is whole-program and runs in three stages:

1. **lock discovery** — every ``self.x = threading.Lock()`` (or
   ``RLock``/``Condition``/``Semaphore``) becomes a lock identity
   ``Class.x``; module-level locks become ``module:x``.  Identity is
   per *attribute*, not per instance: two instances of one class share
   a lock ordering, which is exactly the granularity deadlock analysis
   wants.
2. **function summaries** — for every function: which locks it may
   acquire, whether it may wake external waiters (``Event.set`` /
   completion callbacks), and whether it may do expensive solver work
   (the domain list in :attr:`LintConfig.expensive_calls`).  Summaries
   propagate transitively over a resolved call graph (self-methods,
   same-module and imported functions, and attribute methods whose
   name is unique across the analyzed program).
3. **held-lock walk** — re-walk every function tracking the stack of
   held locks through ``with`` blocks and ``.acquire()``/``.release()``
   pairs, emitting:

   * **RPL001** — a cycle in the lock-acquisition graph (lock A held
     while taking B somewhere, B held while taking A elsewhere);
   * **RPL002** — a blocking or expensive call while a lock is held
     (``time.sleep``, foreign ``.wait()``, thread ``.join()``, file
     I/O, or anything in the expensive-call list);
   * **RPL003** — waking external waiters under a lock: ``Event.set``,
     functions that transitively complete futures, or calls through
     ``*_factory``/``*_callback`` values and callable parameters.

``Condition.wait``/``notify`` on the *held* condition are exempt (that
is how conditions are used); waiting on anything else while holding a
lock is the classic lost-wakeup/deadlock shape and is flagged.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.lint.core import (
    Checker,
    Finding,
    LintConfig,
    Rule,
    SourceFile,
    dotted_name,
    register,
)

__all__ = ["ConcurrencyChecker"]

_LOCK_FACTORIES = {
    "Lock",
    "RLock",
    "Condition",
    "Semaphore",
    "BoundedSemaphore",
}
_BLOCKING_DOTTED = {
    "time.sleep",
    "socket.create_connection",
    "urllib.request.urlopen",
}
_BLOCKING_PREFIXES = ("subprocess.", "requests.", "socket.")
_BLOCKING_BUILTINS = {"open", "input"}
_CALLBACK_ATTR_SUFFIXES = ("_factory", "_callback", "_hook", "_fn")


def _in_scope(module: str, prefixes: tuple[str, ...]) -> bool:
    return any(
        module == p or module.startswith(p + ".") for p in prefixes
    )


@dataclass
class _FunctionInfo:
    """One analyzed function and its flat call/lock facts."""

    key: str                       # "module:Class.name" or "module:name"
    module: str
    cls: str | None
    name: str
    node: ast.FunctionDef | ast.AsyncFunctionDef
    params: frozenset[str] = frozenset()
    calls: set[str] = field(default_factory=set)       # resolved callee keys
    acquires: set[str] = field(default_factory=set)    # direct lock ids
    wakes: bool = False
    expensive: bool = False
    blocks: bool = False           # contains a known blocking call
    # transitive closures (filled by the fixpoint)
    t_acquires: set[str] = field(default_factory=set)
    t_wakes: bool = False
    t_expensive: bool = False
    t_blocks: bool = False


@dataclass
class _Program:
    """Whole-program index built in stage 1."""

    files: list[SourceFile]
    config: LintConfig
    # lock identity -> defining (file, node) for diagnostics
    locks: dict[str, tuple[SourceFile, ast.AST]] = field(default_factory=dict)
    functions: dict[str, _FunctionInfo] = field(default_factory=dict)
    # bare function/class name -> keys (for import + unique-name resolution)
    by_name: dict[str, list[str]] = field(default_factory=dict)
    # method name -> keys across all classes
    methods: dict[str, list[str]] = field(default_factory=dict)
    # per module: imported name -> source module
    imports: dict[str, dict[str, str]] = field(default_factory=dict)


def _iter_functions(sf: SourceFile):
    """Yield (class_name | None, function_node) for every def."""
    for node in sf.tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield None, node
        elif isinstance(node, ast.ClassDef):
            for sub in node.body:
                if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    yield node.name, sub


def _is_lock_factory(call: ast.expr) -> bool:
    if not isinstance(call, ast.Call):
        return False
    name = dotted_name(call.func)
    if name is None:
        return False
    last = name.rsplit(".", 1)[-1]
    return last in _LOCK_FACTORIES


def _build_program(files: list[SourceFile], config: LintConfig) -> _Program:
    prog = _Program(files=files, config=config)
    for sf in files:
        imports: dict[str, str] = {}
        for node in ast.walk(sf.tree):
            if isinstance(node, ast.ImportFrom) and node.module:
                for alias in node.names:
                    imports[alias.asname or alias.name] = node.module
        prog.imports[sf.module] = imports

        for cls, fn in _iter_functions(sf):
            key = f"{sf.module}:{cls + '.' if cls else ''}{fn.name}"
            info = _FunctionInfo(
                key=key,
                module=sf.module,
                cls=cls,
                name=fn.name,
                node=fn,
                params=frozenset(
                    a.arg for a in fn.args.args + fn.args.kwonlyargs
                    if a.arg not in ("self", "cls")
                ),
            )
            prog.functions[key] = info
            prog.by_name.setdefault(fn.name, []).append(key)
            if cls is not None:
                prog.methods.setdefault(fn.name, []).append(key)

        # lock discovery: self.x = Lock() in any method; X = Lock() at top
        for cls, fn in _iter_functions(sf):
            for node in ast.walk(fn):
                if not isinstance(node, ast.Assign) or not _is_lock_factory(
                    node.value
                ):
                    continue
                for tgt in node.targets:
                    if (
                        isinstance(tgt, ast.Attribute)
                        and isinstance(tgt.value, ast.Name)
                        and tgt.value.id == "self"
                        and cls is not None
                    ):
                        prog.locks[f"{cls}.{tgt.attr}"] = (sf, node)
        for node in sf.tree.body:
            if isinstance(node, ast.Assign) and _is_lock_factory(node.value):
                for tgt in node.targets:
                    if isinstance(tgt, ast.Name):
                        prog.locks[f"{sf.module}:{tgt.id}"] = (sf, node)
    return prog


class _LockResolver:
    """Maps expressions like ``self._cond`` to lock identities."""

    def __init__(self, prog: _Program, sf: SourceFile, cls: str | None):
        self.prog = prog
        self.sf = sf
        self.cls = cls

    def lock_id(self, expr: ast.expr) -> str | None:
        name = dotted_name(expr)
        if name is None:
            return None
        if name.startswith("self.") and self.cls is not None:
            candidate = f"{self.cls}.{name[5:]}"
            if candidate in self.prog.locks:
                return candidate
        if "." not in name:
            candidate = f"{self.sf.module}:{name}"
            if candidate in self.prog.locks:
                return candidate
        # a lock attribute of a collaborator: match by attribute name on
        # any known class (e.g. ``self.metrics._lock`` -> ServiceMetrics)
        attr = name.rsplit(".", 1)[-1]
        matches = [
            lid for lid in self.prog.locks if lid.split(".")[-1] == attr
        ]
        if len(matches) == 1:
            return matches[0]
        return None


def _resolve_call(
    prog: _Program, sf: SourceFile, cls: str | None, call: ast.Call
) -> str | None:
    """Best-effort mapping of a call site to an analyzed function key."""
    func = call.func
    if isinstance(func, ast.Name):
        name = func.id
        local = f"{sf.module}:{name}"
        if local in prog.functions:
            return local
        src = prog.imports.get(sf.module, {}).get(name)
        if src is not None:
            for suffix in (f"{src}:{name}",):
                if suffix in prog.functions:
                    return suffix
        # class constructor in the analyzed set -> its __init__
        init = f"{sf.module}:{name}.__init__"
        if init in prog.functions:
            return init
        return None
    if isinstance(func, ast.Attribute):
        recv = dotted_name(func.value)
        method = func.attr
        if recv == "self" and cls is not None:
            key = f"{sf.module}:{cls}.{method}"
            if key in prog.functions:
                return key
        # unique method name anywhere in the program
        candidates = prog.methods.get(method, [])
        if len(candidates) == 1:
            return candidates[0]
    return None


def _summarize(prog: _Program) -> None:
    """Fill direct facts, then close them transitively to a fixpoint."""
    for info in prog.functions.values():
        sf = next(f for f in prog.files if f.module == info.module)
        resolver = _LockResolver(prog, sf, info.cls)
        for node in ast.walk(info.node):
            if not isinstance(node, ast.Call):
                continue
            callee = _resolve_call(prog, sf, info.cls, node)
            if callee is not None and callee != info.key:
                info.calls.add(callee)
            name = dotted_name(node.func)
            if isinstance(node.func, ast.Attribute):
                if node.func.attr == "acquire":
                    lid = resolver.lock_id(node.func.value)
                    if lid is not None:
                        info.acquires.add(lid)
                if node.func.attr == "set" and not node.args:
                    info.wakes = True
            if name is not None:
                last = name.rsplit(".", 1)[-1]
                if last in prog.config.expensive_calls:
                    info.expensive = True
                if name in _BLOCKING_DOTTED or any(
                    name.startswith(p) for p in _BLOCKING_PREFIXES
                ):
                    info.blocks = True
        for node in ast.walk(info.node):
            if isinstance(node, ast.With):
                for item in node.items:
                    lid = resolver.lock_id(item.context_expr)
                    if lid is not None:
                        info.acquires.add(lid)

    # transitive closure over the resolved call graph
    for info in prog.functions.values():
        info.t_acquires = set(info.acquires)
        info.t_wakes = info.wakes
        info.t_expensive = info.expensive
        info.t_blocks = info.blocks
    changed = True
    while changed:
        changed = False
        for info in prog.functions.values():
            for callee_key in info.calls:
                callee = prog.functions.get(callee_key)
                if callee is None:
                    continue
                before = (
                    len(info.t_acquires), info.t_wakes,
                    info.t_expensive, info.t_blocks,
                )
                info.t_acquires |= callee.t_acquires
                info.t_wakes = info.t_wakes or callee.t_wakes
                info.t_expensive = info.t_expensive or callee.t_expensive
                info.t_blocks = info.t_blocks or callee.t_blocks
                if before != (
                    len(info.t_acquires), info.t_wakes,
                    info.t_expensive, info.t_blocks,
                ):
                    changed = True


@register
class ConcurrencyChecker(Checker):
    scope = "program"
    rules = (
        Rule(
            "RPL001",
            "lock-order-cycle",
            "error",
            "Two locks are acquired in opposite orders on different "
            "paths; with two threads this deadlocks.",
            hint="pick one global order for these locks and acquire "
            "them in that order everywhere",
        ),
        Rule(
            "RPL002",
            "blocking-call-under-lock",
            "error",
            "A blocking or expensive call runs while a lock is held, "
            "stalling every other thread that needs the lock.",
            hint="move the slow work outside the critical section; "
            "snapshot state under the lock, compute after releasing it",
        ),
        Rule(
            "RPL003",
            "callback-under-lock",
            "warning",
            "External code (completion events, factories, callbacks) "
            "is invoked while an internal lock is held, inviting "
            "re-entrancy deadlocks.",
            hint="collect the callbacks under the lock, invoke them "
            "after releasing it",
        ),
    )

    def check(
        self, files: list[SourceFile], config: LintConfig
    ) -> list[Finding]:
        scoped = [
            f for f in files if _in_scope(f.module, config.concurrency_modules)
        ]
        if not scoped:
            return []
        prog = _build_program(scoped, config)
        _summarize(prog)
        findings: list[Finding] = []
        # lock graph: edge (held -> taken) with one witness location each
        edges: dict[tuple[str, str], tuple[SourceFile, ast.AST]] = {}
        for info in prog.functions.values():
            sf = next(f for f in prog.files if f.module == info.module)
            self._walk_function(prog, sf, info, findings, edges)
        findings.extend(self._lock_cycles(edges))
        return findings

    # ------------------------------------------------------------------
    def _walk_function(
        self,
        prog: _Program,
        sf: SourceFile,
        info: _FunctionInfo,
        findings: list[Finding],
        edges: dict[tuple[str, str], tuple[SourceFile, ast.AST]],
    ) -> None:
        resolver = _LockResolver(prog, sf, info.cls)

        def walk(stmts: list[ast.stmt], held: tuple[str, ...]) -> None:
            for stmt in stmts:
                if isinstance(stmt, ast.With):
                    inner = list(held)
                    for item in stmt.items:
                        lid = resolver.lock_id(item.context_expr)
                        if lid is not None:
                            self._note_acquire(
                                prog, sf, item.context_expr, lid, held,
                                findings, edges,
                            )
                            inner.append(lid)
                    walk(stmt.body, tuple(inner))
                    continue
                taken = list(held)
                for call in self._calls_in(stmt):
                    lid = self._acquire_target(resolver, call)
                    if lid is not None:
                        self._note_acquire(
                            prog, sf, call, lid, tuple(taken), findings, edges
                        )
                        taken.append(lid)
                        continue
                    rid = self._release_target(resolver, call)
                    if rid is not None and rid in taken:
                        taken.remove(rid)
                        continue
                    if held or tuple(taken) != held:
                        self._check_call_under_locks(
                            prog, sf, info, call,
                            tuple(taken) if taken else held,
                            findings, edges,
                        )
                held_now = tuple(taken)
                for body in self._nested_bodies(stmt):
                    walk(body, held_now)
                held = held_now

        walk(list(info.node.body), ())

    @staticmethod
    def _nested_bodies(stmt: ast.stmt) -> list[list[ast.stmt]]:
        bodies: list[list[ast.stmt]] = []
        for attr in ("body", "orelse", "finalbody"):
            block = getattr(stmt, attr, None)
            if block and not isinstance(stmt, ast.With):
                bodies.append(block)
        for handler in getattr(stmt, "handlers", []) or []:
            bodies.append(handler.body)
        return bodies

    @staticmethod
    def _calls_in(stmt: ast.stmt) -> list[ast.Call]:
        """Calls in the statement's own expressions (not nested blocks)."""
        calls: list[ast.Call] = []

        class V(ast.NodeVisitor):
            def visit_Call(self, node: ast.Call) -> None:
                calls.append(node)
                self.generic_visit(node)

            # do not descend into nested statement blocks or defs
            def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
                pass

            def visit_AsyncFunctionDef(
                self, node: ast.AsyncFunctionDef
            ) -> None:
                pass

            def visit_Lambda(self, node: ast.Lambda) -> None:
                pass

        v = V()
        if isinstance(stmt, (ast.If, ast.While)):
            v.visit(stmt.test)
        elif isinstance(stmt, ast.For):
            v.visit(stmt.iter)
        elif isinstance(stmt, (ast.Try,)):
            pass
        else:
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.expr):
                    v.visit(child)
        return calls

    @staticmethod
    def _acquire_target(
        resolver: _LockResolver, call: ast.Call
    ) -> str | None:
        if (
            isinstance(call.func, ast.Attribute)
            and call.func.attr == "acquire"
        ):
            return resolver.lock_id(call.func.value)
        return None

    @staticmethod
    def _release_target(
        resolver: _LockResolver, call: ast.Call
    ) -> str | None:
        if (
            isinstance(call.func, ast.Attribute)
            and call.func.attr == "release"
        ):
            return resolver.lock_id(call.func.value)
        return None

    def _note_acquire(
        self,
        prog: _Program,
        sf: SourceFile,
        node: ast.AST,
        lock: str,
        held: tuple[str, ...],
        findings: list[Finding],
        edges: dict[tuple[str, str], tuple[SourceFile, ast.AST]],
    ) -> None:
        for h in held:
            if h != lock:
                edges.setdefault((h, lock), (sf, node))

    def _check_call_under_locks(
        self,
        prog: _Program,
        sf: SourceFile,
        info: _FunctionInfo,
        call: ast.Call,
        held: tuple[str, ...],
        findings: list[Finding],
        edges: dict[tuple[str, str], tuple[SourceFile, ast.AST]],
    ) -> None:
        if not held:
            return
        resolver = _LockResolver(prog, sf, info.cls)
        name = dotted_name(call.func) or ""
        last = name.rsplit(".", 1)[-1]
        held_desc = ", ".join(sorted(set(held)))

        callee_key = _resolve_call(prog, sf, info.cls, call)
        callee = prog.functions.get(callee_key) if callee_key else None
        if callee is not None:
            for lid in sorted(callee.t_acquires):
                for h in held:
                    if h != lid:
                        edges.setdefault((h, lid), (sf, call))

        # -- RPL002: blocking / expensive ---------------------------------
        blocking_reason: str | None = None
        if name in _BLOCKING_DOTTED or any(
            name.startswith(p) for p in _BLOCKING_PREFIXES
        ):
            blocking_reason = f"blocking call {name}()"
        elif isinstance(call.func, ast.Name) and name in _BLOCKING_BUILTINS:
            blocking_reason = f"blocking builtin {name}()"
        elif isinstance(call.func, ast.Attribute) and call.func.attr == "wait":
            target = resolver.lock_id(call.func.value)
            if target is None or target not in held:
                blocking_reason = (
                    f"waiting on {dotted_name(call.func.value) or 'an object'}"
                    " that is not the held lock"
                )
        elif isinstance(call.func, ast.Attribute) and call.func.attr == "join":
            recv = (dotted_name(call.func.value) or "").lower()
            if any(t in recv for t in ("thread", "worker", "proc")):
                blocking_reason = f"joining {recv}"
        elif last in prog.config.expensive_calls:
            blocking_reason = f"expensive solver call {last}()"
        elif callee is not None and callee.t_expensive:
            blocking_reason = (
                f"{last}() transitively performs expensive solver work"
            )
        elif callee is not None and callee.t_blocks:
            blocking_reason = f"{last}() transitively blocks"
        if blocking_reason is not None:
            findings.append(
                self.finding(
                    "RPL002", sf, call,
                    f"{blocking_reason} while holding {held_desc}",
                )
            )
            return

        # -- RPL003: waking external code ---------------------------------
        wake_reason: str | None = None
        if isinstance(call.func, ast.Attribute):
            attr = call.func.attr
            if attr == "set" and not call.args:
                wake_reason = f"{name}() wakes waiters"
            elif attr.endswith(_CALLBACK_ATTR_SUFFIXES):
                wake_reason = f"callback {name}() invoked"
            elif attr in ("notify", "notify_all"):
                target = resolver.lock_id(call.func.value)
                if target is not None and target not in held:
                    wake_reason = f"{name}() notifies a foreign condition"
        elif isinstance(call.func, ast.Name):
            if call.func.id in info.params:
                wake_reason = (
                    f"callable parameter {call.func.id}() invoked"
                )
            elif call.func.id.endswith(_CALLBACK_ATTR_SUFFIXES):
                wake_reason = f"callback {call.func.id}() invoked"
        if wake_reason is None and callee is not None and callee.t_wakes:
            wake_reason = f"{last}() transitively wakes external waiters"
        if wake_reason is not None:
            findings.append(
                self.finding(
                    "RPL003", sf, call,
                    f"{wake_reason} while holding {held_desc}",
                )
            )

    # ------------------------------------------------------------------
    def _lock_cycles(
        self, edges: dict[tuple[str, str], tuple[SourceFile, ast.AST]]
    ) -> list[Finding]:
        graph: dict[str, list[str]] = {}
        for a, b in edges:
            graph.setdefault(a, []).append(b)
        for succ in graph.values():
            succ.sort()
        findings: list[Finding] = []
        reported: set[frozenset[str]] = set()
        for start in sorted(graph):
            path: list[str] = []

            def dfs(node: str) -> list[str] | None:
                if node in path:
                    return path[path.index(node):]
                path.append(node)
                for nxt in graph.get(node, []):
                    cycle = dfs(nxt)
                    if cycle is not None:
                        return cycle
                path.pop()
                return None

            cycle = dfs(start)
            if cycle is None or frozenset(cycle) in reported:
                continue
            reported.add(frozenset(cycle))
            first_edge = (cycle[0], cycle[1 % len(cycle)])
            sf, node = edges.get(first_edge) or next(iter(edges.values()))
            order = " -> ".join(cycle + [cycle[0]])
            findings.append(
                self.finding(
                    "RPL001", sf, node,
                    f"lock-order cycle: {order}",
                )
            )
        return findings
