"""Cache-key purity lint (RPL030).

The factorization cache (:mod:`repro.service.cache`) is keyed by the
values produced in :mod:`repro.service.keys`.  A key function that
reads ambient mutable state — environment variables, wall clock, RNG,
process-global module variables — produces keys that differ between
otherwise-identical requests, silently destroying the cache hit rate
(or worse, colliding entries that should be distinct).

The checker covers every function in :attr:`LintConfig.key_modules`
plus any function named ``*_key``/``*_fingerprint`` anywhere in the
linted tree, and flags:

* ``os.environ`` / ``os.getenv`` / ``os.environb`` reads;
* wall-clock reads (``time.*``, ``datetime.now``);
* randomness (``random.*``, ``np.random.*``, ``uuid.uuid4``);
* ``open()`` / ``input()`` and ``Path.read_*`` I/O;
* ``globals()`` and writes-then-reads of module-level mutable globals
  (a module-level name assigned a dict/list/set literal and read inside
  a key function).  Module-level *constants* (UPPER_CASE names bound to
  literals, tuples, or frozensets) are fine.
"""

from __future__ import annotations

import ast

from repro.lint.core import (
    Checker,
    Finding,
    LintConfig,
    Rule,
    SourceFile,
    dotted_name,
    register,
)

__all__ = ["PurityChecker"]

_ENV_READS = {"os.environ", "os.environb"}
_IMPURE_CALLS = {
    "os.getenv",
    "os.environ.get",
    "os.urandom",
    "time.time",
    "time.time_ns",
    "time.perf_counter",
    "time.monotonic",
    "datetime.now",
    "datetime.utcnow",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "uuid.uuid1",
    "uuid.uuid4",
    "globals",
    "open",
    "input",
}
_IMPURE_PREFIXES = ("random.", "np.random.", "numpy.random.", "secrets.")
_KEY_NAME_SUFFIXES = ("_key", "_fingerprint")


def _in_scope(module: str, prefixes: tuple[str, ...]) -> bool:
    return any(module == p or module.startswith(p + ".") for p in prefixes)


def _is_mutable_literal(node: ast.expr) -> bool:
    return isinstance(node, (ast.Dict, ast.List, ast.Set, ast.DictComp,
                             ast.ListComp, ast.SetComp)) or (
        isinstance(node, ast.Call)
        and dotted_name(node.func) in ("dict", "list", "set", "defaultdict",
                                       "OrderedDict", "Counter")
    )


def _module_mutable_globals(tree: ast.Module) -> set[str]:
    """Module-level names bound to mutable containers (non-constant)."""
    out: set[str] = set()
    for stmt in tree.body:
        targets: list[ast.expr] = []
        value: ast.expr | None = None
        if isinstance(stmt, ast.Assign):
            targets, value = stmt.targets, stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets, value = [stmt.target], stmt.value
        if value is None or not _is_mutable_literal(value):
            continue
        for tgt in targets:
            if isinstance(tgt, ast.Name):
                out.add(tgt.id)
    return out


class _FunctionScan(ast.NodeVisitor):
    def __init__(
        self,
        checker: "PurityChecker",
        sf: SourceFile,
        fn: ast.FunctionDef | ast.AsyncFunctionDef,
        mutable_globals: set[str],
    ):
        self.checker = checker
        self.sf = sf
        self.fn = fn
        self.mutable_globals = mutable_globals
        self.locals: set[str] = {a.arg for a in fn.args.args}
        self.locals |= {a.arg for a in fn.args.kwonlyargs}
        if fn.args.vararg:
            self.locals.add(fn.args.vararg.arg)
        if fn.args.kwarg:
            self.locals.add(fn.args.kwarg.arg)
        self.findings: list[Finding] = []

    def _flag(self, node: ast.AST, message: str) -> None:
        self.findings.append(
            self.checker.finding(
                "RPL030", self.sf, node,
                f"{message} inside cache-key function "
                f"{self.fn.name}()",
            )
        )

    def visit_Assign(self, node: ast.Assign) -> None:
        for tgt in node.targets:
            if isinstance(tgt, ast.Name):
                self.locals.add(tgt.id)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if isinstance(node.target, ast.Name):
            self.locals.add(node.target.id)
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        name = dotted_name(node.func) or ""
        if name in _IMPURE_CALLS:
            self._flag(node, f"impure call {name}()")
        elif any(name.startswith(p) for p in _IMPURE_PREFIXES):
            self._flag(node, f"impure call {name}()")
        elif name.startswith("os.environ"):
            self._flag(node, f"environment read {name}()")
        self.generic_visit(node)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        name = dotted_name(node)
        if name in _ENV_READS:
            self._flag(node, f"environment read {name}")
            return  # do not also visit the child os.environ chain
        self.generic_visit(node)

    def visit_Name(self, node: ast.Name) -> None:
        if (
            isinstance(node.ctx, ast.Load)
            and node.id in self.mutable_globals
            and node.id not in self.locals
        ):
            self._flag(
                node,
                f"read of mutable module global {node.id!r}",
            )
        self.generic_visit(node)


def _is_key_function(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
    return fn.name.endswith(_KEY_NAME_SUFFIXES)


@register
class PurityChecker(Checker):
    rules = (
        Rule(
            "RPL030",
            "impure-cache-key",
            "error",
            "A function feeding cache keys reads ambient mutable state, "
            "so identical requests can produce different keys.",
            hint="derive keys from the function's arguments only; pass "
            "configuration in explicitly",
        ),
    )

    def check(
        self, files: list[SourceFile], config: LintConfig
    ) -> list[Finding]:
        findings: list[Finding] = []
        for sf in files:
            whole_module = _in_scope(sf.module, config.key_modules)
            mutable_globals = _module_mutable_globals(sf.tree)
            for node in ast.walk(sf.tree):
                if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                if not (whole_module or _is_key_function(node)):
                    continue
                scan = _FunctionScan(self, sf, node, mutable_globals)
                for stmt in node.body:
                    scan.visit(stmt)
                findings.extend(scan.findings)
        return findings
