"""Metrics/trace hygiene lints (RPL040, RPL041).

Dashboards and the Chrome-trace exporter are built around *statically
knowable* names:

* **RPL040** — counter/histogram/gauge names passed to
  ``*.incr(...)`` / ``*.observe(...)`` / ``*.gauge(...)`` must be
  statically known: a string literal, an f-string with a literal
  prefix, or a local name only ever bound to literals (including loop
  variables drawing from a literal collection, the
  ``for name, value in (("a", x), ("b", y))`` idiom).  A fully dynamic
  name creates unbounded metric cardinality and dashboards that cannot
  enumerate their own series.
* **RPL041** — engine names fed to ``span(...)`` must start with one of
  the engine kinds the trace exporter sorts by
  (``repro.gpu.trace._ENGINE_ORDER``: ``cpu`` / ``gpu`` / ``nic``,
  matched on the first dot-component).  An unknown kind silently sorts
  last in the exported trace and breaks the lane layout.  Dynamic
  *suffixes* are legitimate (``f"cpu.worker{i}"``) as long as the
  static prefix pins the kind.  Cluster engines may carry a
  ``node{i}.``/``rank{i}.`` namespace in front of the kind
  (``"node0.cpu"``, ``f"rank{r}.nic"``) — the exporter groups those
  node-major — so the kind check moves to the component after the
  namespace.
"""

from __future__ import annotations

import ast
import re

from repro.lint.core import (
    Checker,
    Finding,
    LintConfig,
    Rule,
    SourceFile,
    register,
)

__all__ = ["MetricsChecker"]

_METRIC_METHODS = {"incr", "observe", "gauge"}
_SPAN_METHODS = {"span"}

#: fleet namespaces the trace exporter groups node-major; a first
#: dot-component matching one defers the kind check to the next one
_NAMESPACES = ("node", "rank")
_NS_COMPONENT = re.compile(r"^(?:node|rank)\d*$")


def _is_literal_str(node: ast.expr) -> bool:
    return isinstance(node, ast.Constant) and isinstance(node.value, str)


def _static_prefix(node: ast.expr) -> str | None:
    """Statically-known leading text of a string expression.

    Literals are fully known; an f-string is known up to its first
    interpolation; string concatenation is known up to its left-most
    dynamic part; anything else is unknown (None).
    """
    if _is_literal_str(node):
        return node.value
    if isinstance(node, ast.JoinedStr):
        prefix = ""
        for part in node.values:
            if _is_literal_str(part):
                prefix += part.value
            else:
                return prefix
        return prefix
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Add):
        return _static_prefix(node.left)
    return None


class _NameTable(ast.NodeVisitor):
    """Per-function facts about local names used as metric names.

    ``static`` holds names whose every observed binding is a statically
    prefixed string (conflicting bindings poison the entry).
    ``prefixes`` maps a name to its static prefix when one exists.
    """

    def __init__(self) -> None:
        self.static: dict[str, bool] = {}
        self.prefixes: dict[str, str] = {}

    def _mark(self, name: str, ok: bool, prefix: str | None = None) -> None:
        self.static[name] = self.static.get(name, True) and ok
        if prefix is not None and name not in self.prefixes:
            self.prefixes[name] = prefix

    def visit_Assign(self, node: ast.Assign) -> None:
        pref = _static_prefix(node.value)
        for tgt in node.targets:
            if isinstance(tgt, ast.Name):
                self._mark(tgt.id, pref is not None, pref)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if isinstance(node.target, ast.Name) and node.value is not None:
            pref = _static_prefix(node.value)
            self._mark(node.target.id, pref is not None, pref)
        self.generic_visit(node)

    def visit_For(self, node: ast.For) -> None:
        self._bind_loop(node.target, node.iter)
        self.generic_visit(node)

    def _bind_loop(self, target: ast.expr, it: ast.expr) -> None:
        if not isinstance(it, (ast.Tuple, ast.List)):
            # unknown iterable: poison every name the target binds
            for name in _target_names(target):
                self._mark(name, False)
            return
        if isinstance(target, ast.Name):
            self._mark(
                target.id, all(_is_literal_str(e) for e in it.elts)
            )
            return
        if isinstance(target, (ast.Tuple, ast.List)):
            # slot i of the target is static iff every element of the
            # literal collection is a tuple whose slot i is a literal str
            for i, t in enumerate(target.elts):
                if not isinstance(t, ast.Name):
                    continue
                ok = all(
                    isinstance(e, (ast.Tuple, ast.List))
                    and i < len(e.elts)
                    and _is_literal_str(e.elts[i])
                    for e in it.elts
                )
                self._mark(t.id, ok)


def _target_names(target: ast.expr) -> list[str]:
    if isinstance(target, ast.Name):
        return [target.id]
    if isinstance(target, (ast.Tuple, ast.List)):
        out: list[str] = []
        for elt in target.elts:
            out.extend(_target_names(elt))
        return out
    return []


@register
class MetricsChecker(Checker):
    rules = (
        Rule(
            "RPL040",
            "non-static-metric-name",
            "warning",
            "A metric name that is not statically known creates "
            "unbounded cardinality and undiscoverable dashboards.",
            hint="use a string literal (or a local bound only to "
            "literals) for incr/observe/gauge names",
        ),
        Rule(
            "RPL041",
            "unknown-engine-kind",
            "error",
            "A span() engine name whose first dot-component is not a "
            "known engine kind sorts last in the exported trace.",
            hint="prefix the engine name with cpu/gpu/nic, e.g. "
            "f\"cpu.worker{i}\" (a node{i}./rank{i}. fleet namespace "
            "may come first)",
        ),
    )

    def check(
        self, files: list[SourceFile], config: LintConfig
    ) -> list[Finding]:
        kinds = config.engine_kinds_tuple()
        findings: list[Finding] = []
        for sf in files:
            for fn in ast.walk(sf.tree):
                if not isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                table = _NameTable()
                for stmt in fn.body:
                    table.visit(stmt)
                for node in ast.walk(fn):
                    if not (
                        isinstance(node, ast.Call)
                        and isinstance(node.func, ast.Attribute)
                    ):
                        continue
                    meth = node.func.attr
                    if meth in _METRIC_METHODS and node.args:
                        self._check_metric_name(
                            sf, node, node.args[0], table, findings
                        )
                    elif meth in _SPAN_METHODS:
                        self._check_span_engine(
                            sf, node, table, kinds, findings
                        )
        return findings

    # ------------------------------------------------------------------
    def _check_metric_name(
        self,
        sf: SourceFile,
        call: ast.Call,
        arg: ast.expr,
        table: _NameTable,
        findings: list[Finding],
    ) -> None:
        if _static_prefix(arg) is not None:
            return
        if isinstance(arg, ast.Name) and table.static.get(arg.id, False):
            return
        findings.append(
            self.finding(
                "RPL040", sf, call,
                f"metric name passed to {call.func.attr}() is not "
                "statically known",
            )
        )

    def _check_span_engine(
        self,
        sf: SourceFile,
        call: ast.Call,
        table: _NameTable,
        kinds: tuple[str, ...],
        findings: list[Finding],
    ) -> None:
        engine: ast.expr | None = None
        for kw in call.keywords:
            if kw.arg == "engine":
                engine = kw.value
        if engine is None and len(call.args) >= 3:
            engine = call.args[2]
        if engine is None:
            return
        prefix = _static_prefix(engine)
        if prefix is None and isinstance(engine, ast.Name):
            prefix = table.prefixes.get(engine.id)
        if prefix is None:
            return  # fully dynamic engine names are out of static reach
        shown = prefix
        first = prefix.split(".", 1)[0]
        if _NS_COMPONENT.match(first):
            # namespaced cluster engine: strip node{i}./rank{i}. and
            # check the kind on the component that follows
            prefix = prefix.partition(".")[2]
            if not prefix:
                # the kind is interpolated (f"node{r}.cpu" statically
                # yields only "node") — out of static reach, do not guess
                return
            first = prefix.split(".", 1)[0]
        if first in kinds:
            return
        if "." not in prefix and any(
            k.startswith(first) for k in (*kinds, *_NAMESPACES)
        ):
            # the static prefix ends mid-component ("c" from f"c{x}");
            # it could still complete to a known kind or namespace — do
            # not guess
            return
        findings.append(
            self.finding(
                "RPL041", sf, call,
                f"engine name starting {shown!r} does not begin with a "
                f"known engine kind {'/'.join(kinds)} (optionally "
                "namespaced node{i}./rank{i}.)",
            )
        )
