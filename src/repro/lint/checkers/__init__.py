"""Domain checkers for ``repro.lint``.

Importing this package registers every built-in checker; use
:func:`all_checkers` to get fresh instances in registration order.
"""

from __future__ import annotations

from repro.lint.checkers import (  # noqa: F401  (import = register)
    allocator,
    concurrency,
    determinism,
    metrics,
    purity,
    suppressions,
)
from repro.lint import flow  # noqa: F401  (import = register)
from repro.lint.core import Checker, registry

__all__ = ["all_checkers"]


def all_checkers() -> list[Checker]:
    return [cls() for cls in registry]
