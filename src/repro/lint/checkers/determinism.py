"""Determinism lints for the reproducible-engine modules.

The dynamic runtime, the fault injector and the verification lattice
promise *bit-for-bit* reproducibility: identical inputs produce
identical schedules, fingerprints and fault outcomes.  That promise is
one careless call away from silently breaking, so inside the modules
listed in :attr:`LintConfig.deterministic_modules` the checker forbids:

* **RPL010** — wall-clock reads (``time.time``, ``perf_counter``,
  ``monotonic``, ``datetime.now``).  The runtime has a virtual clock
  (:class:`repro.runtime.events.VirtualClock`); anything else makes a
  run depend on the machine's load.
* **RPL011** — unseeded randomness: ``np.random.default_rng()`` with no
  seed, the legacy ``np.random.*`` global-state API, and the stdlib
  ``random`` module.  The discipline to mirror is
  :mod:`repro.runtime.faults`, which seeds a fresh generator from
  ``(seed, sid, attempt)`` for every draw.
* **RPL012** — iteration over sets (literals, ``set()``/``frozenset()``
  values, or locals/attributes assigned from them).  Set order depends
  on ``PYTHONHASHSEED`` for strings; ``sorted(...)`` restores a stable
  order.  Conversions that do not expose order (``sorted``, ``len``,
  ``min``/``max``, membership, ``set``/``frozenset``) are allowed.
"""

from __future__ import annotations

import ast

from repro.lint.core import (
    Checker,
    Finding,
    LintConfig,
    Rule,
    SourceFile,
    dotted_name,
    register,
)

__all__ = ["DeterminismChecker"]

_WALL_CLOCK = {
    "time.time",
    "time.time_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.process_time",
    "datetime.now",
    "datetime.utcnow",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
}
_WALL_CLOCK_BARE = {
    "perf_counter",
    "perf_counter_ns",
    "monotonic",
    "monotonic_ns",
    "process_time",
    "time_ns",
}
_ORDER_SAFE_WRAPPERS = {"sorted", "len", "min", "max", "set", "frozenset"}


def _in_scope(module: str, prefixes: tuple[str, ...]) -> bool:
    return any(module == p or module.startswith(p + ".") for p in prefixes)


def _is_set_expr(node: ast.expr) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        name = dotted_name(node.func)
        return name in ("set", "frozenset")
    return False


class _ModuleVisitor(ast.NodeVisitor):
    def __init__(self, checker: "DeterminismChecker", sf: SourceFile):
        self.checker = checker
        self.sf = sf
        self.findings: list[Finding] = []
        self.time_aliases: set[str] = set()    # names imported from time
        self.random_modules: set[str] = set()  # stdlib random module aliases
        self.set_names: set[str] = set()       # locals/attrs holding sets

    # -- imports -----------------------------------------------------------
    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module == "time":
            for alias in node.names:
                self.time_aliases.add(alias.asname or alias.name)
        if node.module == "random":
            for alias in node.names:
                # from random import random / randint / Random ...
                self.time_aliases.discard(alias.asname or alias.name)
                self.random_modules.add(alias.asname or alias.name)
        self.generic_visit(node)

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            if alias.name == "random":
                self.random_modules.add(alias.asname or "random")
        self.generic_visit(node)

    # -- assignments feed the set-name table -------------------------------
    def _note_target(self, target: ast.expr, value: ast.expr | None) -> None:
        if value is None or not _is_set_expr(value):
            return
        name = dotted_name(target)
        if name is not None:
            self.set_names.add(name)

    def visit_Assign(self, node: ast.Assign) -> None:
        for tgt in node.targets:
            self._note_target(tgt, node.value)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        self._note_target(node.target, node.value)
        ann = dotted_name(node.annotation)
        if ann in ("set", "frozenset") or (
            isinstance(node.annotation, ast.Subscript)
            and dotted_name(node.annotation.value) in ("set", "frozenset")
        ):
            name = dotted_name(node.target)
            if name is not None:
                self.set_names.add(name)
        self.generic_visit(node)

    # -- calls: wall clock + RNG ------------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        name = dotted_name(node.func) or ""
        if name in _WALL_CLOCK or (
            name in self.time_aliases and name in _WALL_CLOCK_BARE
        ):
            self.findings.append(
                self.checker.finding(
                    "RPL010", self.sf, node,
                    f"wall-clock read {name}() inside the deterministic "
                    f"engine ({self.sf.module})",
                )
            )
        self._check_rng(node, name)
        if name in _ORDER_SAFE_WRAPPERS:
            # sorted(set_expr) etc. are exactly the sanctioned pattern:
            # do not descend into the argument looking for RPL012
            for arg in node.args:
                if not (_is_set_expr(arg) or dotted_name(arg) in self.set_names):
                    self.visit(arg)
            for kw in node.keywords:
                self.visit(kw.value)
            return
        self._check_order_exposing_call(node, name)
        self.generic_visit(node)

    def _check_rng(self, node: ast.Call, name: str) -> None:
        if name.endswith("default_rng") and not node.args and not node.keywords:
            self.findings.append(
                self.checker.finding(
                    "RPL011", self.sf, node,
                    "default_rng() without a seed is entropy-seeded; "
                    "derive the seed from the run configuration "
                    "(see repro.runtime.faults)",
                )
            )
            return
        parts = name.split(".")
        if (
            len(parts) >= 2
            and parts[-2] == "random"
            and parts[0] in ("np", "numpy")
            and parts[-1] != "default_rng"
        ):
            self.findings.append(
                self.checker.finding(
                    "RPL011", self.sf, node,
                    f"legacy global-state RNG {name}(); use a seeded "
                    "np.random.default_rng generator",
                )
            )
            return
        if len(parts) == 2 and parts[0] in self.random_modules:
            self.findings.append(
                self.checker.finding(
                    "RPL011", self.sf, node,
                    f"stdlib random call {name}() shares process-global "
                    "state; use a seeded np.random.default_rng",
                )
            )

    def _check_order_exposing_call(self, node: ast.Call, name: str) -> None:
        if name in ("list", "tuple", "iter", "enumerate") and node.args:
            arg = node.args[0]
            if _is_set_expr(arg) or dotted_name(arg) in self.set_names:
                self.findings.append(self._order_finding(arg, name))

    # -- iteration over sets ----------------------------------------------
    def _order_finding(self, node: ast.AST, context: str) -> Finding:
        what = dotted_name(node) or "a set expression"
        return self.checker.finding(
            "RPL012", self.sf, node,
            f"iteration order of {what} is hash-dependent "
            f"(via {context}); wrap it in sorted(...)",
        )

    def _check_iter(self, iter_node: ast.expr) -> None:
        if _is_set_expr(iter_node) or dotted_name(iter_node) in self.set_names:
            self.findings.append(self._order_finding(iter_node, "for loop"))

    def visit_For(self, node: ast.For) -> None:
        self._check_iter(node.iter)
        self.generic_visit(node)

    def visit_comprehension_node(self, node: ast.AST) -> None:
        for gen in getattr(node, "generators", []):
            self._check_iter(gen.iter)
        self.generic_visit(node)

    visit_ListComp = visit_comprehension_node
    visit_SetComp = visit_comprehension_node
    visit_DictComp = visit_comprehension_node
    visit_GeneratorExp = visit_comprehension_node


@register
class DeterminismChecker(Checker):
    rules = (
        Rule(
            "RPL010",
            "wall-clock-in-deterministic-code",
            "error",
            "A wall-clock read inside the deterministic engine makes "
            "schedules and fingerprints machine-dependent.",
            hint="use the virtual clock (repro.runtime.events) or pass "
            "times in as data",
        ),
        Rule(
            "RPL011",
            "unseeded-rng-in-deterministic-code",
            "error",
            "Unseeded or global-state randomness breaks bit-identical "
            "replay of runtime and verification runs.",
            hint="seed np.random.default_rng from the run configuration "
            "the way repro.runtime.faults does",
        ),
        Rule(
            "RPL012",
            "set-order-iteration",
            "warning",
            "Iterating a set exposes hash order, which varies with "
            "PYTHONHASHSEED for strings.",
            hint="iterate sorted(the_set) instead",
        ),
    )

    def check(
        self, files: list[SourceFile], config: LintConfig
    ) -> list[Finding]:
        findings: list[Finding] = []
        for sf in files:
            if not _in_scope(sf.module, config.deterministic_modules):
                continue
            visitor = _ModuleVisitor(self, sf)
            visitor.visit(sf.tree)
            findings.extend(visitor.findings)
        return findings
