"""Allocator-ownership lint: every pool acquire must have a safe owner.

The simulated GPU pools (:class:`repro.gpu.allocator.HighWaterMarkPool`
and ``PerCallPool``) count outstanding reservations in ``in_use``; the
dynamic runtime's admission control and the post-run allocator
invariant (:func:`repro.verify.invariants.check_allocator_state`) both
read it.  A reservation that never reaches ``release()`` — on *any*
control-flow path, including the exception edges — poisons both.

**RPL020** fires when a ``*.request(...)`` / ``*.reserve(...)`` call is
not owned by one of the sanctioned patterns:

* a ``with pool_owner.working_set(...)`` context manager (release is
  structural);
* a matching ``release()`` reached on the straight-line path with the
  whole window protected — the acquire sits in a ``try`` whose
  ``finally`` (or re-raising ``except``) releases the pool;
* immediate hand-off: the function performs no further raise-capable
  pool operation and no explicit ``raise`` while the reservation is
  outstanding (cross-function ownership, e.g. acquire in ``_start``,
  release in ``_complete``, is legal — the checker only polices the
  in-function window).

Concretely flagged shapes:

* a second ``request``/``reserve`` while an earlier reservation is
  unprotected (the second can raise :class:`DeviceMemoryError` and leak
  the first);
* an explicit ``raise`` while a reservation is unprotected;
* a ``release()`` that exists but sits on the fall-through path with
  raise-capable calls between acquire and release (exception edge skips
  it) — move it to a ``finally``.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass

from repro.lint.core import (
    Checker,
    Finding,
    LintConfig,
    Rule,
    SourceFile,
    dotted_name,
    register,
)

__all__ = ["AllocatorChecker"]

_ACQUIRE_METHODS = {"request", "reserve"}
_OWNER_CONTEXT = {"working_set"}


def _pool_receiver(call: ast.Call) -> str | None:
    """Receiver text when the call is a pool acquire, else None."""
    if not isinstance(call.func, ast.Attribute):
        return None
    if call.func.attr not in _ACQUIRE_METHODS:
        return None
    recv = dotted_name(call.func.value)
    if recv is None:
        return None
    if call.func.attr == "request":
        # only pool-like receivers: device_pool / pinned_pool / *pool*
        if "pool" not in recv.rsplit(".", 1)[-1]:
            return None
    return recv


def _release_receiver(call: ast.Call) -> str | None:
    if isinstance(call.func, ast.Attribute) and call.func.attr == "release":
        return dotted_name(call.func.value)
    return None


@dataclass
class _Outstanding:
    """One live reservation during the linear walk."""

    receiver: str
    node: ast.Call
    protected: bool   # a finally/except release guards the window
    released: bool = False
    flagged: bool = False


def _releases_in(stmts: list[ast.stmt]) -> set[str]:
    out: set[str] = set()
    for stmt in stmts:
        for node in ast.walk(stmt):
            if isinstance(node, ast.Call):
                recv = _release_receiver(node)
                if recv is not None:
                    out.add(recv)
    return out


def _related(a: str, b: str) -> bool:
    """Do two receiver texts plausibly denote the same pool object?

    ``self.device_pool`` matches ``self.device_pool``; a bare attribute
    match (last component) also counts so helper aliases do not defeat
    the checker.
    """
    return a == b or a.rsplit(".", 1)[-1] == b.rsplit(".", 1)[-1]


class _FunctionWalker:
    """Linear, exception-edge-aware walk of one function body."""

    def __init__(self, checker: "AllocatorChecker", sf: SourceFile):
        self.checker = checker
        self.sf = sf
        self.findings: list[Finding] = []
        self.live: list[_Outstanding] = []

    def run(self, fn: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        self.walk(list(fn.body), protected_pools=frozenset())
        # no end-of-function report: an un-released reservation with no
        # risky window is cross-function ownership, which is legal

    # ------------------------------------------------------------------
    def walk(
        self, stmts: list[ast.stmt], protected_pools: frozenset[str]
    ) -> None:
        for stmt in stmts:
            if isinstance(stmt, ast.Try):
                self._walk_try(stmt, protected_pools)
                continue
            if isinstance(stmt, ast.With):
                self._walk_with(stmt, protected_pools)
                continue
            if isinstance(stmt, ast.Raise):
                self._on_raise(stmt)
                continue
            self._scan_calls(stmt, protected_pools)
            for attr in ("body", "orelse"):
                block = getattr(stmt, attr, None)
                if block:
                    self.walk(block, protected_pools)

    def _walk_with(
        self, stmt: ast.With, protected_pools: frozenset[str]
    ) -> None:
        owned_here = False
        for item in stmt.items:
            ctx = item.context_expr
            if (
                isinstance(ctx, ast.Call)
                and isinstance(ctx.func, ast.Attribute)
                and ctx.func.attr in _OWNER_CONTEXT
            ):
                owned_here = True
            else:
                self._scan_expr(ctx, protected_pools)
        self.walk(stmt.body, protected_pools)
        if owned_here:
            return

    def _walk_try(
        self, stmt: ast.Try, protected_pools: frozenset[str]
    ) -> None:
        handler_releases: set[str] = set()
        for handler in stmt.handlers:
            handler_releases |= _releases_in(handler.body)
        handler_releases |= _releases_in(stmt.finalbody)
        inner = protected_pools | frozenset(handler_releases)
        # a try whose finally/except releases pool P protects every
        # already-outstanding reservation of P for the try's duration
        for out in self.live:
            if not out.released and any(
                _related(out.receiver, r) for r in handler_releases
            ):
                out.protected = True
        n_before = len(self.live)
        self.walk(stmt.body, inner)
        # inside a handler, an acquire made in this try body may never
        # have happened (the exception could predate it); a raise there
        # only risks pre-existing reservations, so hide the body's
        # acquires while walking handlers and restore them for the
        # fall-through continuation
        body_new = self.live[n_before:]
        saved = [out.released for out in body_new]
        for out in body_new:
            out.released = True
        for handler in stmt.handlers:
            self.walk(handler.body, protected_pools)
        for out, was_released in zip(body_new, saved):
            out.released = was_released
        self.walk(stmt.orelse, protected_pools)
        self.walk(stmt.finalbody, protected_pools)

    # ------------------------------------------------------------------
    def _scan_expr(
        self, expr: ast.expr, protected_pools: frozenset[str]
    ) -> None:
        for node in ast.walk(expr):
            if isinstance(node, ast.Call):
                self._on_call(node, protected_pools)

    def _scan_calls(
        self, stmt: ast.stmt, protected_pools: frozenset[str]
    ) -> None:
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, ast.expr):
                self._scan_expr(child, protected_pools)

    def _on_call(
        self, call: ast.Call, protected_pools: frozenset[str]
    ) -> None:
        recv = _release_receiver(call)
        if recv is not None:
            for out in self.live:
                if not out.released and _related(out.receiver, recv):
                    if not out.protected and self._risky_between(out, call):
                        self._flag(
                            out,
                            f"release of {recv} is only reached on the "
                            f"fall-through path; an exception between "
                            f"request and release leaks the reservation",
                            hint="move the release into a finally block "
                            "or use the working_set() context manager",
                        )
                    out.released = True
            return
        recv = _pool_receiver(call)
        if recv is None:
            return
        # this acquire can raise DeviceMemoryError: every unprotected
        # outstanding reservation would leak
        for out in self.live:
            if out.released or out.protected or out.flagged:
                continue
            if any(_related(out.receiver, p) for p in protected_pools):
                continue
            self._flag(
                out,
                f"{call.func.attr}() on {recv} can raise while the "
                f"reservation on {out.receiver} is still unreleased",
                hint="reserve both pools through working_set(), or "
                "release the first pool in an except handler before "
                "re-raising",
            )
        self.live.append(
            _Outstanding(
                receiver=recv,
                node=call,
                protected=any(
                    _related(recv, p) for p in protected_pools
                ),
            )
        )

    def _on_raise(self, stmt: ast.Raise) -> None:
        for out in self.live:
            if not (out.released or out.protected or out.flagged):
                self._flag(
                    out,
                    f"raise while the reservation on {out.receiver} is "
                    "still unreleased",
                )

    def _risky_between(self, out: _Outstanding, release: ast.Call) -> bool:
        """Any raise-capable call strictly between acquire and release?

        Position comparison is by line; the acquire and the release
        themselves are excluded.  Attribute reads and arithmetic are
        treated as safe; calls are the raise carriers.
        """
        lo = out.node.lineno
        hi = release.lineno
        if hi <= lo:
            return False
        for node in ast.walk(self.fn_node):
            if (
                isinstance(node, ast.Call)
                and node is not out.node
                and node is not release
                and lo < getattr(node, "lineno", lo) < hi
            ):
                return True
        return False

    def _flag(
        self, out: _Outstanding, message: str, *, hint: str | None = None
    ) -> None:
        out.flagged = True
        self.findings.append(
            self.checker.finding("RPL020", self.sf, out.node, message, hint=hint)
        )


@register
class AllocatorChecker(Checker):
    rules = (
        Rule(
            "RPL020",
            "allocator-leak",
            "error",
            "A pool reservation can escape without reaching release() "
            "on every control-flow path (exception edges included).",
            hint="own the reservation with working_set() or release in "
            "a finally block",
        ),
    )

    def check(
        self, files: list[SourceFile], config: LintConfig
    ) -> list[Finding]:
        findings: list[Finding] = []
        for sf in files:
            if any(
                sf.module == m or sf.module.startswith(m + ".")
                for m in config.allocator_impl_modules
            ):
                continue
            for node in ast.walk(sf.tree):
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    walker = _FunctionWalker(self, sf)
                    walker.fn_node = node
                    walker.run(node)
                    findings.extend(walker.findings)
        return findings
