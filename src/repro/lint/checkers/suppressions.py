"""Suppression hygiene (RPL090).

A ``# repro-lint: disable=RPLxxx`` comment is a claim that a human
looked at a diagnostic and decided it is wrong or acceptable *here*.
Without a ``-- why`` justification the claim is unauditable — the next
reader cannot tell a considered exemption from a drive-by mute — so a
bare suppression is itself a counted warning.  The grammar::

    x = risky()  # repro-lint: disable=RPL002 -- snapshot, no waiters

RPL090 cannot be silenced by the bare comment it flags (that would be
a self-licensing loophole); only an explicit ``disable=RPL090`` — with
its own ``-- why`` — exempts a line, and the framework enforces that
in :meth:`repro.lint.core.SourceFile.is_suppressed`.
"""

from __future__ import annotations

from repro.lint.core import (
    Checker,
    Finding,
    LintConfig,
    Rule,
    SourceFile,
    register,
)

__all__ = ["SuppressionChecker"]


@register
class SuppressionChecker(Checker):
    rules = (
        Rule(
            "RPL090",
            "unjustified-suppression",
            "warning",
            "An inline repro-lint disable comment has no `-- why` "
            "justification; exemptions must be auditable.",
            hint="append `-- <reason>` explaining why the rule does "
            "not apply here",
        ),
    )

    def check(
        self, files: list[SourceFile], config: LintConfig
    ) -> list[Finding]:
        findings: list[Finding] = []
        for sf in files:
            for sup in sf.suppressions:
                if sup.justified:
                    continue
                rules = (
                    ", ".join(sorted(sup.rules))
                    if sup.rules
                    else "all rules"
                )
                scope = "file-wide " if sup.file_scope else ""
                findings.append(
                    Finding(
                        rule_id="RPL090",
                        severity="warning",
                        path=str(sf.path),
                        line=sup.line,
                        col=0,
                        message=(
                            f"{scope}suppression of {rules} has no "
                            "`-- why` justification"
                        ),
                        hint=self.rules[0].hint,
                    )
                )
        return findings
