"""Lint driver: discover files, run every checker, filter, report.

The runner maps file paths to dotted module names relative to the
``src`` root (so scope checks like "is this repro.runtime?" work), runs
every registered checker over the whole file set at once, then applies
the two filter layers — inline suppressions and the committed baseline
— and returns a :class:`LintResult` with full accounting of what was
filtered (suppressed findings are counted, never silent).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro.lint.baseline import Baseline
from repro.lint.cache import LintCache, content_hash, file_key, tree_key
from repro.lint.checkers import all_checkers
from repro.lint.core import Checker, Finding, LintConfig, Rule, SourceFile

__all__ = [
    "LintResult",
    "discover_files",
    "filter_to_paths",
    "run_lint",
]

DEFAULT_BASELINE = "lint-baseline.json"


@dataclass
class LintResult:
    """Outcome of one lint run."""

    findings: list[Finding] = field(default_factory=list)
    suppressed: list[Finding] = field(default_factory=list)
    baselined: list[Finding] = field(default_factory=list)
    files_checked: int = 0
    parse_errors: list[tuple[str, str]] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.findings and not self.parse_errors


def _module_name(path: Path, roots: list[Path]) -> str:
    """Dotted module name for *path*, relative to the innermost root."""
    resolved = path.resolve()
    for root in roots:
        try:
            rel = resolved.relative_to(root.resolve())
        except ValueError:
            continue
        parts = list(rel.parts)
        if parts[-1] == "__init__.py":
            parts = parts[:-1]
        else:
            parts[-1] = parts[-1][: -len(".py")]
        return ".".join(parts) if parts else path.stem
    return path.stem


def discover_files(
    paths: list[Path], *, src_roots: list[Path] | None = None
) -> tuple[list[SourceFile], list[tuple[str, str]]]:
    """Parse every ``.py`` under *paths*; returns (files, parse_errors)."""
    roots = src_roots or []
    py_files: list[Path] = []
    for p in paths:
        if p.is_dir():
            py_files.extend(sorted(p.rglob("*.py")))
            # a directory argument that contains src-layout packages is
            # its own module root (e.g. `src` or a fixture tree)
            roots.append(p)
        elif p.suffix == ".py":
            py_files.append(p)
            roots.append(p.parent)
    files: list[SourceFile] = []
    errors: list[tuple[str, str]] = []
    seen: set[Path] = set()
    for path in py_files:
        resolved = path.resolve()
        if resolved in seen:
            continue
        seen.add(resolved)
        try:
            text = path.read_text()
            files.append(
                SourceFile.parse(path, _module_name(path, roots), text)
            )
        except (SyntaxError, UnicodeDecodeError, OSError) as exc:
            errors.append((str(path), f"{type(exc).__name__}: {exc}"))
    return files, errors


def _raw_findings(
    files: list[SourceFile],
    checkers: list[Checker],
    config: LintConfig,
    cache: LintCache | None,
) -> list[Finding]:
    """All checker output, served from *cache* where content allows.

    File-scope checkers run only over cache-miss files; program-scope
    checkers run only when any file in the tree changed.  Cached
    findings are raw — filtering happens in :func:`run_lint` as usual.
    """
    if cache is None:
        raw: list[Finding] = []
        for checker in checkers:
            raw.extend(checker.check(files, config))
        return raw

    file_checkers = [c for c in checkers if c.scope == "file"]
    prog_checkers = [c for c in checkers if c.scope != "file"]
    file_rules = tuple(
        r.rule_id for c in file_checkers for r in c.rules
    )
    prog_rules = tuple(
        r.rule_id for c in prog_checkers for r in c.rules
    )

    raw = []
    keys: dict[str, str] = {}
    misses: list[SourceFile] = []
    for sf in files:
        key = file_key(str(sf.path), sf.text, file_rules, config)
        keys[str(sf.path)] = key
        cached = cache.get_file(key)
        if cached is None:
            misses.append(sf)
        else:
            raw.extend(cached)
    if misses:
        fresh: list[Finding] = []
        for checker in file_checkers:
            fresh.extend(checker.check(misses, config))
        grouped: dict[str, list[Finding]] = {
            str(sf.path): [] for sf in misses
        }
        for f in fresh:
            grouped.setdefault(f.path, []).append(f)
        for sf in misses:
            cache.put_file(
                keys[str(sf.path)], grouped[str(sf.path)]
            )
        raw.extend(fresh)

    entries = [(str(sf.path), content_hash(sf.text)) for sf in files]
    tkey = tree_key(entries, prog_rules, config)
    cached_prog = cache.get_program(tkey)
    if cached_prog is None:
        prog: list[Finding] = []
        for checker in prog_checkers:
            prog.extend(checker.check(files, config))
        cache.put_program(tkey, prog)
        raw.extend(prog)
    else:
        raw.extend(cached_prog)
    return raw


def run_lint(
    paths: list[Path],
    *,
    config: LintConfig | None = None,
    checkers: list[Checker] | None = None,
    baseline: Baseline | None = None,
    src_roots: list[Path] | None = None,
    cache: LintCache | None = None,
) -> LintResult:
    config = config or LintConfig()
    checkers = checkers if checkers is not None else all_checkers()
    files, parse_errors = discover_files(paths, src_roots=src_roots)
    by_path = {str(sf.path): sf for sf in files}

    raw = _raw_findings(files, checkers, config, cache)
    raw.sort(key=Finding.sort_key)

    result = LintResult(
        files_checked=len(files), parse_errors=parse_errors
    )
    for finding in raw:
        sf = by_path.get(finding.path)
        if sf is not None and sf.is_suppressed(finding):
            result.suppressed.append(finding)
        elif baseline is not None and baseline.contains(finding, by_path):
            result.baselined.append(finding)
        else:
            result.findings.append(finding)
    return result


def filter_to_paths(
    result: LintResult, keep: set[Path]
) -> LintResult:
    """Restrict reported findings to files in *keep* (``--changed-only``).

    The analysis itself always sees the whole tree — interprocedural
    findings need every caller — only the *reporting* narrows, so a
    taint introduced by an unchanged caller into a changed callee still
    surfaces on the changed file.
    """
    resolved = {p.resolve() for p in keep}

    def _kept(f: Finding) -> bool:
        return Path(f.path).resolve() in resolved

    return LintResult(
        findings=[f for f in result.findings if _kept(f)],
        suppressed=[f for f in result.suppressed if _kept(f)],
        baselined=[f for f in result.baselined if _kept(f)],
        files_checked=result.files_checked,
        parse_errors=[
            (p, e)
            for p, e in result.parse_errors
            if Path(p).resolve() in resolved
        ],
    )


def all_rules(checkers: list[Checker] | None = None) -> list[Rule]:
    """Every rule across the checker set, sorted by id."""
    checkers = checkers if checkers is not None else all_checkers()
    rules: list[Rule] = []
    for checker in checkers:
        rules.extend(checker.rules)
    return sorted(rules, key=lambda r: r.rule_id)
