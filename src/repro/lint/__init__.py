"""``repro.lint`` — domain-aware static analysis for this repository.

An AST-based checker framework with domain rules the generic linters
cannot express: lock-order cycles across the service and runtime
layers, blocking work under locks, allocator reservations that can
escape without release, nondeterminism inside the reproducible engine,
impure cache-key functions, and metric/trace naming hygiene.

Run it as ``python -m repro lint [paths...]``; see
``python -m repro lint --list-rules`` for the rule table.
"""

from __future__ import annotations

from repro.lint.baseline import Baseline
from repro.lint.core import Checker, Finding, LintConfig, Rule, SourceFile
from repro.lint.output import FORMATS, render
from repro.lint.runner import (
    DEFAULT_BASELINE,
    LintResult,
    all_rules,
    discover_files,
    run_lint,
)

__all__ = [
    "Baseline",
    "Checker",
    "DEFAULT_BASELINE",
    "FORMATS",
    "Finding",
    "LintConfig",
    "LintResult",
    "Rule",
    "SourceFile",
    "all_rules",
    "discover_files",
    "render",
    "run_lint",
]
