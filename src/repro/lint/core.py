"""Core model of the ``repro.lint`` framework.

The framework is deliberately small: a :class:`SourceFile` wraps one
parsed module (path, AST, inline suppressions), a :class:`Rule` is the
immutable identity of one diagnostic (``RPL0xx`` id, severity, fix
hint), a :class:`Finding` is one concrete diagnostic at one location,
and a :class:`Checker` turns a *whole program* (every source file at
once) into findings.  Checkers get the whole file set — not one file at
a time — because the flagship checker builds a cross-module
lock-acquisition graph; per-file checkers simply iterate.

Inline suppressions use the grammar::

    x = risky()          # repro-lint: disable=RPL002 -- why it is fine
    # repro-lint: disable-file=RPL010 -- whole-module opt-out

A same-line ``disable`` silences the named rules (or all rules when no
ids are given) for findings reported on that line; ``disable-file``
silences them for the whole module.  Suppressions are counted, never
silent: the runner reports how many findings each run suppressed.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path

__all__ = [
    "Checker",
    "Finding",
    "LintConfig",
    "Rule",
    "Severity",
    "SourceFile",
    "Suppression",
    "registry",
]

#: Ordered severities; ``error`` gates CI, ``warning`` still fails the
#: run (a warning you never read is a comment), the split exists so
#: output consumers can triage.
Severity = str
SEVERITIES: tuple[Severity, ...] = ("error", "warning")

_SUPPRESS_RE = re.compile(
    r"#\s*repro-lint:\s*disable(?P<scope>-file)?"
    r"(?:\s*=\s*(?P<rules>[A-Z]{3}\d{3}(?:\s*,\s*[A-Z]{3}\d{3})*))?"
    r"(?:\s*--\s*(?P<why>\S.*))?"
)


def _iter_comments(text: str) -> list[tuple[int, str]]:
    """``(line, comment-text)`` for every *real* comment token.

    Tokenizing (rather than regex-scanning raw lines) keeps suppression
    grammar shown inside docstrings — the framework documents itself —
    from being honored or flagged as if it were live.
    """
    try:
        return [
            (tok.start[0], tok.string)
            for tok in tokenize.generate_tokens(io.StringIO(text).readline)
            if tok.type == tokenize.COMMENT
        ]
    except (tokenize.TokenError, IndentationError, SyntaxError):
        # unlikely (the file already parsed), but fall back to raw lines
        return list(enumerate(text.splitlines(), start=1))


@dataclass(frozen=True)
class Rule:
    """Immutable identity of one diagnostic."""

    rule_id: str
    name: str
    severity: Severity
    summary: str
    hint: str = ""

    def __post_init__(self) -> None:
        if not re.fullmatch(r"RPL\d{3}", self.rule_id):
            raise ValueError(f"rule id {self.rule_id!r} is not RPLxxx")
        if self.severity not in SEVERITIES:
            raise ValueError(f"unknown severity {self.severity!r}")


@dataclass(frozen=True)
class Finding:
    """One diagnostic at one location."""

    rule_id: str
    severity: Severity
    path: str
    line: int
    col: int
    message: str
    hint: str = ""

    def sort_key(self) -> tuple[str, int, int, str, str]:
        return (self.path, self.line, self.col, self.rule_id, self.message)

    def fingerprint(self, source_line: str = "") -> tuple[str, str, str]:
        """Line-number-free identity used by the baseline: a finding
        survives unrelated edits that merely shift it up or down."""
        return (self.rule_id, self.path, source_line.strip())


@dataclass(frozen=True)
class Suppression:
    """One inline ``# repro-lint: disable`` comment, as written.

    ``rules`` is None for a bare ``disable`` (all rules); ``why`` is the
    text after ``--`` (empty when the author skipped the justification —
    which RPL090 counts as a warning of its own).
    """

    line: int
    file_scope: bool
    rules: frozenset[str] | None
    why: str = ""

    @property
    def justified(self) -> bool:
        return bool(self.why.strip())


@dataclass
class SourceFile:
    """One parsed module plus its inline suppressions."""

    path: Path
    module: str
    text: str
    tree: ast.Module
    line_suppressions: dict[int, frozenset[str] | None] = field(
        default_factory=dict
    )
    file_suppressions: frozenset[str] | None | bool = False
    suppressions: list[Suppression] = field(default_factory=list)

    @property
    def lines(self) -> list[str]:
        return self.text.splitlines()

    def source_line(self, lineno: int) -> str:
        lines = self.lines
        return lines[lineno - 1] if 1 <= lineno <= len(lines) else ""

    def is_suppressed(self, finding: Finding) -> bool:
        if finding.rule_id == "RPL090":
            # the unjustified-suppression warning cannot be silenced by
            # the very comment it flags: only an *explicit* RPL090
            # mention counts (bare blanket disables do not)
            return any(
                s.rules is not None
                and "RPL090" in s.rules
                and (s.file_scope or s.line == finding.line)
                for s in self.suppressions
            )
        if self.file_suppressions is None:
            return True
        if self.file_suppressions and isinstance(
            self.file_suppressions, frozenset
        ):
            if finding.rule_id in self.file_suppressions:
                return True
        rules = self.line_suppressions.get(finding.line, False)
        if rules is None:
            return True
        if rules and finding.rule_id in rules:
            return True
        return False

    @classmethod
    def parse(cls, path: Path, module: str, text: str) -> "SourceFile":
        tree = ast.parse(text, filename=str(path))
        line_sup: dict[int, frozenset[str] | None] = {}
        file_sup: frozenset[str] | None | bool = False
        comments: list[Suppression] = []
        for lineno, comment in _iter_comments(text):
            m = _SUPPRESS_RE.search(comment)
            if m is None:
                continue
            rules = m.group("rules")
            parsed: frozenset[str] | None = (
                frozenset(r.strip() for r in rules.split(",")) if rules else None
            )
            comments.append(
                Suppression(
                    line=lineno,
                    file_scope=bool(m.group("scope")),
                    rules=parsed,
                    why=m.group("why") or "",
                )
            )
            if m.group("scope"):
                if file_sup is None or parsed is None:
                    file_sup = None
                elif file_sup is False:
                    file_sup = parsed
                else:
                    file_sup = file_sup | parsed
            else:
                existing = line_sup.get(lineno, frozenset())
                if parsed is None or existing is None:
                    line_sup[lineno] = None
                else:
                    line_sup[lineno] = existing | parsed
        return cls(
            path=path,
            module=module,
            text=text,
            tree=tree,
            line_suppressions=line_sup,
            file_suppressions=file_sup,
            suppressions=comments,
        )


@dataclass
class LintConfig:
    """Repo-invariant knobs the domain checkers read.

    The defaults encode *this* repository's contracts; tests override
    them to point the checkers at fixture modules.
    """

    #: module prefixes the whole-program concurrency analysis covers
    concurrency_modules: tuple[str, ...] = (
        "repro.service",
        "repro.runtime",
        "repro.gpu",
        "repro.parallel",
        "repro.cluster",
        "repro.api",
    )
    #: modules that promise bit-for-bit reproducible behaviour
    deterministic_modules: tuple[str, ...] = (
        "repro.runtime.events",
        "repro.runtime.engine",
        "repro.runtime.faults",
        "repro.verify",
        "repro.bench",
        "repro.cluster",
        "repro.service.tiers",
        "repro.multifrontal.batched",
        "repro.symbolic.supernodes",
    )
    #: modules whose functions feed cache keys (plus any ``*_key`` fn)
    key_modules: tuple[str, ...] = ("repro.service.keys",)
    #: modules exempt from the allocator-ownership rule (the allocator
    #: implementation itself has nothing to release)
    allocator_impl_modules: tuple[str, ...] = ("repro.gpu.allocator",)
    #: engine-name kinds accepted by the trace exporter; mirrors
    #: ``repro.gpu.trace._ENGINE_ORDER``
    engine_kinds: tuple[str, ...] = ("cpu", "gpu", "nic")
    #: calls that are expensive enough to count as "blocking" when made
    #: while a lock is held (domain knowledge: these factor matrices or
    #: train models)
    expensive_calls: frozenset[str] = frozenset(
        {
            "train_default_classifier",
            "factorize",
            "analyze",
            "symbolic_factorize",
            "dynamic_schedule",
            "list_schedule",
            "solve_factored",
            "iterative_refinement",
            "factorize_numeric",
            "replay_factorize",
        }
    )

    #: modules whose surface is the public wire (``/v1`` envelopes and
    #: metric expositions) — where the RPL08x hygiene sinks live
    wire_modules: tuple[str, ...] = ("repro.api",)
    #: exception classes whose text is *crafted* for the wire (their
    #: message is the public contract, not leaked internals)
    wire_safe_exceptions: tuple[str, ...] = ("ApiError",)
    #: functions that scrub exception/path taint from a value before it
    #: goes on the wire (the sanctioned laundering points)
    wire_sanitizers: tuple[str, ...] = ("public_message",)
    #: minimum fraction of non-``__init__`` accesses that must hold one
    #: lock before guard inference (RPL070/071) calls the attribute
    #: lock-guarded
    guard_majority: float = 2 / 3

    def engine_kinds_tuple(self) -> tuple[str, ...]:
        try:
            from repro.gpu.trace import _ENGINE_ORDER

            return tuple(_ENGINE_ORDER)
        except ImportError:  # pragma: no cover - trace always importable
            return self.engine_kinds


class Checker:
    """Base class: a named pass producing findings over the file set."""

    #: rules this checker may emit (drives ``--list-rules`` and docs)
    rules: tuple[Rule, ...] = ()
    #: ``"file"`` — findings for a file depend only on that file's
    #: content, so the incremental cache may reuse them per content
    #: hash; ``"program"`` — findings depend on the whole file set
    #: (call graphs, cross-module taint) and are only reusable when
    #: *nothing* in the tree changed.
    scope: str = "file"

    def check(
        self, files: list[SourceFile], config: LintConfig
    ) -> list[Finding]:  # pragma: no cover - abstract
        raise NotImplementedError

    def rule(self, rule_id: str) -> Rule:
        for r in self.rules:
            if r.rule_id == rule_id:
                return r
        raise KeyError(rule_id)

    def finding(
        self,
        rule_id: str,
        sf: SourceFile,
        node: ast.AST | None,
        message: str,
        *,
        hint: str | None = None,
    ) -> Finding:
        r = self.rule(rule_id)
        line = getattr(node, "lineno", 1) if node is not None else 1
        col = getattr(node, "col_offset", 0) if node is not None else 0
        return Finding(
            rule_id=r.rule_id,
            severity=r.severity,
            path=str(sf.path),
            line=int(line),
            col=int(col),
            message=message,
            hint=hint if hint is not None else r.hint,
        )


#: every registered checker class, in registration order
registry: list[type[Checker]] = []


def register(cls: type[Checker]) -> type[Checker]:
    """Class decorator adding a checker to the global registry."""
    registry.append(cls)
    return cls


def dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: list[str] = []
    cur = node
    while isinstance(cur, ast.Attribute):
        parts.append(cur.attr)
        cur = cur.value
    if isinstance(cur, ast.Name):
        parts.append(cur.id)
        return ".".join(reversed(parts))
    return None
