"""The four registered flow checkers (RPL05x/06x/07x/08x).

Each is a thin view over one shared :func:`repro.lint.flow.engine
.analyze` run: the analysis computes every family's findings in one
fixpoint, and each checker selects its own rule ids and stamps them
with severities and fix hints.  All four are ``scope = "program"``:
their findings depend on the whole file set, so the incremental cache
only reuses them when nothing in the tree changed.
"""

from __future__ import annotations

from repro.lint.core import (
    Checker,
    Finding,
    LintConfig,
    Rule,
    SourceFile,
    register,
)
from repro.lint.flow.engine import analyze

__all__ = [
    "DeterminismFlowChecker",
    "ResourceFlowChecker",
    "GuardInferenceChecker",
    "WireHygieneChecker",
]


class _FlowChecker(Checker):
    """Shared plumbing: filter the analysis by this checker's rules."""

    scope = "program"

    def check(
        self, files: list[SourceFile], config: LintConfig
    ) -> list[Finding]:
        analysis = analyze(files, config)
        own = {r.rule_id: r for r in self.rules}
        by_module = {f.module: f for f in files}
        findings: list[Finding] = []
        for flow in analysis.findings:
            rule = own.get(flow.rule_id)
            if rule is None:
                continue
            sf = by_module.get(flow.module)
            if sf is None:
                continue
            findings.append(
                Finding(
                    rule_id=rule.rule_id,
                    severity=rule.severity,
                    path=str(sf.path),
                    line=flow.line,
                    col=flow.col,
                    message=flow.message,
                    hint=rule.hint,
                )
            )
        return findings


@register
class DeterminismFlowChecker(_FlowChecker):
    """RPL050–053: nondeterminism reaching deterministic sinks."""

    rules = (
        Rule(
            "RPL050",
            "wall-clock-into-deterministic-sink",
            "error",
            "A wall-clock reading flows (possibly through several "
            "calls) into deterministic state: a bench counter, cache "
            "key, queue ordering, ledger, or /v1 response.",
            hint="inject a clock (the ManualClock pattern) or derive "
            "the value from simulated/virtual time",
        ),
        Rule(
            "RPL051",
            "rng-into-deterministic-sink",
            "error",
            "An unseeded random value flows into deterministic state; "
            "replayed runs will diverge.",
            hint="draw from an explicitly seeded generator owned by "
            "the caller",
        ),
        Rule(
            "RPL052",
            "hash-randomization-into-deterministic-sink",
            "error",
            "An id()/hash() value flows into deterministic state; "
            "both vary per process (address layout, PYTHONHASHSEED).",
            hint="key on stable identities (names, indices, content "
            "digests) instead of id()/hash()",
        ),
        Rule(
            "RPL053",
            "set-order-into-deterministic-sink",
            "warning",
            "A value whose order came from iterating a set flows into "
            "deterministic state; set order varies across runs.",
            hint="sort the set (or iterate a list/dict) before the "
            "order can matter",
        ),
    )


@register
class ResourceFlowChecker(_FlowChecker):
    """RPL060/061: reservations held across raise-capable calls."""

    rules = (
        Rule(
            "RPL060",
            "reservation-leaks-on-raise",
            "error",
            "A pool/tier reservation or queue admission is held across "
            "a call that can transitively raise, with no release or "
            "rollback on the failure path.",
            hint="wrap the window in try/except (or finally) and "
            "release/rollback the reservation before re-raising",
        ),
        Rule(
            "RPL061",
            "lock-held-across-raise",
            "error",
            "A manually acquired lock is held across a call that can "
            "transitively raise; an exception leaves it locked "
            "forever.",
            hint="use `with lock:` or release in a finally block",
        ),
    )


@register
class GuardInferenceChecker(_FlowChecker):
    """RPL070–072: accesses that skip an attribute's inferred guard."""

    rules = (
        Rule(
            "RPL070",
            "unguarded-write",
            "error",
            "A shared attribute is written without the lock that "
            "guards the majority of its accesses program-wide.",
            hint="take the inferred lock around this write (or "
            "document why this path cannot race)",
        ),
        Rule(
            "RPL071",
            "unguarded-read",
            "warning",
            "A shared attribute is read without the lock that guards "
            "the majority of its accesses; the read can observe a "
            "torn or stale value.",
            hint="read under the inferred lock, or snapshot the value "
            "through a locked accessor",
        ),
        Rule(
            "RPL072",
            "inconsistent-guard",
            "warning",
            "An access holds a different lock than the one guarding "
            "the majority of this attribute's accesses; two locks do "
            "not exclude each other.",
            hint="pick one lock per attribute and use it on every "
            "access",
        ),
    )


@register
class WireHygieneChecker(_FlowChecker):
    """RPL080–082: internals leaking onto the public /v1 surface."""

    rules = (
        Rule(
            "RPL080",
            "exception-text-on-the-wire",
            "error",
            "Raw exception text flows into a /v1 response envelope or "
            "metric name; internal details (types, paths, state) leak "
            "to clients.",
            hint="route the exception through public_message() (or "
            "raise an ApiError with a crafted message)",
        ),
        Rule(
            "RPL081",
            "path-on-the-wire",
            "error",
            "A filesystem path flows into a /v1 response or metric "
            "name, leaking host layout to clients.",
            hint="map paths to opaque ids or drop them from the "
            "public surface",
        ),
        Rule(
            "RPL082",
            "config-on-the-wire",
            "warning",
            "An environment/config value flows into a /v1 response or "
            "metric name.",
            hint="expose a named, reviewed subset of configuration "
            "instead of raw values",
        ),
    )
