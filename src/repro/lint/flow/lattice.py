"""Taint lattice for the flow checkers: kinds, sources, sanitizers.

A taint is a ``(kind, origin)`` pair — the origin is a human-readable
witness ("time.time() in repro.bench.runner._wall_clock") carried along
so findings can name the source even when it lives modules away from
the sink.  Parameter taints ``("param", "<i>")`` stand for "whatever
the caller passes as argument *i*" and are what make function
summaries composable.

Determinism kinds (RPL050–053) poison bit-reproducible state:

* ``wall_clock`` — ``time.time``/``monotonic``/``perf_counter`` and
  datetime "now" reads;
* ``rng`` — unseeded randomness (``random.*``, legacy
  ``numpy.random.*``, ``secrets``, ``uuid.uuid4``, ``os.urandom``);
* ``hash_seed`` — ``id()`` and ``hash()`` values, which change per
  process (CPython address layout, ``PYTHONHASHSEED``);
* ``set_order`` — values whose *order* came from iterating a set.

Wire kinds (RPL080–082) poison the public ``/v1`` surface:

* ``exc_text`` — text of a caught exception that is not one of the
  :attr:`LintConfig.wire_safe_exceptions` (whose messages are crafted
  *for* the wire);
* ``fs_path`` — filesystem paths (``__file__``, ``os.getcwd``,
  ``os.path`` joins, ``tempfile``);
* ``env_config`` — ``os.environ`` / ``os.getenv`` reads.

Sanitizers are where taint legitimately dies: ``sorted()`` (and
``min``/``max``/``len``) normalize away ``set_order``; numeric
conversions cannot carry text, so they drop the wire kinds; and the
functions named in :attr:`LintConfig.wire_sanitizers`
(``public_message``) scrub all wire kinds by contract.  Note what is
*not* a source: calling an injected clock (``self._clock()``) — the
sanctioned determinism pattern is precisely to route time through an
injectable callable, and call-site taint cannot see through it.
"""

from __future__ import annotations

__all__ = [
    "DET_KINDS",
    "WIRE_KINDS",
    "PARAM",
    "Taint",
    "param_taint",
    "param_index",
    "source_kind",
    "DET_RULE_BY_KIND",
    "WIRE_RULE_BY_KIND",
    "KIND_LABELS",
    "ORDER_SANITIZERS",
    "NUMERIC_SANITIZERS",
]

#: a taint fact: ``(kind, origin)``; kind ``"param"`` carries the
#: argument index in the origin slot
Taint = tuple[str, str]

PARAM = "param"
DET_KINDS = frozenset({"wall_clock", "rng", "hash_seed", "set_order"})
WIRE_KINDS = frozenset({"exc_text", "fs_path", "env_config"})

DET_RULE_BY_KIND = {
    "wall_clock": "RPL050",
    "rng": "RPL051",
    "hash_seed": "RPL052",
    "set_order": "RPL053",
}
WIRE_RULE_BY_KIND = {
    "exc_text": "RPL080",
    "fs_path": "RPL081",
    "env_config": "RPL082",
}
KIND_LABELS = {
    "wall_clock": "wall-clock value",
    "rng": "unseeded-RNG value",
    "hash_seed": "id()/hash() value",
    "set_order": "set-iteration order",
    "exc_text": "exception text",
    "fs_path": "filesystem path",
    "env_config": "environment/config value",
}

_WALL_CLOCK_CALLS = {
    "time.time",
    "time.time_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.process_time",
    "datetime.now",
    "datetime.utcnow",
    "datetime.today",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "date.today",
}
_RNG_CALLS = {
    "os.urandom",
    "uuid.uuid4",
    "uuid.uuid1",
}
_RNG_PREFIXES = ("random.", "secrets.", "np.random.", "numpy.random.")
_FS_PATH_CALLS = {
    "os.getcwd",
    "os.path.abspath",
    "os.path.realpath",
    "os.path.expanduser",
    "os.path.join",
    "tempfile.gettempdir",
    "tempfile.mkdtemp",
    "tempfile.mkstemp",
    "tempfile.NamedTemporaryFile",
}
_ENV_CALLS = {"os.getenv", "os.environ.get"}
_HASH_BUILTINS = {"id", "hash"}

#: builtins that return an order-normalized or order-free view — they
#: strip ``set_order`` and nothing else
ORDER_SANITIZERS = frozenset({"sorted", "len", "min", "max"})
#: numeric conversions cannot carry text: they strip the wire kinds
#: (``int(time.time())`` is still nondeterministic, so det kinds stay)
NUMERIC_SANITIZERS = frozenset({"int", "float", "bool", "abs", "round"})


def param_taint(index: int) -> Taint:
    return (PARAM, str(index))


def param_index(taint: Taint) -> int | None:
    return int(taint[1]) if taint[0] == PARAM else None


def source_kind(dotted: str | None, is_bare_name: bool) -> str | None:
    """Taint kind produced by calling ``dotted``, if it is a source.

    ``is_bare_name`` distinguishes builtin calls (``id(x)``) from
    method calls that merely end in the same word (``pool.id(x)``).
    """
    if dotted is None:
        return None
    if dotted in _WALL_CLOCK_CALLS:
        return "wall_clock"
    if dotted in _RNG_CALLS or any(
        dotted.startswith(p) for p in _RNG_PREFIXES
    ):
        # seeded constructions are fine; everything else under the
        # random namespaces draws from process-global state
        if dotted.rsplit(".", 1)[-1] in ("seed", "Random", "default_rng"):
            return None
        return "rng"
    if dotted in _FS_PATH_CALLS:
        return "fs_path"
    if dotted in _ENV_CALLS:
        return "env_config"
    if is_bare_name and dotted in _HASH_BUILTINS:
        return "hash_seed"
    return None
