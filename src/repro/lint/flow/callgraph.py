"""Whole-program index and call resolution for the flow checkers.

This generalizes the three-stage index the concurrency checker builds
privately (:mod:`repro.lint.checkers.concurrency`): every function in
the analyzed file set gets a :class:`FunctionInfo` keyed
``module:Class.name`` / ``module:name``, and :meth:`ProgramIndex
.resolve_call` maps a call site to a key using, in order:

1. bare names — same-module functions, ``from m import f`` imports,
   and constructors (a class name resolves to its ``__init__``);
2. ``alias.f(...)`` through ``import m as alias`` module aliases;
3. ``self.m(...)`` — own-class methods;
4. ``self.attr.m(...)`` / ``var.m(...)`` — receivers whose type is
   known because ``self.attr = ClassName(...)`` (anywhere in the
   class) or ``var = ClassName(...)`` (earlier in the function) named
   an analyzed class;
5. a method name that is **unique** across every analyzed class.

Resolution is best-effort and under-approximate by design: an
unresolved call contributes no interprocedural facts, which keeps the
checkers quiet rather than noisy.  Lock discovery reuses the
concurrency checker's identity scheme — ``Class.attr`` for
``self.x = threading.Lock()`` and ``module:name`` for module-level
locks — so guard inference (RPL07x) speaks the same lock language as
RPL001–003.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.lint.core import LintConfig, SourceFile, dotted_name

__all__ = ["FunctionInfo", "ProgramIndex", "build_index", "iter_functions"]

_LOCK_FACTORIES = {
    "Lock",
    "RLock",
    "Condition",
    "Semaphore",
    "BoundedSemaphore",
}


def iter_functions(sf: SourceFile):
    """Yield ``(class_name | None, function_node)`` for every def."""
    for node in sf.tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield None, node
        elif isinstance(node, ast.ClassDef):
            for sub in node.body:
                if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    yield node.name, sub


@dataclass
class FunctionInfo:
    """One analyzed function: identity, node, and ordered parameters."""

    key: str                      # "module:Class.name" or "module:name"
    module: str
    cls: str | None
    name: str
    node: ast.FunctionDef | ast.AsyncFunctionDef
    #: positional-or-keyword + kw-only parameter names, ``self``/``cls``
    #: stripped, in declaration order (kwarg -> index mapping)
    params: tuple[str, ...] = ()

    def param_index(self, name: str) -> int | None:
        try:
            return self.params.index(name)
        except ValueError:
            return None


@dataclass
class ProgramIndex:
    """Everything the flow passes need to know about the program."""

    files: list[SourceFile]
    config: LintConfig
    functions: dict[str, FunctionInfo] = field(default_factory=dict)
    file_of: dict[str, SourceFile] = field(default_factory=dict)
    #: bare function name -> keys of module-level functions
    by_name: dict[str, list[str]] = field(default_factory=dict)
    #: method name -> keys across every analyzed class
    methods: dict[str, list[str]] = field(default_factory=dict)
    #: class name -> defining module
    classes: dict[str, str] = field(default_factory=dict)
    #: per module: ``from m import n as a`` -> a -> m
    imports: dict[str, dict[str, str]] = field(default_factory=dict)
    #: per module: ``import m as a`` -> a -> m
    module_aliases: dict[str, dict[str, str]] = field(default_factory=dict)
    #: lock identity ("Class.attr" | "module:name") -> defining file
    locks: dict[str, SourceFile] = field(default_factory=dict)
    #: (class name, attr) -> class name of the stored instance
    attr_types: dict[tuple[str, str], str] = field(default_factory=dict)

    # ------------------------------------------------------------------
    def function_file(self, info: FunctionInfo) -> SourceFile:
        return self.file_of[info.module]

    def method_key(self, cls: str, method: str) -> str | None:
        module = self.classes.get(cls)
        if module is None:
            return None
        key = f"{module}:{cls}.{method}"
        return key if key in self.functions else None

    def resolve_call(
        self,
        sf: SourceFile,
        cls: str | None,
        call: ast.Call,
        local_types: dict[str, str] | None = None,
    ) -> str | None:
        """Best-effort mapping of a call site to an analyzed function."""
        func = call.func
        if isinstance(func, ast.Name):
            name = func.id
            local = f"{sf.module}:{name}"
            if local in self.functions:
                return local
            src = self.imports.get(sf.module, {}).get(name)
            if src is not None:
                imported = f"{src}:{name}"
                if imported in self.functions:
                    return imported
                init = f"{src}:{name}.__init__"
                if init in self.functions:
                    return init
            init = f"{sf.module}:{name}.__init__"
            if init in self.functions:
                return init
            return None
        if not isinstance(func, ast.Attribute):
            return None
        method = func.attr
        recv = dotted_name(func.value)
        if recv is not None:
            if recv == "self" and cls is not None:
                key = f"{sf.module}:{cls}.{method}"
                if key in self.functions:
                    return key
            if recv.startswith("self.") and cls is not None:
                attr = recv[5:]
                owner = self.attr_types.get((cls, attr))
                if owner is not None:
                    key = self.method_key(owner, method)
                    if key is not None:
                        return key
            target = self.module_aliases.get(sf.module, {}).get(recv)
            if target is not None:
                key = f"{target}:{method}"
                if key in self.functions:
                    return key
            if local_types is not None and recv in local_types:
                key = self.method_key(local_types[recv], method)
                if key is not None:
                    return key
        candidates = self.methods.get(method, [])
        if len(candidates) == 1:
            return candidates[0]
        return None

    def local_types(
        self, sf: SourceFile, fn: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> dict[str, str]:
        """``var -> class name`` for ``var = ClassName(...)`` bindings."""
        out: dict[str, str] = {}
        for node in ast.walk(fn):
            if not (
                isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
                and isinstance(node.value, ast.Call)
            ):
                continue
            ctor = self._constructed_class(sf, node.value)
            if ctor is not None:
                out[node.targets[0].id] = ctor
        return out

    def _constructed_class(self, sf: SourceFile, call: ast.Call) -> str | None:
        name = dotted_name(call.func)
        if name is None:
            return None
        last = name.rsplit(".", 1)[-1]
        return last if last in self.classes else None


def _is_lock_factory(value: ast.expr) -> bool:
    if not isinstance(value, ast.Call):
        return False
    name = dotted_name(value.func)
    if name is None:
        return False
    return name.rsplit(".", 1)[-1] in _LOCK_FACTORIES


def build_index(files: list[SourceFile], config: LintConfig) -> ProgramIndex:
    index = ProgramIndex(files=files, config=config)
    for sf in files:
        index.file_of[sf.module] = sf
        from_imports: dict[str, str] = {}
        aliases: dict[str, str] = {}
        for node in ast.walk(sf.tree):
            if isinstance(node, ast.ImportFrom) and node.module:
                for alias in node.names:
                    from_imports[alias.asname or alias.name] = node.module
            elif isinstance(node, ast.Import):
                for alias in node.names:
                    aliases[alias.asname or alias.name] = alias.name
        index.imports[sf.module] = from_imports
        index.module_aliases[sf.module] = aliases

        for node in sf.tree.body:
            if isinstance(node, ast.ClassDef):
                index.classes[node.name] = sf.module

        for cls, fn in iter_functions(sf):
            key = f"{sf.module}:{cls + '.' if cls else ''}{fn.name}"
            info = FunctionInfo(
                key=key,
                module=sf.module,
                cls=cls,
                name=fn.name,
                node=fn,
                params=tuple(
                    a.arg for a in fn.args.args + fn.args.kwonlyargs
                    if a.arg not in ("self", "cls")
                ),
            )
            index.functions[key] = info
            if cls is None:
                index.by_name.setdefault(fn.name, []).append(key)
            else:
                index.methods.setdefault(fn.name, []).append(key)

        # lock discovery + self-attribute typing
        for cls, fn in iter_functions(sf):
            if cls is None:
                continue
            for node in ast.walk(fn):
                if not isinstance(node, ast.Assign):
                    continue
                for tgt in node.targets:
                    if not (
                        isinstance(tgt, ast.Attribute)
                        and isinstance(tgt.value, ast.Name)
                        and tgt.value.id == "self"
                    ):
                        continue
                    if _is_lock_factory(node.value):
                        index.locks[f"{cls}.{tgt.attr}"] = sf
                    elif isinstance(node.value, ast.Call):
                        ctor = index._constructed_class(sf, node.value)
                        if ctor is not None:
                            index.attr_types[(cls, tgt.attr)] = ctor
        for node in sf.tree.body:
            if isinstance(node, ast.Assign) and _is_lock_factory(node.value):
                for tgt in node.targets:
                    if isinstance(tgt, ast.Name):
                        index.locks[f"{sf.module}:{tgt.id}"] = sf
    return index


def in_scope(module: str, prefixes: tuple[str, ...]) -> bool:
    return any(module == p or module.startswith(p + ".") for p in prefixes)
