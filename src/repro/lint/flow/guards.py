"""Guard inference (RPL070–072): a static race detector.

Instead of asking the author which lock protects which attribute, the
pass infers it from the program itself: for every class that owns at
least one lock, every ``self.<attr>`` access in every method is
recorded together with the set of class locks held at that point.
When a clear majority (:attr:`LintConfig.guard_majority`) of an
attribute's accesses hold the same lock, that lock is the attribute's
*inferred guard* — and the minority accesses are the bugs:

* **RPL070** (error) — a write without the inferred guard;
* **RPL071** (warning) — a read without the inferred guard;
* **RPL072** (warning) — an access holding a *different* class lock
  than the inferred one (two half-guarded critical sections do not
  exclude each other).

Held-lock context is interprocedural: a private helper's entry-held
set is the intersection, over every internal call site, of the locks
held at the site plus the caller's own entry set (``_pop_locked`` is
guarded because every caller holds the condition).  Public methods are
assumed callable with no locks held; never-called private helpers are
given the benefit of the doubt.

Aliasing matters: ``self._cond = Condition(self._lock)`` wraps the
same mutex, so both identities canonicalize to the underlying lock
before counting.  ``__init__`` (construction happens-before any
sharing) and ``__repr__``/``__str__`` (best-effort debug output) are
exempt from both counting and flagging.  Attributes never written
outside ``__init__`` are immutable-after-construction and need no
guard.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass

from repro.lint.core import LintConfig, SourceFile, dotted_name
from repro.lint.flow.callgraph import ProgramIndex, iter_functions

__all__ = ["run_guard_inference", "GuardFinding"]

_EXEMPT_METHODS = {"__init__", "__new__", "__repr__", "__str__", "__del__"}


@dataclass(frozen=True)
class GuardFinding:
    rule_id: str
    module: str
    line: int
    col: int
    message: str


@dataclass
class _Access:
    cls: str
    attr: str
    write: bool
    method_key: str
    module: str
    line: int
    col: int
    held: frozenset[str]


def _canonical_aliases(sf: SourceFile) -> dict[str, str]:
    """``Cls.cond -> Cls.lock`` for ``self.cond = Condition(self.lock)``."""
    aliases: dict[str, str] = {}
    for cls, fn in iter_functions(sf):
        if cls is None:
            continue
        for node in ast.walk(fn):
            if not (
                isinstance(node, ast.Assign)
                and isinstance(node.value, ast.Call)
            ):
                continue
            name = dotted_name(node.value.func)
            if name is None or name.rsplit(".", 1)[-1] != "Condition":
                continue
            if not node.value.args:
                continue
            wrapped = dotted_name(node.value.args[0])
            if wrapped is None or not wrapped.startswith("self."):
                continue
            for tgt in node.targets:
                if (
                    isinstance(tgt, ast.Attribute)
                    and isinstance(tgt.value, ast.Name)
                    and tgt.value.id == "self"
                ):
                    aliases[f"{cls}.{tgt.attr}"] = f"{cls}.{wrapped[5:]}"
    return aliases


class _ClassWalker:
    """Collects attribute accesses + internal call sites for one class."""

    def __init__(
        self,
        index: ProgramIndex,
        sf: SourceFile,
        cls: str,
        class_locks: frozenset[str],
        aliases: dict[str, str],
    ):
        self.index = index
        self.sf = sf
        self.cls = cls
        self.class_locks = class_locks
        self.aliases = aliases
        self.accesses: list[_Access] = []
        #: (caller_key, callee_key, held-at-site)
        self.call_sites: list[tuple[str, str, frozenset[str]]] = []

    def _lock_id(self, expr: ast.expr) -> str | None:
        name = dotted_name(expr)
        if name is None or not name.startswith("self."):
            return None
        candidate = f"{self.cls}.{name[5:]}"
        candidate = self.aliases.get(candidate, candidate)
        return candidate if candidate in self.class_locks else None

    def walk_method(
        self, method_key: str, fn: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> None:
        self._method_key = method_key
        self._walk(list(fn.body), frozenset())

    def _walk(self, stmts: list[ast.stmt], held: frozenset[str]) -> None:
        for stmt in stmts:
            if isinstance(stmt, (ast.With, ast.AsyncWith)):
                inner = set(held)
                for item in stmt.items:
                    lid = self._lock_id(item.context_expr)
                    if lid is not None:
                        inner.add(lid)
                    else:
                        self._record_exprs([item.context_expr], held)
                self._walk(stmt.body, frozenset(inner))
                continue
            held = self._scan_stmt(stmt, held)
            for attr in ("body", "orelse", "finalbody"):
                block = getattr(stmt, attr, None)
                if block:
                    self._walk(block, held)
            for handler in getattr(stmt, "handlers", []) or []:
                self._walk(handler.body, held)

    def _scan_stmt(
        self, stmt: ast.stmt, held: frozenset[str]
    ) -> frozenset[str]:
        exprs: list[ast.expr] = []
        if isinstance(stmt, (ast.If, ast.While)):
            exprs = [stmt.test]
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            exprs = [stmt.iter, stmt.target]
        elif isinstance(stmt, ast.Try):
            exprs = []
        else:
            exprs = [
                c for c in ast.iter_child_nodes(stmt)
                if isinstance(c, ast.expr)
            ]
        # manual acquire/release within a statement sequence
        taken = set(held)
        for expr in exprs:
            for call in self._calls(expr):
                if isinstance(call.func, ast.Attribute):
                    lid = self._lock_id(call.func.value)
                    if lid is not None and call.func.attr == "acquire":
                        taken.add(lid)
                        continue
                    if lid is not None and call.func.attr == "release":
                        taken.discard(lid)
                        continue
                key = self.index.resolve_call(self.sf, self.cls, call)
                if key is not None:
                    self.call_sites.append(
                        (self._method_key, key, frozenset(taken))
                    )
        self._record_exprs(exprs, frozenset(taken))
        return frozenset(taken)

    @staticmethod
    def _calls(expr: ast.expr) -> list[ast.Call]:
        calls: list[ast.Call] = []

        class V(ast.NodeVisitor):
            def visit_Call(self, node: ast.Call) -> None:
                calls.append(node)
                self.generic_visit(node)

            def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
                pass

            def visit_AsyncFunctionDef(
                self, node: ast.AsyncFunctionDef
            ) -> None:
                pass

            def visit_Lambda(self, node: ast.Lambda) -> None:
                pass

        V().visit(expr)
        return calls

    def _record_exprs(
        self, exprs: list[ast.expr], held: frozenset[str]
    ) -> None:
        for expr in exprs:
            for node in ast.walk(expr):
                if not (
                    isinstance(node, ast.Attribute)
                    and isinstance(node.value, ast.Name)
                    and node.value.id == "self"
                ):
                    continue
                lock_name = self.aliases.get(
                    f"{self.cls}.{node.attr}", f"{self.cls}.{node.attr}"
                )
                if lock_name in self.class_locks:
                    continue  # the locks themselves are not shared data
                write = isinstance(node.ctx, (ast.Store, ast.Del))
                self.accesses.append(
                    _Access(
                        cls=self.cls,
                        attr=node.attr,
                        write=write,
                        method_key=self._method_key,
                        module=self.sf.module,
                        line=node.lineno,
                        col=node.col_offset,
                        held=held,
                    )
                )


def _entry_held(
    index: ProgramIndex,
    call_sites: list[tuple[str, str, frozenset[str]]],
    method_keys: set[str],
) -> dict[str, frozenset[str] | None]:
    """Fixpoint over call sites: ``entry[m]`` is the lock set held on
    *every* internal path into ``m``.  ``None`` is ⊤ (never called)."""
    entry: dict[str, frozenset[str] | None] = {}
    for key in method_keys:
        info = index.functions[key]
        is_private = info.name.startswith("_") and not info.name.startswith(
            "__"
        )
        entry[key] = None if is_private else frozenset()
    for _ in range(len(method_keys) + 2):
        changed = False
        for caller, callee, held in call_sites:
            if callee not in entry:
                continue
            base = entry.get(caller, frozenset())
            if base is None:
                continue  # caller itself unreached so far
            eff = held | base
            cur = entry[callee]
            new = eff if cur is None else cur & eff
            if new != cur:
                entry[callee] = new
                changed = True
        if not changed:
            break
    return entry


def run_guard_inference(
    index: ProgramIndex, config: LintConfig
) -> list[GuardFinding]:
    findings: list[GuardFinding] = []
    # group locks by owning class ("Cls.attr" identities only)
    class_locks: dict[str, set[str]] = {}
    for lid in index.locks:
        if ":" in lid:
            continue
        cls, _ = lid.split(".", 1)
        class_locks.setdefault(cls, set()).add(lid)

    for sf in index.files:
        aliases = _canonical_aliases(sf)
        for cls_node in sf.tree.body:
            if not isinstance(cls_node, ast.ClassDef):
                continue
            cls = cls_node.name
            locks = frozenset(
                aliases.get(lid, lid)
                for lid in class_locks.get(cls, set())
            )
            if not locks:
                continue
            walker = _ClassWalker(index, sf, cls, locks, aliases)
            method_keys: set[str] = set()
            for sub in cls_node.body:
                if not isinstance(
                    sub, (ast.FunctionDef, ast.AsyncFunctionDef)
                ):
                    continue
                key = f"{sf.module}:{cls}.{sub.name}"
                method_keys.add(key)
                walker.walk_method(key, sub)
            entry = _entry_held(index, walker.call_sites, method_keys)
            findings.extend(
                _judge_class(index, walker, entry, locks, config)
            )
    return findings


def _judge_class(
    index: ProgramIndex,
    walker: _ClassWalker,
    entry: dict[str, frozenset[str] | None],
    locks: frozenset[str],
    config: LintConfig,
) -> list[GuardFinding]:
    findings: list[GuardFinding] = []
    by_attr: dict[str, list[tuple[_Access, frozenset[str]]]] = {}
    for acc in walker.accesses:
        info = index.functions.get(acc.method_key)
        if info is None or info.name in _EXEMPT_METHODS:
            continue
        base = entry.get(acc.method_key, frozenset())
        if base is None:
            continue  # unreached private helper: benefit of the doubt
        by_attr.setdefault(acc.attr, []).append((acc, acc.held | base))

    # writes outside __init__ (exempt methods already filtered out)
    for attr in sorted(by_attr):
        rows = by_attr[attr]
        if not any(acc.write for acc, _ in rows):
            continue  # immutable after construction
        total = len(rows)
        counts: dict[str, int] = {}
        for _, held in rows:
            for lid in held & locks:
                counts[lid] = counts.get(lid, 0) + 1
        if not counts or total < 3:
            continue
        guard = max(sorted(counts), key=lambda lid: counts[lid])
        guarded = counts[guard]
        if guarded < 2 or guarded / total < config.guard_majority:
            continue
        for acc, held in rows:
            if guard in held:
                continue
            if held & locks:
                findings.append(
                    GuardFinding(
                        "RPL072", acc.module, acc.line, acc.col,
                        f"{acc.cls}.{acc.attr} is guarded by {guard} at "
                        f"{guarded}/{total} accesses, but this one holds "
                        f"{', '.join(sorted(held & locks))} instead — two "
                        "different locks do not exclude each other",
                    )
                )
            elif acc.write:
                findings.append(
                    GuardFinding(
                        "RPL070", acc.module, acc.line, acc.col,
                        f"unguarded write to {acc.cls}.{acc.attr}: "
                        f"{guarded}/{total} of its accesses hold {guard}, "
                        "this write holds no lock",
                    )
                )
            else:
                findings.append(
                    GuardFinding(
                        "RPL071", acc.module, acc.line, acc.col,
                        f"unguarded read of {acc.cls}.{acc.attr}: "
                        f"{guarded}/{total} of its accesses hold {guard}, "
                        "this read holds no lock",
                    )
                )
    return findings
