"""``repro.lint.flow`` — interprocedural dataflow over the whole program.

The per-module checkers of :mod:`repro.lint.checkers` see one function
at a time; this package sees the *program*: a project-wide call graph
(:mod:`~repro.lint.flow.callgraph`), per-function taint/resource
summaries (:mod:`~repro.lint.flow.summaries`) closed to a fixpoint
(:mod:`~repro.lint.flow.engine`), and four rule families built on top
(:mod:`~repro.lint.flow.checkers`):

* **RPL05x — determinism taint**: a wall-clock read, unseeded RNG
  draw, ``id()``/``hash()`` value, or set-iteration order that flows —
  through any chain of calls, across module boundaries — into a
  deterministic sink (event-queue priorities, cache/fingerprint keys,
  deterministic bench counters, tier-ledger arithmetic, ``/v1`` wire
  responses).
* **RPL06x — exception-safety resource paths**: a pool reservation,
  manual lock acquire, tier-ledger insertion, or edge admission that
  leaks when a *transitively* raise-capable callee fires inside the
  unprotected window (the interprocedural generalization of RPL020).
* **RPL07x — guard inference**: each shared attribute's guarding lock
  is inferred from the majority of its accesses program-wide; writes
  (and reads) that skip the inferred guard are flagged.
* **RPL08x — wire hygiene taint**: exception text, filesystem paths,
  and environment/config values flowing into ``/v1`` error envelopes
  or metric names.

Design notes live in ``docs/architecture.md`` ("Interprocedural
dataflow").  The sanctioned escape hatches are the same as everywhere
else in ``repro.lint``: justified inline suppressions, injectable
clocks (an injected ``clock()`` is never a taint source — that is the
pattern the rules push you toward), and the
:func:`repro.api.protocol.public_message` sanitizer for the wire.
"""

from __future__ import annotations

from repro.lint.flow.checkers import (  # noqa: F401  (import = register)
    DeterminismFlowChecker,
    GuardInferenceChecker,
    ResourceFlowChecker,
    WireHygieneChecker,
)

__all__ = [
    "DeterminismFlowChecker",
    "GuardInferenceChecker",
    "ResourceFlowChecker",
    "WireHygieneChecker",
]
