"""Per-function taint summaries: the flow engine's unit of compositionality.

For every analyzed function the evaluator computes a
:class:`FlowSummary`:

* ``returns`` — concrete taint kinds the return value may carry;
* ``param_returns`` — parameter indices whose taint flows to the
  return value (identity/relay functions);
* ``param_sinks`` — parameter index → sinks (with their locations)
  that a value passed in that position can reach, **transitively**;
* ``calls`` — resolved callee keys (drives the raise closure);
* ``raises`` — whether the body contains a ``raise`` of its own.

Summaries compose: a call to a summarized function maps argument
taints through ``param_returns`` and checks them against
``param_sinks``, so a source in module A reaching a sink in module C
through a relay in module B needs no whole-program path enumeration —
just the fixpoint over summaries that :mod:`repro.lint.flow.engine`
drives.

The evaluator is deliberately modest: flow-insensitive within
branches (if/else arms are walked and joined), two passes over each
body to stabilize loop-carried taint, strong updates on plain
assignment, weak updates on containers and ``self.<attr>`` slots
(tracked per function only — cross-method attribute flows are out of
scope).  Unresolved calls propagate the union of receiver and
argument taints, which keeps string formatting and method chains
honest without a type system.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Callable

from repro.lint.core import LintConfig, dotted_name
from repro.lint.flow.callgraph import FunctionInfo, ProgramIndex, in_scope
from repro.lint.flow.lattice import (
    DET_KINDS,
    DET_RULE_BY_KIND,
    KIND_LABELS,
    NUMERIC_SANITIZERS,
    ORDER_SANITIZERS,
    PARAM,
    WIRE_KINDS,
    WIRE_RULE_BY_KIND,
    Taint,
    param_taint,
    source_kind,
)

__all__ = ["FlowSummary", "Evaluator", "SinkRef", "direct_raises"]

#: ``(category, description, module, line)`` of one sink site;
#: category is ``"det"`` or ``"wire"``
SinkRef = tuple[str, str, str, int]

#: emit(rule_id, module, node, message)
EmitFn = Callable[[str, str, ast.AST, str], None]

_WIRE_RESPONSE_FNS = {"json_response", "error_response"}
_METRIC_METHODS = {"incr", "observe", "gauge"}
_DET_KWARGS = {"deterministic", "numeric"}


@dataclass
class FlowSummary:
    """Composable facts about one function (see module docstring)."""

    returns: frozenset[Taint] = frozenset()
    param_returns: frozenset[int] = frozenset()
    param_sinks: dict[int, frozenset[SinkRef]] = field(default_factory=dict)
    calls: frozenset[str] = frozenset()
    raises: bool = False


def direct_raises(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
    """True when the body itself contains ``raise`` (nested defs don't
    count: defining a raising closure is not raising)."""

    class V(ast.NodeVisitor):
        found = False

        def visit_Raise(self, node: ast.Raise) -> None:
            self.found = True

        def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
            pass

        def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
            pass

        def visit_Lambda(self, node: ast.Lambda) -> None:
            pass

    v = V()
    for stmt in fn.body:
        v.visit(stmt)
    return v.found


def _is_set_shaped(expr: ast.expr) -> bool:
    """Syntactically a set (literal, comprehension, constructor, or a
    set-algebra combination of set-shaped operands)."""
    if isinstance(expr, (ast.Set, ast.SetComp)):
        return True
    if isinstance(expr, ast.Call):
        name = dotted_name(expr.func)
        if name is not None and name.rsplit(".", 1)[-1] in (
            "set",
            "frozenset",
        ):
            return True
    if isinstance(expr, ast.BinOp) and isinstance(
        expr.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
    ):
        return _is_set_shaped(expr.left) or _is_set_shaped(expr.right)
    return False


def _iter_order_tainted(expr: ast.expr) -> bool:
    """Does iterating ``expr`` yield set order?  Covers the bare set
    shapes plus ``enumerate``/``zip``/``iter``/``reversed`` wrappers."""
    if _is_set_shaped(expr):
        return True
    if isinstance(expr, ast.Call):
        name = dotted_name(expr.func)
        last = name.rsplit(".", 1)[-1] if name else ""
        if last in ("enumerate", "zip", "iter", "reversed", "list", "tuple"):
            return any(_iter_order_tainted(a) for a in expr.args)
    return False


class Evaluator:
    """One pass of abstract evaluation over one function body."""

    def __init__(
        self,
        index: ProgramIndex,
        config: LintConfig,
        info: FunctionInfo,
        summaries: dict[str, FlowSummary],
        emit: EmitFn | None = None,
    ):
        self.index = index
        self.config = config
        self.info = info
        self.summaries = summaries
        self.emit = emit
        self.sf = index.function_file(info)
        self.local_types = index.local_types(self.sf, info.node)
        self.pretty = (
            f"{info.module}.{info.cls + '.' if info.cls else ''}{info.name}"
        )
        self.returns: set[Taint] = set()
        self.param_returns: set[int] = set()
        self.param_sinks: dict[int, set[SinkRef]] = {}
        self.calls: set[str] = set()
        self._det_scope = in_scope(info.module, config.deterministic_modules)
        self._wire_scope = in_scope(info.module, config.wire_modules)

    # ------------------------------------------------------------------
    def run(self) -> FlowSummary:
        env: dict[str, frozenset[Taint]] = {
            name: frozenset({param_taint(i)})
            for i, name in enumerate(self.info.params)
        }
        # two passes: the second stabilizes loop-carried taint
        self._walk(list(self.info.node.body), env)
        self._walk(list(self.info.node.body), env)
        return FlowSummary(
            returns=frozenset(self.returns),
            param_returns=frozenset(self.param_returns),
            param_sinks={
                i: frozenset(s) for i, s in self.param_sinks.items()
            },
            calls=frozenset(self.calls),
            raises=direct_raises(self.info.node),
        )

    # ------------------------------------------------------------------
    # statements
    # ------------------------------------------------------------------
    def _walk(
        self, stmts: list[ast.stmt], env: dict[str, frozenset[Taint]]
    ) -> None:
        for stmt in stmts:
            self._stmt(stmt, env)

    def _stmt(self, stmt: ast.stmt, env: dict[str, frozenset[Taint]]) -> None:
        if isinstance(stmt, ast.Assign):
            taints = self._eval(stmt.value, env)
            for tgt in stmt.targets:
                self._assign(tgt, taints, env, weak=False)
            self._ledger_sink(stmt.targets, stmt.value, taints, stmt)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                taints = self._eval(stmt.value, env)
                self._assign(stmt.target, taints, env, weak=False)
        elif isinstance(stmt, ast.AugAssign):
            taints = self._eval(stmt.value, env)
            self._assign(stmt.target, taints, env, weak=True)
            self._ledger_sink([stmt.target], stmt.value, taints, stmt)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                for taint in self._eval(stmt.value, env):
                    if taint[0] == PARAM:
                        self.param_returns.add(int(taint[1]))
                    else:
                        self.returns.add(taint)
        elif isinstance(stmt, ast.Expr):
            self._eval(stmt.value, env)
        elif isinstance(stmt, ast.If):
            self._eval(stmt.test, env)
            then_env = dict(env)
            else_env = dict(env)
            self._walk(stmt.body, then_env)
            self._walk(stmt.orelse, else_env)
            for key in set(then_env) | set(else_env):
                env[key] = then_env.get(key, frozenset()) | else_env.get(
                    key, frozenset()
                )
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            taints = self._eval(stmt.iter, env)
            if _iter_order_tainted(stmt.iter):
                taints = taints | {
                    ("set_order", f"set iteration in {self.pretty}")
                }
            self._assign(stmt.target, taints, env, weak=True)
            self._walk(stmt.body, env)
            self._walk(stmt.orelse, env)
        elif isinstance(stmt, ast.While):
            self._eval(stmt.test, env)
            self._walk(stmt.body, env)
            self._walk(stmt.orelse, env)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                taints = self._eval(item.context_expr, env)
                if item.optional_vars is not None:
                    self._assign(item.optional_vars, taints, env, weak=False)
            self._walk(stmt.body, env)
        elif isinstance(stmt, ast.Try):
            self._walk(stmt.body, env)
            for handler in stmt.handlers:
                if handler.name:
                    env[handler.name] = self._exception_taint(handler)
                self._walk(handler.body, env)
            self._walk(stmt.orelse, env)
            self._walk(stmt.finalbody, env)
        elif isinstance(stmt, ast.Raise):
            if stmt.exc is not None:
                self._eval(stmt.exc, env)
        elif isinstance(stmt, ast.Delete):
            for tgt in stmt.targets:
                if isinstance(tgt, ast.Name):
                    env.pop(tgt.id, None)
        # nested defs/classes: deliberately not descended

    def _exception_taint(self, handler: ast.ExceptHandler) -> frozenset[Taint]:
        """A caught exception's text taint — unless every caught type is
        wire-safe (its message is crafted for the public surface)."""
        types: list[ast.expr] = []
        if isinstance(handler.type, ast.Tuple):
            types = list(handler.type.elts)
        elif handler.type is not None:
            types = [handler.type]
        names = [
            (dotted_name(t) or "?").rsplit(".", 1)[-1] for t in types
        ]
        if names and all(
            n in self.config.wire_safe_exceptions for n in names
        ):
            return frozenset()
        caught = ", ".join(names) or "Exception"
        return frozenset(
            {("exc_text", f"except {caught} in {self.pretty}")}
        )

    def _assign(
        self,
        target: ast.expr,
        taints: frozenset[Taint],
        env: dict[str, frozenset[Taint]],
        *,
        weak: bool,
    ) -> None:
        if isinstance(target, ast.Name):
            if weak:
                env[target.id] = env.get(target.id, frozenset()) | taints
            else:
                env[target.id] = taints
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._assign(elt, taints, env, weak=True)
        elif isinstance(target, ast.Starred):
            self._assign(target.value, taints, env, weak=True)
        elif isinstance(target, ast.Attribute):
            name = dotted_name(target)
            if name is not None and name.startswith("self."):
                env[name] = env.get(name, frozenset()) | taints
        elif isinstance(target, ast.Subscript):
            base = dotted_name(target.value)
            if base is not None:
                env[base] = env.get(base, frozenset()) | taints

    # ------------------------------------------------------------------
    # expressions
    # ------------------------------------------------------------------
    def _eval(
        self, expr: ast.expr, env: dict[str, frozenset[Taint]]
    ) -> frozenset[Taint]:
        if isinstance(expr, ast.Name):
            if expr.id == "__file__":
                return frozenset(
                    {("fs_path", f"__file__ in {self.info.module}")}
                )
            return env.get(expr.id, frozenset())
        if isinstance(expr, ast.Constant):
            return frozenset()
        if isinstance(expr, ast.Attribute):
            name = dotted_name(expr)
            if name is not None and name.startswith("self."):
                stored = env.get(name)
                if stored is not None:
                    return stored
            if expr.attr == "__name__":
                return frozenset()
            return self._eval(expr.value, env)
        if isinstance(expr, ast.Subscript):
            base = self._eval(expr.value, env)
            self._eval(expr.slice, env)
            if dotted_name(expr.value) == "os.environ":
                return base | {
                    ("env_config", f"os.environ in {self.pretty}")
                }
            return base
        if isinstance(expr, ast.Call):
            return self._eval_call(expr, env)
        if isinstance(expr, ast.BinOp):
            return self._eval(expr.left, env) | self._eval(expr.right, env)
        if isinstance(expr, ast.BoolOp):
            out: frozenset[Taint] = frozenset()
            for v in expr.values:
                out |= self._eval(v, env)
            return out
        if isinstance(expr, ast.UnaryOp):
            return self._eval(expr.operand, env)
        if isinstance(expr, ast.Compare):
            self._eval(expr.left, env)
            for c in expr.comparators:
                self._eval(c, env)
            return frozenset()  # a bool carries no text/order/clock value
        if isinstance(expr, ast.IfExp):
            self._eval(expr.test, env)
            return self._eval(expr.body, env) | self._eval(expr.orelse, env)
        if isinstance(expr, ast.JoinedStr):
            out = frozenset()
            for part in expr.values:
                if isinstance(part, ast.FormattedValue):
                    out |= self._eval(part.value, env)
            return out
        if isinstance(expr, ast.FormattedValue):
            return self._eval(expr.value, env)
        if isinstance(expr, (ast.Tuple, ast.List, ast.Set)):
            out = frozenset()
            for elt in expr.elts:
                out |= self._eval(elt, env)
            return out
        if isinstance(expr, ast.Dict):
            out = frozenset()
            for k in expr.keys:
                if k is not None:
                    out |= self._eval(k, env)
            for v in expr.values:
                out |= self._eval(v, env)
            return out
        if isinstance(
            expr, (ast.ListComp, ast.SetComp, ast.GeneratorExp)
        ):
            return self._eval_comp(expr, env)
        if isinstance(expr, ast.DictComp):
            inner = dict(env)
            order = False
            for gen in expr.generators:
                taints = self._eval(gen.iter, inner)
                order = order or _iter_order_tainted(gen.iter)
                self._assign(gen.target, taints, inner, weak=True)
            out = self._eval(expr.key, inner) | self._eval(expr.value, inner)
            if order:
                out |= {("set_order", f"set iteration in {self.pretty}")}
            return out
        if isinstance(expr, ast.Starred):
            return self._eval(expr.value, env)
        if isinstance(expr, ast.Await):
            return self._eval(expr.value, env)
        if isinstance(expr, ast.Lambda):
            return frozenset()
        if isinstance(expr, ast.NamedExpr):
            taints = self._eval(expr.value, env)
            self._assign(expr.target, taints, env, weak=False)
            return taints
        if isinstance(expr, ast.Slice):
            for part in (expr.lower, expr.upper, expr.step):
                if part is not None:
                    self._eval(part, env)
            return frozenset()
        return frozenset()

    def _eval_comp(
        self,
        expr: ast.ListComp | ast.SetComp | ast.GeneratorExp,
        env: dict[str, frozenset[Taint]],
    ) -> frozenset[Taint]:
        inner = dict(env)
        order = False
        for gen in expr.generators:
            taints = self._eval(gen.iter, inner)
            order = order or _iter_order_tainted(gen.iter)
            self._assign(gen.target, taints, inner, weak=True)
            for cond in gen.ifs:
                self._eval(cond, inner)
        out = self._eval(expr.elt, inner)
        if order and not isinstance(expr, ast.SetComp):
            out |= {("set_order", f"set iteration in {self.pretty}")}
        return out

    # ------------------------------------------------------------------
    # calls: sources, sanitizers, summaries, sinks
    # ------------------------------------------------------------------
    def _eval_call(
        self, call: ast.Call, env: dict[str, frozenset[Taint]]
    ) -> frozenset[Taint]:
        dotted = dotted_name(call.func)
        last = dotted.rsplit(".", 1)[-1] if dotted else ""
        arg_taints = [self._eval(a, env) for a in call.args]
        kw_taints = {
            kw.arg: self._eval(kw.value, env)
            for kw in call.keywords
        }
        everything: frozenset[Taint] = frozenset()
        for t in arg_taints:
            everything |= t
        for t in kw_taints.values():
            everything |= t

        # -- sources ----------------------------------------------------
        kind = source_kind(dotted, isinstance(call.func, ast.Name))
        if kind is not None:
            return frozenset({(kind, f"{dotted}() in {self.pretty}")})

        # -- sink sites in *this* function ------------------------------
        self._local_call_sinks(call, last, arg_taints, kw_taints)

        # -- sanitizers -------------------------------------------------
        if last in ORDER_SANITIZERS or last == "sorted":
            return frozenset(
                t for t in everything if t[0] != "set_order"
            )
        if last in ("set", "frozenset"):
            # the *set object* has no order until iterated; the
            # iteration shapes re-introduce set_order
            return frozenset(
                t for t in everything if t[0] != "set_order"
            )
        if last in NUMERIC_SANITIZERS:
            return frozenset(
                t for t in everything if t[0] not in WIRE_KINDS
            )
        if last in self.config.wire_sanitizers:
            return frozenset(
                t for t in everything if t[0] not in WIRE_KINDS
            )

        # -- summarized callees -----------------------------------------
        callee_key = self.index.resolve_call(
            self.sf, self.info.cls, call, self.local_types
        )
        if callee_key is not None and callee_key != self.info.key:
            self.calls.add(callee_key)
            callee = self.index.functions[callee_key]
            summary = self.summaries.get(callee_key)
            if summary is not None:
                self._check_param_sinks(
                    call, callee, summary, arg_taints, kw_taints
                )
                result = set(summary.returns)
                for i in summary.param_returns:
                    result |= self._arg_at(
                        callee, i, arg_taints, kw_taints
                    )
                return frozenset(result)
            return frozenset()

        # -- unresolved: conservative union of receiver + args ----------
        out = everything
        if isinstance(call.func, ast.Attribute):
            out = out | self._eval(call.func.value, env)
        if last in ("list", "tuple", "join") and any(
            _is_set_shaped(a) for a in call.args
        ):
            out = out | {
                ("set_order", f"set iteration in {self.pretty}")
            }
        return out

    def _arg_at(
        self,
        callee: FunctionInfo,
        index: int,
        arg_taints: list[frozenset[Taint]],
        kw_taints: dict[str | None, frozenset[Taint]],
    ) -> frozenset[Taint]:
        if index < len(arg_taints):
            return arg_taints[index]
        if 0 <= index < len(callee.params):
            return kw_taints.get(callee.params[index], frozenset())
        return frozenset()

    # ------------------------------------------------------------------
    # sinks
    # ------------------------------------------------------------------
    def _local_call_sinks(
        self,
        call: ast.Call,
        last: str,
        arg_taints: list[frozenset[Taint]],
        kw_taints: dict[str | None, frozenset[Taint]],
    ) -> None:
        all_taints: frozenset[Taint] = frozenset()
        for t in arg_taints:
            all_taints |= t
        for t in kw_taints.values():
            all_taints |= t

        if last.endswith(("_key", "_fingerprint")) and (
            call.args or call.keywords
        ):
            self._sink(
                "det", f"cache/fingerprint key {last}()", all_taints, call
            )
        if self._det_scope:
            if isinstance(call.func, ast.Attribute) and last == "push":
                self._sink("det", "event-queue ordering", all_taints, call)
            if last == "heappush" and len(arg_taints) >= 2:
                item = frozenset()
                for t in arg_taints[1:]:
                    item |= t
                self._sink("det", "heap ordering", item, call)
            for name in _DET_KWARGS & set(kw_taints):
                self._sink(
                    "det",
                    f"deterministic bench counter ({name}=)",
                    kw_taints[name],
                    call,
                )
        if self._wire_scope:
            if last in _WIRE_RESPONSE_FNS:
                self._sink(
                    "wire", f"/v1 response envelope {last}()",
                    all_taints, call,
                )
                self._sink(
                    "det", f"/v1 response envelope {last}()",
                    all_taints, call,
                )
            if (
                isinstance(call.func, ast.Attribute)
                and last in _METRIC_METHODS
                and arg_taints
            ):
                self._sink("wire", "exported metric name",
                           arg_taints[0], call)

    def _ledger_sink(
        self,
        targets: list[ast.expr],
        value: ast.expr,
        taints: frozenset[Taint],
        stmt: ast.stmt,
    ) -> None:
        if not self._det_scope:
            return
        for tgt in targets:
            if not isinstance(tgt, ast.Subscript):
                continue
            base = dotted_name(tgt.value) or ""
            if base.rsplit(".", 1)[-1].endswith("ledger"):
                self._sink("det", "tier ledger arithmetic", taints, stmt)

    def _sink(
        self,
        category: str,
        desc: str,
        taints: frozenset[Taint],
        node: ast.AST,
    ) -> None:
        kinds = DET_KINDS if category == "det" else WIRE_KINDS
        rules = DET_RULE_BY_KIND if category == "det" else WIRE_RULE_BY_KIND
        line = getattr(node, "lineno", 1)
        for kind, origin in taints:
            if kind == PARAM:
                self.param_sinks.setdefault(int(origin), set()).add(
                    (category, desc, self.info.module, line)
                )
            elif kind in kinds and self.emit is not None:
                self.emit(
                    rules[kind],
                    self.info.module,
                    node,
                    f"{KIND_LABELS[kind]} from {origin} flows into {desc}",
                )

    def _check_param_sinks(
        self,
        call: ast.Call,
        callee: FunctionInfo,
        summary: FlowSummary,
        arg_taints: list[frozenset[Taint]],
        kw_taints: dict[str | None, frozenset[Taint]],
    ) -> None:
        for i, sinks in summary.param_sinks.items():
            taints = self._arg_at(callee, i, arg_taints, kw_taints)
            if not taints:
                continue
            for category, desc, sink_mod, sink_line in sinks:
                kinds = DET_KINDS if category == "det" else WIRE_KINDS
                rules = (
                    DET_RULE_BY_KIND
                    if category == "det"
                    else WIRE_RULE_BY_KIND
                )
                for kind, origin in taints:
                    if kind == PARAM:
                        self.param_sinks.setdefault(
                            int(origin), set()
                        ).add((category, desc, sink_mod, sink_line))
                    elif kind in kinds and self.emit is not None:
                        self.emit(
                            rules[kind],
                            self.info.module,
                            call,
                            f"{KIND_LABELS[kind]} from {origin} is passed "
                            f"to {callee.name}() and reaches {desc} "
                            f"({sink_mod}:{sink_line})",
                        )
