"""Exception-safety resource paths (RPL060/061).

The intra-module RPL020 checker asks "is every ``request``/``reserve``
released on the failure path *of this function*?".  This pass asks the
interprocedural version: between an acquisition and its release, does
any call run that can **transitively** raise — through any depth of
callees — while the acquisition is not protected by a ``try`` whose
handler or ``finally`` releases it?  Raise capability comes from the
summary fixpoint (:mod:`repro.lint.flow.engine` closes the syntactic
``raise`` facts over the call graph), so a validation error three
calls down still counts.

Two rules:

* **RPL060** (error) — a pool/tier reservation or queue admission
  (``.request()``/``.reserve()``/``.admit()``) held across a
  raise-capable call without a protected release/rollback.  Only
  functions that visibly *own* a lifecycle are judged: they either
  release the resource themselves or acquire more than once (the
  partial-acquire shape, where a second acquisition's failure leaks
  the first).
* **RPL061** (error) — a manual ``lock.acquire()`` held across a
  raise-capable call with the matching ``release()`` not in a
  ``finally``; an exception leaves the lock held forever.  The fix is
  almost always ``with lock:``.

A ``with`` block never leaks and is never flagged; neither is an
acquire whose releases live in the handlers/``finally`` of an
enclosing ``try``.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.lint.core import LintConfig, SourceFile, dotted_name
from repro.lint.flow.callgraph import FunctionInfo, ProgramIndex

__all__ = ["run_resource_paths", "ResourceFinding"]

_ACQUIRE_METHODS = {"request", "reserve", "admit"}
_RELEASE_METHODS = {"release", "rollback", "free", "remove", "cancel"}


@dataclass(frozen=True)
class ResourceFinding:
    rule_id: str
    module: str
    line: int
    col: int
    message: str


@dataclass
class _Outstanding:
    kind: str                # "lock" | "resource"
    recv: str                # dotted receiver, e.g. "self.device_pool"
    method: str              # the acquiring method name
    line: int
    protected: bool = False
    flagged: bool = False


@dataclass
class _FnContext:
    index: ProgramIndex
    config: LintConfig
    sf: SourceFile
    info: FunctionInfo
    t_raises: dict[str, bool]
    local_types: dict[str, str]
    findings: list[ResourceFinding] = field(default_factory=list)


def _related(a: str, b: str) -> bool:
    """Receiver match: exact dotted path, or same final attribute."""
    if a == b:
        return True
    return a.rsplit(".", 1)[-1] == b.rsplit(".", 1)[-1]


def _calls_in_expr(expr: ast.expr) -> list[ast.Call]:
    calls: list[ast.Call] = []

    class V(ast.NodeVisitor):
        def visit_Call(self, node: ast.Call) -> None:
            calls.append(node)
            self.generic_visit(node)

        def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
            pass

        def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
            pass

        def visit_Lambda(self, node: ast.Lambda) -> None:
            pass

    V().visit(expr)
    return calls


def _stmt_exprs(stmt: ast.stmt) -> list[ast.expr]:
    if isinstance(stmt, (ast.If, ast.While)):
        return [stmt.test]
    if isinstance(stmt, (ast.For, ast.AsyncFor)):
        return [stmt.iter]
    if isinstance(stmt, ast.Try):
        return []
    return [
        c for c in ast.iter_child_nodes(stmt) if isinstance(c, ast.expr)
    ]


def _release_receivers(stmts: list[ast.stmt]) -> list[str]:
    out: list[str] = []
    for stmt in stmts:
        for node in ast.walk(stmt):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _RELEASE_METHODS
            ):
                recv = dotted_name(node.func.value)
                if recv is not None:
                    out.append(recv)
    return out


class _FunctionWalker:
    def __init__(self, ctx: _FnContext):
        self.ctx = ctx
        self.out: list[_Outstanding] = []
        self._try_cleanup: list[str] = []

    # -- classification -------------------------------------------------
    def _is_known_lock(self, recv_expr: ast.expr) -> bool:
        name = dotted_name(recv_expr)
        if name is None:
            return False
        if name.startswith("self.") and self.ctx.info.cls is not None:
            return (
                f"{self.ctx.info.cls}.{name[5:]}" in self.ctx.index.locks
            )
        return f"{self.ctx.sf.module}:{name}" in self.ctx.index.locks

    def _call_raises(self, call: ast.Call) -> str | None:
        """Name of the raise-capable callee, or None."""
        key = self.ctx.index.resolve_call(
            self.ctx.sf, self.ctx.info.cls, call, self.ctx.local_types
        )
        if key is not None and self.ctx.t_raises.get(key):
            return self.ctx.index.functions[key].name
        return None

    # -- the walk -------------------------------------------------------
    def walk(self, stmts: list[ast.stmt]) -> None:
        for stmt in stmts:
            if isinstance(stmt, (ast.With, ast.AsyncWith)):
                # a with-managed lock/resource cannot leak
                self.walk(stmt.body)
                continue
            if isinstance(stmt, ast.Try):
                self._walk_try(stmt)
                continue
            if isinstance(stmt, ast.Raise):
                self._flag_outstanding("an explicit raise", stmt.lineno)
                continue
            if isinstance(stmt, ast.Return):
                # a return hands the resource out: the caller owns it now
                self.out = [o for o in self.out if o.kind == "lock"]
            for expr in _stmt_exprs(stmt):
                for call in _calls_in_expr(expr):
                    self._handle_call(call)
            for attr in ("body", "orelse"):
                block = getattr(stmt, attr, None)
                if block:
                    self.walk(block)

    def _walk_try(self, stmt: ast.Try) -> None:
        cleanup = _release_receivers(
            [s for h in stmt.handlers for s in h.body] + stmt.finalbody
        )
        toggled: list[_Outstanding] = []
        for o in self.out:
            if not o.protected and any(_related(o.recv, r) for r in cleanup):
                o.protected = True
                toggled.append(o)
        saved = self._try_cleanup
        pre_body = list(self.out)
        self._try_cleanup = saved + cleanup
        self.walk(stmt.body)
        self._try_cleanup = saved
        # handlers run when the body raised partway: acquisitions made
        # inside the body may not have happened, so handlers are judged
        # against the pre-body outstanding state
        post_body = self.out
        self.out = pre_body
        for handler in stmt.handlers:
            self.walk(handler.body)
        self.out = post_body
        self.walk(stmt.orelse)
        self.walk(stmt.finalbody)
        for o in toggled:
            if o in self.out:
                o.protected = False

    def _handle_call(self, call: ast.Call) -> None:
        if not isinstance(call.func, ast.Attribute):
            raiser = self._call_raises(call)
            if raiser is not None:
                self._flag_outstanding(f"{raiser}()", call.lineno)
            return
        attr = call.func.attr
        recv = dotted_name(call.func.value)
        if attr == "acquire" and self._is_known_lock(call.func.value):
            self.out.append(
                _Outstanding(
                    "lock", recv or "?", attr, call.lineno,
                    protected=any(
                        _related(recv or "?", r) for r in self._try_cleanup
                    ),
                )
            )
            return
        if attr in _ACQUIRE_METHODS and recv is not None:
            # the acquiring call itself may raise (e.g. an over-budget
            # reservation) — that is exactly the partial-acquire leak
            raiser = self._call_raises(call)
            if raiser is not None:
                self._flag_outstanding(f"{raiser}()", call.lineno)
            self.out.append(
                _Outstanding(
                    "resource", recv, attr, call.lineno,
                    protected=any(
                        _related(recv, r) for r in self._try_cleanup
                    ),
                )
            )
            return
        if attr in _RELEASE_METHODS and recv is not None:
            for o in list(self.out):
                if _related(o.recv, recv):
                    self.out.remove(o)
                    break
            return
        raiser = self._call_raises(call)
        if raiser is not None:
            self._flag_outstanding(f"{raiser}()", call.lineno)

    def _flag_outstanding(self, what: str, line: int) -> None:
        for o in self.out:
            if o.protected or o.flagged:
                continue
            o.flagged = True
            if o.kind == "lock":
                rule, msg = "RPL061", (
                    f"{o.recv}.acquire() (line {o.line}) is held across "
                    f"{what}, which can raise — the lock would never be "
                    "released; use `with` or release in a finally block"
                )
            else:
                rule, msg = "RPL060", (
                    f"{o.recv}.{o.method}() (line {o.line}) can leak: "
                    f"{what} may raise before the release/rollback"
                )
            self.ctx.findings.append(
                ResourceFinding(
                    rule, self.ctx.info.module, line, 0, msg
                )
            )


def run_resource_paths(
    index: ProgramIndex,
    config: LintConfig,
    t_raises: dict[str, bool],
) -> list[ResourceFinding]:
    findings: list[ResourceFinding] = []
    for info in index.functions.values():
        sf = index.function_file(info)
        acquires = 0
        releases = 0
        for node in ast.walk(info.node):
            if isinstance(node, ast.Call) and isinstance(
                node.func, ast.Attribute
            ):
                if node.func.attr in _ACQUIRE_METHODS:
                    acquires += 1
                elif node.func.attr in _RELEASE_METHODS:
                    releases += 1
        lock_acquire = any(
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "acquire"
            for node in ast.walk(info.node)
        )
        # only judge functions that visibly own a lifecycle: they
        # release in-function, or partially acquire more than once
        if not lock_acquire and not (
            acquires and (releases or acquires >= 2)
        ):
            continue
        ctx = _FnContext(
            index=index,
            config=config,
            sf=sf,
            info=info,
            t_raises=t_raises,
            local_types=index.local_types(sf, info.node),
        )
        walker = _FunctionWalker(ctx)
        walker.walk(list(info.node.body))
        findings.extend(ctx.findings)
    return findings
