"""Fixpoint driver and memoized entry point for the flow analysis.

:func:`analyze` runs the whole pipeline once per (file set, config)
pair and caches the result, because four registered checkers each ask
for the same analysis over the same tree:

1. build the :class:`~repro.lint.flow.callgraph.ProgramIndex`;
2. iterate :class:`~repro.lint.flow.summaries.Evaluator` over every
   function until no :class:`FlowSummary` changes (taint summaries are
   finite and grow monotonically along call chains, so this
   terminates; a generous iteration cap guards pathological graphs);
3. close the syntactic ``raise`` facts over the resolved call graph
   (``t_raises``);
4. run one final evaluator pass with emission on (determinism + wire
   taint findings), then the guard-inference and resource-path passes.

The result is a flat list of :class:`FlowFinding` records; the
checker classes in :mod:`repro.lint.flow.checkers` filter it by rule
family and attach severities/hints.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.lint.core import LintConfig, SourceFile
from repro.lint.flow.callgraph import ProgramIndex, build_index
from repro.lint.flow.guards import run_guard_inference
from repro.lint.flow.resources import run_resource_paths
from repro.lint.flow.summaries import Evaluator, FlowSummary
from repro.lint.flow.lattice import Taint  # noqa: F401  (re-export)

__all__ = ["FlowFinding", "Analysis", "analyze"]

_MAX_FIXPOINT_PASSES = 20


@dataclass(frozen=True)
class FlowFinding:
    """One finding, module-addressed (checkers map module -> file)."""

    rule_id: str
    module: str
    line: int
    col: int
    message: str


@dataclass
class Analysis:
    """The shared result every flow checker filters."""

    index: ProgramIndex
    summaries: dict[str, FlowSummary]
    t_raises: dict[str, bool]
    findings: list[FlowFinding] = field(default_factory=list)


#: (file-set fingerprint, config repr) -> Analysis; tiny FIFO
_CACHE: dict[tuple, Analysis] = {}
_CACHE_MAX = 4


def _cache_key(files: list[SourceFile], config: LintConfig) -> tuple:
    return (
        tuple((f.module, str(f.path), hash(f.text)) for f in files),
        repr(config),
    )


def analyze(files: list[SourceFile], config: LintConfig) -> Analysis:
    key = _cache_key(files, config)
    hit = _CACHE.get(key)
    if hit is not None:
        return hit

    index = build_index(files, config)
    summaries: dict[str, FlowSummary] = {}
    for _ in range(_MAX_FIXPOINT_PASSES):
        changed = False
        for fn_key, info in index.functions.items():
            new = Evaluator(index, config, info, summaries).run()
            if summaries.get(fn_key) != new:
                changed = True
            summaries[fn_key] = new
        if not changed:
            break

    # close raise capability over the call graph
    t_raises = {k: s.raises for k, s in summaries.items()}
    changed = True
    while changed:
        changed = False
        for k, s in summaries.items():
            if t_raises[k]:
                continue
            if any(t_raises.get(c, False) for c in s.calls):
                t_raises[k] = True
                changed = True

    events: set[tuple[str, str, int, int, str]] = set()

    def emit(rule_id: str, module: str, node: ast.AST, message: str) -> None:
        events.add(
            (
                rule_id,
                module,
                int(getattr(node, "lineno", 1)),
                int(getattr(node, "col_offset", 0)),
                message,
            )
        )

    for info in index.functions.values():
        Evaluator(index, config, info, summaries, emit=emit).run()

    findings = [FlowFinding(*event) for event in sorted(events)]
    findings.extend(
        FlowFinding(g.rule_id, g.module, g.line, g.col, g.message)
        for g in run_guard_inference(index, config)
    )
    findings.extend(
        FlowFinding(r.rule_id, r.module, r.line, r.col, r.message)
        for r in run_resource_paths(index, config, t_raises)
    )

    analysis = Analysis(
        index=index,
        summaries=summaries,
        t_raises=t_raises,
        findings=findings,
    )
    if len(_CACHE) >= _CACHE_MAX:
        _CACHE.pop(next(iter(_CACHE)))
    _CACHE[key] = analysis
    return analysis
