"""The benchmark scenario registry.

A scenario is one reproducible measurement: a ``prepare`` step that
warms the shared :class:`~repro.bench.workloads.SuiteCache` (symbolic
analysis, paper workloads, the trained classifier, the assembly plan)
and a ``run`` step whose wall-clock time is sampled and whose outputs
are reduced to the two counter classes of
:mod:`repro.bench.results`.

Scenario ``run`` functions must be deterministic: the runner executes
them N times and *errors* if any deterministic counter differs between
repeats.  Nothing in this module may read the wall clock — timing is
the runner's job (and the lint gate pins that: ``repro.bench`` is in
the RPL010/RPL011 deterministic scope).

Covered surface (the ISSUE-5 matrix): numeric-scale factorization
(serial P1/P4 and the serial/static/dynamic backend triple),
paper-scale replays under the P1 / P4 / baseline-hybrid (P_BH) /
model-hybrid (P_MH) policies, ``SolverService`` cache throughput, and
solve + iterative refinement.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.bench.workloads import SuiteCache

__all__ = [
    "Measurement",
    "Scenario",
    "all_scenarios",
    "get_scenarios",
    "scenario_names",
]

#: numeric-scale matrix the factorize scenarios run (smallest Table-II
#: analog: full numerics in ~0.5 s, large enough that per-front Python
#: overhead is visible)
FACTOR_MATRIX = "lmco_s"
#: paper-scale workload the replay scenarios price
PAPER_WORKLOAD = "audikw_1"


@dataclass
class Measurement:
    """What one scenario run boils down to."""

    deterministic: dict[str, object]
    numeric: dict[str, object] = field(default_factory=dict)


@dataclass(frozen=True)
class Scenario:
    name: str
    description: str
    run: Callable[[SuiteCache], Measurement]
    prepare: Callable[[SuiteCache], None]
    tags: tuple[str, ...] = ()


_REGISTRY: dict[str, Scenario] = {}


def _register(scn: Scenario) -> Scenario:
    if scn.name in _REGISTRY:
        raise ValueError(f"duplicate scenario {scn.name!r}")
    _REGISTRY[scn.name] = scn
    return scn


def all_scenarios() -> list[Scenario]:
    return [_REGISTRY[name] for name in sorted(_REGISTRY)]


def scenario_names() -> list[str]:
    return sorted(_REGISTRY)


def get_scenarios(names: list[str] | None) -> list[Scenario]:
    if not names:
        return all_scenarios()
    missing = [n for n in names if n not in _REGISTRY]
    if missing:
        raise KeyError(
            f"unknown scenario(s) {', '.join(missing)}; "
            f"known: {', '.join(scenario_names())}"
        )
    return [_REGISTRY[n] for n in names]


# ----------------------------------------------------------------------
# counter extraction helpers
# ----------------------------------------------------------------------
def _policy_count_counters(records) -> dict[str, int]:
    counts: dict[str, int] = {}
    for r in records:
        counts[r.policy] = counts.get(r.policy, 0) + 1
    return {
        f"policy_calls.{name}": counts[name] for name in sorted(counts)
    }


def _node_counters(node) -> dict[str, object]:
    from repro.gpu.clock import engine_counters

    out: dict[str, object] = {}
    out.update(engine_counters(node.engines))
    for g in node.gpus:
        out.update(g.device_pool.stats.as_counters(f"gpu{g.gpu_id}.device_pool"))
        out.update(g.pinned_pool.stats.as_counters(f"gpu{g.gpu_id}.pinned_pool"))
    return out


def _factor_measurement(nf, sf) -> Measurement:
    from repro.verify.lattice import factor_fingerprint

    det: dict[str, object] = {
        "simulated_seconds": float(nf.makespan),
        "assembly_seconds": float(nf.assembly_seconds),
        "total_flops": float(sum(r.total_flops for r in nf.records)),
        "fu_calls": len(nf.records),
        "n": int(sf.n),
        "nnz_factor": int(sf.nnz_factor),
        "n_supernodes": int(sf.n_supernodes),
        "peak_update_bytes": int(nf.peak_update_bytes),
    }
    det.update(_policy_count_counters(nf.records))
    det.update(_node_counters(nf.node))
    return Measurement(det, {"factor_fingerprint": factor_fingerprint(nf)})


# ----------------------------------------------------------------------
# numeric-scale factorization scenarios
# ----------------------------------------------------------------------
def _factorize(suite: SuiteCache, policy_name: str):
    from repro.gpu import SimulatedNode
    from repro.multifrontal import factorize_numeric

    node = SimulatedNode(model=suite.model, n_cpus=1, n_gpus=1)
    return factorize_numeric(
        suite.matrix(FACTOR_MATRIX),
        suite.symbolic(FACTOR_MATRIX),
        suite.policy(policy_name),
        node=node,
    )


def _make_factorize_scenario(policy_name: str) -> Scenario:
    def prepare(suite: SuiteCache) -> None:
        # warm the matrix, the symbolic factorization and the cached
        # assembly plan so the timed repeats measure steady state
        _factorize(suite, policy_name)

    def run(suite: SuiteCache) -> Measurement:
        nf = _factorize(suite, policy_name)
        return _factor_measurement(nf, suite.symbolic(FACTOR_MATRIX))

    return Scenario(
        name=f"factorize-serial-{policy_name.lower()}",
        description=(
            f"serial numeric multifrontal factorization of {FACTOR_MATRIX} "
            f"under policy {policy_name} (1 CPU + 1 simulated GPU)"
        ),
        run=run,
        prepare=prepare,
        tags=("deterministic", "factorize"),
    )


_register(_make_factorize_scenario("P1"))
_register(_make_factorize_scenario("P4"))


# ----------------------------------------------------------------------
# backend triple: the counters the differential gate relies on
# ----------------------------------------------------------------------
def _backends_run(suite: SuiteCache) -> Measurement:
    from repro.multifrontal import SparseCholeskySolver
    from repro.verify.lattice import factor_fingerprint

    a = suite.matrix(FACTOR_MATRIX)
    sym = suite.symbolic(FACTOR_MATRIX)
    det: dict[str, object] = {}
    numeric: dict[str, object] = {}
    fingerprints = []
    for backend in ("serial", "static", "dynamic"):
        solver = SparseCholeskySolver.from_symbolic(
            a, sym, policy="P1", backend=backend
        )
        solver.factorize()
        st = solver.stats
        det[f"{backend}.simulated_seconds"] = float(st.simulated_seconds)
        det[f"{backend}.total_flops"] = float(st.total_flops)
        det[f"{backend}.fu_calls"] = len(solver.factor.records)
        fp = factor_fingerprint(solver.factor)
        fingerprints.append(fp)
        numeric[f"{backend}.factor_fingerprint"] = fp
    # cross-backend bitwise identity of the factor itself is portable
    # (it holds on every machine or the backends are broken)
    det["factors_bitwise_identical"] = bool(
        fingerprints[0] == fingerprints[1] == fingerprints[2]
    )
    return Measurement(det, numeric)


_register(Scenario(
    name="factorize-backends",
    description=(
        f"factorize {FACTOR_MATRIX} through the serial, static and "
        "dynamic backends; pins cross-backend flop totals and bitwise "
        "factor identity"
    ),
    run=_backends_run,
    prepare=lambda suite: _backends_run(suite) and None,
    tags=("deterministic", "factorize", "backends"),
))


# ----------------------------------------------------------------------
# relaxed amalgamation + batched small fronts (the granularity unlock)
# ----------------------------------------------------------------------
#: leaf fronts at or below this many rows are stacked by the scenario
AMALG_BATCH_CUTOFF = 32


def _tree_assembly_bytes(sf) -> float:
    """Vectorized :func:`repro.multifrontal.frontal.assembly_bytes` summed
    over the whole tree: each front's zero-fill plus, for every non-root
    supernode, the read-modify-write of its update block into its parent."""
    sizes = np.array([r.size for r in sf.rows], dtype=np.float64)
    widths = np.diff(sf.super_ptr).astype(np.float64)
    m = sizes - widths
    child = np.asarray(sf.sparent) >= 0
    return float((sizes ** 2).sum() * 8.0 + 2.0 * 8.0 * (m[child] ** 2).sum())


def _tree_flops(sf) -> float:
    """Vectorized sum of ``factor_update_flops`` over the tree."""
    sizes = np.array([r.size for r in sf.rows], dtype=np.float64)
    k = np.diff(sf.super_ptr).astype(np.float64)
    m = sizes - k
    return float((k ** 3 / 3.0 + m * k ** 2 + m ** 2 * k).sum())


def _amalgamated_factorize(suite: SuiteCache):
    from repro.gpu import SimulatedNode
    from repro.multifrontal import factorize_numeric
    from repro.multifrontal.batched import BatchParams

    node = SimulatedNode(model=suite.model, n_cpus=1, n_gpus=1)
    return factorize_numeric(
        suite.matrix(FACTOR_MATRIX),
        suite.symbolic(FACTOR_MATRIX, amalgamation="aggressive"),
        suite.policy("P1"),
        node=node,
        batching=BatchParams(front_cutoff=AMALG_BATCH_CUTOFF),
    )


def _amalgamated_run(suite: SuiteCache) -> Measurement:
    from repro.verify.lattice import factor_fingerprint

    nf = _amalgamated_factorize(suite)
    sf = suite.symbolic(FACTOR_MATRIX, amalgamation="aggressive")
    sf_base = suite.symbolic(FACTOR_MATRIX)
    flops = float(sum(r.total_flops for r in nf.records))
    flops_base = _tree_flops(sf_base)
    asm = _tree_assembly_bytes(sf)
    asm_base = _tree_assembly_bytes(sf_base)
    det: dict[str, object] = {
        "simulated_seconds": float(nf.makespan),
        "assembly_seconds": float(nf.assembly_seconds),
        "total_flops": flops,
        "baseline_total_flops": flops_base,
        "fu_calls": len(nf.records),
        "n": int(sf.n),
        "amalgamated_supernodes": int(sf.n_supernodes),
        "baseline_supernodes": int(sf_base.n_supernodes),
        "amalgamated_nnz_factor": int(sf.nnz_factor),
        "baseline_nnz_factor": int(sf_base.nnz_factor),
        "amalgamated_assembly_bytes": asm,
        "baseline_assembly_bytes": asm_base,
        "batch_tasks": int(nf.batch_tasks),
        "batched_fronts": int(nf.batched_fronts),
        "task_dispatches": int(nf.task_dispatches),
        "baseline_task_dispatches": int(sf_base.n_supernodes),
        "peak_update_bytes": int(nf.peak_update_bytes),
        # relation gates: 1-valued counters pinning the speedup's
        # structural preconditions, hard-failed by ``bench --check``
        "gate.amalgamated_fewer_fronts": int(
            sf.n_supernodes < sf_base.n_supernodes
        ),
        "gate.amalgamated_less_assembly": int(asm < asm_base),
        "gate.batching_fewer_dispatches": int(
            nf.task_dispatches < sf_base.n_supernodes
            and nf.task_dispatches < sf.n_supernodes
        ),
        # the fill the relaxation buys may cost flops, but boundedly so
        "gate.flop_overhead_bounded": int(flops <= 1.5 * flops_base),
    }
    det.update(_policy_count_counters(nf.records))
    det.update(_node_counters(nf.node))
    return Measurement(det, {"factor_fingerprint": factor_fingerprint(nf)})


_register(Scenario(
    name="factorize-amalgamated",
    description=(
        f"factorize {FACTOR_MATRIX} on the aggressively amalgamated tree "
        f"with leaf fronts <= {AMALG_BATCH_CUTOFF} rows batched into "
        "stacked kernels; gates fronts/assembly/dispatch reductions vs "
        "the default tree (wall: compare to factorize-serial-p1)"
    ),
    run=_amalgamated_run,
    prepare=lambda suite: _amalgamated_run(suite) and None,
    tags=("deterministic", "factorize", "amalgamation"),
))


# ----------------------------------------------------------------------
# paper-scale policy replays (P1 / P4 / P_BH / P_MH)
# ----------------------------------------------------------------------
_REPLAY_POLICIES = {
    "p1": "P1",
    "p4": "P4",
    "bh": "baseline",   # the paper's baseline hybrid (P_BH)
    "mh": "model",      # the auto-tuned model hybrid (P_MH)
}


def _make_replay_scenario(short: str, policy_name: str) -> Scenario:
    def prepare(suite: SuiteCache) -> None:
        suite.workload(PAPER_WORKLOAD)
        suite.policy(policy_name)   # trains the classifier for "model"

    def run(suite: SuiteCache) -> Measurement:
        from repro.gpu import SimulatedNode
        from repro.multifrontal.numeric import replay_factorize

        node = SimulatedNode(model=suite.model, n_cpus=1, n_gpus=1)
        rep = replay_factorize(
            suite.workload(PAPER_WORKLOAD), suite.policy(policy_name),
            node=node,
        )
        total_flops = float(sum(r.total_flops for r in rep.records))
        det: dict[str, object] = {
            "simulated_seconds": float(rep.makespan),
            "assembly_seconds": float(rep.assembly_seconds),
            "total_flops": total_flops,
            "fu_calls": len(rep.records),
            "effective_gflops": float(
                total_flops / rep.makespan / 1e9 if rep.makespan > 0 else 0.0
            ),
        }
        det.update(_policy_count_counters(rep.records))
        det.update(_node_counters(node))
        return Measurement(det)

    return Scenario(
        name=f"replay-paper-{short}",
        description=(
            f"paper-scale replay of {PAPER_WORKLOAD} under the "
            f"{policy_name} policy (timing-only walk, no numerics)"
        ),
        run=run,
        prepare=prepare,
        tags=("deterministic", "replay", "paper"),
    )


for _short in sorted(_REPLAY_POLICIES):
    _register(_make_replay_scenario(_short, _REPLAY_POLICIES[_short]))


# ----------------------------------------------------------------------
# cluster fan-both replay scaling
# ----------------------------------------------------------------------
_CLUSTER_NODE_COUNTS = (1, 2, 4)
_CLUSTER_POLICY = "P4"


def _cluster_replay_run(suite: SuiteCache) -> Measurement:
    from repro.cluster.runtime import cluster_replay
    from repro.cluster.topology import ClusterSpec

    sf = suite.workload(PAPER_WORKLOAD)
    policy = suite.policy(_CLUSTER_POLICY)
    det: dict[str, object] = {"n_supernodes": int(sf.n_supernodes)}
    makespans: dict[int, float] = {}
    for n in _CLUSTER_NODE_COUNTS:
        spec = ClusterSpec(n_ranks=n, gpus_per_rank=1, model=suite.model)
        res = cluster_replay(sf, policy, spec)
        makespans[n] = float(res.makespan)
        det[f"n{n}.makespan_seconds"] = float(res.makespan)
        det[f"n{n}.comm_bytes"] = float(res.comm_bytes)
        det[f"n{n}.comm_messages"] = int(res.comm_messages)
        det[f"n{n}.comm_seconds"] = float(res.comm_seconds)
        det[f"n{n}.tasks"] = len(res.schedule)
    # the scaling promise the PR pins: four nodes beat one on the
    # paper-scale tree despite paying for every cross-rank update
    det["n4_faster_than_n1"] = bool(makespans[4] < makespans[1])
    det["speedup_n4_vs_n1"] = float(
        makespans[1] / makespans[4] if makespans[4] > 0 else 0.0
    )
    return Measurement(det)


_register(Scenario(
    name="cluster-replay",
    description=(
        f"fan-both cluster replay of {PAPER_WORKLOAD} under {_CLUSTER_POLICY} "
        f"at {', '.join(str(n) for n in _CLUSTER_NODE_COUNTS)} nodes "
        "(1 GPU each); pins makespans, communication volume and the "
        "4-node-beats-1-node scaling promise"
    ),
    run=_cluster_replay_run,
    prepare=lambda suite: _cluster_replay_run(suite) and None,
    tags=("deterministic", "replay", "cluster", "paper"),
))


# ----------------------------------------------------------------------
# SolverService cache throughput
# ----------------------------------------------------------------------
_SERVICE_PATTERNS = 3
_SERVICE_REQUESTS = 24

#: service counters that are decided by the request stream and the cache
#: contents, never by thread timing (1 worker, sequential submission)
_SERVICE_COUNTER_NAMES = (
    "submitted",
    "completed",
    "numeric_factorizations",
    "requests_miss",
    "requests_symbolic",
    "requests_numeric",
    "degraded",
    "timeouts",
)


def _service_stream():
    """Repeated-pattern stream exercising all three cache tiers."""
    from repro.matrices import grid_laplacian_2d
    from repro.matrices.csc import CSCMatrix

    patterns = [
        grid_laplacian_2d(8 + 2 * p, 9 + p) for p in range(_SERVICE_PATTERNS)
    ]
    stream = []
    for i in range(_SERVICE_REQUESTS):
        base = patterns[i % _SERVICE_PATTERNS]
        v = (i // _SERVICE_PATTERNS) % 3
        stream.append(CSCMatrix(
            base.shape, base.indptr, base.indices,
            base.data * (1.0 + 0.5 * v), check=False,
        ))
    return stream


def _service_run(suite: SuiteCache) -> Measurement:
    from repro.service import SolverService

    det: dict[str, object] = {
        "requests": _SERVICE_REQUESTS,
        "patterns": _SERVICE_PATTERNS,
    }
    with SolverService(n_workers=1, policy="P1", ordering="amd") as svc:
        for a in _service_stream():
            svc.solve(a, np.ones(a.n_rows))
        rep = svc.report()
    for name in _SERVICE_COUNTER_NAMES:
        det[f"counter.{name}"] = int(rep["counters"].get(name, 0))
    cache = rep["cache"]
    for name in ("symbolic_hits", "numeric_hits", "evictions", "stored_bytes"):
        det[f"cache.{name}"] = int(cache[name])
    return Measurement(det)


_register(Scenario(
    name="service-throughput",
    description=(
        f"sequential stream of {_SERVICE_REQUESTS} requests over "
        f"{_SERVICE_PATTERNS} patterns through SolverService (1 worker); "
        "wall time prices the cache tiers, counters pin the tier decisions"
    ),
    run=_service_run,
    prepare=lambda suite: _service_run(suite) and None,
    tags=("deterministic", "service"),
))


# ----------------------------------------------------------------------
# solve + iterative refinement
# ----------------------------------------------------------------------
def _solve_run(suite: SuiteCache) -> Measurement:
    from repro.multifrontal.refine import iterative_refinement

    a = suite.matrix(FACTOR_MATRIX)
    factor = suite.factor(FACTOR_MATRIX, "P1")
    b = np.ones(a.n_rows)
    # tol=0 forces the full refinement budget so the scenario prices the
    # paper's correction loop, not just the initial triangular solve
    res = iterative_refinement(a, factor, b, tol=0.0, max_iter=2)
    det: dict[str, object] = {
        "iterations": int(res.iterations),
        "n": int(a.n_rows),
        "residual_trace_len": len(res.residual_norms),
    }
    numeric = {
        "initial_residual": float(res.initial_residual),
        "final_residual": float(res.final_residual),
    }
    return Measurement(det, numeric)


_register(Scenario(
    name="solve-refine",
    description=(
        f"triangular solves + two forced refinement steps on the cached "
        f"{FACTOR_MATRIX} P1 factor (ones right-hand side)"
    ),
    run=_solve_run,
    prepare=lambda suite: _solve_run(suite) and None,
    tags=("deterministic", "solve"),
))


# ----------------------------------------------------------------------
# API front door throughput
# ----------------------------------------------------------------------
_API_CLIENTS = 250
_API_EDGE_CAPACITY = 32
_API_DEADLINE = 8


def _api_run(suite: SuiteCache) -> Measurement:
    from repro.api.loadgen import run_load

    report = run_load(
        n_clients=_API_CLIENTS,
        n_nodes=4,
        edge_capacity=_API_EDGE_CAPACITY,
        n_deadline=_API_DEADLINE,
    )
    det: dict[str, object] = {
        "clients": _API_CLIENTS,
        "requests": report.requests,
    }
    det.update(report.counters())
    return Measurement(det)


_register(Scenario(
    name="api-throughput",
    description=(
        f"{_API_CLIENTS} clients through the in-process ASGI front door "
        "over a 4-node fleet: steady, overload (edge-queue shedding), "
        "deadline and rate-limit phases; every outcome and api.* counter "
        "is a gated invariant"
    ),
    run=_api_run,
    prepare=lambda suite: _api_run(suite) and None,
    tags=("deterministic", "api", "service"),
))


# ----------------------------------------------------------------------
# tiered factor cache
# ----------------------------------------------------------------------
_TIER_PATTERNS = 8
_TIER_PASSES = 2


def _tiering_patterns():
    """Distinct sparsity patterns of comparable factor size."""
    from repro.matrices import grid_laplacian_2d

    return [
        grid_laplacian_2d(10 + p, 11 + p) for p in range(_TIER_PATTERNS)
    ]


def _tiering_run(suite: SuiteCache) -> Measurement:
    from repro.cluster import ShardedSolverService
    from repro.service import SolverService, TierConfig, TierSpec
    from repro.service.cache import numeric_nbytes

    patterns = _tiering_patterns()
    rhs = {id(a): np.ones(a.n_rows) for a in patterns}

    # working set: every pattern's numeric factor, measured by an
    # unbounded probe service (the RAM budget is derived, not guessed)
    working_set = 0
    with SolverService(n_workers=1, policy="P1", ordering="amd") as probe:
        for a in patterns:
            probe.solve(a, rhs[id(a)])
            _, num_key = probe.keys_for(a)
            working_set += numeric_nbytes(probe.cache.peek_numeric(num_key))
    ram_budget = working_set // 4          # the acceptance-criteria ~25%

    def stream(svc):
        for _ in range(_TIER_PASSES):
            for a in patterns:             # round-robin: LRU's worst case
                svc.solve(a, rhs[id(a)])
        for a in reversed(patterns):       # re-read the warmest spills
            svc.solve(a, rhs[id(a)])
        return svc.report()

    # baseline: the legacy drop-on-evict RAM-only cache
    with SolverService(
        n_workers=1, policy="P1", ordering="amd", max_cache_bytes=ram_budget
    ) as svc:
        base = stream(svc)

    # tiered: same RAM budget, spilling down disk → object instead;
    # the disk tier holds the numeric working set but not the symbolic
    # factors riding along with it, so round-robin's coldest entries
    # cascade into the object tier while the reverse pass hits disk
    tiering = TierConfig(
        ram_bytes=ram_budget,
        disk=TierSpec("disk", max(working_set, 1), 5e8, 5e-3),
        object_store=TierSpec("object", 64 << 20, 2.5e8, 5e-2),
    )
    with SolverService(
        n_workers=1, policy="P1", ordering="amd", tiering=tiering
    ) as svc:
        tier = stream(svc)

    # cross-shard sharing: a factor resident only on the non-primary
    # shard is fetched over the interconnect by the affinity primary
    peer_tiering = TierConfig(ram_bytes=64 << 20)
    with ShardedSolverService(
        2, policy="P1", tiering=peer_tiering, peer_fetch="cost-model"
    ) as fleet:
        a = patterns[0]
        other = 1 - fleet.primary_for(a)
        fleet.shards[other].solve(a, rhs[id(a)])
        peer_outcome = fleet.solve(a, rhs[id(a)])
        peer = fleet.metrics.report()["counters"]

    det: dict[str, object] = {
        "patterns": _TIER_PATTERNS,
        "passes": _TIER_PASSES,
        "working_set_bytes": int(working_set),
        "ram_budget_bytes": int(ram_budget),
    }
    for label, rep in (("baseline", base), ("tiered", tier)):
        det[f"{label}.numeric_factorizations"] = int(
            rep["counters"].get("numeric_factorizations", 0)
        )
        det[f"{label}.numeric_hits"] = int(rep["cache"]["numeric_hits"])
        det[f"{label}.evictions"] = int(rep["cache"]["evictions"])
    # the acceptance gate: spilling must beat dropping outright
    det["tiered_fewer_refactorizations"] = int(
        det["tiered.numeric_factorizations"]
        < det["baseline.numeric_factorizations"]
    )
    tiers = tier["cache"]["tiers"]
    det["tier.ram.spilled_out_bytes"] = int(tiers["ram"]["spilled_out_bytes"])
    det["tier.ram.promoted_in_bytes"] = int(tiers["ram"]["promoted_in_bytes"])
    for name in ("disk", "object"):
        for stat in ("hits", "spilled_in_bytes", "promoted_out_bytes"):
            det[f"tier.{name}.{stat}"] = int(tiers[name][stat])
    det["peer.fetches"] = int(peer.get("peer_fetches", 0))
    det["peer.fetch_bytes"] = int(peer.get("peer_fetch_bytes", 0))
    det["peer.hit_numeric"] = int(peer_outcome.tier == "numeric")
    numeric = {
        "tiered.transfer_seconds": float(
            tier["cache"]["transfer_seconds"]
        ),
    }
    return Measurement(det, numeric)


_register(Scenario(
    name="cache-tiering",
    description=(
        f"{_TIER_PASSES} round-robin passes over {_TIER_PATTERNS} patterns "
        "with RAM ~25% of the measured working set: drop-on-evict baseline "
        "vs the RAM/disk/object tiered cache, plus one cost-model peer "
        "fetch across a 2-shard fleet; per-tier movement and the "
        "fewer-refactorizations win are gated counters"
    ),
    run=_tiering_run,
    prepare=lambda suite: _tiering_run(suite) and None,
    tags=("deterministic", "service", "cache"),
))
