"""Deterministic benchmarking and performance-regression gating.

``python -m repro bench`` runs a registry of scenarios (numeric- and
paper-scale factorization, backend triples, policy replays, the solver
service, solve + refinement), records two metric classes — bit-stable
deterministic counters from the simulation (virtual-clock seconds,
flops, bytes, allocator high-water marks, cache hits) and noise-aware
wall-clock stats (median + MAD over repeats) — and writes
schema-versioned ``BENCH_<scenario>.json`` files.  ``--check
--baseline DIR`` turns the same run into a regression gate: exact
equality on deterministic counters, MAD-scaled tolerance on wall
medians.  ``--profile`` attaches cProfile and embeds the top hot spots
per scenario.
"""

from repro.bench.compare import ComparisonReport, ScenarioVerdict, compare_results
from repro.bench.profiling import profile_call
from repro.bench.results import (
    SCHEMA_VERSION,
    BenchResult,
    WallStats,
    load_results_dir,
    result_filename,
)
from repro.bench.runner import (
    BenchDeterminismError,
    RunOptions,
    run_scenario,
    run_scenarios,
)
from repro.bench.scenarios import (
    Measurement,
    Scenario,
    all_scenarios,
    get_scenarios,
    scenario_names,
)
from repro.bench.workloads import SuiteCache, shared_suite

__all__ = [
    "SCHEMA_VERSION",
    "BenchDeterminismError",
    "BenchResult",
    "ComparisonReport",
    "Measurement",
    "RunOptions",
    "Scenario",
    "ScenarioVerdict",
    "SuiteCache",
    "WallStats",
    "all_scenarios",
    "compare_results",
    "get_scenarios",
    "load_results_dir",
    "profile_call",
    "result_filename",
    "run_scenario",
    "run_scenarios",
    "scenario_names",
    "shared_suite",
]
