"""Run scenarios N times; enforce counter determinism; summarize noise.

The runner is the only place in :mod:`repro.bench` allowed to read the
wall clock, and only to feed the noise-aware ``wall`` tier (median +
MAD over repeats).  Deterministic and numeric counters are checked for
bit-identity *across the repeats of this very run*: a scenario whose
counters wobble is a bug in the scenario (or the engine), and the
runner fails loudly instead of committing an unstable baseline.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.bench.profiling import profile_call
from repro.bench.results import BenchResult, WallStats
from repro.bench.scenarios import Scenario, get_scenarios
from repro.bench.workloads import SuiteCache, shared_suite

__all__ = ["BenchDeterminismError", "RunOptions", "run_scenario", "run_scenarios"]


class BenchDeterminismError(AssertionError):
    """A counter changed between repeats of the same scenario."""


@dataclass(frozen=True)
class RunOptions:
    repeats: int = 3
    profile: bool = False
    profile_top: int = 15


def _wall_clock() -> float:
    """The harness's single sanctioned wall-clock read: it feeds only the
    noise-aware tier, never a deterministic counter."""
    return time.perf_counter()  # repro-lint: disable=RPL010 -- wall tier is median+MAD by design; deterministic counters never read this


def _diff_counters(kind: str, ref: dict, new: dict, repeat: int) -> list[str]:
    diffs = []
    for key in sorted(ref.keys() | new.keys()):
        a, b = ref.get(key), new.get(key)
        if a != b or type(a) is not type(b):
            diffs.append(
                f"{kind}[{key}]: repeat 1 -> {a!r}, repeat {repeat} -> {b!r}"
            )
    return diffs


def run_scenario(
    scn: Scenario,
    suite: SuiteCache | None = None,
    options: RunOptions = RunOptions(),
) -> BenchResult:
    """Execute one scenario ``options.repeats`` times."""
    if options.repeats < 1:
        raise ValueError("need at least one repeat")
    suite = suite if suite is not None else shared_suite()
    scn.prepare(suite)

    ref = None
    samples: list[float] = []
    for repeat in range(1, options.repeats + 1):
        t0 = _wall_clock()
        meas = scn.run(suite)
        samples.append(_wall_clock() - t0)
        if ref is None:
            ref = meas
        else:
            diffs = _diff_counters(
                "deterministic", ref.deterministic, meas.deterministic, repeat
            ) + _diff_counters("numeric", ref.numeric, meas.numeric, repeat)
            if diffs:
                raise BenchDeterminismError(
                    f"scenario {scn.name!r} is not deterministic across "
                    f"repeats:\n  " + "\n  ".join(diffs)
                )

    profile = None
    if options.profile:
        profile = profile_call(lambda: scn.run(suite), top=options.profile_top)

    assert ref is not None
    return BenchResult(
        scenario=scn.name,
        description=scn.description,
        repeats=options.repeats,
        deterministic=ref.deterministic,
        numeric=ref.numeric,
        wall=WallStats.from_samples(samples),
        profile=profile,
        tags=scn.tags,
    )


def run_scenarios(
    names: list[str] | None = None,
    suite: SuiteCache | None = None,
    options: RunOptions = RunOptions(),
) -> list[BenchResult]:
    """Run the named scenarios (all of them by default), in name order."""
    suite = suite if suite is not None else shared_suite()
    return [run_scenario(s, suite, options) for s in get_scenarios(names)]
