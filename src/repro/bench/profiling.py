"""cProfile hook for the benchmark harness.

``--profile`` attaches a profiler to one extra (untimed) run of each
scenario and stores the top-N functions by cumulative time in the
result JSON.  Paths are normalized (repo/site-packages prefixes
stripped) so the table reads the same on any checkout; the profile
section is informational — it is never part of the regression gate and
never required to be byte-stable.
"""

from __future__ import annotations

import cProfile
import pstats
from typing import Callable

__all__ = ["profile_call"]


def _normalize_path(path: str) -> str:
    for marker in ("/site-packages/", "/src/"):
        idx = path.rfind(marker)
        if idx >= 0:
            return path[idx + len(marker):]
    # builtins show up as '~'
    return path.rsplit("/", 1)[-1]


def profile_call(fn: Callable[[], object], top: int = 15) -> list[dict]:
    """Run ``fn`` under cProfile; return the top-N cumulative hot spots.

    Each row: ``{"function", "ncalls", "tottime", "cumtime"}`` with
    ``function`` as ``path:lineno(name)`` after path normalization.
    """
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        fn()
    finally:
        profiler.disable()
    stats = pstats.Stats(profiler)
    rows = []
    entries = sorted(
        stats.stats.items(),  # type: ignore[attr-defined]
        key=lambda item: item[1][3],  # cumulative time
        reverse=True,
    )
    for (path, lineno, name), (cc, nc, tottime, cumtime, _callers) in entries:
        rows.append({
            "function": f"{_normalize_path(path)}:{lineno}({name})",
            "ncalls": int(nc),
            "tottime": round(float(tottime), 6),
            "cumtime": round(float(cumtime), 6),
        })
        if len(rows) >= top:
            break
    return rows
