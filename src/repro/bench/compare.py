"""Baseline comparison: the decision procedure of the perf gate.

Two verdict classes, matching the two metric classes:

* **deterministic counters** — compared for exact equality (values are
  bit-stable by construction).  Any difference — changed value, added
  or removed counter — is a hard failure: either a real regression or
  an intentional change that must be accompanied by a refreshed,
  committed baseline.
* **wall clock** — the new median fails only when it exceeds the
  baseline median by more than ``max(mad_factor * baseline MAD,
  rel_floor * baseline median)``.  The MAD term adapts to measured
  noise; the relative floor keeps near-zero-MAD baselines (quiet
  machines, few repeats) from turning into hair-trigger gates.

The machine-local ``numeric`` section (fingerprints, residuals) is
compared only on request: it is bit-stable on one machine but may
differ across BLAS builds, so the cross-machine CI gate skips it while
the same-machine stability test enforces it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.bench.results import BenchResult

__all__ = ["ComparisonReport", "ScenarioVerdict", "compare_results"]

DEFAULT_MAD_FACTOR = 5.0
DEFAULT_REL_FLOOR = 0.25


@dataclass
class ScenarioVerdict:
    scenario: str
    counter_diffs: list[str] = field(default_factory=list)
    wall_regression: str = ""
    wall_note: str = ""
    missing_baseline: bool = False
    missing_result: bool = False

    @property
    def ok(self) -> bool:
        return not (
            self.counter_diffs or self.wall_regression or self.missing_result
        )


@dataclass
class ComparisonReport:
    verdicts: list[ScenarioVerdict]

    @property
    def ok(self) -> bool:
        return all(v.ok for v in self.verdicts)

    def format(self) -> str:
        lines = []
        for v in self.verdicts:
            if v.missing_baseline:
                lines.append(
                    f"NEW   {v.scenario}: no baseline (commit one to gate it)"
                )
                continue
            if v.missing_result:
                lines.append(
                    f"GONE  {v.scenario}: baseline exists but the scenario "
                    "did not run (removed? refresh the baselines)"
                )
                continue
            status = "ok" if v.ok else "FAIL"
            note = f" [{v.wall_note}]" if v.wall_note else ""
            lines.append(f"{status:<5} {v.scenario}{note}")
            for d in v.counter_diffs:
                lines.append(f"      counter regression: {d}")
            if v.wall_regression:
                lines.append(f"      wall-clock regression: {v.wall_regression}")
        lines.append(
            "comparison: "
            + ("all gates passed" if self.ok else "REGRESSIONS DETECTED")
        )
        return "\n".join(lines)


def _diff_exact(kind: str, base: dict, new: dict) -> list[str]:
    out = []
    for key in sorted(base.keys() | new.keys()):
        if key not in new:
            out.append(f"{kind}[{key}]: removed (baseline {base[key]!r})")
        elif key not in base:
            out.append(f"{kind}[{key}]: new counter {new[key]!r} not in baseline")
        elif base[key] != new[key] or type(base[key]) is not type(new[key]):
            out.append(f"{kind}[{key}]: baseline {base[key]!r} -> {new[key]!r}")
    return out


def compare_results(
    new: dict[str, BenchResult],
    baseline: dict[str, BenchResult],
    *,
    check_wall: bool = True,
    check_numeric: bool = False,
    mad_factor: float = DEFAULT_MAD_FACTOR,
    rel_floor: float = DEFAULT_REL_FLOOR,
) -> ComparisonReport:
    """Compare a fresh run against committed baselines."""
    verdicts: list[ScenarioVerdict] = []
    for name in sorted(new.keys() | baseline.keys()):
        if name not in baseline:
            verdicts.append(ScenarioVerdict(name, missing_baseline=True))
            continue
        if name not in new:
            verdicts.append(ScenarioVerdict(name, missing_result=True))
            continue
        b, n = baseline[name], new[name]
        v = ScenarioVerdict(name)
        v.counter_diffs = _diff_exact(
            "deterministic", b.deterministic, n.deterministic
        )
        if check_numeric:
            v.counter_diffs += _diff_exact("numeric", b.numeric, n.numeric)
        if check_wall and b.wall is not None and n.wall is not None:
            tol = max(
                mad_factor * b.wall.mad_seconds,
                rel_floor * b.wall.median_seconds,
            )
            delta = n.wall.median_seconds - b.wall.median_seconds
            if delta > tol:
                v.wall_regression = (
                    f"median {n.wall.median_seconds:.4f}s vs baseline "
                    f"{b.wall.median_seconds:.4f}s (+{delta:.4f}s exceeds "
                    f"tolerance {tol:.4f}s = max({mad_factor:g} x MAD "
                    f"{b.wall.mad_seconds:.4f}s, {rel_floor:g} x median))"
                )
            else:
                v.wall_note = (
                    f"wall {n.wall.median_seconds * 1e3:.1f}ms vs "
                    f"{b.wall.median_seconds * 1e3:.1f}ms baseline"
                )
        verdicts.append(v)
    return ComparisonReport(verdicts)
