"""Memoized experiment artifacts shared by benches and the harness.

:class:`SuiteCache` lazily builds and caches everything the experiment
and benchmark layers keep re-deriving: the Table-II analog matrices and
their symbolic factorizations, the paper-scale geometric workloads, the
trained policy classifier, replays, schedules and numeric factors.

It used to live in ``benchmarks/conftest.py``; it moved into the
library so the :mod:`repro.bench` scenario registry (driven from
``python -m repro bench``, no pytest involved) reuses the exact same
calibrated artifacts instead of recomputing them.  ``benchmarks/
conftest.py`` now just wraps :func:`shared_suite` in a session fixture,
so within one process pytest benches and CLI scenarios hit one cache.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["SuiteCache", "shared_suite"]


@dataclass
class SuiteCache:
    """Lazily built, memoized experiment artifacts."""

    model: object = None
    _matrices: dict = field(default_factory=dict)
    _symbolic: dict = field(default_factory=dict)
    _workloads: dict = field(default_factory=dict)
    _replays: dict = field(default_factory=dict)
    _schedules: dict = field(default_factory=dict)
    _factors: dict = field(default_factory=dict)
    _classifier: object = None
    _ideal: object = None

    def __post_init__(self):
        if self.model is None:
            from repro.gpu import tesla_t10_model

            self.model = tesla_t10_model()

    # ---- numeric-scale artifacts --------------------------------------
    def matrix(self, name: str):
        if name not in self._matrices:
            from repro.matrices import TEST_MATRICES

            spec = next(s for s in TEST_MATRICES if s.name == name)
            self._matrices[name] = spec.build()
        return self._matrices[name]

    def symbolic(self, name: str, amalgamation: str = "default"):
        """Symbolic factorization of ``name`` under an amalgamation preset
        (``default | off | aggressive``), memoized per preset."""
        key = name if amalgamation == "default" else (name, amalgamation)
        if key not in self._symbolic:
            from repro.symbolic import amalgamation_preset, symbolic_factorize

            params = (
                None if amalgamation == "default"
                else amalgamation_preset(amalgamation)
            )
            self._symbolic[key] = symbolic_factorize(
                self.matrix(name), ordering="nd", amalgamation=params
            )
        return self._symbolic[key]

    # ---- paper-scale workloads ----------------------------------------
    def workload(self, name: str):
        if name not in self._workloads:
            from repro.workload import paper_workload

            self._workloads[name] = paper_workload(name)
        return self._workloads[name]

    # ---- policies -------------------------------------------------------
    def classifier(self):
        if self._classifier is None:
            from repro.autotune import train_default_classifier

            self._classifier = train_default_classifier(self.model)
        return self._classifier

    def ideal(self):
        """One shared IdealHybrid so its (m, k) cache persists."""
        if self._ideal is None:
            from repro.policies import IdealHybrid

            self._ideal = IdealHybrid(self.model)
        return self._ideal

    def policy(self, policy_name: str):
        from repro.policies import BaselineHybrid, ModelHybrid, make_policy

        if policy_name == "baseline":
            return BaselineHybrid()
        if policy_name == "ideal":
            return self.ideal()
        if policy_name == "model":
            return ModelHybrid(self.classifier())
        return make_policy(policy_name)

    # ---- timing paths -----------------------------------------------------
    def replay(self, matrix_name: str, policy_name: str):
        """Numeric-scale replay (records + makespan, no numerics)."""
        key = (matrix_name, policy_name)
        if key not in self._replays:
            from repro.gpu import SimulatedNode
            from repro.multifrontal.numeric import replay_factorize

            node = SimulatedNode(model=self.model, n_cpus=1, n_gpus=1)
            self._replays[key] = replay_factorize(
                self.symbolic(matrix_name), self.policy(policy_name), node=node
            )
        return self._replays[key]

    def schedule(self, workload_name: str, policy_name: str,
                 n_cpus: int = 1, n_gpus: int = 1,
                 gang_threshold: float | None = None):
        """Paper-scale schedule via the list scheduler.

        Serial runs disable gang scheduling (one worker can't gang);
        multi-worker runs gang the huge root fronts, mirroring WSMP's
        switch to parallel dense kernels at the top of the tree.
        """
        if gang_threshold is None:
            gang_threshold = np.inf if n_cpus == 1 else 5e9
        key = (workload_name, policy_name, n_cpus, n_gpus, gang_threshold)
        if key not in self._schedules:
            from repro.parallel import list_schedule, make_worker_pool

            pool = make_worker_pool(n_cpus, n_gpus, model=self.model)
            self._schedules[key] = list_schedule(
                self.workload(workload_name), self.policy(policy_name), pool,
                gang_threshold=gang_threshold,
            )
        return self._schedules[key]

    def factor(self, matrix_name: str, policy_name: str):
        """Real numeric factorization (used sparingly: validation bench)."""
        key = (matrix_name, policy_name)
        if key not in self._factors:
            from repro.gpu import SimulatedNode
            from repro.multifrontal import factorize_numeric

            node = SimulatedNode(model=self.model, n_cpus=1, n_gpus=1)
            self._factors[key] = factorize_numeric(
                self.matrix(matrix_name),
                self.symbolic(matrix_name),
                self.policy(policy_name),
                node=node,
            )
        return self._factors[key]

    def all_records(self, policy_name: str):
        """Concatenated F-U records of the numeric-scale suite (replay)."""
        from repro.matrices import TEST_MATRICES

        records = []
        for spec in TEST_MATRICES:
            records.extend(self.replay(spec.name, policy_name).records)
        return records

    def paper_records(self, policy_name: str, workloads=("audikw_1", "kyushu")):
        """Per-call records of paper-scale workloads (isolated per-call
        times from the scheduler)."""
        from repro.gpu import SimulatedNode
        from repro.multifrontal.numeric import replay_factorize

        records = []
        for w in workloads:
            records.extend(
                replay_factorize(
                    self.workload(w), self.policy(policy_name),
                    node=SimulatedNode(model=self.model, n_cpus=1, n_gpus=1),
                ).records
            )
        return records


_SHARED: SuiteCache | None = None


def shared_suite() -> SuiteCache:
    """The process-wide :class:`SuiteCache` (created on first use)."""
    global _SHARED
    if _SHARED is None:
        _SHARED = SuiteCache()
    return _SHARED
