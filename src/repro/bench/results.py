"""Schema-versioned benchmark results (``BENCH_<scenario>.json``).

One :class:`BenchResult` per scenario, carrying the two metric classes
the harness distinguishes:

* ``deterministic`` — portable, bit-stable counters derived from the
  simulation (virtual-clock seconds, flop counts, byte traffic,
  allocator high-water marks, cache hit counts).  These must be
  identical run-to-run *and* machine-to-machine; the CI gate hard-fails
  on any difference against the committed baseline.
* ``numeric`` — bit-stable on one machine but BLAS-dependent across
  machines (factor fingerprints, residuals).  Compared only when the
  caller opts in (same-machine workflows, the two-run stability test).
* ``wall`` — noisy wall-clock samples summarized as median + MAD;
  compared with a MAD-scaled tolerance, never for exact equality.

The JSON files are written with sorted keys and a fixed layout so a
re-run with unchanged code produces byte-identical ``deterministic``
and ``numeric`` sections (the acceptance bar for the committed
baselines).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

__all__ = [
    "SCHEMA_VERSION",
    "BenchResult",
    "WallStats",
    "load_results_dir",
    "result_filename",
]

SCHEMA_VERSION = 1

_FILE_PREFIX = "BENCH_"


def result_filename(scenario: str) -> str:
    """``BENCH_<scenario>.json`` at whatever directory the caller picks."""
    return f"{_FILE_PREFIX}{scenario}.json"


@dataclass(frozen=True)
class WallStats:
    """Noise-aware summary of the wall-clock samples of one scenario."""

    samples: tuple[float, ...]
    median_seconds: float
    mad_seconds: float

    @classmethod
    def from_samples(cls, samples: list[float]) -> "WallStats":
        if not samples:
            raise ValueError("need at least one wall-clock sample")
        xs = sorted(samples)
        median = _median(xs)
        mad = _median(sorted(abs(x - median) for x in xs))
        return cls(tuple(samples), median, mad)

    def to_dict(self) -> dict:
        return {
            "samples": list(self.samples),
            "median_seconds": self.median_seconds,
            "mad_seconds": self.mad_seconds,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "WallStats":
        return cls(
            tuple(float(x) for x in d["samples"]),
            float(d["median_seconds"]),
            float(d["mad_seconds"]),
        )


def _median(xs: list[float]) -> float:
    n = len(xs)
    mid = n // 2
    if n % 2:
        return float(xs[mid])
    return 0.5 * (xs[mid - 1] + xs[mid])


@dataclass
class BenchResult:
    """Everything one scenario run produces."""

    scenario: str
    description: str
    repeats: int
    deterministic: dict[str, object]
    numeric: dict[str, object] = field(default_factory=dict)
    wall: WallStats | None = None
    profile: list[dict] | None = None
    tags: tuple[str, ...] = ()
    schema_version: int = SCHEMA_VERSION

    # -- (de)serialization -------------------------------------------------
    def to_dict(self) -> dict:
        d: dict = {
            "schema_version": self.schema_version,
            "scenario": self.scenario,
            "description": self.description,
            "tags": list(self.tags),
            "repeats": self.repeats,
            "deterministic": dict(self.deterministic),
            "numeric": dict(self.numeric),
        }
        if self.wall is not None:
            d["wall"] = self.wall.to_dict()
        if self.profile is not None:
            d["profile"] = self.profile
        return d

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"

    @classmethod
    def from_dict(cls, d: dict) -> "BenchResult":
        version = int(d.get("schema_version", -1))
        if version != SCHEMA_VERSION:
            raise ValueError(
                f"unsupported bench schema version {version} "
                f"(this build reads {SCHEMA_VERSION})"
            )
        return cls(
            scenario=str(d["scenario"]),
            description=str(d.get("description", "")),
            repeats=int(d["repeats"]),
            deterministic=dict(d["deterministic"]),
            numeric=dict(d.get("numeric", {})),
            wall=WallStats.from_dict(d["wall"]) if "wall" in d else None,
            profile=d.get("profile"),
            tags=tuple(d.get("tags", ())),
            schema_version=version,
        )

    @classmethod
    def load(cls, path: Path | str) -> "BenchResult":
        with open(path) as fh:
            return cls.from_dict(json.load(fh))

    def write(self, out_dir: Path | str) -> Path:
        out = Path(out_dir)
        out.mkdir(parents=True, exist_ok=True)
        path = out / result_filename(self.scenario)
        path.write_text(self.to_json())
        return path


def load_results_dir(d: Path | str) -> dict[str, BenchResult]:
    """Every ``BENCH_*.json`` under *d*, keyed by scenario name."""
    out: dict[str, BenchResult] = {}
    for path in sorted(Path(d).glob(f"{_FILE_PREFIX}*.json")):
        res = BenchResult.load(path)
        out[res.scenario] = res
    return out
