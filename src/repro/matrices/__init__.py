"""Sparse matrix substrate: containers, generators, IO, and the test suite.

This subpackage provides the from-scratch compressed sparse column (CSC)
container used throughout the reproduction, synthetic problem generators
that stand in for the paper's 3-D structural-analysis matrices (Table II),
and a small Matrix-Market-style text IO layer.
"""

from repro.matrices.csc import COOMatrix, CSCMatrix, csc_from_dense
from repro.matrices.generators import (
    anisotropic_laplacian_3d,
    elasticity_3d,
    grid_laplacian_2d,
    grid_laplacian_3d,
    random_spd,
    shell_elasticity,
)
from repro.matrices.io import read_matrix_market, write_matrix_market
from repro.matrices.scaling import apply_scaled_solve, symmetric_diagonal_scaling
from repro.matrices.testsuite import TEST_MATRICES, TestMatrixSpec, load_test_matrix

__all__ = [
    "COOMatrix",
    "CSCMatrix",
    "csc_from_dense",
    "grid_laplacian_2d",
    "grid_laplacian_3d",
    "elasticity_3d",
    "anisotropic_laplacian_3d",
    "shell_elasticity",
    "random_spd",
    "read_matrix_market",
    "write_matrix_market",
    "symmetric_diagonal_scaling",
    "apply_scaled_solve",
    "TEST_MATRICES",
    "TestMatrixSpec",
    "load_test_matrix",
]
