"""Synthetic SPD problem generators.

The paper evaluates on five large 3-D structural-analysis matrices
(automotive modeling, metal forming — Table II).  Those matrices are
proprietary or too large for this environment, so we generate synthetic
problems with the same *structural role*:

* ``grid_laplacian_3d`` — scalar 7-point operators on 3-D grids.  These
  give the deep elimination trees with a long tail of small supernodes and
  a few very large root fronts that drive the paper's analysis (97% of
  F-U calls small, most flops in the large calls).
* ``elasticity_3d`` — vector-valued (3 dof per grid point) operators built
  as Kronecker combinations ``L3d (x) M1 + I (x) M2`` with SPD blocks
  ``M1, M2``; this matches the 3 dof/node structure of automotive FE models
  and triples the supernode widths, like audikw_1 / nastran-b.
* ``grid_laplacian_2d`` — the contrast family: the paper remarks that large
  2-D problems will *not* see the reported speedups; we reproduce that.
* ``random_spd`` — irregular patterns for robustness tests.

All generators assemble COO triplets with vectorized NumPy index
arithmetic (no Python-level loops over grid points).
"""

from __future__ import annotations

import numpy as np

from repro.matrices.csc import COOMatrix, CSCMatrix

__all__ = [
    "grid_laplacian_2d",
    "grid_laplacian_3d",
    "elasticity_3d",
    "anisotropic_laplacian_3d",
    "shell_elasticity",
    "random_spd",
]


def _grid_edges_3d(nx: int, ny: int, nz: int) -> tuple[np.ndarray, np.ndarray]:
    """Return (u, v) endpoint node ids of all axis-aligned grid edges."""
    ids = np.arange(nx * ny * nz, dtype=np.int64).reshape(nx, ny, nz)
    ex = (ids[:-1, :, :].ravel(), ids[1:, :, :].ravel())
    ey = (ids[:, :-1, :].ravel(), ids[:, 1:, :].ravel())
    ez = (ids[:, :, :-1].ravel(), ids[:, :, 1:].ravel())
    u = np.concatenate([ex[0], ey[0], ez[0]])
    v = np.concatenate([ex[1], ey[1], ez[1]])
    return u, v


def _laplacian_from_edges(n: int, u: np.ndarray, v: np.ndarray, shift: float) -> CSCMatrix:
    """Assemble ``D - W + shift*I`` from an undirected edge list.

    With unit edge weights this is the combinatorial graph Laplacian plus a
    diagonal shift, which is symmetric positive definite for any
    ``shift > 0`` (and positive semidefinite at ``shift = 0``).
    """
    deg = np.bincount(u, minlength=n) + np.bincount(v, minlength=n)
    rows = np.concatenate([u, v, np.arange(n, dtype=np.int64)])
    cols = np.concatenate([v, u, np.arange(n, dtype=np.int64)])
    vals = np.concatenate(
        [
            -np.ones(u.size),
            -np.ones(u.size),
            deg.astype(np.float64) + shift,
        ]
    )
    return COOMatrix(n, n, rows, cols, vals).to_csc()


def grid_laplacian_2d(nx: int, ny: int, *, shift: float = 0.05) -> CSCMatrix:
    """5-point Laplacian (plus diagonal ``shift``) on an ``nx`` x ``ny`` grid."""
    if nx < 1 or ny < 1:
        raise ValueError("grid dimensions must be positive")
    ids = np.arange(nx * ny, dtype=np.int64).reshape(nx, ny)
    u = np.concatenate([ids[:-1, :].ravel(), ids[:, :-1].ravel()])
    v = np.concatenate([ids[1:, :].ravel(), ids[:, 1:].ravel()])
    return _laplacian_from_edges(nx * ny, u, v, shift)


def grid_laplacian_3d(nx: int, ny: int, nz: int, *, shift: float = 0.05) -> CSCMatrix:
    """7-point Laplacian (plus diagonal ``shift``) on an ``nx*ny*nz`` grid."""
    if min(nx, ny, nz) < 1:
        raise ValueError("grid dimensions must be positive")
    u, v = _grid_edges_3d(nx, ny, nz)
    return _laplacian_from_edges(nx * ny * nz, u, v, shift)


def elasticity_3d(
    nx: int,
    ny: int,
    nz: int,
    *,
    dof: int = 3,
    coupling: float = 0.3,
    shift: float = 0.05,
) -> CSCMatrix:
    """Vector-valued 3-D operator: ``A = L (x) M1 + I (x) M2``.

    ``L`` is the (PSD) 7-point graph Laplacian of the grid, ``M1`` is a
    ``dof x dof`` SPD block coupling the degrees of freedom across the
    Laplacian stencil, and ``M2`` a small SPD diagonal regularizer.  Since
    the Kronecker product of a PSD and an SPD matrix is PSD and ``M2`` is
    SPD, the sum is SPD.  The pattern has ``dof x dof`` dense blocks at
    every grid-stencil entry, which is exactly the structure that gives
    automotive FE matrices their wide supernodes.
    """
    if dof < 1:
        raise ValueError("dof must be >= 1")
    if not 0.0 <= coupling < 0.5:
        raise ValueError("coupling must be in [0, 0.5) to keep M1 SPD")
    n_nodes = nx * ny * nz
    lap = grid_laplacian_3d(nx, ny, nz, shift=0.0)

    # M1: diagonally dominant SPD coupling block (1 on diag, `coupling`
    # off-diagonal).  M2: shift * I.
    m1 = np.full((dof, dof), coupling)
    np.fill_diagonal(m1, 1.0)

    # Expand each scalar entry L[i, j] into the dof x dof block
    # L[i, j] * M1 at block position (i, j).
    col_of_entry = np.repeat(
        np.arange(lap.n_cols, dtype=np.int64), np.diff(lap.indptr)
    )
    bi, bj = np.meshgrid(np.arange(dof), np.arange(dof), indexing="ij")
    bi = bi.ravel()
    bj = bj.ravel()
    rows = (lap.indices[:, None] * dof + bi[None, :]).ravel()
    cols = (col_of_entry[:, None] * dof + bj[None, :]).ravel()
    vals = (lap.data[:, None] * m1.ravel()[None, :]).ravel()

    # I (x) M2 = shift on the global diagonal.
    diag = np.arange(n_nodes * dof, dtype=np.int64)
    rows = np.concatenate([rows, diag])
    cols = np.concatenate([cols, diag])
    vals = np.concatenate([vals, np.full(diag.size, shift)])
    n = n_nodes * dof
    return COOMatrix(n, n, rows, cols, vals).to_csc()


def random_spd(
    n: int,
    *,
    avg_degree: float = 6.0,
    seed: int = 0,
    shift: float = 0.1,
) -> CSCMatrix:
    """Random sparse SPD matrix via a diagonally dominant construction.

    Draws ``~ n * avg_degree / 2`` undirected edges uniformly, assigns
    each a weight in (0, 1], and returns the weighted graph Laplacian plus
    ``shift * I`` — SPD by Gershgorin.
    """
    if n < 1:
        raise ValueError("n must be positive")
    rng = np.random.default_rng(seed)
    n_edges = max(1, int(n * avg_degree / 2))
    u = rng.integers(0, n, size=n_edges, dtype=np.int64)
    v = rng.integers(0, n, size=n_edges, dtype=np.int64)
    keep = u != v
    u, v = u[keep], v[keep]
    w = rng.uniform(0.1, 1.0, size=u.size)
    deg = np.zeros(n)
    np.add.at(deg, u, w)
    np.add.at(deg, v, w)
    diag = np.arange(n, dtype=np.int64)
    rows = np.concatenate([u, v, diag])
    cols = np.concatenate([v, u, diag])
    vals = np.concatenate([-w, -w, deg + shift])
    return COOMatrix(n, n, rows, cols, vals).to_csc()


def anisotropic_laplacian_3d(
    nx: int,
    ny: int,
    nz: int,
    *,
    weights: tuple[float, float, float] = (1.0, 1.0, 0.01),
    shift: float = 0.05,
) -> CSCMatrix:
    """Anisotropic 7-point operator: per-axis edge weights.

    Strong/weak coupling ratios model layered media and stretched meshes;
    they change the elimination-tree shape (separators prefer to cut the
    weak direction is a property of *orderings that see weights* — ours
    are structural, so the pattern is the isotropic one and only the
    numerics change, which is exactly what makes this a good conditioning
    stress test for the solver and refinement).
    """
    if min(nx, ny, nz) < 1:
        raise ValueError("grid dimensions must be positive")
    if min(weights) <= 0:
        raise ValueError("axis weights must be positive")
    ids = np.arange(nx * ny * nz, dtype=np.int64).reshape(nx, ny, nz)
    edges = [
        (ids[:-1, :, :].ravel(), ids[1:, :, :].ravel(), weights[0]),
        (ids[:, :-1, :].ravel(), ids[:, 1:, :].ravel(), weights[1]),
        (ids[:, :, :-1].ravel(), ids[:, :, 1:].ravel(), weights[2]),
    ]
    n = nx * ny * nz
    rows_list, cols_list, vals_list = [], [], []
    deg = np.zeros(n)
    for u, v, w in edges:
        rows_list += [u, v]
        cols_list += [v, u]
        vals_list += [np.full(u.size, -w), np.full(u.size, -w)]
        np.add.at(deg, u, w)
        np.add.at(deg, v, w)
    diag = np.arange(n, dtype=np.int64)
    rows = np.concatenate(rows_list + [diag])
    cols = np.concatenate(cols_list + [diag])
    vals = np.concatenate(vals_list + [deg + shift])
    return COOMatrix(n, n, rows, cols, vals).to_csc()


def shell_elasticity(
    nx: int,
    ny: int,
    *,
    thickness: int = 3,
    dof: int = 3,
    coupling: float = 0.3,
    shift: float = 0.05,
) -> CSCMatrix:
    """Thin-shell elasticity: an ``nx x ny x thickness`` slab with 3 dof.

    Automotive bodies and formed sheet metal are shells — large N with
    *small* graph separators (the workload calibration in
    ``repro.workload`` exploits exactly this to match the paper's Table V
    root fronts at Table II sizes).  A shell sits between the 2-D and 3-D
    families of the speedup study.
    """
    if thickness < 1:
        raise ValueError("thickness must be positive")
    return elasticity_3d(
        nx, ny, thickness, dof=dof, coupling=coupling, shift=shift
    )
