"""The five synthetic analogs of the paper's Table II test matrices.

The originals (audikw_1, kyushu, lmco, nastran-b, sgi_1M — 0.66M-1.5M rows,
26M-126M nonzeros, all from 3-D structural analysis) are proprietary or far
too large for this environment, so each is replaced by a synthetic 3-D
problem with the same *role* in the evaluation:

========== ======================= =========================================
paper      analog                  rationale
========== ======================= =========================================
audikw_1   3-D elasticity 21^3 x3  dense 3-dof blocks, wide supernodes
kyushu     3-D Laplacian 40^3      scalar problem, lower nnz/row (kyushu has
                                   the lowest nnz/N ratio in Table II)
lmco       3-D elasticity 17^3 x3  smallest N, highest relative density
nastran-b  3-D elasticity 23^3 x3  largest elasticity problem
sgi_1M     3-D Laplacian 42^3      largest N, scalar
========== ======================= =========================================

Scaled down ~20x so a full analysis takes seconds in NumPy; the
distributional properties the paper relies on (deep trees, a long tail of
small frontal matrices, a few very large root fronts carrying most of the
flops) are preserved because they come from the 3-D geometry, not the
absolute size.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.matrices.csc import CSCMatrix
from repro.matrices.generators import elasticity_3d, grid_laplacian_3d

__all__ = ["TestMatrixSpec", "TEST_MATRICES", "load_test_matrix"]


@dataclass(frozen=True)
class TestMatrixSpec:
    """One entry of our Table II analog."""

    name: str
    paper_name: str
    paper_n: int
    paper_nnz: int
    description: str
    builder: Callable[[], CSCMatrix]

    def build(self) -> CSCMatrix:
        return self.builder()


def _audi() -> CSCMatrix:
    return elasticity_3d(21, 21, 21, coupling=0.3)


def _kyushu() -> CSCMatrix:
    return grid_laplacian_3d(40, 40, 40)


def _lmco() -> CSCMatrix:
    return elasticity_3d(17, 17, 17, coupling=0.35)


def _nastran() -> CSCMatrix:
    return elasticity_3d(23, 23, 23, coupling=0.3)


def _sgi() -> CSCMatrix:
    return grid_laplacian_3d(42, 42, 42)


TEST_MATRICES: tuple[TestMatrixSpec, ...] = (
    TestMatrixSpec(
        "audi_s", "audikw_1", 943695, 77651847,
        "3-D elasticity analog, 21^3 nodes x 3 dof", _audi,
    ),
    TestMatrixSpec(
        "kyushu_s", "kyushu", 990692, 26268136,
        "3-D scalar Laplacian analog, 40^3 nodes", _kyushu,
    ),
    TestMatrixSpec(
        "lmco_s", "lmco", 665017, 107514163,
        "3-D elasticity analog, 17^3 nodes x 3 dof", _lmco,
    ),
    TestMatrixSpec(
        "nastran_s", "nastran-b", 1508088, 111614436,
        "3-D elasticity analog, 23^3 nodes x 3 dof", _nastran,
    ),
    TestMatrixSpec(
        "sgi_s", "sgi_1M", 1522431, 125755875,
        "3-D scalar Laplacian analog, 42^3 nodes", _sgi,
    ),
)


def load_test_matrix(name: str) -> CSCMatrix:
    """Build a suite matrix by analog name (``audi_s``) or paper name
    (``audikw_1``)."""
    for spec in TEST_MATRICES:
        if name in (spec.name, spec.paper_name):
            return spec.build()
    known = ", ".join(s.name for s in TEST_MATRICES)
    raise KeyError(f"unknown test matrix {name!r}; known: {known}")
