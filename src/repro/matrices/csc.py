"""Compressed sparse column (CSC) matrices, built from scratch on NumPy.

The multifrontal pipeline only needs a small, predictable set of sparse
operations (construction from triplets, symmetric permutation, triangle
extraction, matrix-vector products), so we implement them directly rather
than depending on :mod:`scipy.sparse` in the core library.  All hot loops
are vectorized with NumPy per the HPC-Python guidance: sorting-based
duplicate summation, ``np.add.reduceat`` style segment operations, and
views rather than copies wherever the layout permits.

Indices are stored as ``int64`` and values as ``float64`` unless a caller
explicitly requests another dtype (the simulated GPU path uses ``float32``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["COOMatrix", "CSCMatrix", "csc_from_dense"]


def _as_index_array(x) -> np.ndarray:
    a = np.asarray(x, dtype=np.int64)
    if a.ndim != 1:
        raise ValueError(f"index array must be 1-D, got shape {a.shape}")
    return a


@dataclass(frozen=True)
class COOMatrix:
    """Coordinate-format triplets; the assembly format for generators.

    Duplicate entries are permitted and are summed when converting to CSC,
    which lets finite-difference/finite-element style generators assemble
    by concatenating per-stencil contributions.
    """

    n_rows: int
    n_cols: int
    rows: np.ndarray
    cols: np.ndarray
    vals: np.ndarray

    def __post_init__(self):
        rows = _as_index_array(self.rows)
        cols = _as_index_array(self.cols)
        vals = np.asarray(self.vals, dtype=np.float64)
        if not (rows.shape == cols.shape == vals.shape):
            raise ValueError("rows, cols, vals must have identical shapes")
        if rows.size and (rows.min() < 0 or rows.max() >= self.n_rows):
            raise ValueError("row index out of range")
        if cols.size and (cols.min() < 0 or cols.max() >= self.n_cols):
            raise ValueError("column index out of range")
        object.__setattr__(self, "rows", rows)
        object.__setattr__(self, "cols", cols)
        object.__setattr__(self, "vals", vals)

    @property
    def nnz(self) -> int:
        return int(self.rows.size)

    def to_csc(self) -> "CSCMatrix":
        return CSCMatrix.from_coo(
            self.rows, self.cols, self.vals, shape=(self.n_rows, self.n_cols)
        )


class CSCMatrix:
    """A compressed sparse column matrix with sorted, duplicate-free columns.

    Attributes
    ----------
    n_rows, n_cols : int
        Matrix dimensions.
    indptr : int64 array of length ``n_cols + 1``
        Column start offsets into ``indices``/``data``.
    indices : int64 array
        Row indices, sorted within each column.
    data : float array
        Numerical values aligned with ``indices``.
    """

    __slots__ = ("n_rows", "n_cols", "indptr", "indices", "data")

    def __init__(self, shape, indptr, indices, data, *, check: bool = True):
        self.n_rows, self.n_cols = int(shape[0]), int(shape[1])
        self.indptr = np.asarray(indptr, dtype=np.int64)
        self.indices = np.asarray(indices, dtype=np.int64)
        self.data = np.asarray(data)
        if check:
            self._validate()

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_coo(cls, rows, cols, vals, shape) -> "CSCMatrix":
        """Build from triplets, summing duplicates.

        Sorts by (col, row) with a stable lexsort, then collapses runs of
        equal coordinates with a reduceat — O(nnz log nnz), no Python loop.
        """
        rows = _as_index_array(rows)
        cols = _as_index_array(cols)
        vals = np.asarray(vals, dtype=np.float64)
        n_rows, n_cols = int(shape[0]), int(shape[1])
        if rows.size == 0:
            indptr = np.zeros(n_cols + 1, dtype=np.int64)
            return cls((n_rows, n_cols), indptr, rows, vals, check=False)
        order = np.lexsort((rows, cols))
        rows = rows[order]
        cols = cols[order]
        vals = vals[order]
        # Collapse duplicates: `first` marks the first entry of each
        # distinct (col, row) coordinate in the sorted stream.
        first = np.empty(rows.size, dtype=bool)
        first[0] = True
        np.not_equal(rows[1:], rows[:-1], out=first[1:])
        first[1:] |= cols[1:] != cols[:-1]
        starts = np.flatnonzero(first)
        summed = np.add.reduceat(vals, starts)
        rows = rows[starts]
        cols = cols[starts]
        counts = np.bincount(cols, minlength=n_cols)
        indptr = np.zeros(n_cols + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        return cls((n_rows, n_cols), indptr, rows, summed, check=False)

    @classmethod
    def identity(cls, n: int, *, scale: float = 1.0) -> "CSCMatrix":
        indptr = np.arange(n + 1, dtype=np.int64)
        indices = np.arange(n, dtype=np.int64)
        data = np.full(n, scale, dtype=np.float64)
        return cls((n, n), indptr, indices, data, check=False)

    def _validate(self) -> None:
        if self.indptr.shape != (self.n_cols + 1,):
            raise ValueError("indptr has wrong length")
        if self.indptr[0] != 0 or self.indptr[-1] != self.indices.size:
            raise ValueError("indptr endpoints inconsistent with indices")
        if np.any(np.diff(self.indptr) < 0):
            raise ValueError("indptr must be non-decreasing")
        if self.indices.size != self.data.size:
            raise ValueError("indices and data length mismatch")
        if self.indices.size:
            if self.indices.min() < 0 or self.indices.max() >= self.n_rows:
                raise ValueError("row index out of range")
        # sortedness within each column (vectorized: any decrease must be
        # at a column boundary)
        if self.indices.size > 1:
            decreasing = np.flatnonzero(np.diff(self.indices) <= 0) + 1
            boundaries = self.indptr[1:-1]
            if not np.all(np.isin(decreasing, boundaries)):
                raise ValueError("row indices must be strictly increasing per column")

    # ------------------------------------------------------------------
    # basic properties
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, int]:
        return (self.n_rows, self.n_cols)

    @property
    def nnz(self) -> int:
        return int(self.indices.size)

    def copy(self) -> "CSCMatrix":
        return CSCMatrix(
            self.shape,
            self.indptr.copy(),
            self.indices.copy(),
            self.data.copy(),
            check=False,
        )

    def astype(self, dtype) -> "CSCMatrix":
        return CSCMatrix(
            self.shape, self.indptr, self.indices, self.data.astype(dtype), check=False
        )

    def column(self, j: int) -> tuple[np.ndarray, np.ndarray]:
        """Views (no copies) of the row indices and values of column ``j``."""
        lo, hi = self.indptr[j], self.indptr[j + 1]
        return self.indices[lo:hi], self.data[lo:hi]

    def diagonal(self) -> np.ndarray:
        d = np.zeros(min(self.n_rows, self.n_cols), dtype=self.data.dtype)
        for j in range(d.size):
            lo, hi = self.indptr[j], self.indptr[j + 1]
            pos = np.searchsorted(self.indices[lo:hi], j)
            if pos < hi - lo and self.indices[lo + pos] == j:
                d[j] = self.data[lo + pos]
        return d

    # ------------------------------------------------------------------
    # linear algebra
    # ------------------------------------------------------------------
    def matvec(self, x: np.ndarray) -> np.ndarray:
        """Compute ``A @ x`` column-wise (vectorized scatter-add)."""
        x = np.asarray(x)
        if x.shape[0] != self.n_cols:
            raise ValueError(f"dimension mismatch: {self.shape} @ {x.shape}")
        # Expand x to per-entry weights: entry (i, j) contributes
        # data * x[j] into y[i].  Column ids per entry come from indptr.
        col_of_entry = np.repeat(
            np.arange(self.n_cols, dtype=np.int64), np.diff(self.indptr)
        )
        contrib = self.data * x[col_of_entry]
        y = np.zeros(self.n_rows, dtype=np.result_type(self.data, x))
        np.add.at(y, self.indices, contrib)
        return y

    def rmatvec(self, x: np.ndarray) -> np.ndarray:
        """Compute ``A.T @ x`` via per-column segment sums."""
        x = np.asarray(x)
        if x.shape[0] != self.n_rows:
            raise ValueError(f"dimension mismatch: {self.shape}.T @ {x.shape}")
        prods = self.data * x[self.indices]
        out = np.zeros(self.n_cols, dtype=np.result_type(self.data, x))
        nonempty = np.flatnonzero(np.diff(self.indptr) > 0)
        if nonempty.size:
            sums = np.add.reduceat(prods, self.indptr[nonempty])
            out[nonempty] = sums
        return out

    def symmetric_matvec(self, x: np.ndarray) -> np.ndarray:
        """``A @ x`` where ``self`` stores only the lower triangle of a
        symmetric matrix (diagonal included)."""
        y = self.matvec(x) + self.rmatvec(x)
        d = self.diagonal()
        y[: d.size] -= d * x[: d.size]
        return y

    # ------------------------------------------------------------------
    # structural transforms
    # ------------------------------------------------------------------
    def transpose(self) -> "CSCMatrix":
        """Explicit transpose (equivalently: CSC -> CSR reinterpretation)."""
        col_of_entry = np.repeat(
            np.arange(self.n_cols, dtype=np.int64), np.diff(self.indptr)
        )
        return CSCMatrix.from_coo(
            col_of_entry, self.indices, self.data, (self.n_cols, self.n_rows)
        )

    def to_dense(self) -> np.ndarray:
        out = np.zeros(self.shape, dtype=self.data.dtype)
        col_of_entry = np.repeat(
            np.arange(self.n_cols, dtype=np.int64), np.diff(self.indptr)
        )
        out[self.indices, col_of_entry] = self.data
        return out

    def lower_triangle(self, *, strict: bool = False) -> "CSCMatrix":
        """Extract the lower triangle (``i > j`` if strict, else ``i >= j``)."""
        col_of_entry = np.repeat(
            np.arange(self.n_cols, dtype=np.int64), np.diff(self.indptr)
        )
        keep = self.indices > col_of_entry if strict else self.indices >= col_of_entry
        return CSCMatrix.from_coo(
            self.indices[keep], col_of_entry[keep], self.data[keep], self.shape
        )

    def symmetrize_from_lower(self) -> "CSCMatrix":
        """Given a lower-triangular store, return the full symmetric matrix."""
        col_of_entry = np.repeat(
            np.arange(self.n_cols, dtype=np.int64), np.diff(self.indptr)
        )
        off = self.indices != col_of_entry
        rows = np.concatenate([self.indices, col_of_entry[off]])
        cols = np.concatenate([col_of_entry, self.indices[off]])
        vals = np.concatenate([self.data, self.data[off]])
        return CSCMatrix.from_coo(rows, cols, vals, self.shape)

    def permute_symmetric(self, perm: np.ndarray) -> "CSCMatrix":
        """Return ``P A P^T`` where ``perm[new] = old`` (i.e. row/col ``old``
        of A becomes row/col ``new`` of the result).

        Accepts the "new-to-old" convention used by the ordering package.
        """
        perm = _as_index_array(perm)
        if perm.size != self.n_rows or self.n_rows != self.n_cols:
            raise ValueError("symmetric permutation requires square matrix and full perm")
        inv = np.empty_like(perm)
        inv[perm] = np.arange(perm.size, dtype=np.int64)
        col_of_entry = np.repeat(
            np.arange(self.n_cols, dtype=np.int64), np.diff(self.indptr)
        )
        return CSCMatrix.from_coo(
            inv[self.indices], inv[col_of_entry], self.data, self.shape
        )

    def is_structurally_symmetric(self) -> bool:
        t = self.transpose()
        return (
            np.array_equal(self.indptr, t.indptr)
            and np.array_equal(self.indices, t.indices)
        )

    def allclose(self, other: "CSCMatrix", *, rtol=1e-10, atol=1e-12) -> bool:
        if self.shape != other.shape:
            return False
        if not np.array_equal(self.indptr, other.indptr):
            return False
        if not np.array_equal(self.indices, other.indices):
            return False
        return bool(np.allclose(self.data, other.data, rtol=rtol, atol=atol))

    # ------------------------------------------------------------------
    # adjacency helpers for ordering / symbolic analysis
    # ------------------------------------------------------------------
    def adjacency(self) -> tuple[np.ndarray, np.ndarray]:
        """Undirected adjacency (indptr, indices) of the symmetric pattern,
        diagonal removed.  ``self`` may store either the full matrix or
        just its lower triangle."""
        full = self if self.is_structurally_symmetric() else self.symmetrize_from_lower()
        col_of_entry = np.repeat(
            np.arange(full.n_cols, dtype=np.int64), np.diff(full.indptr)
        )
        keep = full.indices != col_of_entry
        rows = full.indices[keep]
        cols = col_of_entry[keep]
        counts = np.bincount(cols, minlength=full.n_cols)
        indptr = np.zeros(full.n_cols + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        return indptr, rows

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CSCMatrix(shape={self.shape}, nnz={self.nnz}, "
            f"dtype={self.data.dtype})"
        )


def csc_from_dense(a: np.ndarray, *, tol: float = 0.0) -> CSCMatrix:
    """Convert a dense array to CSC, dropping entries with ``|a| <= tol``."""
    a = np.asarray(a)
    if a.ndim != 2:
        raise ValueError("expected a 2-D array")
    mask = np.abs(a) > tol
    rows, cols = np.nonzero(mask)
    return CSCMatrix.from_coo(rows, cols, a[rows, cols], a.shape)
