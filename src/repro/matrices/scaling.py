"""Symmetric diagonal scaling (Jacobi equilibration).

``D^{-1/2} A D^{-1/2}`` with ``D = diag(A)`` puts ones on the diagonal
and compresses the dynamic range of an SPD matrix.  This matters
directly to the paper's mixed-precision scheme: the device computes in
float32, whose normal range bottoms out near 1e-38 — matrices with
mixed units or strong anisotropy can carry entries that silently
*underflow to zero* at the H2D cast, corrupting the device-side
numerics structurally.  Equilibrating first keeps every entry in fp32
range (and compresses the conditioning the refinement loop sees); the
measured effect is in ``tests/test_scaling.py``.
"""

from __future__ import annotations

import numpy as np

from repro.matrices.csc import CSCMatrix

__all__ = ["symmetric_diagonal_scaling", "apply_scaled_solve"]


def symmetric_diagonal_scaling(a: CSCMatrix) -> tuple[CSCMatrix, np.ndarray]:
    """Return ``(D^{-1/2} A D^{-1/2}, sqrt(diag(A)))``.

    Requires a strictly positive diagonal (guaranteed for SPD input).
    The scaled matrix has unit diagonal; SPD-ness is preserved
    (congruence transform).
    """
    if a.n_rows != a.n_cols:
        raise ValueError("equilibration requires a square matrix")
    d = a.diagonal()
    if np.any(d <= 0):
        raise ValueError("matrix has non-positive diagonal entries")
    s = np.sqrt(d)
    col_of_entry = np.repeat(
        np.arange(a.n_cols, dtype=np.int64), np.diff(a.indptr)
    )
    scaled_vals = a.data / (s[a.indices] * s[col_of_entry])
    scaled = CSCMatrix(
        a.shape, a.indptr.copy(), a.indices.copy(), scaled_vals, check=False
    )
    return scaled, s


def apply_scaled_solve(solve_scaled, s: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Solve ``A x = b`` through the equilibrated system.

    With ``A = D^{1/2} Â D^{1/2}``: ``x = D^{-1/2} Â^{-1} D^{-1/2} b``.
    ``solve_scaled`` is any callable solving with Â.
    """
    b = np.asarray(b, dtype=np.float64)
    scale = s if b.ndim == 1 else s[:, None]
    y = solve_scaled(b / scale)
    return y / scale
