"""Minimal Matrix-Market (coordinate) text IO.

Supports the subset of the MatrixMarket exchange format needed to persist
and reload the SPD test problems: ``matrix coordinate real
{general|symmetric}``.  Symmetric files store the lower triangle, as per
the format specification.
"""

from __future__ import annotations

import os

import numpy as np

from repro.matrices.csc import CSCMatrix

__all__ = ["read_matrix_market", "write_matrix_market"]

_HEADER = "%%MatrixMarket matrix coordinate real"


def write_matrix_market(path: str | os.PathLike, a: CSCMatrix, *, symmetric: bool = True) -> None:
    """Write ``a`` in MatrixMarket coordinate format (1-based indices).

    When ``symmetric=True`` only the lower triangle is written; the caller
    asserts that ``a`` is structurally and numerically symmetric.
    """
    mat = a.lower_triangle() if symmetric else a
    kind = "symmetric" if symmetric else "general"
    col_of_entry = np.repeat(
        np.arange(mat.n_cols, dtype=np.int64), np.diff(mat.indptr)
    )
    with open(path, "w") as fh:
        fh.write(f"{_HEADER} {kind}\n")
        fh.write(f"{mat.n_rows} {mat.n_cols} {mat.nnz}\n")
        for i, j, v in zip(mat.indices + 1, col_of_entry + 1, mat.data):
            # repr of a builtin float round-trips the exact bit pattern
            fh.write(f"{i} {j} {float(v)!r}\n")


def read_matrix_market(path: str | os.PathLike) -> CSCMatrix:
    """Read a ``coordinate real`` MatrixMarket file into a full CSCMatrix.

    Symmetric files are expanded to the full pattern on read.
    """
    with open(path) as fh:
        header = fh.readline().strip()
        if not header.startswith(_HEADER):
            raise ValueError(f"unsupported MatrixMarket header: {header!r}")
        kind = header.split()[-1]
        if kind not in ("general", "symmetric"):
            raise ValueError(f"unsupported matrix kind: {kind!r}")
        line = fh.readline()
        while line.startswith("%"):
            line = fh.readline()
        n_rows, n_cols, nnz = (int(t) for t in line.split())
        rows = np.empty(nnz, dtype=np.int64)
        cols = np.empty(nnz, dtype=np.int64)
        vals = np.empty(nnz, dtype=np.float64)
        for idx in range(nnz):
            parts = fh.readline().split()
            rows[idx] = int(parts[0]) - 1
            cols[idx] = int(parts[1]) - 1
            vals[idx] = float(parts[2])
    mat = CSCMatrix.from_coo(rows, cols, vals, (n_rows, n_cols))
    if kind == "symmetric":
        mat = mat.symmetrize_from_lower()
    return mat
