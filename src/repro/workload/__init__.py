"""Paper-scale synthetic workload generation.

The paper's evaluation matrices have 0.66M-1.5M rows with root frontal
matrices of k ~= 5000-10600 columns (Table V).  Computing a real
symbolic factorization at that size needs more memory and time than the
reproduction environment offers, so — per the substitution rule in
DESIGN.md — this subpackage generates the *factor-update call tree* of
such problems geometrically: recursive coordinate bisection of an
L x L x L grid with plane separators, the textbook model of nested
dissection on regular 3-D meshes (George 1973).  The result is a
fabricated :class:`~repro.symbolic.symbolic.SymbolicFactor` whose
supernode (m, k) dimensions, tree shape and call counts match what a
real ND analysis of the grid would produce, usable by every scheduler
and timing path (but carrying no numeric values).

The benchmark harness runs the headline experiments twice: at the
*numeric* scale (the real, ~20x-down suite of ``repro.matrices.testsuite``,
with actual floating-point factorization) and at the *paper* scale
(these synthetic workloads, timing replay only), and EXPERIMENTS.md
reports both.
"""

from repro.workload.geometric import (
    PAPER_WORKLOADS,
    WorkloadSpec,
    geometric_nd_workload,
    paper_workload,
)

__all__ = [
    "geometric_nd_workload",
    "paper_workload",
    "WorkloadSpec",
    "PAPER_WORKLOADS",
]
