"""Geometric nested-dissection workload generator.

Models the supernodal call tree that nested dissection produces on a
regular ``nx x ny x nz`` grid with ``dof`` unknowns per cell: recursive
bisection along the longest axis with plane separators.  Each separator
becomes one supernode with

    k = dof * (separator plane cells)
    m = dof * (boundary cells of the enclosing box — the cells of
               previously-cut planes on its faces)

and each leaf box becomes one supernode covering its remaining cells.
This is George's classical model of ND on regular meshes; it reproduces
the two properties the paper's analysis rests on: a long tail of small
factor-update calls (97% of calls small) and a handful of huge root
separators carrying most of the flops.

**Calibration against the paper.**  Table II gives each matrix's order N
and Table V gives its *root supernode size* (the k of the final m = 0
potrf).  An elongated box matches both simultaneously — e.g. kyushu
(N = 990,692, root k = 10,592) is modeled as a scalar 103 x 103 x 93
grid (N = 986,541, root k = 10,609); audikw_1 (N = 943,695, 3 dof,
root k = 5,418) as a 42 x 42 x 178 x 3-dof grid (N = 941,192 (cells x 3),
root k = 5,292).  The elongation reflects the shell-like geometry of
real automotive/structural models, whose graph separators are far
smaller than a cube of equal volume would suggest.

The output is a fabricated :class:`SymbolicFactor`: column ranges,
supernodal tree, a *consistent* column elimination tree, and row index
arrays of the right sizes.  It prices and schedules exactly like a real
symbolic factor; it cannot be used for numeric factorization (there is
no matrix), which is flagged by ``ordering == "synthetic-geometric"``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.symbolic.etree import NO_PARENT, EliminationTree, postorder
from repro.symbolic.symbolic import SymbolicFactor

__all__ = ["geometric_nd_workload", "WorkloadSpec", "PAPER_WORKLOADS", "paper_workload"]


@dataclass(frozen=True)
class _Super:
    k_cells: int
    m_cells: int
    children: tuple[int, ...]


def _bisect(
    dims: tuple[int, int, int],
    cut_faces: tuple[bool, bool, bool, bool, bool, bool],
    supers: list[_Super],
    leaf_cells: int,
) -> int:
    """Recurse on a box; append supernodes in postorder; return the index
    of the box's root supernode.

    ``cut_faces`` flags (x-, x+, y-, y+, z-, z+) mark faces created by
    earlier cuts (as opposed to the domain boundary, which contributes
    no update rows).
    """
    w, h, d = dims
    cells = w * h * d
    face_areas = (h * d, h * d, w * d, w * d, w * h, w * h)
    boundary = sum(a for a, cut in zip(face_areas, cut_faces) if cut)
    if cells <= leaf_cells or max(dims) <= 1:
        # leaf: unsplittable or small enough (note: *max* — a flat
        # 2-D box with one unit axis must still be dissected)
        supers.append(_Super(cells, boundary, ()))
        return len(supers) - 1
    axis = int(np.argmax(dims))
    n_axis = dims[axis]
    left_n = (n_axis - 1) // 2
    right_n = n_axis - 1 - left_n
    sep_area = cells // n_axis  # the plane orthogonal to `axis`

    def sub(n_new: int, side: int) -> int:
        new_dims = list(dims)
        new_dims[axis] = n_new
        new_cuts = list(cut_faces)
        # the face toward the new separator is now a cut face
        new_cuts[2 * axis + (1 - side)] = True
        return _bisect(tuple(new_dims), tuple(new_cuts), supers, leaf_cells)

    kids = []
    if left_n > 0:
        kids.append(sub(left_n, 0))
    if right_n > 0:
        kids.append(sub(right_n, 1))
    supers.append(_Super(sep_area, boundary, tuple(kids)))
    return len(supers) - 1


def geometric_nd_workload(
    nx: int,
    ny: int,
    nz: int,
    *,
    dof: int = 1,
    leaf_cells: int = 64,
) -> SymbolicFactor:
    """Generate the synthetic supernodal structure of ND on a grid.

    Returns a :class:`SymbolicFactor` suitable for timing replay and
    scheduling (``ordering == "synthetic-geometric"``; numeric use is
    unsupported).
    """
    if min(nx, ny, nz) < 1 or dof < 1:
        raise ValueError("grid dims and dof must be positive")
    supers: list[_Super] = []
    _bisect((nx, ny, nz), (False,) * 6, supers, leaf_cells)
    n_super = len(supers)

    # recursion appended in postorder; assign columns in that order
    widths = np.array([s.k_cells * dof for s in supers], dtype=np.int64)
    super_ptr = np.zeros(n_super + 1, dtype=np.int64)
    np.cumsum(widths, out=super_ptr[1:])
    n = int(super_ptr[-1])

    sparent = np.full(n_super, NO_PARENT, dtype=np.int64)
    for s, rec in enumerate(supers):
        for c in rec.children:
            sparent[c] = s

    rows: list[np.ndarray] = []
    nnz_factor = 0
    for s, rec in enumerate(supers):
        f, l = int(super_ptr[s]), int(super_ptr[s + 1])
        k = l - f
        m = rec.m_cells * dof
        rows.append(np.arange(f, f + k + m, dtype=np.int64))
        nnz_factor += (k + m) * k - k * (k - 1) // 2

    # a consistent column etree: chains inside supernodes, last column of
    # a supernode points at the first column of its parent supernode
    parent = np.full(n, NO_PARENT, dtype=np.int64)
    for s in range(n_super):
        f, l = int(super_ptr[s]), int(super_ptr[s + 1])
        parent[f:l - 1] = np.arange(f + 1, l)
        p = sparent[s]
        if p != NO_PARENT:
            parent[l - 1] = super_ptr[p]
    post, first_child, next_sibling = postorder(parent)
    etree = EliminationTree(parent, post, first_child, next_sibling)

    return SymbolicFactor(
        n=n,
        perm=np.arange(n, dtype=np.int64),
        super_ptr=super_ptr,
        rows=rows,
        sparent=sparent,
        spost=np.arange(n_super, dtype=np.int64),
        etree=etree,
        nnz_factor=int(nnz_factor),
        ordering="synthetic-geometric",
    )


@dataclass(frozen=True)
class WorkloadSpec:
    """A paper-scale workload: grid geometry calibrated to Table II's N
    and Table V's root supernode size."""

    name: str
    paper_name: str
    nx: int
    ny: int
    nz: int
    dof: int
    paper_n: int
    paper_root_k: int      # Table V's k at the m = 0 root call

    @property
    def n(self) -> int:
        return self.nx * self.ny * self.nz * self.dof

    @property
    def root_k(self) -> int:
        dims = sorted((self.nx, self.ny, self.nz))
        return dims[0] * dims[1] * self.dof

    def build(self, *, leaf_cells: int = 64) -> SymbolicFactor:
        return geometric_nd_workload(
            self.nx, self.ny, self.nz, dof=self.dof, leaf_cells=leaf_cells
        )


#: The five Table II matrices at full scale (see module docstring).
PAPER_WORKLOADS: tuple[WorkloadSpec, ...] = (
    WorkloadSpec("audikw_1", "audikw_1", 42, 42, 178, 3, 943695, 5418),
    WorkloadSpec("kyushu", "kyushu", 103, 103, 93, 1, 990692, 10592),
    WorkloadSpec("lmco", "lmco", 42, 42, 126, 3, 665017, 5353),
    WorkloadSpec("nastran-b", "nastran-b", 44, 44, 260, 3, 1508088, 5682),
    WorkloadSpec("sgi_1M", "sgi_1M", 84, 84, 216, 1, 1522431, 7014),
)


def paper_workload(name: str, *, leaf_cells: int = 64) -> SymbolicFactor:
    """Build the paper-scale synthetic workload for a Table II matrix."""
    for spec in PAPER_WORKLOADS:
        if spec.name == name or spec.paper_name == name:
            return spec.build(leaf_cells=leaf_cells)
    known = ", ".join(s.name for s in PAPER_WORKLOADS)
    raise KeyError(f"unknown workload {name!r}; known: {known}")
