"""Recursive nested dissection via BFS level-set separators.

Nested dissection orders a graph by finding a small vertex separator,
recursing on the two halves, and numbering the separator last.  For the
3-D grid problems in the test suite this produces the elimination trees
the paper's analysis depends on: a few very large supernodes near the
root (the separators, side ~ n^(2/3) vertices for 3-D) carrying most of
the flops, and a long tail of small leaf supernodes.

The separator heuristic is the classical level-structure method (George &
Liu): run a BFS from a pseudo-peripheral vertex, pick the level whose
removal best balances the halves weighted by separator size, and take
that whole level as the separator.  Small subgraphs fall back to the
minimum-degree ordering, mirroring production ND codes (METIS switches to
MMD at the bottom of the recursion).
"""

from __future__ import annotations

import numpy as np

from repro.matrices.csc import CSCMatrix
from repro.ordering.amd import minimum_degree
from repro.ordering.rcm import pseudo_peripheral_node

__all__ = ["nested_dissection"]


def _gather_neighbors(indptr: np.ndarray, indices: np.ndarray,
                      nodes: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Vectorized gather of the concatenated adjacency lists of ``nodes``.

    Returns ``(src, nbrs)`` where ``src[i]`` is the position of the source
    node within ``nodes`` for neighbor ``nbrs[i]``; entries stay grouped by
    source node in order.
    """
    counts = indptr[nodes + 1] - indptr[nodes]
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
    # positions: for each node, a run indptr[v] .. indptr[v+1]-1
    run_starts = np.zeros(nodes.size, dtype=np.int64)
    np.cumsum(counts[:-1], out=run_starts[1:])
    offsets = np.repeat(indptr[nodes] - run_starts, counts)
    pos = np.arange(total, dtype=np.int64) + offsets
    src = np.repeat(np.arange(nodes.size, dtype=np.int64), counts)
    return src, indices[pos]


def _subgraph(indptr: np.ndarray, indices: np.ndarray, nodes: np.ndarray):
    """Induced subgraph on ``nodes`` with relabeled vertices 0..len-1."""
    n_sub = nodes.size
    local = -np.ones(indptr.size - 1, dtype=np.int64)
    local[nodes] = np.arange(n_sub, dtype=np.int64)
    src, nbrs = _gather_neighbors(indptr, indices, nodes)
    local_nbrs = local[nbrs]
    keep = local_nbrs >= 0
    src = src[keep]
    local_nbrs = local_nbrs[keep]
    sub_indptr = np.zeros(n_sub + 1, dtype=np.int64)
    np.cumsum(np.bincount(src, minlength=n_sub), out=sub_indptr[1:])
    return sub_indptr, local_nbrs


def _level_structure(indptr, indices, root: int) -> np.ndarray:
    """BFS levels with vectorized frontier expansion."""
    n = indptr.size - 1
    level = np.full(n, -1, dtype=np.int64)
    level[root] = 0
    frontier = np.array([root], dtype=np.int64)
    d = 0
    while frontier.size:
        _, nbrs = _gather_neighbors(indptr, indices, frontier)
        nxt = np.unique(nbrs[level[nbrs] < 0])
        level[nxt] = d + 1
        frontier = nxt
        d += 1
    return level


def _find_separator(indptr, indices) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Split a *connected* graph into (part_a, part_b, separator)."""
    n = indptr.size - 1
    root = pseudo_peripheral_node(indptr, indices, 0)
    level = _level_structure(indptr, indices, root)
    depth = int(level.max())
    if depth < 2:
        # graph too shallow to split: everything becomes separator
        return (
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.int64),
            np.arange(n, dtype=np.int64),
        )
    counts = np.bincount(level, minlength=depth + 1)
    below = np.cumsum(counts)
    # candidate separator levels: require a reasonably balanced split
    # (each side at least a quarter of the remainder), then take the
    # smallest level.  Without the balance constraint the heuristic peels
    # tiny lopsided levels, which destroys the large root separators that
    # give 3-D problems their big frontal matrices.
    best_l, best_score = -1, np.inf
    for l in range(1, depth):
        a = below[l - 1]
        b = n - below[l]
        sep = counts[l]
        if a == 0 or b == 0:
            continue
        if min(a, b) < (n - sep) / 4:
            continue
        if sep < best_score:
            best_score, best_l = sep, l
    if best_l < 0:
        # no balanced level exists (thin/path-like graph): fall back to a
        # small-separator score with an imbalance penalty
        for l in range(1, depth):
            a = below[l - 1]
            b = n - below[l]
            sep = counts[l]
            if a == 0 or b == 0:
                continue
            imbalance = max(a, b) / max(1, min(a, b))
            score = sep * (1.0 + 0.1 * imbalance)
            if score < best_score:
                best_score, best_l = score, l
    if best_l < 0:
        best_l = 1
    part_a = np.flatnonzero(level < best_l)
    part_b = np.flatnonzero(level > best_l)
    separator = np.flatnonzero(level == best_l)
    return part_a, part_b, separator


def _components(indptr, indices) -> list[np.ndarray]:
    """Connected components via vectorized BFS sweeps."""
    n = indptr.size - 1
    label = np.full(n, -1, dtype=np.int64)
    comps = []
    for seed in range(n):
        if label[seed] >= 0:
            continue
        cid = len(comps)
        label[seed] = cid
        frontier = np.array([seed], dtype=np.int64)
        while frontier.size:
            _, nbrs = _gather_neighbors(indptr, indices, frontier)
            frontier = np.unique(nbrs[label[nbrs] < 0])
            label[frontier] = cid
        comps.append(np.flatnonzero(label == cid))
    return comps


def _nd_recurse(indptr, indices, nodes: np.ndarray, out: list[int],
                leaf_size: int) -> None:
    """Append the ND ordering of the induced subgraph on ``nodes`` to
    ``out`` (in elimination order: halves first, separator last)."""
    if nodes.size == 0:
        return
    if nodes.size <= leaf_size:
        sub_indptr, sub_indices = _subgraph(indptr, indices, nodes)
        sub = CSCMatrix(
            (nodes.size, nodes.size),
            sub_indptr,
            sub_indices,
            np.ones(sub_indices.size),
            check=False,
        )
        # base case: minimum degree on the leaf subgraph
        local_perm = minimum_degree(_with_diagonal(sub))
        out.extend(int(nodes[i]) for i in local_perm)
        return
    sub_indptr, sub_indices = _subgraph(indptr, indices, nodes)
    comps = _components(sub_indptr, sub_indices)
    if len(comps) > 1:
        for comp in comps:
            _nd_recurse(indptr, indices, nodes[comp], out, leaf_size)
        return
    part_a, part_b, sep = _find_separator(sub_indptr, sub_indices)
    if sep.size == nodes.size or part_a.size == 0 or part_b.size == 0:
        # separator heuristic failed to split; fall back to minimum degree
        sub = CSCMatrix(
            (nodes.size, nodes.size),
            sub_indptr,
            sub_indices,
            np.ones(sub_indices.size),
            check=False,
        )
        local_perm = minimum_degree(_with_diagonal(sub))
        out.extend(int(nodes[i]) for i in local_perm)
        return
    _nd_recurse(indptr, indices, nodes[part_a], out, leaf_size)
    _nd_recurse(indptr, indices, nodes[part_b], out, leaf_size)
    out.extend(int(v) for v in nodes[sep])


def _with_diagonal(adj_only: CSCMatrix) -> CSCMatrix:
    """minimum_degree consumes a matrix; give the adjacency a diagonal so
    `.adjacency()` round-trips cleanly."""
    n = adj_only.n_rows
    col_of_entry = np.repeat(
        np.arange(n, dtype=np.int64), np.diff(adj_only.indptr)
    )
    diag = np.arange(n, dtype=np.int64)
    rows = np.concatenate([adj_only.indices, diag])
    cols = np.concatenate([col_of_entry, diag])
    vals = np.ones(rows.size)
    return CSCMatrix.from_coo(rows, cols, vals, (n, n))


def nested_dissection(a: CSCMatrix, *, leaf_size: int = 64) -> np.ndarray:
    """Nested dissection permutation (new-to-old) of ``a``'s symmetric
    pattern.  Subgraphs of at most ``leaf_size`` vertices are ordered with
    minimum degree."""
    indptr, indices = a.adjacency()
    n = indptr.size - 1
    out: list[int] = []
    _nd_recurse(indptr, indices, np.arange(n, dtype=np.int64), out, leaf_size)
    perm = np.asarray(out, dtype=np.int64)
    if perm.size != n or np.unique(perm).size != n:
        raise AssertionError("nested dissection produced an invalid permutation")
    return perm
