"""Fill-reducing orderings, implemented from scratch.

The paper's substrate (WSMP) computes a fill-reducing ordering before the
symbolic phase; the quality of the ordering controls the supernode-size
distribution that the hybrid policies exploit.  We provide:

* :func:`minimum_degree` — quotient-graph minimum degree with element
  absorption and mass elimination of indistinguishable nodes (AMD-style
  approximate external degrees).
* :func:`reverse_cuthill_mckee` — bandwidth-reducing BFS ordering (used as
  a contrast baseline; it produces long thin supernodes).
* :func:`nested_dissection` — recursive BFS-separator dissection, the
  ordering that produces the large root fronts central to the paper's
  analysis of 3-D problems.
* :func:`natural_ordering` — identity.

All orderings return ``perm`` with the "new-to-old" convention:
``perm[i]`` is the original index eliminated at step ``i``.
"""

from repro.ordering.amd import minimum_degree
from repro.ordering.interface import (
    ORDERING_METHODS,
    compute_ordering,
    invert_permutation,
    natural_ordering,
)
from repro.ordering.nested_dissection import nested_dissection
from repro.ordering.rcm import reverse_cuthill_mckee

__all__ = [
    "minimum_degree",
    "reverse_cuthill_mckee",
    "nested_dissection",
    "natural_ordering",
    "compute_ordering",
    "invert_permutation",
    "ORDERING_METHODS",
]
