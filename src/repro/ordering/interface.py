"""Uniform entry point for the ordering package."""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.matrices.csc import CSCMatrix

__all__ = [
    "ORDERING_METHODS",
    "compute_ordering",
    "natural_ordering",
    "invert_permutation",
]


def natural_ordering(a: CSCMatrix) -> np.ndarray:
    """Identity permutation (no reordering)."""
    return np.arange(a.n_rows, dtype=np.int64)


def _methods() -> dict[str, Callable[[CSCMatrix], np.ndarray]]:
    # imported lazily to avoid a circular import with nested_dissection,
    # which falls back to minimum_degree at its leaves
    from repro.ordering.amd import minimum_degree
    from repro.ordering.nested_dissection import nested_dissection
    from repro.ordering.rcm import reverse_cuthill_mckee

    return {
        "natural": natural_ordering,
        "amd": minimum_degree,
        "rcm": reverse_cuthill_mckee,
        "nd": nested_dissection,
    }


ORDERING_METHODS = ("natural", "amd", "rcm", "nd")


def compute_ordering(a: CSCMatrix, method: str = "nd") -> np.ndarray:
    """Compute a fill-reducing permutation (new-to-old convention).

    Parameters
    ----------
    a : CSCMatrix
        Symmetric (or lower-triangular-stored) sparse matrix.
    method : str
        One of ``natural``, ``amd``, ``rcm``, ``nd`` (default; nested
        dissection is what gives 3-D problems the large root fronts the
        hybrid CPU-GPU policies exploit).
    """
    table = _methods()
    if method not in table:
        raise ValueError(f"unknown ordering {method!r}; choose from {ORDERING_METHODS}")
    return table[method](a)


def invert_permutation(perm: np.ndarray) -> np.ndarray:
    """Given ``perm[new] = old`` return ``inv[old] = new``."""
    perm = np.asarray(perm, dtype=np.int64)
    inv = np.empty_like(perm)
    inv[perm] = np.arange(perm.size, dtype=np.int64)
    return inv
