"""Reverse Cuthill-McKee ordering.

RCM reduces matrix bandwidth by a breadth-first traversal from a
pseudo-peripheral vertex, visiting neighbors in increasing-degree order,
and reversing the resulting sequence.  It is included as the contrast
ordering: RCM produces long, thin frontal matrices (large m, small k),
while nested dissection produces the large square root fronts that the
GPU policies feed on.
"""

from __future__ import annotations

import numpy as np

from repro.matrices.csc import CSCMatrix

__all__ = ["reverse_cuthill_mckee", "pseudo_peripheral_node"]


def _bfs_levels(indptr: np.ndarray, indices: np.ndarray, start: int,
                component: np.ndarray | None = None) -> tuple[np.ndarray, int]:
    """Level structure of the BFS tree rooted at ``start``.

    Returns ``(level, depth)`` where ``level[v] = -1`` for unreachable
    vertices.  If ``component`` is given, only those vertices are visited.
    """
    n = indptr.size - 1
    level = np.full(n, -1, dtype=np.int64)
    if component is not None:
        allowed = np.zeros(n, dtype=bool)
        allowed[component] = True
    else:
        allowed = np.ones(n, dtype=bool)
    level[start] = 0
    frontier = np.array([start], dtype=np.int64)
    depth = 0
    while frontier.size:
        # vectorized frontier expansion: gather all neighbors of the
        # frontier at once, keep the unvisited allowed ones
        counts = indptr[frontier + 1] - indptr[frontier]
        total = int(counts.sum())
        if total == 0:
            break
        run_starts = np.zeros(frontier.size, dtype=np.int64)
        np.cumsum(counts[:-1], out=run_starts[1:])
        offsets = np.repeat(indptr[frontier] - run_starts, counts)
        nbrs = indices[np.arange(total, dtype=np.int64) + offsets]
        nxt = np.unique(nbrs[(level[nbrs] < 0) & allowed[nbrs]])
        if nxt.size == 0:
            break
        level[nxt] = depth + 1
        frontier = nxt
        depth += 1
    return level, depth


def pseudo_peripheral_node(indptr: np.ndarray, indices: np.ndarray,
                           start: int, component: np.ndarray | None = None) -> int:
    """George-Liu pseudo-peripheral vertex: repeatedly re-root the BFS at a
    minimum-degree vertex of the deepest level until the eccentricity
    estimate stops growing."""
    degrees = np.diff(indptr)
    node = start
    level, depth = _bfs_levels(indptr, indices, node, component)
    while True:
        last = np.flatnonzero(level == depth)
        if last.size == 0:
            return node
        candidate = last[np.argmin(degrees[last])]
        new_level, new_depth = _bfs_levels(indptr, indices, int(candidate), component)
        if new_depth <= depth:
            return node
        node, level, depth = int(candidate), new_level, new_depth


def reverse_cuthill_mckee(a: CSCMatrix) -> np.ndarray:
    """Compute the RCM permutation (new-to-old) of the symmetric pattern
    of ``a``.  Handles disconnected graphs by processing each connected
    component from its own pseudo-peripheral root."""
    indptr, indices = a.adjacency()
    n = indptr.size - 1
    degrees = np.diff(indptr)
    visited = np.zeros(n, dtype=bool)
    order = np.empty(n, dtype=np.int64)
    pos = 0
    for seed in range(n):
        if visited[seed]:
            continue
        # restrict the pseudo-peripheral search to this component
        comp_level, _ = _bfs_levels(indptr, indices, seed)
        component = np.flatnonzero(comp_level >= 0)
        root = pseudo_peripheral_node(indptr, indices, seed, component)
        # Cuthill-McKee BFS from root with degree-sorted neighbor visits
        queue = [root]
        visited[root] = True
        head = 0
        while head < len(queue):
            v = queue[head]
            head += 1
            order[pos] = v
            pos += 1
            nbrs = indices[indptr[v]:indptr[v + 1]]
            nbrs = nbrs[~visited[nbrs]]
            if nbrs.size:
                nbrs = nbrs[np.argsort(degrees[nbrs], kind="stable")]
                visited[nbrs] = True
                queue.extend(int(u) for u in nbrs)
    if pos != n:
        raise AssertionError("RCM failed to visit every vertex")
    return order[::-1].copy()
