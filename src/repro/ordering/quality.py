"""Ordering-quality metrics.

The fill-reducing ordering decides everything downstream: nnz(L), the
operation count, the supernode-size distribution the hybrid policies
feed on, and the tree parallelism the multi-worker runs exploit.  This
module computes the standard quality metrics for any ordering so they
can be compared head-to-head (see ``benchmarks/test_ablation_ordering``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.matrices.csc import CSCMatrix
from repro.symbolic.etree import NO_PARENT
from repro.symbolic.symbolic import symbolic_factorize

__all__ = ["OrderingQuality", "evaluate_ordering"]


@dataclass(frozen=True)
class OrderingQuality:
    """Standard fill-reducing ordering metrics."""

    method: str
    nnz_factor: int
    fill_ratio: float           # nnz(L) / nnz(tril(A))
    flops: float                # factorization operation count
    n_supernodes: int
    max_front: int              # largest frontal matrix order
    tree_height: int            # supernodal tree height (critical path len)
    mean_width: float

    def summary_row(self) -> list:
        return [
            self.method, self.nnz_factor, f"{self.fill_ratio:.2f}",
            f"{self.flops:.3g}", self.n_supernodes, self.max_front,
            self.tree_height, f"{self.mean_width:.1f}",
        ]


def evaluate_ordering(a: CSCMatrix, method: str) -> OrderingQuality:
    """Run the symbolic pipeline under ``method`` and report its quality."""
    sf = symbolic_factorize(a, ordering=method)
    mk = sf.mk_pairs()
    height = 0
    depth = np.zeros(sf.n_supernodes, dtype=np.int64)
    for s in range(sf.n_supernodes - 1, -1, -1):
        p = sf.sparent[s]
        if p != NO_PARENT:
            depth[s] = depth[p] + 1
    height = int(depth.max()) if depth.size else 0
    return OrderingQuality(
        method=method,
        nnz_factor=sf.nnz_factor,
        fill_ratio=sf.nnz_factor / max(1, a.lower_triangle().nnz),
        flops=sf.total_flops(),
        n_supernodes=sf.n_supernodes,
        max_front=int((mk.sum(axis=1)).max()) if mk.size else 0,
        tree_height=height,
        mean_width=float(mk[:, 1].mean()) if mk.size else 0.0,
    )
