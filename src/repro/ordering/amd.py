"""Quotient-graph minimum degree ordering (AMD-style).

This is a from-scratch implementation of minimum degree with the standard
quality/speed machinery of approximate-minimum-degree codes:

* **quotient graph** — eliminated vertices become *elements*; a variable's
  adjacency is ``A_v`` (uneliminated neighbors) plus ``E_v`` (elements it
  touches), so the graph never grows beyond the original storage.
* **element absorption** — when pivot ``p`` is eliminated, all elements
  adjacent to it are merged into the new element ``L_p``, and entries of
  ``A_v`` covered by ``L_p`` are pruned.
* **approximate external degrees** — degrees are updated with the AMD
  bound ``d(v) = w(A_v) + w(L_p \\ v) + sum_e w(L_e \\ L_p)`` rather than
  an exact (quadratic) set union.
* **mass elimination / supervariables** — variables in ``L_p`` with
  identical quotient adjacency are merged; they are eliminated together
  and therefore emerge as consecutive columns, seeding the fundamental
  supernodes the multifrontal method factors as blocks.

The asymptotics are those of classical AMD; the constant factor is
Python's, so this ordering is intended for the ~1e4-vertex problems in the
test suite (nested dissection handles the larger grids).
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.matrices.csc import CSCMatrix

__all__ = ["minimum_degree"]


def minimum_degree(a: CSCMatrix) -> np.ndarray:
    """Return a minimum-degree permutation (new-to-old) for the symmetric
    pattern of ``a``."""
    indptr, indices = a.adjacency()
    n = indptr.size - 1
    if n == 0:
        return np.empty(0, dtype=np.int64)

    adj_v: list[set[int]] = [
        set(int(u) for u in indices[indptr[v]:indptr[v + 1]]) for v in range(n)
    ]
    adj_e: list[set[int]] = [set() for _ in range(n)]
    elem_members: dict[int, set[int]] = {}
    weight = np.ones(n, dtype=np.int64)       # originals merged into each supervar
    merged: list[list[int]] = [[v] for v in range(n)]
    alive = np.ones(n, dtype=bool)
    degree = np.array([len(s) for s in adj_v], dtype=np.int64)

    heap: list[tuple[int, int]] = [(int(degree[v]), v) for v in range(n)]
    heapq.heapify(heap)

    order: list[int] = []
    n_eliminated = 0

    while n_eliminated < n:
        # pop the minimum-degree live supervariable (lazy deletion)
        while True:
            d, p = heapq.heappop(heap)
            if alive[p] and d == degree[p]:
                break

        # ---- form L_p: variable neighbors plus members of adjacent elements
        lp: set[int] = {v for v in adj_v[p] if alive[v]}
        for e in adj_e[p]:
            lp.update(v for v in elem_members[e] if alive[v])
        lp.discard(p)

        # ---- eliminate p (and everything merged into it)
        order.extend(merged[p])
        n_eliminated += int(weight[p])
        alive[p] = False
        absorbed = adj_e[p]
        for e in absorbed:
            del elem_members[e]
        adj_v[p] = set()
        adj_e[p] = set()
        elem_members[p] = set(lp)

        if not lp:
            continue

        # ---- per-element external weights w(L_e \ L_p), one pass (AMD bound)
        extern_w: dict[int, int] = {}
        for v in lp:
            for e in adj_e[v]:
                if e not in extern_w and e != p and e in elem_members:
                    extern_w[e] = sum(
                        int(weight[u]) for u in elem_members[e] if alive[u] and u not in lp
                    )

        w_lp = int(sum(weight[v] for v in lp))

        # ---- update each variable in L_p
        for v in lp:
            av = adj_v[v]
            av.discard(p)
            av.difference_update(lp)          # covered by the new element
            av = {u for u in av if alive[u]}
            adj_v[v] = av
            ev = {e for e in adj_e[v] if e in elem_members and e != p}
            ev.add(p)                          # the new element is named p
            adj_e[v] = ev
            d = sum(int(weight[u]) for u in av)
            d += w_lp - int(weight[v])
            d += sum(extern_w.get(e, 0) for e in ev if e != p)
            degree[v] = max(1, d) if (av or len(ev) > 1 or w_lp > weight[v]) else 0
            heapq.heappush(heap, (int(degree[v]), v))

        # ---- supervariable detection: merge indistinguishable members of L_p
        signature: dict[tuple, int] = {}
        for v in sorted(lp):
            if not alive[v]:
                continue
            sig = (
                tuple(sorted(adj_v[v])),
                tuple(sorted(adj_e[v])),
            )
            keeper = signature.get(sig)
            if keeper is None:
                signature[sig] = v
            else:
                # merge v into keeper
                weight[keeper] += weight[v]
                merged[keeper].extend(merged[v])
                merged[v] = []
                alive[v] = False
                adj_v[v] = set()
                adj_e[v] = set()
                for members in elem_members.values():
                    members.discard(v)
                for u in list(adj_v[keeper]):
                    adj_v[u].discard(v)
                # external degree of the keeper shrinks by the merged weight
                degree[keeper] = max(0, int(degree[keeper]) - int(weight[v] - 0))
                heapq.heappush(heap, (int(degree[keeper]), keeper))

    perm = np.asarray(order, dtype=np.int64)
    if perm.size != n or np.unique(perm).size != n:
        raise AssertionError("minimum degree produced an invalid permutation")
    return perm
