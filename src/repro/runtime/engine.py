"""Asynchronous event-driven execution of the supernodal task DAG.

Where :func:`repro.parallel.list_schedule` binds every task to a worker
up front, :func:`dynamic_schedule` decides *at run time*:

* **per-worker ready deques + work stealing** — each worker pops its
  highest-upward-rank ready task; an idle worker steals half of the
  busiest deque from the back (low-priority end), so critical-path work
  stays local and the steal amortizes over several tasks;
* **memory-aware admission** — before a front starts, the runtime
  projects the live update-stack (Liu's accounting from
  :mod:`repro.symbolic.stack`) plus the device high-water mark (the
  grow-only :class:`~repro.gpu.allocator.HighWaterMarkPool` of each
  simulated GPU) and refuses to start the front when the projection
  exceeds the budget — the task is deferred, not dropped.  If deferral
  ever gridlocks the machine (nothing running, nothing admissible), the
  single best task is force-admitted so completion is guaranteed;
* **dispatch-time policy selection** — the placement policy (P1..P4 via
  a hybrid selector) is resolved for the worker that actually picks the
  task up, at the moment it starts; a CPU-only worker transparently
  runs P1;
* **fault tolerance** — injected GPU kernel failures are retried once
  on the same policy, then degraded to host-only P1
  (:mod:`repro.runtime.faults`); transfer stalls add latency.  A faulty
  run *completes*, flagged ``degraded``, rather than raising.

The engine is a deterministic discrete-event simulation on a virtual
clock (:mod:`repro.runtime.events`): identical inputs produce identical
schedules, steal sequences, and fault outcomes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.gpu.allocator import DeviceMemoryError
from repro.gpu.clock import SimTask
from repro.multifrontal.frontal import assembly_bytes
from repro.parallel.scheduler import ScheduledTask
from repro.parallel.workers import WorkerPool
from repro.policies.base import Policy, PolicyP1, estimate_policy_time
from repro.runtime.events import EventQueue, ReadyDeque
from repro.runtime.faults import FaultInjector
from repro.symbolic.stack import update_bytes
from repro.symbolic.symbolic import SymbolicFactor

__all__ = [
    "RuntimeStats",
    "RuntimeResult",
    "DynamicRuntime",
    "TaskPricer",
    "dynamic_schedule",
    "schedule_peak_update_bytes",
]


class TaskPricer:
    """Dispatch-time task pricing shared by the dynamic runtime and the
    cluster event loop (:mod:`repro.cluster.runtime`).

    Caches per-``(m, k, has_gpu)`` factor-update durations with the
    policy resolved against a representative worker, assembly times,
    P1 fallback times, upward-rank priorities, and the device
    working-set demand of Section IV-B.  Policies discriminate only on
    GPU presence, so one GPU exemplar and one CPU-only exemplar price
    every worker of that shape.
    """

    def __init__(
        self,
        sf: SymbolicFactor,
        policy: Policy,
        model,
        *,
        gpu_worker=None,
        cpu_worker=None,
    ):
        self.sf = sf
        self.policy = policy
        self.model = model
        self._gpu_worker = gpu_worker
        self._cpu_worker = cpu_worker
        self._p1 = PolicyP1()
        self._kids = sf.schildren()
        # (m, k, has_gpu) -> (fu seconds, resolved policy name)
        self._dur_cache: dict[tuple[int, int, bool], tuple[float, str]] = {}
        # (m, k) -> P1 seconds, for dispatch-time fallbacks
        self._p1_cache: dict[tuple[int, int], float] = {}
        self._asm: np.ndarray | None = None

    def representative(self, has_gpu: bool):
        if has_gpu and self._gpu_worker is not None:
            return self._gpu_worker
        if self._cpu_worker is not None:
            return self._cpu_worker
        return self._gpu_worker

    def assembly_times(self) -> np.ndarray:
        """Per-supernode extend-add assembly seconds (host memory time)."""
        if self._asm is None:
            sf = self.sf
            out = np.zeros(sf.n_supernodes)
            for s in range(sf.n_supernodes):
                out[s] = self.model.host_memory_time(
                    assembly_bytes(
                        sf.rows[s].size,
                        [sf.rows[c].size - sf.width(c) for c in self._kids[s]],
                    )
                )
            self._asm = out
        return self._asm

    def fu_time(self, s: int, has_gpu: bool) -> tuple[float, str]:
        """Dispatch-time policy resolution + isolated F-U seconds."""
        m = self.sf.update_size(s)
        k = self.sf.width(s)
        key = (m, k, has_gpu)
        hit = self._dur_cache.get(key)
        if hit is None:
            worker = self.representative(has_gpu)
            base = (
                self.policy.resolve(m, k, worker)
                if hasattr(self.policy, "resolve")
                else self.policy
            )
            if base.needs_gpu and not has_gpu:
                base = self._p1
            hit = (estimate_policy_time(base, m, k, self.model), base.name)
            self._dur_cache[key] = hit
        return hit

    def p1_time(self, s: int) -> float:
        m = self.sf.update_size(s)
        k = self.sf.width(s)
        key = (m, k)
        hit = self._p1_cache.get(key)
        if hit is None:
            hit = estimate_policy_time(self._p1, m, k, self.model)
            self._p1_cache[key] = hit
        return hit

    def upward_ranks(self, has_gpu: bool) -> np.ndarray:
        """Task priority: seconds from the task to the root, inclusive —
        the upward rank the static list scheduler uses, priced on the
        best (GPU if any) worker shape."""
        sf = self.sf
        asm = self.assembly_times()
        dur = np.array(
            [self.fu_time(s, has_gpu)[0] + asm[s]
             for s in range(sf.n_supernodes)]
        )
        rank = dur.copy()
        for s in sf.spost[::-1]:  # parents before children
            parent = int(sf.sparent[s])
            if parent >= 0:
                rank[int(s)] = dur[int(s)] + rank[parent]
        return rank

    def device_demand(self, name: str, m: int, k: int) -> int:
        """Device words a policy's working set needs, per the transfer
        volumes of Section IV-B (Equation 2)."""
        word = self.model.gpu_word
        if name == "P2":
            return (m * k + m * m) * word
        if name.startswith("P3"):
            return (k * k + m * k + m * m) * word
        if name.startswith("P4"):
            return (m + k) * (m + k) * word
        return 0


@dataclass
class RuntimeStats:
    """Counters the event loop accumulates; exported via ``metrics()``."""

    steals: int = 0                 # steal transactions (thief-side)
    stolen_tasks: int = 0           # tasks that changed owner
    admission_deferrals: int = 0    # times a ready task was skipped for memory
    forced_admissions: int = 0      # budget overridden to avoid gridlock
    cpu_fallbacks: int = 0          # GPU policy resolved on a CPU-only worker
    device_fallbacks: int = 0       # front larger than device memory
    kernel_retries: int = 0         # failed device attempts that were retried
    degraded_tasks: int = 0         # tasks that ended on P1 after two failures
    transfer_stalls: int = 0
    peak_stack_bytes: int = 0       # update-stack high-water (Liu accounting)
    device_high_water: int = 0      # max device-pool capacity seen
    peak_admitted_bytes: int = 0    # max of (stack + device) the admission saw


@dataclass
class RuntimeResult:
    """Outcome of one dynamic run: schedule + spans + counters."""

    makespan: float
    schedule: list[ScheduledTask]
    worker_busy: list[float]
    stats: RuntimeStats
    spans: list[SimTask] = field(default_factory=list)
    degraded_sids: frozenset = frozenset()
    memory_budget: int | None = None

    @property
    def degraded(self) -> bool:
        """True when any task fell back to P1 after injected failures."""
        return bool(self.degraded_sids)

    def utilization(self) -> float:
        if not self.worker_busy or self.makespan <= 0:
            return 0.0
        return float(np.mean(self.worker_busy) / self.makespan)

    def metrics(self):
        """Counters + duration histogram + spans as a
        :class:`repro.service.metrics.ServiceMetrics` (same export
        surface as the serving layer: ``report()``, ``chrome_trace()``).
        """
        from repro.service.metrics import ServiceMetrics

        m = ServiceMetrics()
        s = self.stats
        for name, value in (
            ("tasks", len(self.schedule)),
            ("steals", s.steals),
            ("stolen_tasks", s.stolen_tasks),
            ("admission_deferrals", s.admission_deferrals),
            ("forced_admissions", s.forced_admissions),
            ("cpu_fallbacks", s.cpu_fallbacks),
            ("device_fallbacks", s.device_fallbacks),
            ("kernel_retries", s.kernel_retries),
            ("degraded_tasks", s.degraded_tasks),
            ("transfer_stalls", s.transfer_stalls),
        ):
            if value:
                m.incr(name, value)
        m.gauge("peak_stack_bytes", float(s.peak_stack_bytes))
        m.gauge("device_high_water", float(s.device_high_water))
        m.gauge("peak_admitted_bytes", float(s.peak_admitted_bytes))
        for t in self.schedule:
            m.observe("task", t.elapsed)
        for w, busy in enumerate(self.worker_busy):
            m.gauge(f"worker{w}_busy_seconds", busy)
        for span in self.spans:
            m.span(span.name, span.category, span.engine, span.start, span.end)
        return m

    def validate(self, sf) -> list[str]:
        """Verify this schedule against the symbolic tree's invariants.

        Delegates to :mod:`repro.verify.invariants`: every supernode ran
        exactly once, no parent started before its children finished,
        and the execution order conserves the update stack (each
        extend-add produced once and consumed exactly once).  Returns
        the list of violations (empty = valid).
        """
        from repro.verify.invariants import (
            check_schedule_precedence,
            check_update_conservation,
        )

        order = [t.sid for t in sorted(self.schedule, key=lambda t: t.end)]
        return (
            check_schedule_precedence(sf, self.schedule)
            + check_update_conservation(sf, order)
        )

    def chrome_trace(self) -> dict:
        from repro.gpu.trace import tasks_to_chrome_trace

        return tasks_to_chrome_trace(self.spans)


def schedule_peak_update_bytes(
    sf: SymbolicFactor, schedule: list[ScheduledTask]
) -> int:
    """Peak live update-stack bytes of an already-timed schedule.

    Uses the runtime's (conservative) dispatch-time accounting: a task's
    children are freed when it *starts* (assembly consumes them) and its
    own update is charged from its start, so concurrent tasks' future
    outputs count as live.  On a serial schedule this coincides with
    :func:`repro.symbolic.stack.estimate_peak_update_bytes`; on a
    parallel one it prices what the machine must actually hold.
    """
    kids = sf.schildren()
    order = sorted(schedule, key=lambda t: (t.start, t.end, t.sid))
    live = 0
    peak = 0
    for t in order:
        for c in kids[t.sid]:
            live -= update_bytes(sf, c)
        live += update_bytes(sf, t.sid)
        peak = max(peak, live)
    return peak


@dataclass
class _Running:
    sid: int
    start: float
    end: float
    policy: str
    device_bytes: int
    degraded: bool


class DynamicRuntime:
    """One dynamic execution of ``sf``'s task DAG over ``pool``.

    Build it, call :meth:`run`, read the :class:`RuntimeResult`.  The
    class exists (rather than a closure) so tests can poke at the
    intermediate state; :func:`dynamic_schedule` is the public one-shot
    entry point.
    """

    def __init__(
        self,
        sf: SymbolicFactor,
        policy: Policy,
        pool: WorkerPool,
        *,
        memory_budget: int | None = None,
        faults: FaultInjector | None = None,
        seed_worker: int = 0,
    ):
        self.sf = sf
        self.policy = policy
        self.pool = pool
        self.memory_budget = memory_budget
        self.faults = faults
        self.seed_worker = int(seed_worker) % max(1, pool.n_workers)
        self.stats = RuntimeStats()

        self._kids = sf.schildren()
        self._model = pool.node.model
        cpu_rep = None
        for w in pool.workers:
            if not w.has_gpu:
                cpu_rep = w
                break
        if cpu_rep is None:
            cpu_rep = pool.workers[0]
        self._pricer = TaskPricer(
            sf, policy, self._model,
            gpu_worker=pool.gpu_worker(), cpu_worker=cpu_rep,
        )
        self._asm = self._pricer.assembly_times()
        self._rank = self._pricer.upward_ranks(pool.gpu_worker() is not None)

    # ------------------------------------------------------------------
    # static pre-computation (delegated to the shared TaskPricer)
    # ------------------------------------------------------------------
    def _fu_time(self, s: int, has_gpu: bool) -> tuple[float, str]:
        return self._pricer.fu_time(s, has_gpu)

    def _p1_time(self, s: int) -> float:
        return self._pricer.p1_time(s)

    # ------------------------------------------------------------------
    # memory accounting
    # ------------------------------------------------------------------
    def _device_demand(self, name: str, m: int, k: int) -> int:
        return self._pricer.device_demand(name, m, k)

    def _device_high_water(self) -> int:
        caps = [
            getattr(w.gpu.device_pool, "capacity", 0)
            for w in self.pool.workers if w.has_gpu
        ]
        return max(caps) if caps else 0

    def _freed_bytes(self, s: int) -> int:
        return sum(update_bytes(self.sf, c) for c in self._kids[s])

    def _projected(self, s: int, demand_hint: int = 0) -> int:
        stack = self._live - self._freed_bytes(s) + update_bytes(self.sf, s)
        return stack + max(self._device_high_water(), demand_hint)

    def _admissible(self, s: int) -> bool:
        if self.memory_budget is None:
            return True
        return self._projected(s) <= self.memory_budget

    # ------------------------------------------------------------------
    # the event loop
    # ------------------------------------------------------------------
    def run(self) -> RuntimeResult:
        sf = self.sf
        n = sf.n_supernodes
        p = self.pool.n_workers
        self._events = EventQueue()
        self._deques = [ReadyDeque() for _ in range(p)]
        self._running: dict[int, _Running] = {}
        self._n_pending = np.array([len(self._kids[s]) for s in range(n)])
        self._live = 0
        self._schedule: list[ScheduledTask] = []
        self._spans: list[SimTask] = []
        self._busy = [0.0] * p
        self._degraded: set[int] = set()
        self._done = 0

        # all initially-ready tasks are seeded onto one worker: the others
        # bootstrap by stealing, exactly like a work-stealing runtime
        # whose root task spawns the frontier
        for s in range(n):
            if self._n_pending[s] == 0:
                self._deques[self.seed_worker].push(float(self._rank[s]), s, s)

        while self._done < n:
            progress = True
            while progress:
                progress = False
                for w in range(p):
                    if w not in self._running and self._try_dispatch(w):
                        progress = True
            if not self._running:
                self._force_admit()
            ev = self._events.pop()
            self._complete(ev.payload)

        if any(len(d) for d in self._deques):
            raise AssertionError("runtime finished with tasks still queued")
        makespan = max((t.end for t in self._schedule), default=0.0)
        self._schedule.sort(key=lambda t: (t.start, t.sid))
        return RuntimeResult(
            makespan=makespan,
            schedule=self._schedule,
            worker_busy=self._busy,
            stats=self.stats,
            spans=self._spans,
            degraded_sids=frozenset(self._degraded),
            memory_budget=self.memory_budget,
        )

    # -- dispatch ----------------------------------------------------------
    def _try_dispatch(self, w: int) -> bool:
        own = self._deques[w]
        if not own:
            if not self._steal_into(w):
                return False
        for s in own.peek_all():
            if self._admissible(s):
                own.remove(s)
                self._start(w, s)
                return True
            self.stats.admission_deferrals += 1
        return False

    def _steal_into(self, w: int) -> bool:
        """Steal half of the busiest other deque (from the back)."""
        victims = [
            v for v in range(self.pool.n_workers)
            if v != w and len(self._deques[v]) > 0
        ]
        if not victims:
            return False
        victim = max(victims, key=lambda v: (len(self._deques[v]), -v))
        loot = self._deques[victim].steal_back(
            (len(self._deques[victim]) + 1) // 2
        )
        for s in loot:
            self._deques[w].push(float(self._rank[s]), s, s)
        self.stats.steals += 1
        self.stats.stolen_tasks += len(loot)
        return True

    def _force_admit(self) -> None:
        """Nothing running and nothing admissible: the budget cannot be
        honored by waiting, so admit the ready task with the *smallest*
        memory projection — the least possible overshoot — counted so
        the caller can see the budget was infeasible."""
        best_w, best_s = -1, -1
        best_key: tuple[int, float, int] | None = None
        for w, dq in enumerate(self._deques):
            for s in dq.peek_all():
                key = (self._projected(s), -float(self._rank[s]), s)
                if best_key is None or key < best_key:
                    best_w, best_s, best_key = w, s, key
        if best_s < 0:
            raise AssertionError("runtime gridlock with no ready tasks")
        self._deques[best_w].remove(best_s)
        self.stats.forced_admissions += 1
        self._start(best_w, best_s)

    def _start(self, w: int, s: int) -> None:
        t0 = self._events.clock.now
        worker = self.pool.workers[w]
        m = self.sf.update_size(s)
        k = self.sf.width(s)
        fu, name = self._fu_time(s, worker.has_gpu)
        if not worker.has_gpu and self.pool.gpu_worker() is not None:
            # dispatch-time selection picked the host path only because
            # this worker owns no GPU; a GPU worker would have offloaded
            if self._fu_time(s, True)[1] != "P1":
                self.stats.cpu_fallbacks += 1

        alloc_cost = 0.0
        stall = 0.0
        wasted = 0.0
        degraded = False
        device_bytes = 0
        if name != "P1" and worker.has_gpu:
            demand = self._device_demand(name, m, k)
            try:
                alloc_cost = worker.gpu.device_pool.request(demand)
                device_bytes = demand
            except DeviceMemoryError:
                # front larger than the device: run on the host instead,
                # mirroring the numeric driver's fallback
                self.stats.device_fallbacks += 1
                fu, name = self._p1_time(s), "P1"
            if name != "P1" and self.faults is not None:
                stall = self.faults.transfer_stall(s)
                if stall > 0.0:
                    self.stats.transfer_stalls += 1
                if self.faults.kernel_fails(s, 0):
                    wasted += self.faults.failure_point * fu
                    self.stats.kernel_retries += 1
                    if self.faults.kernel_fails(s, 1):
                        # second failure: degrade to host-only execution
                        wasted += self.faults.failure_point * fu
                        fu, name = self._p1_time(s), "P1"
                        degraded = True
                        self.stats.degraded_tasks += 1

        duration = float(self._asm[s]) + fu + alloc_cost + stall + wasted
        # Liu accounting, charged conservatively at dispatch: children are
        # consumed by the assembly, our own update is budgeted up front
        self._live -= self._freed_bytes(s)
        self._live += update_bytes(self.sf, s)
        self.stats.peak_stack_bytes = max(self.stats.peak_stack_bytes, self._live)
        self.stats.device_high_water = max(
            self.stats.device_high_water, self._device_high_water()
        )
        self.stats.peak_admitted_bytes = max(
            self.stats.peak_admitted_bytes,
            self._live + self._device_high_water(),
        )
        run = _Running(s, t0, t0 + duration, name, device_bytes, degraded)
        self._running[w] = run
        self._events.push(run.end, w)

    # -- completion --------------------------------------------------------
    def _complete(self, w: int) -> None:
        run = self._running.pop(w)
        worker = self.pool.workers[w]
        if run.device_bytes and worker.has_gpu:
            worker.gpu.device_pool.release(run.device_bytes)
        self._schedule.append(
            ScheduledTask(run.sid, w, run.start, run.end, run.policy, False)
        )
        span = SimTask(
            f"s{run.sid}:{run.policy}", worker.cpu_engine,
            run.end - run.start, (), "fu",
        )
        span.start = run.start
        span.end = run.end
        self._spans.append(span)
        self._busy[w] += run.end - run.start
        if run.degraded:
            self._degraded.add(run.sid)
        self._done += 1
        parent = int(self.sf.sparent[run.sid])
        if parent >= 0:
            self._n_pending[parent] -= 1
            if self._n_pending[parent] == 0:
                # locality: the parent becomes ready on the worker that
                # finished its last child
                self._deques[w].push(float(self._rank[parent]), parent, parent)


def dynamic_schedule(
    sf: SymbolicFactor,
    policy: Policy,
    pool: WorkerPool,
    *,
    memory_budget: int | None = None,
    faults: FaultInjector | None = None,
    seed_worker: int = 0,
) -> RuntimeResult:
    """Run the dynamic event-driven runtime over ``sf``'s task DAG.

    Parameters
    ----------
    sf, policy, pool :
        Exactly the inputs of :func:`repro.parallel.list_schedule`.
    memory_budget : int, optional
        Bytes the projected update-stack plus the device high-water mark
        may not exceed; ``None`` disables admission control.
    faults : FaultInjector, optional
        Injectable GPU kernel failures / transfer stalls.
    seed_worker : int
        Worker whose deque receives the initial frontier (others steal).
    """
    return DynamicRuntime(
        sf, policy, pool,
        memory_budget=memory_budget, faults=faults, seed_worker=seed_worker,
    ).run()
