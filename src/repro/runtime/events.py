"""Event heap, virtual clock, and priority deques for the dynamic runtime.

The runtime is a discrete-event simulation: the only moments anything
can change are task completions, so the core loop is "dispatch every
idle worker, pop the earliest completion, repeat".  Two small data
structures carry it:

* :class:`EventQueue` — a heap of ``(time, seq, payload)`` events with a
  monotone virtual clock.  The sequence number makes pops deterministic
  under time ties (first-scheduled completes first), which is what makes
  whole runtime runs bit-for-bit reproducible.
* :class:`ReadyDeque` — one per worker: ready tasks ordered by priority
  (upward rank).  The owner pops its *best* task from the front; thieves
  steal *half* from the back — the classic steal-half discipline, which
  hands over the low-priority (deep-subtree) work and keeps the
  critical-path tasks local.
"""

from __future__ import annotations

import heapq
from bisect import insort
from typing import Any, Iterable

__all__ = ["Event", "EventQueue", "ReadyDeque", "VirtualClock"]


class VirtualClock:
    """Monotone simulated time; advancing backwards is a bug, not data."""

    def __init__(self, start: float = 0.0):
        self._now = float(start)

    @property
    def now(self) -> float:
        return self._now

    def advance_to(self, t: float) -> float:
        if t < self._now - 1e-15:
            raise ValueError(
                f"virtual clock cannot run backwards ({t} < {self._now})"
            )
        self._now = max(self._now, float(t))
        return self._now


class Event:
    """One scheduled occurrence; compares by (time, seq)."""

    __slots__ = ("time", "seq", "payload")

    def __init__(self, time: float, seq: int, payload: Any):
        self.time = float(time)
        self.seq = seq
        self.payload = payload

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Event(t={self.time:.6g}, seq={self.seq}, {self.payload!r})"


class EventQueue:
    """Deterministic min-heap of events driving a :class:`VirtualClock`."""

    def __init__(self):
        self.clock = VirtualClock()
        self._heap: list[Event] = []
        self._seq = 0

    def __len__(self) -> int:
        return len(self._heap)

    def push(self, time: float, payload: Any) -> Event:
        if time < self.clock.now - 1e-15:
            raise ValueError(
                f"event at t={time} is in the past (now={self.clock.now})"
            )
        ev = Event(time, self._seq, payload)
        self._seq += 1
        heapq.heappush(self._heap, ev)
        return ev

    def pop(self) -> Event:
        """Remove and return the earliest event, advancing the clock."""
        if not self._heap:
            raise IndexError("pop from an empty EventQueue")
        ev = heapq.heappop(self._heap)
        self.clock.advance_to(ev.time)
        return ev


class ReadyDeque:
    """Priority-ordered ready queue of one worker.

    Items are ``(priority, tiebreak, payload)``; higher priority sits at
    the *front*.  ``pop_front`` serves the owner, ``steal_back`` serves
    thieves.  Internally a sorted list on ``(-priority, tiebreak)`` so
    both ends are O(1) to read and inserts are O(n) — ready sets here
    are tree frontiers, tens of entries, so simplicity wins.
    """

    def __init__(self):
        self._items: list[tuple[float, int, Any]] = []

    def __len__(self) -> int:
        return len(self._items)

    def __bool__(self) -> bool:
        return bool(self._items)

    def push(self, priority: float, tiebreak: int, payload: Any) -> None:
        insort(self._items, (-float(priority), tiebreak, payload))

    def pop_front(self) -> Any:
        """Highest-priority item (owner side)."""
        return self._items.pop(0)[2]

    def peek_all(self) -> list[Any]:
        """Payloads in priority order (highest first), without removal."""
        return [it[2] for it in self._items]

    def remove(self, payload: Any) -> bool:
        """Drop the first item whose payload equals ``payload``."""
        for i, it in enumerate(self._items):
            if it[2] == payload:
                del self._items[i]
                return True
        return False

    def steal_back(self, n: int) -> list[Any]:
        """Remove up to ``n`` lowest-priority items from the back.

        Returned in priority order so the thief can re-insert cheaply.
        """
        if n <= 0 or not self._items:
            return []
        n = min(n, len(self._items))
        taken = self._items[-n:]
        del self._items[-n:]
        return [it[2] for it in taken]

    def extend(self, items: Iterable[tuple[float, int, Any]]) -> None:
        for priority, tiebreak, payload in items:
            self.push(priority, tiebreak, payload)
