"""Injectable failures for the dynamic runtime.

Two fault classes, both confined to the *simulated* GPU path (host
float64 execution is assumed reliable — exactly the asymmetry real
hybrid nodes have):

* **kernel failures** — a device factor-update attempt aborts partway
  through.  The runtime retries once on the same policy; a second
  failure degrades the task to the CPU-only ``P1`` policy, so degraded
  execution is a first-class outcome rather than an exception.
* **transfer stalls** — an H2D/D2H path hiccup that adds latency to a
  device task without failing it (PCIe contention, ECC scrub, a
  neighbour hogging the DMA engine).

Injection is deterministic: rate-driven faults draw from a per-supernode
RNG seeded by ``(seed, sid, attempt)``, so the same configuration faults
the same tasks no matter what order the runtime happens to dispatch
them in — runs stay reproducible even under work stealing.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["FaultInjector", "FaultStats"]


@dataclass
class FaultStats:
    """What the injector actually did during a run."""

    kernel_failures: int = 0
    transfer_stalls: int = 0
    stall_seconds: float = 0.0


@dataclass
class FaultInjector:
    """Deterministic fault source consulted by the runtime at dispatch.

    Parameters
    ----------
    kernel_failure_rate : float
        Per-attempt probability that a device factor-update aborts.
    transfer_stall_rate : float
        Per-task probability of a transfer stall.
    stall_seconds : float
        Added latency of one stall.
    fail_sids / stall_sids : frozenset of int
        Supernodes that *always* fail (every attempt — the task ends up
        degraded to P1) / always stall; for targeted tests.
    failure_point : float
        Fraction of the attempt's duration wasted before the failure is
        detected (the retry still pays for the aborted work).
    seed : int
        Base seed of the per-(sid, attempt) draws.
    """

    kernel_failure_rate: float = 0.0
    transfer_stall_rate: float = 0.0
    stall_seconds: float = 2e-3
    fail_sids: frozenset = frozenset()
    stall_sids: frozenset = frozenset()
    failure_point: float = 0.5
    seed: int = 0
    stats: FaultStats = field(default_factory=FaultStats)

    def __post_init__(self):
        if not 0.0 <= self.kernel_failure_rate <= 1.0:
            raise ValueError("kernel_failure_rate must be in [0, 1]")
        if not 0.0 <= self.transfer_stall_rate <= 1.0:
            raise ValueError("transfer_stall_rate must be in [0, 1]")
        if not 0.0 <= self.failure_point <= 1.0:
            raise ValueError("failure_point must be in [0, 1]")
        self.fail_sids = frozenset(self.fail_sids)
        self.stall_sids = frozenset(self.stall_sids)

    # ------------------------------------------------------------------
    def _draw(self, sid: int, attempt: int, salt: int) -> float:
        rng = np.random.default_rng((self.seed, salt, sid, attempt))
        return float(rng.random())

    def kernel_fails(self, sid: int, attempt: int) -> bool:
        """Does device attempt ``attempt`` (0-based) of ``sid`` abort?"""
        if sid in self.fail_sids:
            self.stats.kernel_failures += 1
            return True
        if self.kernel_failure_rate > 0.0 and (
            self._draw(sid, attempt, 1) < self.kernel_failure_rate
        ):
            self.stats.kernel_failures += 1
            return True
        return False

    def transfer_stall(self, sid: int) -> float:
        """Extra seconds of transfer latency for device task ``sid``."""
        stalled = sid in self.stall_sids or (
            self.transfer_stall_rate > 0.0
            and self._draw(sid, 0, 2) < self.transfer_stall_rate
        )
        if not stalled:
            return 0.0
        self.stats.transfer_stalls += 1
        self.stats.stall_seconds += self.stall_seconds
        return self.stall_seconds
