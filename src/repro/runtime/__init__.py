"""Asynchronous event-driven task runtime for the supernodal DAG.

The dynamic counterpart of :mod:`repro.parallel`'s static list
scheduler, inspired by asynchronous task-based sparse Cholesky solvers
(fan-both / StarPU-style runtimes): tasks are bound to workers at run
time, not schedule time.

* :mod:`repro.runtime.events` — event heap, virtual clock, and the
  per-worker priority deques;
* :mod:`repro.runtime.engine` — the discrete-event loop: work stealing
  (steal-half from the back, priority = upward rank), memory-aware
  admission (update-stack + device high-water vs. a byte budget), and
  dispatch-time policy selection;
* :mod:`repro.runtime.faults` — injectable GPU kernel failures and
  transfer stalls with retry-once-then-degrade-to-P1 semantics.

Use it through ``parallel_factorize(..., backend="dynamic")`` or
:class:`~repro.multifrontal.solver.SparseCholeskySolver`'s
``backend="dynamic"``; :func:`dynamic_schedule` is the timing-only
entry point (the analog of :func:`repro.parallel.list_schedule`).
"""

from repro.runtime.engine import (
    DynamicRuntime,
    RuntimeResult,
    RuntimeStats,
    dynamic_schedule,
    schedule_peak_update_bytes,
)
from repro.runtime.events import EventQueue, ReadyDeque, VirtualClock
from repro.runtime.faults import FaultInjector, FaultStats

__all__ = [
    "DynamicRuntime",
    "RuntimeResult",
    "RuntimeStats",
    "dynamic_schedule",
    "schedule_peak_update_bytes",
    "EventQueue",
    "ReadyDeque",
    "VirtualClock",
    "FaultInjector",
    "FaultStats",
]
