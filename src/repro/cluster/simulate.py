"""Distributed factorization simulation.

Builds one task graph for the whole cluster run and schedules it on the
shared discrete-event engine set:

* per supernode — an assembly task on the owner rank's CPU engine,
  followed by the owner's policy plan (the same ``Policy.plan`` used
  everywhere else, so each rank's GPU offloading behaves exactly like
  the single-node runs);
* per cross-rank tree edge — a message task on the *sender's* NIC
  engine carrying the child's update matrix (``m^2`` float64 words),
  priced as ``latency + bytes/bandwidth``; the parent's assembly
  depends on it.

Ranks follow the paper's design point of one host thread per GPU, so a
rank is one CPU engine plus at most one GPU.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.gpu.clock import EngineTimeline, TaskGraph, schedule_graph
from repro.gpu.device import SimulatedGpu
from repro.multifrontal.frontal import assembly_bytes
from repro.cluster.mapping import map_subtrees_to_ranks
from repro.cluster.topology import ClusterSpec, InterconnectParams
from repro.policies.base import Policy, PolicyP1, Worker
from repro.gpu.allocator import DeviceMemoryError
from repro.symbolic.etree import NO_PARENT
from repro.symbolic.symbolic import SymbolicFactor

__all__ = ["InterconnectParams", "ClusterSpec", "ClusterResult", "simulate_cluster"]


@dataclass
class ClusterResult:
    """Outcome of a simulated distributed factorization."""

    makespan: float
    owner: np.ndarray
    comm_bytes: float
    comm_messages: int
    comm_seconds: float
    rank_busy: list[float]

    def speedup_vs(self, serial_seconds: float) -> float:
        return serial_seconds / self.makespan if self.makespan > 0 else float("inf")

    def utilization(self) -> float:
        if self.makespan <= 0 or not self.rank_busy:
            return 0.0
        return float(np.mean(self.rank_busy) / self.makespan)


def simulate_cluster(
    sf: SymbolicFactor,
    policy: Policy,
    spec: ClusterSpec,
    *,
    owner: np.ndarray | None = None,
) -> ClusterResult:
    """Price a distributed multifrontal factorization.

    Parameters
    ----------
    sf : SymbolicFactor
        Real or synthetic (``repro.workload``) structure.
    policy : Policy
        Per-call placement policy applied inside each rank.
    spec : ClusterSpec
        Cluster shape and network.
    owner : array, optional
        Externally supplied supernode-to-rank assignment; defaults to
        :func:`map_subtrees_to_ranks`.
    """
    if owner is None:
        owner = map_subtrees_to_ranks(sf, spec.n_ranks)
    owner = np.asarray(owner, dtype=np.int64)
    if owner.shape != (sf.n_supernodes,):
        raise ValueError("owner must assign every supernode")
    if owner.size and (owner.min() < 0 or owner.max() >= spec.n_ranks):
        raise ValueError("owner contains invalid rank ids")

    # rank resources: cpu engine, optional GPU (globally unique ids), NIC
    workers: list[Worker] = []
    for r in range(spec.n_ranks):
        gpu = (
            SimulatedGpu(spec.model, gpu_id=r) if spec.gpus_per_rank else None
        )
        workers.append(Worker(cpu_engine=f"rank{r}.cpu", gpu=gpu))

    engines: dict[str, EngineTimeline] = {}
    kids = sf.schildren()
    final_task: dict[int, object] = {}
    arrival_task: dict[int, object] = {}   # message delivering s's update
    comm_bytes = 0.0
    comm_messages = 0
    comm_seconds = 0.0

    for s in sf.spost:
        s = int(s)
        r = int(owner[s])
        worker = workers[r]
        rows = sf.rows[s]
        k = sf.width(s)
        m = rows.size - k

        deps = []
        for c in kids[s]:
            deps.append(arrival_task.get(c, final_task[c]))

        g = TaskGraph()
        t_asm_secs = spec.model.host_memory_time(
            assembly_bytes(rows.size, [sf.rows[c].size - sf.width(c) for c in kids[s]])
        )
        asm = g.add(f"assemble:{s}", worker.cpu_engine, t_asm_secs, tuple(deps), "assemble")
        base = policy.resolve(m, k, worker) if hasattr(policy, "resolve") else policy
        try:
            plan = base.plan(m, k, worker, spec.model, g, deps=(asm,))
        except DeviceMemoryError:
            g = TaskGraph()
            asm = g.add(
                f"assemble:{s}", worker.cpu_engine, t_asm_secs, tuple(deps), "assemble"
            )
            plan = PolicyP1().plan(m, k, worker, spec.model, g, deps=(asm,))
        final = plan.final

        # ship the update matrix if the parent lives elsewhere
        p = int(sf.sparent[s])
        if p != NO_PARENT and owner[p] != r and m > 0:
            nbytes = float(m) * m * 8.0     # fp64 update matrix
            t_msg = spec.interconnect.time(nbytes)
            msg = g.add(
                f"send:{s}->{owner[p]}", f"rank{r}.nic", t_msg, (final,), "comm"
            )
            arrival_task[s] = msg
            comm_bytes += nbytes
            comm_messages += 1
            comm_seconds += t_msg
        schedule_graph(g, engines=engines)
        final_task[s] = final

    makespan = max((t.free_at for t in engines.values()), default=0.0)
    rank_busy = []
    for rr in range(spec.n_ranks):
        # a rank's engines: its host CPU, its NIC, and (gpu ids are the
        # rank ids by construction) its GPU queues
        busy = sum(
            t.busy
            for name, t in engines.items()
            if name.startswith(f"rank{rr}.") or name.startswith(f"gpu{rr}.")
        )
        rank_busy.append(busy)
    return ClusterResult(
        makespan=makespan,
        owner=owner,
        comm_bytes=comm_bytes,
        comm_messages=comm_messages,
        comm_seconds=comm_seconds,
        rank_busy=rank_busy,
    )
