"""Cluster extension — the paper's stated future work.

The conclusions announce: "We are currently investigating the
feasibility of using the distributed-memory parallel version of WSMP to
develop a cluster version of the solver."  This subpackage builds that
system on top of the same simulation substrate:

* **topology** (:mod:`topology`) — a :class:`ClusterSpec` of homogeneous
  ranks, each one MPI-style node: a host CPU core with (optionally) one
  GPU, matching the paper's one-thread-per-GPU design point, owning its
  own engines and allocators;
* a **subtree-to-rank mapping** (:mod:`mapping`) in the spirit of the
  classical subtree-to-subcube assignment: the supernodal tree is split
  by subtree flops so every rank owns a balanced set of subtrees, and
  the top separators run on the rank that owns the heaviest branch;
* an **interconnect model** (:mod:`interconnect`): when a child
  supernode and its parent live on different ranks, the child's update
  matrix crosses the network (latency + bytes/bandwidth, serialized on
  the sender's NIC), delivered with a send-order seq tiebreak for
  determinism;
* a **cluster event loop** (:mod:`runtime`) — the fan-both execution:
  per-node ready deques driven by one merged
  :class:`~repro.runtime.events.EventQueue`; ancestors above the
  separator layer receive asynchronous update contributions at message
  arrival.  :func:`cluster_factorize` produces factors bit-identical to
  ``backend="serial"`` at any node count;
* a **sharded serving fleet** (:mod:`fleet`) — pattern-affinity request
  routing across node-local :class:`~repro.service.SolverService`
  shards with replica failover under injected node faults;
* the legacy **pricing path** (:mod:`simulate`): one task graph for the
  whole cluster on the shared engine set — same quantities, no event
  loop, kept as an independent cross-check.

``simulate_cluster`` prices a whole factorization on a
:class:`ClusterSpec` and reports makespan, per-rank utilization, and
communication volume — the quantities a cluster-scaling study needs;
``cluster_replay``/``cluster_factorize`` run the event-driven fleet.
"""

from repro.cluster.fleet import ShardedSolverService, ShardRouter
from repro.cluster.interconnect import (
    Interconnect,
    Message,
    update_message_bytes,
)
from repro.cluster.mapping import map_subtrees_to_ranks, subtree_flops
from repro.cluster.runtime import (
    ClusterRunResult,
    ClusterRuntime,
    cluster_factorize,
    cluster_replay,
)
from repro.cluster.simulate import ClusterResult, simulate_cluster
from repro.cluster.topology import ClusterSpec, InterconnectParams

__all__ = [
    "ClusterSpec",
    "InterconnectParams",
    "ClusterResult",
    "ClusterRunResult",
    "ClusterRuntime",
    "Interconnect",
    "Message",
    "ShardRouter",
    "ShardedSolverService",
    "cluster_factorize",
    "cluster_replay",
    "simulate_cluster",
    "map_subtrees_to_ranks",
    "subtree_flops",
    "update_message_bytes",
]
