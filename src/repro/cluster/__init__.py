"""Cluster extension — the paper's stated future work.

The conclusions announce: "We are currently investigating the
feasibility of using the distributed-memory parallel version of WSMP to
develop a cluster version of the solver."  This subpackage builds that
system on top of the same simulation substrate:

* ranks — one MPI-style rank per cluster node, each a host CPU core
  with (optionally) one GPU, matching the paper's one-thread-per-GPU
  design point;
* a **subtree-to-rank mapping** (:mod:`mapping`) in the spirit of the
  classical subtree-to-subcube assignment: the supernodal tree is split
  by subtree flops so every rank owns a balanced set of subtrees, and
  the top separators run on the rank that owns the heaviest branch;
* an **interconnect model** (:mod:`simulate`): when a child supernode
  and its parent live on different ranks, the child's update matrix
  crosses the network (latency + bytes/bandwidth on the sender's NIC
  engine), serialized with every other message of that rank;
* the same per-call placement policies (P1..P4, hybrids) inside each
  rank.

``simulate_cluster`` prices a whole factorization on a
:class:`ClusterSpec` and reports makespan, per-rank utilization, and
communication volume — the quantities a cluster-scaling study needs.
"""

from repro.cluster.mapping import map_subtrees_to_ranks, subtree_flops
from repro.cluster.simulate import (
    ClusterResult,
    ClusterSpec,
    InterconnectParams,
    simulate_cluster,
)

__all__ = [
    "ClusterSpec",
    "InterconnectParams",
    "ClusterResult",
    "simulate_cluster",
    "map_subtrees_to_ranks",
    "subtree_flops",
]
