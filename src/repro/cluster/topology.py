"""Cluster topology: node shape, network parameters, per-node resources.

A fleet is ``n_ranks`` homogeneous nodes, each one host thread plus at
most one GPU (the paper's one-thread-per-GPU design point), joined by a
full-crossbar interconnect priced per message as
``latency + bytes / bandwidth`` and serialized on the sender's NIC.

:class:`ClusterSpec` is the single description every cluster entry
point takes — the pricing-only :func:`repro.cluster.simulate.simulate_cluster`,
the event-driven :class:`repro.cluster.runtime.ClusterRuntime`, and the
``backend="cluster"`` mode of
:class:`repro.multifrontal.SparseCholeskySolver`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.gpu.device import SimulatedNode
from repro.gpu.perfmodel import PerfModel, tesla_t10_model
from repro.policies.base import Worker

__all__ = ["InterconnectParams", "ClusterSpec"]


@dataclass(frozen=True)
class InterconnectParams:
    """Network model (defaults ~ DDR InfiniBand of the paper's era)."""

    latency: float = 5e-6          # per-message seconds
    bandwidth: float = 1.5e9       # bytes/s per NIC

    def time(self, nbytes: float) -> float:
        return self.latency + nbytes / self.bandwidth


@dataclass
class ClusterSpec:
    """A homogeneous cluster of ranks."""

    n_ranks: int = 2
    gpus_per_rank: int = 1         # 0 or 1 (one host thread per GPU)
    model: PerfModel = field(default_factory=tesla_t10_model)
    interconnect: InterconnectParams = field(default_factory=InterconnectParams)

    def __post_init__(self):
        if self.n_ranks < 1:
            raise ValueError("need at least one rank")
        if self.gpus_per_rank not in (0, 1):
            raise ValueError("a rank drives at most one GPU (paper design point)")

    def build_nodes(self) -> list[SimulatedNode]:
        """One :class:`SimulatedNode` per rank — each owns its own
        engines, allocators, and (by extension) virtual timeline."""
        return [
            SimulatedNode(
                model=self.model, n_cpus=1, n_gpus=self.gpus_per_rank
            )
            for _ in range(self.n_ranks)
        ]

    def node_worker(self, rank: int, node: SimulatedNode) -> Worker:
        """Rank ``rank``'s worker lane, with a fleet-namespaced engine
        name (``node{rank}.cpu``) so merged traces lane-sort node-major."""
        gpu = node.gpus[0] if node.gpus else None
        return Worker(cpu_engine=f"node{rank}.cpu", gpu=gpu)
