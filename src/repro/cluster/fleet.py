"""Sharded serving fleet: pattern-affinity routing with replica failover.

The single-node :class:`~repro.service.SolverService` becomes a fleet:
``n_nodes`` node-local shards, each with its own workers and its own
:class:`~repro.service.cache.FactorizationCache`.  Requests route by the
*pattern* component of the matrix key — every matrix with the same
sparsity structure lands on the same shard, so its symbolic/numeric
cache entries concentrate where they will be reused (cache-shard
affinity).

Routing is rendezvous (highest-random-weight) hashing over
``blake2b(pattern | node)``: deterministic, uniform, and minimally
disruptive — when a node leaves the healthy set, only the keys it owned
move, each to its next-ranked replica.  Node availability reuses
:class:`repro.runtime.faults.FaultInjector` with *node ids as sids*: a
node in ``fail_sids`` is down from the start; rate-driven faults take
nodes down deterministically per probe.  A request whose affinity
primary is unavailable fails over to the next replica and its outcome
is flagged ``degraded`` — the factor is cached on the replica shard,
never under the failed primary's key space.

Fleet-level :class:`~repro.service.metrics.ServiceMetrics` aggregate
per-node request counts and busy seconds, routing decisions, failovers,
and modeled interconnect bytes (request/response shipping priced by
:class:`~repro.cluster.topology.InterconnectParams`).

With a ``tiering`` config the fleet also shares factors across shards:
every shard's :class:`~repro.service.tiers.TieredFactorCache` chains
onto one fleet-wide *shared* object tier (an eviction on shard A can be
promoted by shard B), and on a local numeric miss the router probes
peer shards' private tiers.  A hit there is fetched over the
interconnect only when the modeled transfer is cheaper than
refactorizing locally (``interconnect.time(nbytes) <
produce_seconds``) — the same cost-model discipline the paper applies
to its P1–P4 policy selection.
"""

from __future__ import annotations

import hashlib
import threading

from repro.cluster.topology import InterconnectParams
from repro.service.keys import matrix_key
from repro.service.metrics import ServiceMetrics
from repro.service.service import SolveOutcome, SolverService
from repro.service.tiers import TierConfig

__all__ = ["ShardRouter", "ShardedSolverService"]


class ShardRouter:
    """Deterministic pattern-affinity router over a fixed fleet.

    Rendezvous hashing: each ``(key, node)`` pair gets a 64-bit score
    from BLAKE2b; a key's nodes are ranked by descending score.  The
    healthy set is the only mutable state, guarded by a small lock that
    is never held across any solve or factorization work.
    """

    def __init__(self, n_nodes: int):
        if n_nodes < 1:
            raise ValueError("need at least one node")
        self.n_nodes = n_nodes
        self._down: set[int] = set()
        self._lock = threading.Lock()

    @staticmethod
    def score(key: str, node: int) -> int:
        digest = hashlib.blake2b(
            f"{key}|node{node}".encode(), digest_size=8
        ).digest()
        return int.from_bytes(digest, "big")

    def ranking(self, key: str) -> list[int]:
        """All nodes, health-blind, by descending rendezvous score."""
        return sorted(
            range(self.n_nodes),
            key=lambda node: (-self.score(key, node), node),
        )

    def primary(self, key: str) -> int:
        """The node that owns ``key`` when the whole fleet is healthy."""
        return self.ranking(key)[0]

    def replicas(self, key: str) -> list[int]:
        """Healthy nodes in failover order for ``key``."""
        with self._lock:
            down = set(self._down)
        return [node for node in self.ranking(key) if node not in down]

    def route(self, key: str) -> int:
        """The healthy node serving ``key``; raises when none remain."""
        healthy = self.replicas(key)
        if not healthy:
            raise RuntimeError("no healthy nodes left in the fleet")
        return healthy[0]

    def mark_down(self, node: int) -> None:
        with self._lock:
            self._down.add(node)

    def mark_up(self, node: int) -> None:
        with self._lock:
            self._down.discard(node)

    def healthy_nodes(self) -> list[int]:
        with self._lock:
            down = set(self._down)
        return [node for node in range(self.n_nodes) if node not in down]


class ShardedSolverService:
    """A fleet of node-local :class:`SolverService` shards.

    Parameters
    ----------
    n_nodes : int
        Fleet size (one shard, one cache, per node).
    policy, backend, ordering, cluster :
        Forwarded to every shard (``cluster`` being the
        :class:`~repro.cluster.topology.ClusterSpec` for
        ``backend="cluster"`` shards).
    n_workers_per_node, max_cache_bytes :
        Per-shard worker threads and cache budget.
    node_faults : FaultInjector, optional
        Node availability source; node ids play the role of sids.  Each
        routing probe of a node consumes one attempt, so rate-driven
        faults are deterministic in request order.
    interconnect : InterconnectParams, optional
        Prices the request/response bytes a routed solve ships (and a
        peer-fetched factor's transfer when tiering is on).
    metrics : ServiceMetrics, optional
        Fleet-level metrics sink (per-node counters, failovers, bytes).
    tiering : TierConfig, optional
        Build every shard's cache as a :class:`~repro.service.tiers.
        TieredFactorCache` whose object tier is one *shared*
        :class:`~repro.service.tiers.StorageTier` spanning the fleet.
        ``max_cache_bytes`` is ignored in favour of
        ``tiering.ram_bytes``.
    peer_fetch : {"cost-model", "always", "off"}
        Cross-shard factor sharing on a local numeric miss (requires
        ``tiering``).  ``cost-model`` fetches a peer's factor over the
        interconnect only when the modeled transfer beats the factor's
        own (simulated) production time; ``always`` fetches
        unconditionally; ``off`` disables peer probing.
    """

    def __init__(
        self,
        n_nodes: int = 2,
        *,
        policy="P1",
        backend: str = "serial",
        ordering: str = "amd",
        n_workers_per_node: int = 1,
        max_cache_bytes: int = 64 << 20,
        node_faults=None,
        interconnect: InterconnectParams | None = None,
        metrics: ServiceMetrics | None = None,
        cluster=None,
        tiering: TierConfig | None = None,
        peer_fetch: str = "cost-model",
    ):
        if peer_fetch not in ("cost-model", "always", "off"):
            raise ValueError(
                "peer_fetch must be 'cost-model', 'always' or 'off', "
                f"got {peer_fetch!r}"
            )
        self.router = ShardRouter(n_nodes)
        self.node_faults = node_faults
        self.interconnect = (
            interconnect if interconnect is not None else InterconnectParams()
        )
        self.metrics = metrics if metrics is not None else ServiceMetrics()
        self.peer_fetch = peer_fetch
        self.shared_tier = (
            tiering.build_shared_tier() if tiering is not None else None
        )
        self.shards = [
            SolverService(
                n_workers=n_workers_per_node,
                policy=policy,
                backend=backend,
                ordering=ordering,
                max_cache_bytes=max_cache_bytes,
                cluster=cluster,
                cache=(
                    tiering.build(shared=self.shared_tier)
                    if tiering is not None
                    else None
                ),
            )
            for _ in range(n_nodes)
        ]
        self._probe_lock = threading.Lock()
        self._probes = [0] * n_nodes

    @property
    def n_nodes(self) -> int:
        return len(self.shards)

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    def primary_for(self, a) -> int:
        """The shard that owns ``a``'s pattern when fully healthy."""
        key, _ = matrix_key(a)
        return self.router.primary(key.pattern)

    def _node_available(self, node: int) -> bool:
        """Probe one node's health; each probe consumes one fault attempt
        so rate-driven injectors stay deterministic in request order."""
        if self.node_faults is None:
            return True
        with self._probe_lock:
            attempt = self._probes[node]
            self._probes[node] += 1
        return not self.node_faults.kernel_fails(node, attempt)

    # ------------------------------------------------------------------
    # client API
    # ------------------------------------------------------------------
    def solve(self, a, b, **kwargs) -> SolveOutcome:
        """Route ``A x = b`` to its affinity shard, failing over past
        unavailable nodes; a failed-over outcome is flagged degraded."""
        key, canonical = matrix_key(a)
        pattern = key.pattern
        ranking = self.router.ranking(pattern)
        primary = ranking[0]
        self.metrics.incr("requests")
        for node in ranking:
            if node not in self.router.healthy_nodes():
                continue
            if not self._node_available(node):
                self.router.mark_down(node)
                self.metrics.incr("nodes_marked_down")
                continue
            self._maybe_peer_fetch(node, a, policy=kwargs.get("policy"))
            outcome = self.shards[node].solve(a, b, **kwargs)
            if node != primary:
                outcome.degraded = True
                self.metrics.incr("failovers")
            self.metrics.incr("routed")
            self.metrics.incr(f"node{node}.requests")
            self._account_transfer(node, canonical, b, outcome)
            self._refresh_busy(node)
            return outcome
        raise RuntimeError("no healthy nodes left in the fleet")

    def _maybe_peer_fetch(self, node: int, a, *, policy=None) -> None:
        """On a local numeric miss, probe peer shards and import their
        factor when the modeled interconnect transfer beats a local
        refactorization (``peer_fetch="always"`` skips the cost test).

        Only peers' *private* tiers matter here: a factor already in
        the fleet's shared object tier is visible to ``node``'s own
        cache chain and will be promoted by its normal lookup path.
        """
        if self.peer_fetch == "off":
            return
        shard = self.shards[node]
        cache = shard.cache
        if not hasattr(cache, "peek_numeric_entry"):
            return  # plain FactorizationCache fleet: nothing to probe
        _, num_key = shard.keys_for(a, policy=policy)
        if cache.has_numeric(num_key):
            return
        for peer in self.router.healthy_nodes():
            if peer == node:
                continue
            peer_cache = self.shards[peer].cache
            peek = getattr(peer_cache, "peek_numeric_entry", None)
            if peek is None:
                continue
            entry = peek(num_key)
            if entry is None:
                continue
            fetch_seconds = self.interconnect.time(entry.nbytes)
            if (
                self.peer_fetch != "always"
                and fetch_seconds >= entry.produce_seconds
            ):
                self.metrics.incr("peer_fetch_declined")
                return
            cache.put_numeric(num_key, entry.payload, nbytes=entry.nbytes)
            self.metrics.incr("peer_fetches")
            self.metrics.incr("peer_fetch_bytes", int(entry.nbytes))
            self.metrics.incr(f"node{node}.peer_fetches")
            self.metrics.observe("peer_fetch", fetch_seconds)
            return

    def _account_transfer(self, node: int, canonical, b, outcome) -> None:
        """Modeled interconnect cost of shipping the request and reply."""
        request_bytes = (
            canonical.data.nbytes
            + canonical.indices.nbytes
            + canonical.indptr.nbytes
            + b.nbytes
        )
        reply_bytes = outcome.x.nbytes
        nbytes = int(request_bytes + reply_bytes)
        self.metrics.incr("interconnect_bytes", nbytes)
        self.metrics.incr(f"node{node}.interconnect_bytes", nbytes)
        self.metrics.observe("interconnect", self.interconnect.time(nbytes))

    def _refresh_busy(self, node: int) -> None:
        """Per-node busy seconds: total worker time across pipeline
        stages of that shard, exported as a fleet gauge."""
        busy = 0.0
        for stage in ("analyze", "factorize", "solve"):
            hist = self.shards[node].metrics.histogram(stage)
            if hist is not None:
                busy += hist.total
        self.metrics.gauge(f"node{node}_busy_seconds", busy)

    # ------------------------------------------------------------------
    # lifecycle / reporting
    # ------------------------------------------------------------------
    def shutdown(self, *, wait: bool = True) -> None:
        for shard in self.shards:
            shard.shutdown(wait=wait)

    def __enter__(self) -> "ShardedSolverService":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()

    def health(self) -> dict:
        """Cheap fleet liveness: per-shard health plus up/down rollup.

        ``status`` is ``ok`` with the whole fleet routable, ``degraded``
        with at least one node down but a healthy replica left, and
        ``down`` when no node can take traffic.  Aggregates reuse the
        per-shard :meth:`SolverService.health` gauges, so the fleet
        answer stays O(nodes) with no factorization-path locks taken.
        """
        healthy = set(self.router.healthy_nodes())
        nodes = []
        queue_depth = 0
        cache_bytes = 0
        cache_max_bytes = 0
        utilization = 0.0
        for i, shard in enumerate(self.shards):
            h = shard.health()
            h["node"] = i
            h["up"] = i in healthy and h["accepting"]
            nodes.append(h)
            if h["up"]:
                queue_depth += h["queue_depth"]
                cache_bytes += h["cache_bytes"]
                cache_max_bytes += h["cache_max_bytes"]
                utilization = max(utilization, h["cache_utilization"])
        n_up = sum(1 for h in nodes if h["up"])
        if n_up == 0:
            status = "down"
        elif n_up < len(nodes):
            status = "degraded"
        else:
            status = "ok"
        out = {
            "status": status,
            "accepting": n_up > 0,
            "nodes_up": n_up,
            "nodes_total": len(nodes),
            "queue_depth": queue_depth,
            "cache_bytes": cache_bytes,
            "cache_max_bytes": cache_max_bytes,
            "cache_utilization": utilization,
            "nodes": nodes,
        }
        if self.shared_tier is not None:
            out["shared_tier"] = self._shared_tier_info()
        return out

    def _shared_tier_info(self) -> dict:
        """Occupancy + movement counters of the fleet-wide object tier,
        mirrored into fleet gauges so they ride ``/v1/metrics``."""
        t = self.shared_tier
        info = {
            "name": t.name,
            "resident_bytes": int(t.resident_bytes),
            "capacity_bytes": int(t.spec.capacity_bytes),
            "entries": len(t),
            "read_seconds": t.read_seconds,
            "write_seconds": t.write_seconds,
            **t.stats,
        }
        for stat, value in sorted(info.items()):
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                continue
            self.metrics.gauge(f"tier.shared.{stat}", value)
        return info

    def report(self) -> dict:
        """Fleet metrics plus every shard's own report."""
        out = {
            "fleet": self.metrics.report(),
            "healthy_nodes": self.router.healthy_nodes(),
            "nodes": [shard.report() for shard in self.shards],
        }
        if self.shared_tier is not None:
            out["shared_tier"] = self._shared_tier_info()
        return out
