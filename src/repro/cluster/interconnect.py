"""Modeled interconnect: serialized sends, deterministic delivery.

Cross-node extend-add contributions travel as :class:`Message`\\ s.  A
message occupies the *sender's* NIC for ``nbytes / bandwidth`` seconds —
messages from one node serialize behind each other, exactly like the
per-engine timelines of :mod:`repro.gpu.clock` — and lands at the
receiver ``latency`` seconds after it leaves the wire.  Every message
carries a monotonically increasing ``seq`` assigned in send order, the
tiebreak that keeps delivery (and therefore the whole cluster run)
bit-for-bit deterministic under simultaneous arrivals.

:func:`update_message_bytes` prices the serialized form of a child's
update block: the dense ``m x m`` fp64 lower triangle is shipped whole
(fan-both sends the full block; the receiver consumes it in one
extend-add), plus the ``m`` global row indices that map it into the
parent front, plus a fixed header.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.topology import InterconnectParams

__all__ = ["Message", "Interconnect", "update_message_bytes"]

#: per-message envelope: sender, receiver, supernode id, sizes, crc
_HEADER_BYTES = 64


def update_message_bytes(m: int) -> int:
    """Serialized bytes of an ``m x m`` update block contribution."""
    if m <= 0:
        return 0
    return m * m * 8 + m * 8 + _HEADER_BYTES


@dataclass(frozen=True)
class Message:
    """One in-flight update contribution (all times in simulated seconds)."""

    seq: int
    src: int
    dst: int
    sid: int                 # child supernode whose update this carries
    nbytes: int
    send_start: float        # enters the sender's NIC
    send_end: float          # leaves the wire (NIC free again)
    arrival: float           # delivered at the receiver

    @property
    def wire_seconds(self) -> float:
        return self.send_end - self.send_start


class Interconnect:
    """Per-node NIC serialization plus fleet-wide byte accounting."""

    def __init__(self, n_nodes: int, params: InterconnectParams):
        if n_nodes < 1:
            raise ValueError("need at least one node")
        self.params = params
        self.n_nodes = n_nodes
        self._nic_free = [0.0] * n_nodes
        self._seq = 0
        self.messages: list[Message] = []
        self.comm_bytes = 0.0
        self.comm_seconds = 0.0

    @property
    def comm_messages(self) -> int:
        return len(self.messages)

    def nic_busy(self) -> list[float]:
        """Wire-occupancy seconds per sending node."""
        busy = [0.0] * self.n_nodes
        for msg in self.messages:
            busy[msg.src] += msg.wire_seconds
        return busy

    def send(
        self, src: int, dst: int, sid: int, nbytes: int, ready: float
    ) -> Message:
        """Enqueue ``nbytes`` from ``src`` to ``dst``, available at
        ``ready``; returns the scheduled :class:`Message`."""
        if not (0 <= src < self.n_nodes and 0 <= dst < self.n_nodes):
            raise ValueError("message endpoints outside the cluster")
        start = max(float(ready), self._nic_free[src])
        send_end = start + nbytes / self.params.bandwidth
        arrival = send_end + self.params.latency
        self._nic_free[src] = send_end
        msg = Message(self._seq, src, dst, sid, nbytes, start, send_end, arrival)
        self._seq += 1
        self.messages.append(msg)
        self.comm_bytes += nbytes
        self.comm_seconds += self.params.time(nbytes)
        return msg
