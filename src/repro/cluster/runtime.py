"""Event-driven cluster execution: fan-both over a simulated fleet.

This is the cluster-level extension of the :mod:`repro.runtime` event
engine.  Each rank is a full :class:`~repro.gpu.device.SimulatedNode`
(its own engines and allocators) running its owned subtrees in
upward-rank priority order; when a child supernode's parent lives on
another node, the child's update block crosses the
:class:`~repro.cluster.interconnect.Interconnect` asynchronously — the
sender moves on immediately (fan-both style, no global barrier) and the
parent's dependency count is satisfied at message *arrival*.  One
:class:`~repro.runtime.events.EventQueue` merges every node's timeline;
its seq tiebreak plus the interconnect's send-order seq keep the whole
fleet bit-for-bit deterministic.

Numerics are schedule-independent, exactly as for the static and
dynamic backends: :func:`cluster_factorize` runs the timing simulation
for the makespan, then computes the panels in canonical postorder via
:func:`repro.parallel.scheduler.postorder_numeric_factor` — so the
factor (and its fingerprint) is bit-identical to ``backend="serial"``
at every node count.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.cluster.interconnect import Interconnect, Message, update_message_bytes
from repro.cluster.mapping import map_subtrees_to_ranks
from repro.cluster.topology import ClusterSpec
from repro.gpu.allocator import DeviceMemoryError
from repro.gpu.clock import SimTask
from repro.gpu.device import SimulatedNode
from repro.matrices.csc import CSCMatrix
from repro.multifrontal.numeric import NumericFactor
from repro.parallel.scheduler import ScheduledTask, postorder_numeric_factor
from repro.policies.base import Policy, Worker
from repro.runtime.engine import TaskPricer
from repro.runtime.events import EventQueue, ReadyDeque
from repro.symbolic.etree import NO_PARENT
from repro.symbolic.symbolic import SymbolicFactor

__all__ = [
    "ClusterRunResult",
    "ClusterRuntime",
    "cluster_replay",
    "cluster_factorize",
    "validate_owner",
]


def validate_owner(
    sf: SymbolicFactor, spec: ClusterSpec, owner: np.ndarray | None
) -> np.ndarray:
    """Default or validate a supernode-to-node assignment."""
    if owner is None:
        owner = map_subtrees_to_ranks(sf, spec.n_ranks)
    owner = np.asarray(owner, dtype=np.int64)
    if owner.shape != (sf.n_supernodes,):
        raise ValueError("owner must assign every supernode")
    if owner.size and (owner.min() < 0 or owner.max() >= spec.n_ranks):
        raise ValueError("owner contains invalid rank ids")
    return owner


@dataclass
class ClusterRunResult:
    """Outcome of one cluster run: merged schedule, comm accounting."""

    makespan: float
    owner: np.ndarray
    schedule: list[ScheduledTask]        # .worker = owning node index
    node_busy: list[float]
    nic_busy: list[float]
    comm_bytes: float
    comm_messages: int
    comm_seconds: float
    messages: list[Message] = field(default_factory=list)
    spans: list[SimTask] = field(default_factory=list)
    nodes: list[SimulatedNode] = field(default_factory=list)
    factor: NumericFactor | None = None

    @property
    def worker_busy(self) -> list[float]:
        """Alias so cluster results satisfy the ParallelResult surface."""
        return self.node_busy

    @property
    def degraded(self) -> bool:
        """Node-level failures are handled by the fleet router
        (:mod:`repro.cluster.fleet`), not inside a single run."""
        return False

    def speedup_vs(self, serial_seconds: float) -> float:
        return serial_seconds / self.makespan if self.makespan > 0 else float("inf")

    def utilization(self) -> float:
        if not self.node_busy or self.makespan <= 0:
            return 0.0
        return float(np.mean(self.node_busy) / self.makespan)

    def cross_edges(self, sf: SymbolicFactor) -> int:
        """Tree edges whose child and parent live on different nodes."""
        return sum(
            1
            for s in range(sf.n_supernodes)
            if sf.sparent[s] != NO_PARENT
            and self.owner[sf.sparent[s]] != self.owner[s]
        )

    def metrics(self):
        """Fleet counters + spans as a
        :class:`repro.service.metrics.ServiceMetrics` (same export
        surface as the runtime and the serving layer)."""
        from repro.service.metrics import ServiceMetrics

        m = ServiceMetrics()
        for name, value in (
            ("tasks", len(self.schedule)),
            ("comm_messages", self.comm_messages),
        ):
            if value:
                m.incr(name, value)
        m.gauge("comm_bytes", float(self.comm_bytes))
        m.gauge("comm_seconds", float(self.comm_seconds))
        for r, busy in enumerate(self.node_busy):
            m.gauge(f"node{r}_busy_seconds", busy)
        for r, busy in enumerate(self.nic_busy):
            m.gauge(f"node{r}_nic_seconds", busy)
        for t in self.schedule:
            m.observe("task", t.elapsed)
        for span in self.spans:
            m.span(span.name, span.category, span.engine, span.start, span.end)
        return m

    def validate(self, sf: SymbolicFactor) -> list[str]:
        """Schedule precedence + update conservation, as for the
        dynamic runtime (see :meth:`RuntimeResult.validate`)."""
        from repro.verify.invariants import (
            check_schedule_precedence,
            check_update_conservation,
        )

        order = [t.sid for t in sorted(self.schedule, key=lambda t: t.end)]
        return (
            check_schedule_precedence(sf, self.schedule)
            + check_update_conservation(sf, order)
        )

    def chrome_trace(self) -> dict:
        """One merged Chrome trace; lanes group node-major
        (``node0.cpu``, ``node0.gpu``, ``node0.nic``, ``node1.cpu``...)."""
        from repro.gpu.trace import tasks_to_chrome_trace

        return tasks_to_chrome_trace(self.spans)


@dataclass
class _Running:
    sid: int
    start: float
    end: float
    policy: str
    device_bytes: int


class ClusterRuntime:
    """One deterministic cluster execution of ``sf``'s task DAG.

    Build it, call :meth:`run`, read the :class:`ClusterRunResult`.
    """

    def __init__(
        self,
        sf: SymbolicFactor,
        policy: Policy,
        spec: ClusterSpec,
        *,
        owner: np.ndarray | None = None,
    ):
        self.sf = sf
        self.policy = policy
        self.spec = spec
        self.owner = validate_owner(sf, spec, owner)
        self.nodes = spec.build_nodes()
        self.workers: list[Worker] = [
            spec.node_worker(r, node) for r, node in enumerate(self.nodes)
        ]
        self._kids = sf.schildren()
        has_gpu = spec.gpus_per_rank > 0
        self._pricer = TaskPricer(
            sf, policy, spec.model,
            gpu_worker=self.workers[0] if has_gpu else None,
            cpu_worker=Worker(cpu_engine="cpu0", gpu=None),
        )
        self._asm = self._pricer.assembly_times()
        self._rank = self._pricer.upward_ranks(has_gpu)

    def run(self) -> ClusterRunResult:
        sf = self.sf
        n = sf.n_supernodes
        p = self.spec.n_ranks
        self._events = EventQueue()
        self._net = Interconnect(p, self.spec.interconnect)
        self._deques = [ReadyDeque() for _ in range(p)]
        self._running: dict[int, _Running] = {}
        self._n_pending = np.array(
            [len(self._kids[s]) for s in range(n)], dtype=np.int64
        )
        self._schedule: list[ScheduledTask] = []
        self._spans: list[SimTask] = []
        self._busy = [0.0] * p
        self._done = 0

        for s in range(n):
            if self._n_pending[s] == 0:
                self._deques[int(self.owner[s])].push(float(self._rank[s]), s, s)

        while self._done < n:
            for r in range(p):
                if r not in self._running and self._deques[r]:
                    self._start(r, self._deques[r].pop_front())
            if not self._events:
                raise AssertionError("cluster gridlock: no events pending")
            ev = self._events.pop()
            kind = ev.payload[0]
            if kind == "done":
                self._complete(ev.payload[1])
            else:
                self._deliver(ev.payload[1])

        if any(len(d) for d in self._deques):
            raise AssertionError("cluster finished with tasks still queued")
        makespan = max((t.end for t in self._schedule), default=0.0)
        self._schedule.sort(key=lambda t: (t.start, t.sid))
        return ClusterRunResult(
            makespan=makespan,
            owner=self.owner,
            schedule=self._schedule,
            node_busy=self._busy,
            nic_busy=self._net.nic_busy(),
            comm_bytes=self._net.comm_bytes,
            comm_messages=self._net.comm_messages,
            comm_seconds=self._net.comm_seconds,
            messages=list(self._net.messages),
            spans=self._spans,
            nodes=self.nodes,
        )

    # -- dispatch ----------------------------------------------------------
    def _start(self, r: int, s: int) -> None:
        t0 = self._events.clock.now
        worker = self.workers[r]
        m = self.sf.update_size(s)
        k = self.sf.width(s)
        fu, name = self._pricer.fu_time(s, worker.has_gpu)
        alloc_cost = 0.0
        device_bytes = 0
        if name != "P1" and worker.has_gpu:
            demand = self._pricer.device_demand(name, m, k)
            try:
                alloc_cost = worker.gpu.device_pool.request(demand)
                device_bytes = demand
            except DeviceMemoryError:
                # front larger than the device: host path, as everywhere
                fu, name = self._pricer.p1_time(s), "P1"
        duration = float(self._asm[s]) + fu + alloc_cost
        run = _Running(s, t0, t0 + duration, name, device_bytes)
        self._running[r] = run
        self._events.push(run.end, ("done", r))

    # -- completion --------------------------------------------------------
    def _complete(self, r: int) -> None:
        run = self._running.pop(r)
        worker = self.workers[r]
        s = run.sid
        if run.device_bytes and worker.has_gpu:
            worker.gpu.device_pool.release(run.device_bytes)
        self._schedule.append(
            ScheduledTask(s, r, run.start, run.end, run.policy, False)
        )
        self._add_span(
            f"s{s}:{run.policy}", worker.cpu_engine, run.start, run.end, "fu"
        )
        if run.device_bytes:
            self._add_span(
                f"s{s}:{run.policy}", f"node{r}.gpu",
                run.start + float(self._asm[s]), run.end, "fu",
            )
        self._busy[r] += run.end - run.start
        self._done += 1

        p = int(self.sf.sparent[s])
        if p == NO_PARENT:
            return
        m = self.sf.update_size(s)
        dst = int(self.owner[p])
        if dst == r or m == 0:
            # local edge (or nothing to ship): the parent's dependency is
            # satisfied by completion itself
            self._satisfy(p)
        else:
            msg = self._net.send(
                r, dst, s, update_message_bytes(m), ready=run.end
            )
            self._events.push(msg.arrival, ("arrive", msg))
            self._add_span(
                f"send:s{s}->n{dst}", f"node{r}.nic",
                msg.send_start, msg.send_end, "comm",
            )

    def _deliver(self, msg: Message) -> None:
        self._satisfy(int(self.sf.sparent[msg.sid]))

    def _satisfy(self, parent: int) -> None:
        self._n_pending[parent] -= 1
        if self._n_pending[parent] == 0:
            self._deques[int(self.owner[parent])].push(
                float(self._rank[parent]), parent, parent
            )

    def _add_span(
        self, name: str, engine: str, start: float, end: float, category: str
    ) -> None:
        span = SimTask(name, engine, end - start, (), category)
        span.start = start
        span.end = end
        self._spans.append(span)


def cluster_replay(
    sf: SymbolicFactor,
    policy: Policy,
    spec: ClusterSpec,
    *,
    owner: np.ndarray | None = None,
) -> ClusterRunResult:
    """Timing-only cluster run (works on synthetic workloads too)."""
    return ClusterRuntime(sf, policy, spec, owner=owner).run()


def cluster_factorize(
    a: CSCMatrix,
    sf: SymbolicFactor,
    policy: Policy,
    spec: ClusterSpec,
    *,
    owner: np.ndarray | None = None,
) -> ClusterRunResult:
    """Cluster-schedule *and* numerically factor.

    Times come from the fleet event loop; panels are computed in
    canonical postorder against one representative worker of the fleet's
    node shape, so the factor is bit-identical to ``backend="serial"``
    regardless of ``spec.n_ranks``.
    """
    result = cluster_replay(sf, policy, spec, owner=owner)
    numeric_node = SimulatedNode(
        model=spec.model, n_cpus=1, n_gpus=spec.gpus_per_rank
    )
    numeric_worker = Worker(
        cpu_engine=numeric_node.cpus[0].engine,
        gpu=numeric_node.gpus[0] if numeric_node.gpus else None,
    )
    result.factor = postorder_numeric_factor(
        a, sf, policy, numeric_worker, numeric_node,
        {t.sid: t for t in result.schedule},
        makespan=result.makespan,
    )
    return result
