"""Subtree-to-rank mapping for the distributed factorization.

Classical subtree-to-subcube assignment, generalized to arbitrary rank
counts: starting from the root(s) with the full rank set, each
separator stays on the first rank of its set, and its children's
subtrees are partitioned between the two halves of the rank set by a
greedy balance on subtree flops.  Once the rank set reaches size one,
the whole remaining subtree is local — no further communication below
that point, which is what makes the multifrontal method a good
distributed algorithm (only update matrices on the subtree boundary
cross the network).
"""

from __future__ import annotations

import numpy as np

from repro.symbolic.etree import NO_PARENT
from repro.symbolic.symbolic import SymbolicFactor, factor_update_flops

__all__ = ["subtree_flops", "map_subtrees_to_ranks"]


def subtree_flops(sf: SymbolicFactor) -> np.ndarray:
    """Factor-update flops of each supernode's whole subtree."""
    n_super = sf.n_supernodes
    own = np.empty(n_super)
    for s in range(n_super):
        own[s] = sum(factor_update_flops(sf.update_size(s), sf.width(s)))
    total = own.copy()
    for s in sf.spost:                      # children precede parents
        p = sf.sparent[int(s)]
        if p != NO_PARENT:
            total[p] += total[int(s)]
    return total


def _greedy_split(items: list[int], weights: np.ndarray) -> tuple[list[int], list[int]]:
    """Partition items into two lists with balanced total weight
    (largest-first greedy)."""
    order = sorted(items, key=lambda s: -weights[s])
    a: list[int] = []
    b: list[int] = []
    wa = wb = 0.0
    for s in order:
        if wa <= wb:
            a.append(s)
            wa += weights[s]
        else:
            b.append(s)
            wb += weights[s]
    return a, b


def map_subtrees_to_ranks(sf: SymbolicFactor, n_ranks: int) -> np.ndarray:
    """Assign every supernode to a rank; returns ``owner`` (int64 array).

    Ranks are recursively halved down the tree; the separator at each
    split runs on the first rank of its set.
    """
    if n_ranks < 1:
        raise ValueError("need at least one rank")
    weights = subtree_flops(sf)
    kids = sf.schildren()
    owner = np.zeros(sf.n_supernodes, dtype=np.int64)

    def assign(nodes: list[int], ranks: range) -> None:
        """Assign the forest rooted at ``nodes`` to ``ranks``."""
        if len(ranks) == 1 or not nodes:
            for s in nodes:
                _assign_subtree(s, ranks[0])
            return
        half = len(ranks) // 2
        left_ranks = ranks[:half]
        right_ranks = ranks[half:]
        if len(nodes) == 1:
            s = nodes[0]
            # the separator itself runs on the first rank of the set;
            # its children's subtrees are split between the halves
            owner[s] = ranks[0]
            a, b = _greedy_split(kids[s], weights)
            assign(a, left_ranks)
            assign(b, right_ranks)
            return
        a, b = _greedy_split(nodes, weights)
        assign(a, left_ranks)
        assign(b, right_ranks)

    def _assign_subtree(root: int, rank: int) -> None:
        stack = [root]
        while stack:
            s = stack.pop()
            owner[s] = rank
            stack.extend(kids[s])

    roots = [s for s in range(sf.n_supernodes) if sf.sparent[s] == NO_PARENT]
    assign(roots, range(n_ranks))
    return owner
