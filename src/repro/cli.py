"""Command-line front end.

Usage (also via ``python -m repro``)::

    python -m repro spec                       # Table I hardware record
    python -m repro generate lap3d 12 12 12 --out a.mtx
    python -m repro analyze a.mtx --ordering nd
    python -m repro solve a.mtx --policy model
    python -m repro policies --m 2000 --k 800  # per-policy call costs
    python -m repro train --samples 400 --out clf.json
    python -m repro serve-bench --requests 60  # solver-service benchmark
    python -m repro runtime-bench --cpus 4     # static vs dynamic runtime
    python -m repro cluster-bench --nodes 1,2,4  # fan-both cluster scaling
    python -m repro verify --pairs default     # differential verification
    python -m repro verify --fuzz --budget-seconds 120
    python -m repro lint                       # domain static analysis
    python -m repro lint --list-rules
    python -m repro api-serve --port 8080      # HTTP front door (repro.api)
    python -m repro api-bench --clients 1000   # deterministic API load drive

Every subcommand prints plain text and returns a process exit code, so
the tool scripts cleanly.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

__all__ = ["main", "build_parser"]


def _load_matrix(path: str):
    from repro.matrices import read_matrix_market

    return read_matrix_market(path)


# ----------------------------------------------------------------------
# subcommands
# ----------------------------------------------------------------------
def cmd_spec(args) -> int:
    from repro.analysis import format_table
    from repro.gpu import TESLA_T10, XEON_5160_CORE

    print(format_table(
        ["field", "value"], TESLA_T10.table_rows(),
        title="Simulated GPU (paper Table I)",
    ))
    print(
        f"\nhost core: {XEON_5160_CORE.name}, "
        f"{XEON_5160_CORE.peak_dp_gflops:g} GF/s dp peak"
    )
    return 0


def cmd_generate(args) -> int:
    from repro.matrices import (
        elasticity_3d,
        grid_laplacian_2d,
        grid_laplacian_3d,
        random_spd,
        write_matrix_market,
    )

    dims = args.dims
    if args.kind == "lap2d":
        if len(dims) != 2:
            raise SystemExit("lap2d needs 2 dimensions")
        a = grid_laplacian_2d(*dims)
    elif args.kind == "lap3d":
        if len(dims) != 3:
            raise SystemExit("lap3d needs 3 dimensions")
        a = grid_laplacian_3d(*dims)
    elif args.kind == "elasticity":
        if len(dims) != 3:
            raise SystemExit("elasticity needs 3 dimensions")
        a = elasticity_3d(*dims)
    elif args.kind == "random":
        if len(dims) != 1:
            raise SystemExit("random needs 1 dimension (n)")
        a = random_spd(dims[0], seed=args.seed)
    else:  # pragma: no cover - argparse restricts choices
        raise SystemExit(f"unknown kind {args.kind}")
    write_matrix_market(args.out, a, symmetric=True)
    print(f"wrote {args.out}: n={a.n_rows}, nnz={a.nnz}")
    return 0


def cmd_analyze(args) -> int:
    from repro.analysis import format_table
    from repro.symbolic import symbolic_factorize

    a = _load_matrix(args.matrix)
    sf = symbolic_factorize(a, ordering=args.ordering)
    mk = sf.mk_pairs()
    rows = [
        ["n", a.n_rows],
        ["nnz(A)", a.nnz],
        ["ordering", args.ordering],
        ["nnz(L)", sf.nnz_factor],
        ["fill ratio", f"{sf.nnz_factor / max(1, a.lower_triangle().nnz):.2f}"],
        ["supernodes", sf.n_supernodes],
        ["largest front k", int(mk[:, 1].max())],
        ["largest update m", int(mk[:, 0].max())],
        ["factor flops", f"{sf.total_flops():.4g}"],
    ]
    print(format_table(["quantity", "value"], rows, title=f"analysis of {args.matrix}"))
    return 0


def cmd_profile(args) -> int:
    from repro.analysis import format_profile, profile_tree

    amalgamation = getattr(args, "amalgamation", "default")
    if args.workload:
        from repro.workload import paper_workload

        sf = paper_workload(args.matrix)
        title = f"paper-scale workload {args.matrix}"
    else:
        from repro.symbolic import amalgamation_preset, symbolic_factorize

        sf = symbolic_factorize(
            _load_matrix(args.matrix), ordering=args.ordering,
            amalgamation=amalgamation_preset(amalgamation),
        )
        title = args.matrix
    print(f"tree profile of {title}:")
    print(format_profile(profile_tree(sf, amalgamation=amalgamation)))
    return 0


def cmd_solve(args) -> int:
    from repro.multifrontal import BatchParams, SparseCholeskySolver
    from repro.symbolic import amalgamation_preset

    a = _load_matrix(args.matrix)
    batching = (
        BatchParams(front_cutoff=args.batch_cutoff)
        if args.batch_cutoff > 0 else None
    )
    solver = SparseCholeskySolver(
        a, ordering=args.ordering, policy=args.policy,
        amalgamation=amalgamation_preset(args.amalgamation),
        batching=batching,
    )
    solver.analyze().factorize()
    if args.rhs == "ones":
        b = np.ones(a.n_rows)
    else:
        b = np.loadtxt(args.rhs)
    res = solver.solve_refined(b, tol=args.tol)
    stats = solver.stats
    print(f"n={stats.n} nnz(L)={stats.nnz_factor} supernodes={stats.n_supernodes}")
    print(
        f"simulated time: {stats.simulated_seconds:.4f}s "
        f"({stats.effective_gflops:.2f} GF/s effective)"
    )
    print(f"policy usage: {stats.policy_counts}")
    print(
        f"solve: {res.iterations} refinement step(s), "
        f"final residual {res.final_residual:.3e}"
    )
    if args.out:
        np.savetxt(args.out, res.x)
        print(f"solution written to {args.out}")
    return 0 if res.converged else 2


def cmd_policies(args) -> int:
    from repro.analysis import format_table
    from repro.gpu import tesla_t10_model
    from repro.policies import estimate_policy_time, make_policy

    model = tesla_t10_model()
    rows = []
    best_name, best_t = None, float("inf")
    for name in ("P1", "P2", "P3", "P4", "P4c", "basic"):
        t = estimate_policy_time(make_policy(name), args.m, args.k, model)
        rows.append([name, t * 1e3, (args.m * args.k**2 + args.m**2 * args.k + args.k**3 / 3) / t / 1e9])
        if t < best_t and name in ("P1", "P2", "P3", "P4"):
            best_name, best_t = name, t
    print(format_table(
        ["policy", "time (ms)", "GF/s"],
        rows,
        title=f"factor-update of m={args.m}, k={args.k}",
        float_fmt="{:.3f}",
    ))
    print(f"best base policy: {best_name}")
    return 0


def cmd_train(args) -> int:
    from repro.autotune import (
        collect_timing_dataset,
        sample_mk_cloud,
        train_cost_sensitive,
    )
    from repro.gpu import tesla_t10_model

    model = tesla_t10_model()
    m, k = sample_mk_cloud(args.samples, seed=args.seed)
    ds = collect_timing_dataset(
        m, k, model, noise=args.noise, repetitions=2, seed=args.seed
    )
    clf = train_cost_sensitive(ds)
    regret = clf.expected_time(ds.m, ds.k, ds.times) / ds.oracle_time() - 1
    print(
        f"trained on {ds.n} observations; training regret vs oracle: "
        f"{100 * regret:.2f}%"
    )
    if args.out:
        clf.save(args.out)
        print(f"classifier saved to {args.out}")
    return 0


def _serve_bench_stream(n_patterns: int, n_requests: int):
    """Synthetic repeated-pattern request stream for ``serve-bench``.

    ``n_patterns`` distinct sparsity patterns cycle round-robin; each
    pattern alternates between a small set of value variants (the same
    SPD matrix scaled by a constant), so a long stream exercises all
    three cache outcomes: misses (first sighting), symbolic hits (known
    pattern, new values) and numeric hits (exact repeats).
    """
    from repro.matrices import grid_laplacian_2d
    from repro.matrices.csc import CSCMatrix

    patterns = [grid_laplacian_2d(8 + 2 * p, 9 + p) for p in range(n_patterns)]
    variants: list[dict[int, CSCMatrix]] = [{} for _ in patterns]
    stream = []
    for i in range(n_requests):
        p = i % n_patterns
        v = (i // n_patterns) % 3          # 3 value variants per pattern
        if v not in variants[p]:
            base = patterns[p]
            variants[p][v] = CSCMatrix(
                base.shape, base.indptr, base.indices,
                base.data * (1.0 + 0.5 * v), check=False,
            )
        stream.append(variants[p][v])
    return stream


def cmd_serve_bench(args) -> int:
    import time

    from repro.analysis import format_table
    from repro.service import SolverService

    if args.requests < 1 or args.patterns < 1:
        print("serve-bench: need at least one pattern and one request")
        return 2
    stream = _serve_bench_stream(args.patterns, args.requests)
    with SolverService(
        n_workers=args.workers,
        policy=args.policy,
        ordering=args.ordering,
        batch_window=args.batch_window,
        max_cache_bytes=args.cache_mb << 20,
    ) as svc:
        t0 = time.perf_counter()
        requests = [svc.submit(a, np.ones(a.n_rows)) for a in stream]
        outcomes = [r.result(timeout=300.0) for r in requests]
        wall = time.perf_counter() - t0
        if args.trace:
            svc.metrics.write_chrome_trace(args.trace)
        rep = svc.report()

    cache = rep["cache"]
    total = rep["latency"]["total"]
    tiers = {"miss": 0, "symbolic": 0, "numeric": 0, "batched": 0}
    for o in outcomes:
        tiers[o.tier] += 1
    n = len(outcomes)
    # request-level symbolic-tier hit rate: requests served without a
    # fresh symbolic analysis (cache hits + requests batched onto an
    # in-flight factor)
    sym_rate = (n - tiers["miss"]) / n if n else 0.0
    batched = sum(1 for o in outcomes if o.batch_size > 1)
    rows = [
        ["requests", n],
        ["workers", args.workers],
        ["throughput (req/s)", f"{n / wall:.1f}"],
        ["p50 latency (ms)", f"{total['p50'] * 1e3:.2f}"],
        ["p95 latency (ms)", f"{total['p95'] * 1e3:.2f}"],
        ["mean latency (ms)", f"{total['mean'] * 1e3:.2f}"],
        ["cold misses (fresh analyses)", tiers["miss"]],
        ["symbolic-tier hit rate", f"{100 * sym_rate:.1f}%"],
        ["numeric-tier reuse", tiers["numeric"] + tiers["batched"]],
        ["cache symbolic/numeric hits",
         f"{cache['symbolic_hits']}/{cache['numeric_hits']}"],
        ["numeric factorizations", rep["counters"].get("numeric_factorizations", 0)],
        ["requests in shared batches", batched],
        ["cache evictions", cache["evictions"]],
        ["cache bytes", cache["stored_bytes"]],
        ["degraded (CPU fallback)", rep["counters"].get("degraded", 0)],
        ["timeouts", rep["counters"].get("timeouts", 0)],
    ]
    print(format_table(
        ["quantity", "value"], rows,
        title=f"serve-bench: {args.patterns} patterns x {args.requests} requests",
    ))
    if args.trace:
        print(f"chrome trace written to {args.trace}")
    return 0


def _runtime_suite():
    from repro.matrices import elasticity_3d, grid_laplacian_2d, grid_laplacian_3d

    return [
        ("lap2d-32x32", grid_laplacian_2d(32, 32)),
        ("lap3d-8x8x8", grid_laplacian_3d(8, 8, 8)),
        ("elasticity-5x5x5", elasticity_3d(5, 5, 5)),
    ]


def _runtime_policy(name: str, model):
    from repro.policies import make_policy
    from repro.policies.hybrid import BaselineHybrid, IdealHybrid

    low = name.lower()
    if low == "baseline":
        return BaselineHybrid()
    if low == "ideal":
        return IdealHybrid(model)
    return make_policy("P4c" if low == "p4c" else name.upper())


def cmd_runtime_bench(args) -> int:
    from repro.analysis import format_table
    from repro.parallel import list_schedule, make_worker_pool
    from repro.runtime import (
        FaultInjector,
        dynamic_schedule,
        schedule_peak_update_bytes,
    )
    from repro.symbolic import symbolic_factorize

    rows = []
    last_dyn = None
    for name, a in _runtime_suite():
        sf = symbolic_factorize(a, ordering=args.ordering)
        pool = make_worker_pool(args.cpus, args.gpus)
        policy = _runtime_policy(args.policy, pool.node.model)
        static = list_schedule(sf, policy, pool, gang_threshold=np.inf)
        static_peak = schedule_peak_update_bytes(sf, static.schedule)
        budget = (
            int(static_peak * args.budget_frac) if args.budget_frac > 0 else None
        )
        faults = None
        if args.fail_rate > 0 or args.stall_rate > 0:
            faults = FaultInjector(
                kernel_failure_rate=args.fail_rate,
                transfer_stall_rate=args.stall_rate,
                seed=args.seed,
            )
        dyn = dynamic_schedule(
            sf, policy, make_worker_pool(args.cpus, args.gpus),
            memory_budget=budget, faults=faults,
        )
        last_dyn = dyn
        s = dyn.stats
        rows.append([
            name,
            f"{static.makespan * 1e3:.3f}",
            f"{dyn.makespan * 1e3:.3f}",
            f"{dyn.makespan / static.makespan:.3f}",
            s.steals,
            s.stolen_tasks,
            s.admission_deferrals,
            ("-" if budget is None else
             f"{s.peak_admitted_bytes}/{budget}"
             + ("!" if s.peak_admitted_bytes > budget else "")),
            s.degraded_tasks,
        ])
    print(format_table(
        ["matrix", "static ms", "dynamic ms", "dyn/static", "steals",
         "stolen", "deferrals", "peak/budget", "degraded"],
        rows,
        title=(
            f"runtime-bench: {args.cpus} CPUs, {args.gpus} GPUs, "
            f"policy {args.policy}"
        ),
    ))
    if args.trace and last_dyn is not None:
        import json

        with open(args.trace, "w") as fh:
            json.dump(last_dyn.chrome_trace(), fh)
        print(f"chrome trace of the last run written to {args.trace}")
    return 0


def cmd_cluster_bench(args) -> int:
    from repro.analysis import format_table
    from repro.cluster import ClusterSpec, InterconnectParams, cluster_replay
    from repro.gpu.perfmodel import tesla_t10_model
    from repro.workload import paper_workload

    try:
        sf = paper_workload(args.workload)
    except KeyError as exc:
        print(exc.args[0], file=sys.stderr)
        return 2
    model = tesla_t10_model()
    policy = _runtime_policy(args.policy, model)
    net = InterconnectParams(latency=args.latency, bandwidth=args.bandwidth)

    rows = []
    base = None
    last = None
    for n in args.nodes:
        spec = ClusterSpec(
            n_ranks=n, gpus_per_rank=args.gpus, model=model, interconnect=net,
        )
        res = cluster_replay(sf, policy, spec)
        last = res
        if base is None:
            base = res.makespan
        rows.append([
            n,
            f"{res.makespan:.4f}",
            f"{base / res.makespan:.2f}" if res.makespan > 0 else "-",
            f"{100 * res.utilization():.1f}%",
            res.comm_messages,
            f"{res.comm_bytes / 1e6:.1f}",
            f"{res.comm_seconds:.4f}",
        ])
    print(format_table(
        ["nodes", "makespan s", "speedup", "util", "msgs", "comm MB",
         "comm s"],
        rows,
        title=(
            f"cluster-bench: {args.workload}, policy {args.policy}, "
            f"{args.gpus} GPU/node, "
            f"{net.bandwidth / 1e9:.1f} GB/s + {net.latency * 1e6:.0f} us"
        ),
    ))
    if args.trace and last is not None:
        import json

        with open(args.trace, "w") as fh:
            json.dump(last.chrome_trace(), fh)
        print(f"chrome trace of the last run written to {args.trace}")
    return 0


def cmd_lint(args) -> int:
    """Domain-aware static analysis (see ``repro.lint``)."""
    from pathlib import Path

    from repro.lint import (
        Baseline,
        all_rules,
        discover_files,
        render,
        run_lint,
    )
    from repro.lint.cache import LintCache
    from repro.lint.runner import DEFAULT_BASELINE, filter_to_paths

    if args.list_rules:
        from repro.analysis import format_table

        rows = [
            [r.rule_id, r.name, r.severity, r.summary]
            for r in all_rules()
        ]
        print(format_table(
            ["id", "name", "severity", "summary"], rows,
            title="repro-lint rules",
        ))
        return 0

    repo_root = Path(__file__).resolve().parents[2]
    paths = [Path(p) for p in args.paths] if args.paths else [
        repo_root / "src" / "repro"
    ]
    for p in paths:
        if not p.exists():
            print(f"lint: path does not exist: {p}", file=sys.stderr)
            return 2

    baseline = None
    baseline_path = Path(args.baseline) if args.baseline else (
        repo_root / DEFAULT_BASELINE
    )
    if not args.no_baseline and not args.write_baseline:
        if baseline_path.exists():
            baseline = Baseline.load(baseline_path)

    cache = None
    if args.cache:
        cache_dir = Path(args.cache_dir) if args.cache_dir else (
            repo_root / ".lint-cache"
        )
        cache = LintCache(cache_dir)

    result = run_lint(
        paths, baseline=baseline, src_roots=[repo_root / "src"],
        cache=cache,
    )
    if cache is not None:
        cache.save()

    if args.write_baseline:
        files, _ = discover_files(paths, src_roots=[repo_root / "src"])
        by_path = {str(sf.path): sf for sf in files}
        Baseline.from_findings(result.findings, by_path).save(baseline_path)
        print(
            f"baseline with {len(result.findings)} finding(s) written "
            f"to {baseline_path}"
        )
        return 0

    if args.changed_only:
        changed = _git_changed_files(repo_root, args.changed_base)
        if changed is None:
            print(
                "lint: --changed-only needs a git checkout; "
                "reporting everything",
                file=sys.stderr,
            )
        else:
            result = filter_to_paths(result, changed)

    print(render(result, args.format, rules=all_rules()))

    if args.self_check:
        rc = 0 if result.ok else 1
        rc = max(rc, _lint_self_check(repo_root))
        return rc
    return 0 if result.ok else 1


def _git_changed_files(repo_root, base: str):
    """Changed + untracked ``.py`` paths per git, or None off-checkout."""
    import subprocess

    def _run(argv):
        return subprocess.run(
            argv, cwd=repo_root, capture_output=True, text=True,
            check=True,
        ).stdout

    try:
        diffed = _run(["git", "diff", "--name-only", base, "--"])
        untracked = _run(
            ["git", "ls-files", "--others", "--exclude-standard"]
        )
    except (OSError, subprocess.CalledProcessError):
        return None
    from pathlib import Path

    return {
        repo_root / line.strip()
        for line in (diffed + untracked).splitlines()
        if line.strip().endswith(".py")
    }


#: modules held to ``mypy --strict`` by the self-check and CI; mirrors
#: the per-module overrides in pyproject.toml
STRICT_TYPED_PATHS = (
    "src/repro/lint",
    "src/repro/api",
    "src/repro/service/tiers.py",
)


def _lint_self_check(repo_root) -> int:
    """Run the generic linters (ruff, mypy) when they are installed.

    The container image does not ship them; CI installs the ``lint``
    extra.  A missing tool is reported and skipped, never a failure —
    the domain lint above is the gate that always runs.
    """
    import shutil
    import subprocess

    rc = 0
    for name, argv in (
        ("ruff", ["ruff", "check", *STRICT_TYPED_PATHS]),
        ("mypy", ["mypy", "--strict", *STRICT_TYPED_PATHS]),
    ):
        if shutil.which(name) is None:
            print(f"self-check: {name} skipped (not installed)")
            continue
        proc = subprocess.run(argv, cwd=repo_root)
        status = "ok" if proc.returncode == 0 else f"failed ({proc.returncode})"
        print(f"self-check: {name} {status}")
        rc = max(rc, proc.returncode)
    return rc


def cmd_bench(args) -> int:
    """Deterministic benchmarks + perf-regression gate (repro.bench)."""
    from pathlib import Path

    from repro.analysis import format_table
    from repro.bench import (
        BenchDeterminismError,
        RunOptions,
        all_scenarios,
        compare_results,
        load_results_dir,
        run_scenarios,
    )

    if args.list:
        rows = [
            [s.name, ",".join(s.tags), s.description] for s in all_scenarios()
        ]
        print(format_table(
            ["scenario", "tags", "description"], rows, title="bench scenarios",
        ))
        return 0

    if args.check and not args.baseline:
        print("bench: --check requires --baseline DIR", file=sys.stderr)
        return 2
    baseline = None
    if args.baseline:
        bdir = Path(args.baseline)
        if not bdir.is_dir():
            print(f"bench: baseline dir does not exist: {bdir}", file=sys.stderr)
            return 2
        baseline = load_results_dir(bdir)
        if not baseline:
            print(f"bench: no BENCH_*.json under {bdir}", file=sys.stderr)
            return 2

    names = args.scenarios or None
    options = RunOptions(
        repeats=args.repeats, profile=args.profile, profile_top=args.profile_top
    )
    try:
        results = run_scenarios(names, options=options)
    except KeyError as exc:
        print(f"bench: {exc.args[0]}", file=sys.stderr)
        return 2
    except BenchDeterminismError as exc:
        print(f"bench: DETERMINISM FAILURE\n{exc}", file=sys.stderr)
        return 1

    rows = []
    for r in results:
        rows.append([
            r.scenario,
            r.repeats,
            f"{r.wall.median_seconds * 1e3:.1f}",
            f"{r.wall.mad_seconds * 1e3:.2f}",
            len(r.deterministic),
        ])
    print(format_table(
        ["scenario", "repeats", "wall median (ms)", "MAD (ms)", "counters"],
        rows, title="bench results",
    ))

    # write BENCH_<scenario>.json; during --check nothing is written
    # unless an out-dir is explicitly requested (the committed baselines
    # must not be clobbered by the gate that reads them)
    out_dir = args.out_dir
    if not out_dir and not args.check:
        out_dir = "."
    if out_dir:
        for r in results:
            path = r.write(out_dir)
            print(f"wrote {path}")

    if args.check:
        if names:
            # subset run: only gate what actually ran, rather than
            # flagging every un-requested baseline as GONE
            baseline = {k: v for k, v in baseline.items() if k in set(names)}
        report = compare_results(
            {r.scenario: r for r in results},
            baseline,
            check_wall=not args.skip_wall,
            check_numeric=args.check_numeric,
            mad_factor=args.mad_factor,
            rel_floor=args.rel_floor,
        )
        print(report.format())
        return 0 if report.ok else 1
    return 0


def cmd_api_serve(args) -> int:
    """Serve the repro.api front door over HTTP (stdlib server)."""
    from repro.api import ApiApp, serve_http
    from repro.cluster.fleet import ShardedSolverService
    from repro.service import SolverService

    keys: dict[str, str] = {}
    for spec in args.api_key or ["dev-key=dev"]:
        key, sep, client = spec.partition("=")
        if not sep or not key or not client:
            print(f"api-serve: bad --api-key {spec!r} (want KEY=CLIENT)",
                  file=sys.stderr)
            return 2
        keys[key] = client

    if args.nodes > 1:
        service = ShardedSolverService(
            args.nodes, n_workers_per_node=args.workers,
            policy=args.policy, ordering=args.ordering,
        )
    else:
        service = SolverService(
            n_workers=args.workers, policy=args.policy,
            ordering=args.ordering,
        )
    app = ApiApp(
        service, api_keys=keys, rate=args.rate, burst=args.burst,
        edge_capacity=args.edge_capacity,
        memory_threshold=args.memory_threshold,
    )
    server = serve_http(app, args.host, args.port)
    kind = f"{args.nodes}-node fleet" if args.nodes > 1 else "single service"
    print(
        f"repro.api: serving {kind} on http://{args.host}:{args.port} "
        f"({len(keys)} API key(s); try /v1/healthz)"
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("\napi-serve: shutting down")
    finally:
        server.shutdown()
        app.close()
        service.shutdown()
    return 0


def cmd_api_bench(args) -> int:
    """Deterministic phased load drive through the API front door."""
    import json
    import time

    from repro.analysis import format_table
    from repro.api.loadgen import run_load

    t0 = time.perf_counter()
    report = run_load(
        n_clients=args.clients,
        n_nodes=args.nodes,
        n_steady=args.steady,
        edge_capacity=args.edge_capacity,
        overload_jobs=args.overload_jobs,
        n_deadline=args.deadline,
    )
    wall = time.perf_counter() - t0
    if args.json:
        print(json.dumps(report.counters(), indent=2, sort_keys=True))
    else:
        rows = []
        for phase, outcomes in report.phases.items():
            for outcome, count in sorted(outcomes.items()):
                rows.append([phase, outcome, count])
        rows.append(["-", "requests", report.requests])
        rows.append(["-", "invalid envelopes", report.invalid_envelopes])
        rows.append(["-", "throughput (req/s)",
                     f"{report.requests / wall:.1f}"])
        print(format_table(
            ["phase", "outcome", "count"], rows,
            title=(
                f"api-bench: {args.clients} clients over "
                f"{args.nodes}-node fleet ({wall:.2f}s)"
            ),
        ))
    ok = (
        report.invalid_envelopes == 0
        and report.total("internal") == 0
        and report.phases.get("steady", {}).get("shed", 0) == 0
        and report.phases.get("overload", {}).get("shed", 0) > 0
    )
    if not ok:
        print("api-bench: FAILED an outcome invariant", file=sys.stderr)
    return 0 if ok else 1


def cmd_verify(args) -> int:
    """Differential verification: config lattice, invariants, fuzzing."""
    from repro.verify import format_suite, run_fuzz, verify_suite

    if args.fuzz:
        report = run_fuzz(
            budget_seconds=args.budget_seconds,
            seed=args.seed,
            max_cases=args.max_cases,
            witness_dir=args.witness_dir or None,
        )
        print(
            f"fuzz: {report.cases_run} case(s) in "
            f"{report.elapsed_seconds:.1f}s, {len(report.failures)} failure(s)"
        )
        for f in report.failures:
            shrunk = (
                f" (shrunk from n={f.shrunk_from} to n={f.witness.n_rows})"
                if f.shrunk_from else ""
            )
            print(f"  {f.case_label}: {f.check}{shrunk}")
            for v in f.violations[:3]:
                print(f"    {v}")
            if f.witness_path:
                print(f"    witness: {f.witness_path}")
        return 0 if report.ok else 1

    result = verify_suite(
        args.pairs,
        scale=args.scale,
        invariants=not args.no_invariants,
        corpus_dir=args.corpus or None,
    )
    print(format_suite(result))
    return 0 if result.ok else 1


# ----------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro",
        description="Hybrid CPU-GPU multifrontal Cholesky (IPDPS'11 reproduction)",
    )
    sub = p.add_subparsers(dest="command", required=True)

    sub.add_parser("spec", help="print the simulated hardware (Table I)")

    g = sub.add_parser("generate", help="generate an SPD test matrix")
    g.add_argument("kind", choices=("lap2d", "lap3d", "elasticity", "random"))
    g.add_argument("dims", type=int, nargs="+")
    g.add_argument("--out", required=True)
    g.add_argument("--seed", type=int, default=0)

    a = sub.add_parser("analyze", help="symbolic analysis of a MatrixMarket file")
    a.add_argument("matrix")
    a.add_argument("--ordering", default="nd",
                   choices=("natural", "amd", "rcm", "nd"))

    s = sub.add_parser("solve", help="factor and solve A x = b")
    s.add_argument("matrix")
    s.add_argument("--policy", default="baseline")
    s.add_argument("--ordering", default="nd",
                   choices=("natural", "amd", "rcm", "nd"))
    s.add_argument("--amalgamation", default="default",
                   choices=("default", "off", "aggressive"),
                   help="supernode amalgamation preset")
    s.add_argument("--batch-cutoff", type=int, default=0,
                   help="stack same-shape leaf fronts up to this size "
                        "into one batched call (0 disables)")
    s.add_argument("--rhs", default="ones",
                   help="'ones' or a path to a text vector")
    s.add_argument("--tol", type=float, default=1e-12)
    s.add_argument("--out", default="")

    pr = sub.add_parser("profile", help="elimination-tree profile")
    pr.add_argument("matrix",
                    help="MatrixMarket path, or a paper workload name "
                         "with --workload")
    pr.add_argument("--ordering", default="nd",
                    choices=("natural", "amd", "rcm", "nd"))
    pr.add_argument("--amalgamation", default="default",
                    choices=("default", "off", "aggressive"),
                    help="supernode amalgamation preset (file inputs only)")
    pr.add_argument("--workload", action="store_true",
                    help="treat MATRIX as a repro.workload name")

    c = sub.add_parser("policies", help="per-policy cost of one F-U call")
    c.add_argument("--m", type=int, required=True)
    c.add_argument("--k", type=int, required=True)

    t = sub.add_parser("train", help="auto-tune a policy classifier")
    t.add_argument("--samples", type=int, default=400)
    t.add_argument("--noise", type=float, default=0.05)
    t.add_argument("--seed", type=int, default=0)
    t.add_argument("--out", default="")

    sb = sub.add_parser(
        "serve-bench",
        help="replay a synthetic request stream through the solver service",
    )
    sb.add_argument("--patterns", type=int, default=3,
                    help="distinct sparsity patterns in the stream")
    sb.add_argument("--requests", type=int, default=60)
    sb.add_argument("--workers", type=int, default=2)
    sb.add_argument("--policy", default="P1")
    sb.add_argument("--ordering", default="amd",
                    choices=("natural", "amd", "rcm", "nd"))
    sb.add_argument("--batch-window", type=float, default=0.0,
                    help="seconds a worker waits for same-factor stragglers")
    sb.add_argument("--cache-mb", type=int, default=256,
                    help="factorization-cache budget in MiB")
    sb.add_argument("--trace", default="",
                    help="write per-request Chrome-trace slices to this path")

    rb = sub.add_parser(
        "runtime-bench",
        help="static list scheduler vs the dynamic event-driven runtime",
    )
    rb.add_argument("--cpus", type=int, default=4)
    rb.add_argument("--gpus", type=int, default=0)
    rb.add_argument("--policy", default="P1",
                    help="P1..P4, P4c, baseline, ideal")
    rb.add_argument("--ordering", default="nd",
                    choices=("natural", "amd", "rcm", "nd"))
    rb.add_argument("--budget-frac", type=float, default=0.0,
                    help="memory budget as a fraction of the static "
                         "schedule's peak (0 disables admission control)")
    rb.add_argument("--fail-rate", type=float, default=0.0,
                    help="injected GPU kernel failure probability")
    rb.add_argument("--stall-rate", type=float, default=0.0,
                    help="injected transfer stall probability")
    rb.add_argument("--seed", type=int, default=0)
    rb.add_argument("--trace", default="",
                    help="write the last dynamic run's Chrome trace here")

    cb = sub.add_parser(
        "cluster-bench",
        help="fan-both cluster replay scaling over a node-count sweep",
    )
    cb.add_argument("--workload", default="audikw_1",
                    help="paper workload name (see repro.workload)")
    cb.add_argument("--nodes", default=[1, 2, 4],
                    type=lambda s: [int(t) for t in s.split(",") if t],
                    help="comma-separated node counts to sweep")
    cb.add_argument("--policy", default="P4",
                    help="P1..P4, P4c, baseline, ideal")
    cb.add_argument("--gpus", type=int, default=1, choices=(0, 1),
                    help="GPUs per node (the paper's one-thread-per-GPU "
                         "design point)")
    cb.add_argument("--latency", type=float, default=5e-6,
                    help="interconnect latency in seconds")
    cb.add_argument("--bandwidth", type=float, default=1.5e9,
                    help="interconnect bandwidth in bytes/second")
    cb.add_argument("--trace", default="",
                    help="write the last run's merged Chrome trace here")

    li = sub.add_parser(
        "lint",
        help="domain-aware static analysis (lock order, determinism, "
             "allocator ownership, key purity, metric hygiene)",
    )
    li.add_argument("paths", nargs="*",
                    help="files/directories to lint (default: src/repro)")
    li.add_argument("--format", default="text",
                    choices=("text", "json", "github", "sarif"))
    li.add_argument("--baseline", default="",
                    help="baseline file (default: lint-baseline.json at "
                         "the repo root)")
    li.add_argument("--no-baseline", action="store_true",
                    help="strict mode: ignore the baseline entirely")
    li.add_argument("--write-baseline", action="store_true",
                    help="accept all current findings into the baseline")
    li.add_argument("--list-rules", action="store_true",
                    help="print the rule table and exit")
    li.add_argument("--cache", action="store_true",
                    help="reuse per-file findings for unchanged content "
                         "from .lint-cache/ (program-wide passes rerun "
                         "only when any file changed)")
    li.add_argument("--cache-dir", default="",
                    help="cache directory (default: .lint-cache at the "
                         "repo root)")
    li.add_argument("--changed-only", action="store_true",
                    help="report findings only for files git considers "
                         "changed; the analysis still sees the whole tree")
    li.add_argument("--changed-base", default="HEAD",
                    help="git ref to diff against for --changed-only "
                         "(default: HEAD)")
    li.add_argument("--self-check", action="store_true",
                    help="also run ruff and mypy --strict over the "
                         "strict-typed modules when installed")

    ap = sub.add_parser(
        "api-serve",
        help="serve the JSON front door (auth, rate limits, job queue) "
             "over HTTP",
    )
    ap.add_argument("--host", default="127.0.0.1")
    ap.add_argument("--port", type=int, default=8080)
    ap.add_argument("--nodes", type=int, default=1,
                    help="shard count; >1 serves a ShardedSolverService")
    ap.add_argument("--workers", type=int, default=2,
                    help="solver workers per node")
    ap.add_argument("--policy", default="P1")
    ap.add_argument("--ordering", default="amd",
                    choices=("natural", "amd", "rcm", "nd"))
    ap.add_argument("--api-key", action="append", default=None,
                    metavar="KEY=CLIENT",
                    help="register an API key (repeatable; default "
                         "dev-key=dev)")
    ap.add_argument("--rate", type=float, default=50.0,
                    help="per-client sustained requests/second")
    ap.add_argument("--burst", type=int, default=20,
                    help="per-client token-bucket burst")
    ap.add_argument("--edge-capacity", type=int, default=64,
                    help="bounded edge-queue capacity before shedding")
    ap.add_argument("--memory-threshold", type=float, default=0.95,
                    help="cache-pressure level that sheds new work")

    ab = sub.add_parser(
        "api-bench",
        help="deterministic phased load through the API front door "
             "(steady / overload / deadline / ratelimit)",
    )
    ab.add_argument("--clients", type=int, default=1000)
    ab.add_argument("--nodes", type=int, default=4)
    ab.add_argument("--steady", type=int, default=None,
                    help="steady-phase requests (default: one per client)")
    ab.add_argument("--edge-capacity", type=int, default=32)
    ab.add_argument("--overload-jobs", type=int, default=None,
                    help="factorize burst size (default: 2x capacity)")
    ab.add_argument("--deadline", type=int, default=8,
                    help="requests sent with an already-expired deadline")
    ab.add_argument("--json", action="store_true",
                    help="print the flat counter dict instead of a table")

    v = sub.add_parser(
        "verify",
        help="differential verification: config lattice, invariants, fuzzing",
    )
    v.add_argument("--pairs", default="default",
                   choices=("default", "all", "bitwise", "normwise"),
                   help="which configuration pairs to check")
    v.add_argument("--scale", default="small", choices=("small", "full"),
                   help="generator-suite size")
    v.add_argument("--no-invariants", action="store_true",
                   help="skip the invariant checkers (pairs only)")
    v.add_argument("--corpus", default="",
                   help="regression-corpus directory "
                        "(default: tests/corpus in the repo)")
    v.add_argument("--fuzz", action="store_true",
                   help="fuzz with adversarial generators instead of the "
                        "fixed suite")
    v.add_argument("--budget-seconds", type=float, default=60.0,
                   help="fuzzing time budget")
    v.add_argument("--max-cases", type=int, default=None,
                   help="cap on generated fuzz cases")
    v.add_argument("--seed", type=int, default=0,
                   help="first fuzz case seed")
    v.add_argument("--witness-dir", default="",
                   help="persist shrunk failure witnesses here")

    be = sub.add_parser(
        "bench",
        help="deterministic benchmarks + perf-regression gate "
             "(BENCH_<scenario>.json)",
    )
    be.add_argument("--list", action="store_true",
                    help="print the scenario registry and exit")
    be.add_argument("--scenarios", default=None,
                    type=lambda s: [t for t in s.split(",") if t],
                    help="comma-separated scenario names (default: all)")
    be.add_argument("--repeats", type=int, default=3,
                    help="timed repeats per scenario (counters must be "
                         "bit-identical across all of them)")
    be.add_argument("--profile", action="store_true",
                    help="attach cProfile and embed top hot spots per "
                         "scenario in the JSON")
    be.add_argument("--profile-top", type=int, default=15,
                    help="hot-spot rows to keep with --profile")
    be.add_argument("--out-dir", default="",
                    help="where to write BENCH_*.json (default: CWD, or "
                         "nowhere under --check)")
    be.add_argument("--check", action="store_true",
                    help="gate mode: compare against --baseline, exit 1 "
                         "on regression")
    be.add_argument("--baseline", default="",
                    help="directory holding committed BENCH_*.json")
    be.add_argument("--skip-wall", action="store_true",
                    help="gate on deterministic counters only (for "
                         "cross-machine CI)")
    be.add_argument("--check-numeric", action="store_true",
                    help="also gate the machine-local numeric section "
                         "(fingerprints, residuals)")
    be.add_argument("--mad-factor", type=float, default=5.0,
                    help="wall tolerance: this many baseline MADs")
    be.add_argument("--rel-floor", type=float, default=0.25,
                    help="wall tolerance floor as a fraction of the "
                         "baseline median")
    return p


_COMMANDS = {
    "spec": cmd_spec,
    "generate": cmd_generate,
    "analyze": cmd_analyze,
    "profile": cmd_profile,
    "solve": cmd_solve,
    "policies": cmd_policies,
    "train": cmd_train,
    "serve-bench": cmd_serve_bench,
    "runtime-bench": cmd_runtime_bench,
    "cluster-bench": cmd_cluster_bench,
    "lint": cmd_lint,
    "verify": cmd_verify,
    "bench": cmd_bench,
    "api-serve": cmd_api_serve,
    "api-bench": cmd_api_bench,
}


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
