"""The parametric best-policy classifier (paper Section VI-B).

A multinomial logistic model over the standardized feature space:

    p_theta(y = C_j | x)  =  exp(x . theta_j) / sum_l exp(x . theta_l)

Prediction never needs probabilities — since the denominator is shared
and exp is monotone, the best policy is ``argmax_j x . theta_j`` (paper
Eq. 5), a ``d x r`` matrix-vector product per call.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.autotune.features import FeatureMap, FeatureScaler
from repro.autotune.objective import softmax

__all__ = ["PolicyClassifier"]


@dataclass
class PolicyClassifier:
    """Trained policy selector.

    Attributes
    ----------
    theta : (d, r) float array
        Weights in the *standardized* feature space (bias included).
    class_names : tuple of str
        Policy names corresponding to the r columns.
    feature_map / scaler
        The (m, k) -> x pipeline the weights were trained on.
    """

    theta: np.ndarray
    class_names: tuple[str, ...]
    feature_map: FeatureMap = field(default_factory=FeatureMap)
    scaler: FeatureScaler = field(default_factory=FeatureScaler)

    def __post_init__(self):
        if self.theta.ndim != 2:
            raise ValueError("theta must be 2-D")
        if self.theta.shape[1] != len(self.class_names):
            raise ValueError("theta columns must match class names")

    # -- feature pipeline -------------------------------------------------
    def features(self, m, k) -> np.ndarray:
        return self.scaler.transform(self.feature_map(m, k))

    # -- prediction --------------------------------------------------------
    def scores(self, m, k) -> np.ndarray:
        """Linear scores x . theta (n, r) — the Eq. 5 quantity."""
        return self.features(m, k) @ self.theta

    def predict(self, m, k) -> np.ndarray:
        """Vectorized policy prediction; returns an array of names."""
        idx = np.argmax(self.scores(m, k), axis=1)
        names = np.asarray(self.class_names, dtype=object)
        return names[idx]

    def predict_one(self, m: int, k: int) -> str:
        return str(self.predict([m], [k])[0])

    def predict_proba(self, m, k) -> np.ndarray:
        return softmax(self.scores(m, k))

    # -- persistence --------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-serializable snapshot (weights, classes, feature pipeline).

        The paper's deployment story is exactly this: auto-tune once per
        CPU-GPU combination, then ship the tiny linear model (Eq. 5 is an
        O(d r) dot product at runtime).
        """
        return {
            "format": "repro.policy-classifier.v1",
            "theta": self.theta.tolist(),
            "class_names": list(self.class_names),
            "features": list(self.feature_map.names),
            "scaler_mean": None if self.scaler.mean is None else self.scaler.mean.tolist(),
            "scaler_std": None if self.scaler.std is None else self.scaler.std.tolist(),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "PolicyClassifier":
        if data.get("format") != "repro.policy-classifier.v1":
            raise ValueError(f"unsupported classifier format: {data.get('format')!r}")
        scaler = FeatureScaler(
            mean=None if data["scaler_mean"] is None else np.asarray(data["scaler_mean"]),
            std=None if data["scaler_std"] is None else np.asarray(data["scaler_std"]),
        )
        return cls(
            theta=np.asarray(data["theta"], dtype=np.float64),
            class_names=tuple(data["class_names"]),
            feature_map=FeatureMap(names=tuple(data["features"])),
            scaler=scaler,
        )

    def save(self, path) -> None:
        import json

        with open(path, "w") as fh:
            json.dump(self.to_dict(), fh, indent=1)

    @classmethod
    def load(cls, path) -> "PolicyClassifier":
        import json

        with open(path) as fh:
            return cls.from_dict(json.load(fh))

    # -- evaluation ---------------------------------------------------------
    def expected_time(self, m, k, times: np.ndarray) -> float:
        """Total time of following the classifier's hard decisions over a
        dataset with per-policy ``times`` (n, r)."""
        idx = np.argmax(self.scores(m, k), axis=1)
        return float(times[np.arange(times.shape[0]), idx].sum())

    def decision_counts(self, m, k) -> dict[str, int]:
        pred = self.predict(m, k)
        return {name: int((pred == name).sum()) for name in self.class_names}
