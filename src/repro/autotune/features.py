"""Feature representation of a factor-update call.

The paper (Section VI-B): "we consider features based on
[m, k, m/k, m^2, mk, k^2, k^3, mk^2]" — the raw dimensions, the aspect
ratio, and the terms whose combinations give the per-kernel operation
and transfer counts, so the linear decision rule can express
flop-threshold *and* shape-threshold boundaries (the learned model's
most prominent splits were m < 122, k < 19, m/k < 2.6, m/k < 11).

A bias column is appended, and features are z-score standardized (the
raw features span ~12 orders of magnitude, which would make the
optimization hopeless in float64 otherwise).  The scaler is part of the
persisted classifier so prediction remains the paper's pure linear rule
in the scaled space.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["FeatureMap", "FeatureScaler", "PAPER_FEATURES"]

PAPER_FEATURES = ("m", "k", "m/k", "m^2", "mk", "k^2", "k^3", "mk^2")


@dataclass(frozen=True)
class FeatureMap:
    """Maps (m, k) to the paper's feature vector (plus bias).

    ``names`` selects a subset — the feature-set ablation bench trains
    with ``("ops",)`` (total flops only) to show why a single-threshold
    rule underfits.
    """

    names: tuple[str, ...] = PAPER_FEATURES

    @property
    def dim(self) -> int:
        return len(self.names) + 1  # + bias

    def __call__(self, m, k) -> np.ndarray:
        """Feature matrix for arrays (or scalars) of m, k."""
        m = np.atleast_1d(np.asarray(m, dtype=np.float64))
        k = np.atleast_1d(np.asarray(k, dtype=np.float64))
        if m.shape != k.shape:
            raise ValueError("m and k must have matching shapes")
        cols = {
            "m": lambda: m,
            "k": lambda: k,
            "m/k": lambda: m / np.maximum(k, 1.0),
            "m^2": lambda: m * m,
            "mk": lambda: m * k,
            "k^2": lambda: k * k,
            "k^3": lambda: k**3,
            "mk^2": lambda: m * k * k,
            "m^2k": lambda: m * m * k,
            "ops": lambda: k**3 / 3.0 + m * k * k + m * m * k,
            "log_ops": lambda: np.log1p(k**3 / 3.0 + m * k * k + m * m * k),
        }
        feats = []
        for name in self.names:
            if name not in cols:
                raise ValueError(f"unknown feature {name!r}")
            feats.append(cols[name]())
        feats.append(np.ones_like(m))  # bias
        return np.stack(feats, axis=1)


@dataclass
class FeatureScaler:
    """Z-score standardization fitted on the training features.

    The bias column (all ones, std 0) is passed through untouched.
    """

    mean: np.ndarray | None = None
    std: np.ndarray | None = None

    def fit(self, x: np.ndarray) -> "FeatureScaler":
        self.mean = x.mean(axis=0)
        std = x.std(axis=0)
        keep = std > 0
        self.mean = np.where(keep, self.mean, 0.0)
        self.std = np.where(keep, std, 1.0)
        return self

    def transform(self, x: np.ndarray) -> np.ndarray:
        if self.mean is None or self.std is None:
            raise RuntimeError("scaler not fitted")
        return (x - self.mean) / self.std

    def fit_transform(self, x: np.ndarray) -> np.ndarray:
        return self.fit(x).transform(x)
