"""Classifier evaluation utilities: regret, confusion, cross-validation.

The paper evaluates its model hybrid by end-to-end speedup; for model
development you also want the statistical view — how far from the
oracle the selector is on held-out calls (*regret*, in seconds and
percent), which policies it confuses (and whether those confusions are
cheap, the whole point of cost-sensitive training), and how stable the
fit is across folds.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.autotune.classifier import PolicyClassifier
from repro.autotune.dataset import TimingDataset

__all__ = ["RegretReport", "evaluate", "confusion_matrix", "cross_validate"]


@dataclass(frozen=True)
class RegretReport:
    """Held-out quality of a policy selector."""

    total_seconds: float
    oracle_seconds: float
    accuracy: float              # hard top-1 agreement with the oracle
    n: int

    @property
    def regret_seconds(self) -> float:
        return self.total_seconds - self.oracle_seconds

    @property
    def regret_percent(self) -> float:
        if self.oracle_seconds <= 0:
            return 0.0
        return 100.0 * (self.total_seconds / self.oracle_seconds - 1.0)


def evaluate(clf: PolicyClassifier, ds: TimingDataset) -> RegretReport:
    """Regret of the classifier's hard decisions on a timing dataset."""
    idx = np.argmax(clf.scores(ds.m, ds.k), axis=1)
    chosen = ds.times[np.arange(ds.n), idx]
    best = ds.best_labels()
    return RegretReport(
        total_seconds=float(chosen.sum()),
        oracle_seconds=ds.oracle_time(),
        accuracy=float((idx == best).mean()),
        n=ds.n,
    )


def confusion_matrix(
    clf: PolicyClassifier, ds: TimingDataset
) -> tuple[np.ndarray, np.ndarray]:
    """(counts, cost) confusion matrices indexed [oracle, predicted].

    ``cost[i, j]`` is the total extra seconds incurred on calls whose
    oracle policy is i but were sent to j — the quantity Eq. 3 actually
    penalizes (the paper's point: not all confusions are equal).
    """
    r = len(ds.policies)
    pred = np.argmax(clf.scores(ds.m, ds.k), axis=1)
    best = ds.best_labels()
    counts = np.zeros((r, r), dtype=np.int64)
    cost = np.zeros((r, r))
    rows = np.arange(ds.n)
    extra = ds.times[rows, pred] - ds.times[rows, best]
    np.add.at(counts, (best, pred), 1)
    np.add.at(cost, (best, pred), extra)
    return counts, cost


def cross_validate(
    ds: TimingDataset,
    trainer,
    *,
    k_folds: int = 5,
    seed: int = 0,
) -> list[RegretReport]:
    """K-fold cross-validation of a trainer callable
    (``trainer(TimingDataset) -> PolicyClassifier``)."""
    if k_folds < 2:
        raise ValueError("need at least 2 folds")
    if ds.n < k_folds:
        raise ValueError("not enough samples for the requested folds")
    rng = np.random.default_rng(seed)
    order = rng.permutation(ds.n)
    folds = np.array_split(order, k_folds)
    reports = []
    for i in range(k_folds):
        test_idx = folds[i]
        train_idx = np.concatenate([folds[j] for j in range(k_folds) if j != i])
        train = TimingDataset(
            ds.m[train_idx], ds.k[train_idx], ds.times[train_idx], ds.policies
        )
        test = TimingDataset(
            ds.m[test_idx], ds.k[test_idx], ds.times[test_idx], ds.policies
        )
        clf = trainer(train)
        reports.append(evaluate(clf, test))
    return reports
