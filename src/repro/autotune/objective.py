"""Training objectives with analytic gradients.

``expected_time_loss`` is the paper's Eq. 3: the expected computation
time of a stochastic policy ``p_theta`` over the empirical timing table
``T`` (n samples x r policies, seconds).  With ``z = X @ theta`` and
``P = softmax(z)`` row-wise,

    L(theta)      = sum_i sum_j P_ij T_ij
    dL/dz_il      = P_il (T_il - sum_j P_ij T_ij)
    dL/dtheta     = X^T (P * (T - L_i[:, None]))

``cross_entropy_loss`` is the conventional cost-*insensitive* objective
(fit to the argmin labels, all errors equal) used by prior auto-tuning
work the paper contrasts against [19], [20]; the ablation bench compares
the two head-to-head.

Both accept an optional L2 ridge (excluding nothing — the feature space
is standardized, so a uniform ridge is fine) for conditioning.
"""

from __future__ import annotations

import numpy as np

__all__ = ["softmax", "expected_time_loss", "cross_entropy_loss"]


def softmax(z: np.ndarray) -> np.ndarray:
    """Row-wise softmax, numerically safe."""
    z = z - z.max(axis=1, keepdims=True)
    e = np.exp(z)
    return e / e.sum(axis=1, keepdims=True)


def expected_time_loss(
    theta: np.ndarray,
    x: np.ndarray,
    t: np.ndarray,
    *,
    ridge: float = 0.0,
) -> tuple[float, np.ndarray]:
    """Paper Eq. 3 — value and gradient of the expected computation time.

    Parameters
    ----------
    theta : (d, r) array
    x : (n, d) standardized feature matrix
    t : (n, r) per-policy times in seconds
    ridge : float
        L2 coefficient on theta.

    Returns
    -------
    (loss, grad) with ``grad.shape == theta.shape``.
    """
    z = x @ theta
    p = softmax(z)
    per_sample = (p * t).sum(axis=1)           # E[time | x_i]
    loss = float(per_sample.sum())
    gz = p * (t - per_sample[:, None])
    grad = x.T @ gz
    if ridge > 0:
        loss += 0.5 * ridge * float((theta * theta).sum())
        grad = grad + ridge * theta
    return loss, grad


def cross_entropy_loss(
    theta: np.ndarray,
    x: np.ndarray,
    labels: np.ndarray,
    *,
    ridge: float = 0.0,
) -> tuple[float, np.ndarray]:
    """Standard multinomial cross-entropy on hard best-policy labels.

    ``labels`` are integer class indices (argmin of the timing rows).
    """
    n = x.shape[0]
    z = x @ theta
    p = softmax(z)
    eps = 1e-12
    loss = -float(np.log(p[np.arange(n), labels] + eps).sum())
    y = np.zeros_like(p)
    y[np.arange(n), labels] = 1.0
    grad = x.T @ (p - y)
    if ridge > 0:
        loss += 0.5 * ridge * float((theta * theta).sum())
        grad = grad + ridge * theta
    return loss, grad
