"""Cost-sensitive auto-tuning of the policy selector (paper Section VI).

The paper models the best-policy predictor as a multinomial logistic
classifier over matrix features and — this is the novelty — estimates
its parameters by **directly minimizing the expected computation time**

    theta* = argmin_theta  sum_i sum_j  p_theta(y(x_i) = C_j | x_i) T_ij

instead of a 0/1 classification loss (Eq. 3).  Misclassification then
costs exactly what it costs in seconds: predicting P1 for a huge front
is penalized by the full slowdown, while confusing two near-tied
policies is nearly free.  Prediction reduces to ``argmax x . theta``
(Eq. 5) — O(d r) per call.

Modules: ``features`` (the paper's feature map + standardization),
``classifier`` (the parametric model), ``objective`` (expected-time and
cross-entropy losses with analytic gradients), ``optimizer`` (backtracking
gradient descent), ``dataset`` (empirical timing data collection), and
``trainer`` (the end-to-end fitting entry points).
"""

from repro.autotune.features import FeatureMap, FeatureScaler
from repro.autotune.classifier import PolicyClassifier
from repro.autotune.objective import (
    cross_entropy_loss,
    expected_time_loss,
    softmax,
)
from repro.autotune.optimizer import OptimizeResult, minimize_gd
from repro.autotune.dataset import TimingDataset, collect_timing_dataset, sample_mk_cloud
from repro.autotune.evaluation import (
    RegretReport,
    confusion_matrix,
    cross_validate,
    evaluate,
)
from repro.autotune.trainer import (
    train_cost_sensitive,
    train_cross_entropy,
    train_default_classifier,
)

__all__ = [
    "FeatureMap",
    "FeatureScaler",
    "PolicyClassifier",
    "softmax",
    "expected_time_loss",
    "cross_entropy_loss",
    "minimize_gd",
    "OptimizeResult",
    "TimingDataset",
    "collect_timing_dataset",
    "sample_mk_cloud",
    "evaluate",
    "RegretReport",
    "confusion_matrix",
    "cross_validate",
    "train_cost_sensitive",
    "train_cross_entropy",
    "train_default_classifier",
]
