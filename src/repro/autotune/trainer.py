"""End-to-end classifier training (paper Eq. 3 instantiated).

``train_cost_sensitive`` fits the expected-time objective;
``train_cross_entropy`` fits the conventional 0/1-loss comparator.  Both
share the feature pipeline and optimizer.  ``train_default_classifier``
is the convenience used by ``SparseCholeskySolver(policy="model")``: it
samples a synthetic (m, k) cloud, prices it under the node's performance
model with mild measurement noise, and trains — i.e. the full
auto-tuning loop the paper proposes for new CPU-GPU combinations,
memoized per performance model.
"""

from __future__ import annotations

import numpy as np

from repro.autotune.classifier import PolicyClassifier
from repro.autotune.dataset import TimingDataset, collect_timing_dataset, sample_mk_cloud
from repro.autotune.features import FeatureMap, FeatureScaler
from repro.autotune.objective import cross_entropy_loss, expected_time_loss
from repro.autotune.optimizer import minimize_gd
from repro.gpu.perfmodel import PerfModel

__all__ = [
    "train_cost_sensitive",
    "train_cross_entropy",
    "train_default_classifier",
]


def _fit(
    dataset: TimingDataset,
    feature_map: FeatureMap,
    loss_kind: str,
    *,
    ridge: float,
    max_iter: int,
    time_scale: bool,
    theta0: np.ndarray | None = None,
    scaler: FeatureScaler | None = None,
) -> PolicyClassifier:
    x_raw = feature_map(dataset.m, dataset.k)
    if scaler is None:
        scaler = FeatureScaler().fit(x_raw)
    x = scaler.transform(x_raw)
    r = len(dataset.policies)
    if theta0 is None:
        theta0 = np.zeros((x.shape[1], r))

    if loss_kind == "expected_time":
        t = dataset.times
        # scale to O(1) so the line search starts at a sane step; the
        # argmin structure (and hence the trained decision rule) is
        # invariant to a positive rescaling
        scale = t.sum() if time_scale else 1.0
        tt = t / scale

        def fun(theta):
            return expected_time_loss(theta, x, tt, ridge=ridge)

    elif loss_kind == "cross_entropy":
        labels = dataset.best_labels()
        n = max(1, dataset.n)

        def fun(theta):
            loss, grad = cross_entropy_loss(theta, x, labels, ridge=ridge)
            return loss / n, grad / n

    else:  # pragma: no cover - guarded by callers
        raise ValueError(f"unknown loss {loss_kind!r}")

    res = minimize_gd(fun, theta0, max_iter=max_iter)
    return PolicyClassifier(
        theta=res.theta,
        class_names=dataset.policies,
        feature_map=feature_map,
        scaler=scaler,
    )


def train_cost_sensitive(
    dataset: TimingDataset,
    *,
    feature_map: FeatureMap | None = None,
    ridge: float = 1e-6,
    max_iter: int = 800,
    warm_start: bool = True,
) -> PolicyClassifier:
    """Fit the paper's expected-computation-time objective (Eq. 3).

    The expected-time surface is non-convex in theta; by default we
    warm-start from the cross-entropy solution (a convex fit to the hard
    argmin labels) and then descend the expected-time objective, which
    keeps every 0/1-correct decision that matters and re-weights the
    boundary cases by their actual cost in seconds.
    """
    fm = feature_map or FeatureMap()
    theta0 = None
    scaler = None
    if warm_start:
        ce = _fit(
            dataset, fm, "cross_entropy",
            ridge=ridge, max_iter=max_iter, time_scale=False,
        )
        theta0, scaler = ce.theta, ce.scaler
    return _fit(
        dataset,
        fm,
        "expected_time",
        ridge=ridge,
        max_iter=max_iter,
        time_scale=True,
        theta0=theta0,
        scaler=scaler,
    )


def train_cross_entropy(
    dataset: TimingDataset,
    *,
    feature_map: FeatureMap | None = None,
    ridge: float = 1e-6,
    max_iter: int = 800,
) -> PolicyClassifier:
    """Fit the conventional cost-insensitive 0/1-loss classifier (the
    approach of [19]/[20] the paper improves upon)."""
    return _fit(
        dataset,
        feature_map or FeatureMap(),
        "cross_entropy",
        ridge=ridge,
        max_iter=max_iter,
        time_scale=False,
    )


_DEFAULT_CACHE: dict[tuple, PolicyClassifier] = {}


def train_default_classifier(
    model: PerfModel,
    *,
    n_samples: int = 500,
    noise: float = 0.05,
    repetitions: int = 2,
    seed: int = 0,
) -> PolicyClassifier:
    """The turnkey auto-tuning loop: sample (m, k), measure under the
    given performance model (with noise), train cost-sensitively.

    Memoized on the model's calibration + sampling configuration, since
    pricing ~500 calls x 4 policies is the dominant cost.
    """
    key = (
        model.precision,
        tuple(sorted((k, p.launch_latency, p.peak) for k, p in model.cpu.items())),
        tuple(sorted((k, p.launch_latency, p.peak) for k, p in model.gpu.items())),
        n_samples,
        noise,
        repetitions,
        seed,
    )
    hit = _DEFAULT_CACHE.get(key)
    if hit is not None:
        return hit
    m, k = sample_mk_cloud(n_samples, seed=seed)
    ds = collect_timing_dataset(
        m, k, model, noise=noise, repetitions=repetitions, seed=seed
    )
    clf = train_cost_sensitive(ds)
    _DEFAULT_CACHE[key] = clf
    return clf
