"""Unconstrained first-order optimization for the classifier fits.

The problems here are tiny (theta is ~9 features x 4 policies), so a
robust gradient descent with Armijo backtracking and a light momentum
term converges in a few hundred cheap iterations; the paper mentions
Newton-Raphson, which works equally well at this size but needs the
(dr x dr) Hessian of the expected-time objective — not worth the code
for a 36-parameter problem.  The interface takes any ``f(theta) ->
(loss, grad)`` pair, so both objectives (and ablation variants) share
it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

__all__ = ["OptimizeResult", "minimize_gd"]


@dataclass
class OptimizeResult:
    """Optimization outcome and trace."""

    theta: np.ndarray
    loss: float
    n_iter: int
    converged: bool
    history: list[float]


def minimize_gd(
    fun: Callable[[np.ndarray], tuple[float, np.ndarray]],
    theta0: np.ndarray,
    *,
    max_iter: int = 500,
    tol: float = 1e-9,
    lr0: float = 1.0,
    momentum: float = 0.5,
    armijo: float = 1e-4,
) -> OptimizeResult:
    """Gradient descent with backtracking line search and momentum.

    Stops when the relative loss improvement over an iteration falls
    below ``tol`` or the step size collapses.
    """
    theta = theta0.astype(np.float64, copy=True)
    loss, grad = fun(theta)
    history = [loss]
    velocity = np.zeros_like(theta)
    lr = lr0
    converged = False
    it = 0
    for it in range(1, max_iter + 1):
        direction = -(grad + momentum * velocity)
        # backtracking: shrink until Armijo sufficient decrease holds
        step = lr
        gnorm2 = float((grad * direction).sum())
        accepted = False
        for _ in range(40):
            cand = theta + step * direction
            closs, cgrad = fun(cand)
            if closs <= loss + armijo * step * gnorm2:
                accepted = True
                break
            step *= 0.5
        if not accepted:
            converged = True
            break
        velocity = -direction  # store the (negated) last direction
        rel_impr = (loss - closs) / (abs(loss) + 1e-300)
        theta, loss, grad = cand, closs, cgrad
        history.append(loss)
        lr = min(lr0, step * 2.0)  # adaptive warm restart of the step
        if rel_impr < tol:
            converged = True
            break
    return OptimizeResult(theta=theta, loss=loss, n_iter=it,
                          converged=converged, history=history)
