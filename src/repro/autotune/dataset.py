"""Empirical timing data for auto-tuner training.

The paper trains on the observed per-call timings of real
factorizations ("we estimate the classifier parameters from the
available empirical computation time data").  We support both sources:

* :func:`collect_timing_dataset` — price every (m, k) in a list (e.g.
  the F-U calls of the test-suite matrices, via
  ``SymbolicFactor.mk_pairs``) under all four policies, optionally with
  several noisy repetitions (jittered performance-model replicas stand
  in for run-to-run measurement variance);
* :func:`sample_mk_cloud` — a log-uniform synthetic cloud over the
  (m, k) ranges the paper plots (0..10000), used by the default
  classifier when no matrix-specific data is supplied.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.gpu.perfmodel import PerfModel
from repro.policies.base import Policy, estimate_policy_time, make_policy

__all__ = ["TimingDataset", "collect_timing_dataset", "sample_mk_cloud"]


@dataclass
class TimingDataset:
    """Rows of (m, k) with per-policy observed times.

    ``times[i, j]`` is the observed seconds of policy ``policies[j]`` on
    call i.  ``m``/``k`` may repeat when multiple noisy observations of
    the same call are included.
    """

    m: np.ndarray
    k: np.ndarray
    times: np.ndarray
    policies: tuple[str, ...]

    def __post_init__(self):
        if not (self.m.shape == self.k.shape == (self.times.shape[0],)):
            raise ValueError("inconsistent dataset shapes")
        if self.times.shape[1] != len(self.policies):
            raise ValueError("times columns must match policy names")

    @property
    def n(self) -> int:
        return int(self.m.size)

    def best_labels(self) -> np.ndarray:
        """Hard argmin labels (what a cost-insensitive trainer fits)."""
        return np.argmin(self.times, axis=1)

    def oracle_time(self) -> float:
        """Total time of the per-row optimal choices (the P_IH bound)."""
        return float(self.times.min(axis=1).sum())

    def policy_time(self, name: str) -> float:
        """Total time of always using one policy."""
        j = self.policies.index(name)
        return float(self.times[:, j].sum())

    def subsample(self, n: int, *, seed: int = 0) -> "TimingDataset":
        rng = np.random.default_rng(seed)
        idx = rng.choice(self.n, size=min(n, self.n), replace=False)
        return TimingDataset(
            self.m[idx], self.k[idx], self.times[idx], self.policies
        )


def sample_mk_cloud(
    n: int = 600,
    *,
    m_range: tuple[int, int] = (0, 10000),
    k_range: tuple[int, int] = (1, 10000),
    seed: int = 0,
) -> tuple[np.ndarray, np.ndarray]:
    """Log-uniform (m, k) samples, biased like real elimination trees:
    mostly small calls with a heavy tail, plus the m = 0 root line."""
    rng = np.random.default_rng(seed)
    lo_k = max(1, k_range[0])
    k = np.exp(rng.uniform(np.log(lo_k), np.log(k_range[1]), size=n)).astype(np.int64)
    m = np.exp(rng.uniform(0.0, np.log(max(2, m_range[1])), size=n)).astype(np.int64)
    # ~5% of calls at the root special case m = 0 (Section IV-D)
    root = rng.random(n) < 0.05
    m[root] = 0
    m = np.clip(m, m_range[0], m_range[1])
    k = np.clip(k, max(1, k_range[0]), k_range[1])
    return m, k


def collect_timing_dataset(
    m: np.ndarray,
    k: np.ndarray,
    model: PerfModel,
    *,
    policies: tuple[str, ...] = ("P1", "P2", "P3", "P4"),
    noise: float = 0.0,
    repetitions: int = 1,
    seed: int = 0,
) -> TimingDataset:
    """Price each (m, k) under every policy.

    With ``noise > 0`` each repetition uses a jittered replica of the
    performance model (different jitter salt), emulating the paper's
    noisy empirical measurements; the classifier must then generalize
    rather than memorize.
    """
    m = np.asarray(m, dtype=np.int64)
    k = np.asarray(k, dtype=np.int64)
    pols: list[Policy] = [make_policy(p) for p in policies]
    rows_m, rows_k, rows_t = [], [], []
    for rep in range(max(1, repetitions)):
        rep_model = (
            model
            if noise <= 0
            else replace(model, jitter=noise, _jitter_salt=seed * 7919 + rep)
        )
        t = np.empty((m.size, len(pols)))
        for j, pol in enumerate(pols):
            for i in range(m.size):
                t[i, j] = estimate_policy_time(pol, int(m[i]), int(k[i]), rep_model)
        rows_m.append(m)
        rows_k.append(k)
        rows_t.append(t)
    return TimingDataset(
        np.concatenate(rows_m),
        np.concatenate(rows_k),
        np.vstack(rows_t),
        tuple(policies),
    )
