"""repro — hybrid CPU-GPU multifrontal sparse Cholesky with auto-tuned
policy scheduling.

A from-scratch Python reproduction of *"Multifrontal Factorization of
Sparse SPD Matrices on GPUs"* (George, Saxena, Gupta, Singh, Choudhury —
IEEE IPDPS 2011).  The GPU is a calibrated discrete-event simulation
(this environment has none); the numerics are real — float64 on the
host, float32 on the "device" — so the accuracy/iterative-refinement
story is faithfully reproduced alongside the scheduling one.

Quick start::

    import numpy as np
    from repro import SparseCholeskySolver, grid_laplacian_3d

    a = grid_laplacian_3d(12, 12, 12)
    solver = SparseCholeskySolver(a, ordering="nd", policy="baseline")
    solver.analyze().factorize()
    x = solver.solve(np.ones(a.n_rows))
    print(solver.stats.simulated_seconds, solver.stats.effective_gflops)

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every table and figure.
"""

from repro.matrices import (
    CSCMatrix,
    COOMatrix,
    elasticity_3d,
    grid_laplacian_2d,
    grid_laplacian_3d,
    load_test_matrix,
    random_spd,
    TEST_MATRICES,
)
from repro.multifrontal import (
    NumericFactor,
    SparseCholeskySolver,
    factorize_numeric,
    iterative_refinement,
    solve_factored,
)
from repro.policies import (
    BaselineHybrid,
    IdealHybrid,
    ModelHybrid,
    Worker,
    make_policy,
)
from repro.multifrontal.batched import BatchParams
from repro.symbolic import AmalgamationParams, SymbolicFactor, symbolic_factorize
from repro.gpu import SimulatedNode, tesla_t10_model

__version__ = "1.0.0"

__all__ = [
    "CSCMatrix",
    "COOMatrix",
    "grid_laplacian_2d",
    "grid_laplacian_3d",
    "elasticity_3d",
    "random_spd",
    "load_test_matrix",
    "TEST_MATRICES",
    "SparseCholeskySolver",
    "NumericFactor",
    "factorize_numeric",
    "solve_factored",
    "iterative_refinement",
    "make_policy",
    "BaselineHybrid",
    "IdealHybrid",
    "ModelHybrid",
    "Worker",
    "SymbolicFactor",
    "symbolic_factorize",
    "AmalgamationParams",
    "BatchParams",
    "SimulatedNode",
    "tesla_t10_model",
    "__version__",
]
