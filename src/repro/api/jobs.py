"""Async job store: submit -> poll lifecycle for large factorizations.

``POST /v1/factorize`` answers ``202`` with a job id instead of holding
the connection open across a factorization.  Jobs move through a small
explicit state machine::

    queued ----> running ----> done
       |            |            (terminal, with a result document)
       |            +----------> failed / deadline_exceeded
       +---------> cancelled     (DELETE while still queued)
       +---------> deadline_exceeded  (expired before dispatch)

Transitions are validated — a job can neither complete twice nor revive
from a terminal state — and terminal jobs are retained (bounded, oldest
evicted first) so clients can poll results after completion.  Job ids
are sequential (``job-NNNNNNNN``): like request ids they feed the
deterministic benchmark, so a replayed request stream must mint the
same ids.
"""

from __future__ import annotations

import threading
from collections import OrderedDict

__all__ = ["Job", "JobState", "JobStore"]


class JobState:
    """String states of the job lifecycle (wire values, part of the API)."""

    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"
    DEADLINE_EXCEEDED = "deadline_exceeded"

    TERMINAL = frozenset({DONE, FAILED, CANCELLED, DEADLINE_EXCEEDED})
    _VALID = {
        QUEUED: frozenset({RUNNING, CANCELLED, DEADLINE_EXCEEDED}),
        RUNNING: frozenset({DONE, FAILED, DEADLINE_EXCEEDED}),
    }


class Job:
    """One asynchronous factorization; mutated only through the store."""

    __slots__ = (
        "job_id", "client", "request_id", "state", "result", "error",
        "created", "finished",
    )

    def __init__(self, job_id: str, client: str, request_id: str,
                 created: float) -> None:
        self.job_id = job_id
        self.client = client
        self.request_id = request_id
        self.state = JobState.QUEUED
        self.result: dict | None = None
        self.error: tuple[str, str] | None = None   # (code, message)
        self.created = created
        self.finished: float | None = None

    def describe(self) -> dict:
        """The ``GET /v1/jobs/{id}`` document."""
        doc: dict[str, object] = {
            "job_id": self.job_id,
            "state": self.state,
            "request_id": self.request_id,
        }
        if self.result is not None:
            doc["result"] = self.result
        if self.error is not None:
            code, message = self.error
            doc["error"] = {"code": code, "message": message}
        return doc


class JobStore:
    """Thread-safe id -> :class:`Job` map with bounded terminal retention."""

    def __init__(self, *, max_finished: int = 4096) -> None:
        if max_finished < 1:
            raise ValueError("max_finished must be at least 1")
        self.max_finished = int(max_finished)
        self._lock = threading.Lock()
        self._jobs: dict[str, Job] = {}
        self._finished: OrderedDict[str, None] = OrderedDict()
        self._next = 0

    # ------------------------------------------------------------------
    def create(self, client: str, request_id: str, *, now: float) -> Job:
        with self._lock:
            self._next += 1
            job = Job(f"job-{self._next:08d}", client, request_id, now)
            self._jobs[job.job_id] = job
        return job

    def drop(self, job: Job) -> None:
        """Forget a job whose edge admission was shed (it never ran)."""
        with self._lock:
            self._jobs.pop(job.job_id, None)
            self._finished.pop(job.job_id, None)

    def get(self, job_id: str) -> Job | None:
        with self._lock:
            return self._jobs.get(job_id)

    # ------------------------------------------------------------------
    # transitions
    # ------------------------------------------------------------------
    def transition(self, job: Job, state: str, *, now: float,
                   result: dict | None = None,
                   error: tuple[str, str] | None = None) -> bool:
        """Move ``job`` to ``state``; False when the move is not legal
        from its current state (e.g. completing a cancelled job)."""
        with self._lock:
            allowed = JobState._VALID.get(job.state, frozenset())
            if state not in allowed:
                return False
            job.state = state
            if result is not None:
                job.result = result
            if error is not None:
                job.error = error
            if state in JobState.TERMINAL:
                job.finished = now
                self._finished[job.job_id] = None
                while len(self._finished) > self.max_finished:
                    old_id, _ = self._finished.popitem(last=False)
                    self._jobs.pop(old_id, None)
            return True

    # ------------------------------------------------------------------
    def counts(self) -> dict[str, int]:
        """Jobs per state (for health/metrics surfaces)."""
        with self._lock:
            out: dict[str, int] = {}
            for job in self._jobs.values():
                out[job.state] = out.get(job.state, 0) + 1
        return dict(sorted(out.items()))

    def __len__(self) -> int:
        with self._lock:
            return len(self._jobs)
