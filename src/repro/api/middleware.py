"""Edge middleware: API-key auth, per-client token buckets, request IDs.

Three small, independently testable pieces the app core composes in
front of every authenticated endpoint:

* :class:`ApiKeyAuth` — maps the ``x-api-key`` header to a per-client
  identity.  Identity, not just admission: the rate limiter, the edge
  queue's fairness lanes and the job store all key on the client name
  it returns.
* :class:`RateLimiter` — one :class:`TokenBucket` per client (created
  on first sight, with optional per-client overrides), refilled from an
  injectable clock.  The clock is the only source of time, so tests and
  the deterministic benchmark drive it manually
  (:class:`ManualClock`) and the admitted-count bound
  ``admitted(t0, t1) <= burst + rate * (t1 - t0)`` is exact.
* :class:`RequestIds` — accepts a client-supplied ``x-request-id`` or
  mints a sequential ``rid-NNNNNNNN``.  Sequential (not random) on
  purpose: ids thread into :class:`~repro.service.metrics.ServiceMetrics`
  spans and the deterministic benchmark counters, so they must be
  reproducible for a replayed request stream.
"""

from __future__ import annotations

import threading
import time
from typing import Callable

__all__ = [
    "ApiKeyAuth",
    "ManualClock",
    "RateLimiter",
    "RequestIds",
    "TokenBucket",
]


class ManualClock:
    """A clock that only moves when told to — determinism for tests/bench."""

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)
        self._lock = threading.Lock()

    def __call__(self) -> float:
        with self._lock:
            return self._now

    def advance(self, seconds: float) -> float:
        if seconds < 0:
            raise ValueError("clocks do not run backwards")
        with self._lock:
            self._now += float(seconds)
            return self._now


class ApiKeyAuth:
    """``x-api-key`` header -> client identity.

    ``keys`` maps opaque key strings to client names.  Several keys may
    share one client (key rotation); an unknown or missing key yields
    ``None`` and the caller answers with the ``unauthorized`` envelope.
    """

    HEADER = "x-api-key"

    def __init__(self, keys: dict[str, str]) -> None:
        if not keys:
            raise ValueError("need at least one API key")
        for key, client in keys.items():
            if not key or not client:
                raise ValueError("API keys and client names must be non-empty")
        self._keys = dict(keys)

    def client_for(self, headers: dict[str, str]) -> str | None:
        return self._keys.get(headers.get(self.HEADER, ""))

    @property
    def clients(self) -> list[str]:
        return sorted(set(self._keys.values()))


class TokenBucket:
    """Classic token bucket: ``burst`` capacity refilled at ``rate``/s.

    Over any interval the bucket admits at most
    ``burst + rate * elapsed`` requests — the property the edge's
    hypothesis test pins.  Thread-safe; one instance per client.
    """

    def __init__(
        self, rate: float, burst: int, *,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if rate < 0:
            raise ValueError("rate must be non-negative")
        if burst < 1:
            raise ValueError("burst must be at least 1")
        self.rate = float(rate)
        self.burst = int(burst)
        self._clock = clock
        self._tokens = float(burst)
        self._last = clock()
        self._lock = threading.Lock()

    def allow(self, cost: float = 1.0) -> bool:
        """Take ``cost`` tokens if available; never blocks."""
        now = self._clock()
        with self._lock:
            elapsed = max(0.0, now - self._last)
            self._last = now
            self._tokens = min(self.burst, self._tokens + elapsed * self.rate)
            if self._tokens >= cost:
                self._tokens -= cost
                return True
            return False

    @property
    def tokens(self) -> float:
        with self._lock:
            return self._tokens


class RateLimiter:
    """Per-client token buckets with lazily created default buckets."""

    def __init__(self, rate: float = 50.0, burst: int = 20, *,
                 clock: Callable[[], float] = time.monotonic,
                 overrides: dict[str, tuple[float, int]] | None = None) -> None:
        self.rate = float(rate)
        self.burst = int(burst)
        self._clock = clock
        self._overrides = dict(overrides or {})
        self._buckets: dict[str, TokenBucket] = {}
        self._lock = threading.Lock()

    def bucket(self, client: str) -> TokenBucket:
        with self._lock:
            bucket = self._buckets.get(client)
        if bucket is None:
            # build outside the lock (the constructor reads the clock, a
            # caller-supplied callable); first publisher wins the race
            rate, burst = self._overrides.get(client, (self.rate, self.burst))
            fresh = TokenBucket(rate, burst, clock=self._clock)
            with self._lock:
                bucket = self._buckets.setdefault(client, fresh)
        return bucket

    def allow(self, client: str) -> bool:
        return self.bucket(client).allow()


class RequestIds:
    """Request-id source: propagate the caller's or mint a sequential one."""

    HEADER = "x-request-id"
    _MAX_LEN = 128

    def __init__(self) -> None:
        self._next = 0
        self._lock = threading.Lock()

    def assign(self, headers: dict[str, str]) -> str:
        supplied = headers.get(self.HEADER, "")
        if supplied and len(supplied) <= self._MAX_LEN and supplied.isprintable():
            return supplied
        with self._lock:
            self._next += 1
            return f"rid-{self._next:08d}"
