"""Deterministic phased load generation for the API front door.

One driver, three consumers: the ``api-throughput`` benchmark scenario,
the ``repro api-bench`` CLI and the end-to-end acceptance test all call
:func:`run_load`, so the request stream that gates CI is exactly the
stream a developer replays locally.

Everything is deterministic by construction: the app runs with
``dispatcher="manual"`` (no dispatch threads), a
:class:`~repro.api.middleware.ManualClock` is the only time source for
rate limiting and deadlines, requests are issued sequentially through
the in-process ASGI transport, and request/job ids are sequential.  The
same parameters therefore produce bit-identical outcome counts and
metric counters — which is what lets the benchmark harness treat them
as regression-gated invariants.

Four phases, each tallied separately:

* ``steady``    — every client solves once; nothing may be shed;
* ``overload``  — a burst of async factorize jobs exceeding the edge
  queue capacity: the overflow is shed with the structured envelope,
  a couple of admitted jobs are cancelled, the rest are pumped to
  completion and polled;
* ``deadline``  — solves with ``deadline_ms=0`` expire at dispatch and
  answer the 504-class ``deadline_exceeded`` envelope;
* ``ratelimit`` — one dedicated client bursts past its token bucket
  with the clock frozen; the overflow is rate limited.

Every response is classified into exactly one outcome
(``served`` / ``shed`` / ``rate_limited`` / ``deadline_exceeded`` / the
error code) and every non-2xx body is checked against the envelope
shape — a stack trace leaking to the wire counts as
``invalid_envelopes``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.api.app import ApiApp
from repro.api.middleware import ManualClock
from repro.api.protocol import Response, encode_matrix
from repro.api.transport import InProcessClient

__all__ = ["LoadReport", "run_load"]

#: shape every error body must have — anything else is a leak
_ENVELOPE_KEYS = {"code", "message", "request_id", "retry_after_ms"}


@dataclass
class LoadReport:
    """Outcome tallies of one :func:`run_load` drive."""

    phases: dict[str, dict[str, int]] = field(default_factory=dict)
    statuses: dict[str, int] = field(default_factory=dict)
    job_states: dict[str, int] = field(default_factory=dict)
    invalid_envelopes: int = 0
    metric_counters: dict[str, int] = field(default_factory=dict)

    def total(self, outcome: str) -> int:
        return sum(phase.get(outcome, 0) for phase in self.phases.values())

    @property
    def requests(self) -> int:
        return sum(sum(phase.values()) for phase in self.phases.values())

    def counters(self) -> dict[str, int]:
        """Flat, sorted, JSON-ready view for the deterministic bench."""
        out: dict[str, int] = {"invalid_envelopes": self.invalid_envelopes}
        for phase, outcomes in self.phases.items():
            for outcome, count in outcomes.items():
                out[f"phase.{phase}.{outcome}"] = count
        for status, count in self.statuses.items():
            out[f"status.{status}"] = count
        for state, count in self.job_states.items():
            out[f"job.{state}"] = count
        out.update(self.metric_counters)
        return dict(sorted(out.items()))


def _classify(resp: Response, report: LoadReport) -> str:
    """Map a response to its single outcome; police the envelope."""
    report.statuses[str(resp.status)] = (
        report.statuses.get(str(resp.status), 0) + 1
    )
    if resp.status in (200, 202):
        return "served"
    try:
        err = resp.json()["error"]
        ok = (
            isinstance(err, dict)
            and set(err) <= _ENVELOPE_KEYS
            and isinstance(err.get("code"), str)
            and isinstance(err.get("message"), str)
            and "request_id" in err
            and "Traceback" not in err["message"]
        )
    except Exception:
        ok = False
    if not ok:
        report.invalid_envelopes += 1
        return "invalid"
    code = resp.json()["error"]["code"]
    if code == "overloaded":
        return "shed"
    return code


def _tally(report: LoadReport, phase: str, outcome: str) -> None:
    bucket = report.phases.setdefault(phase, {})
    bucket[outcome] = bucket.get(outcome, 0) + 1


def _matrix_docs(n_patterns: int) -> list[tuple[dict, int]]:
    from repro.matrices import grid_laplacian_2d

    docs = []
    for p in range(n_patterns):
        a = grid_laplacian_2d(5 + p, 6 + p)
        docs.append((encode_matrix(a), a.n_rows))
    return docs


def run_load(
    *,
    n_clients: int = 1000,
    n_nodes: int = 4,
    n_steady: int | None = None,
    edge_capacity: int = 32,
    overload_jobs: int | None = None,
    overload_clients: int = 16,
    n_cancel: int = 2,
    n_deadline: int = 8,
    ratelimit_extra: int = 5,
    rate: float = 50.0,
    burst: int = 20,
    n_patterns: int = 3,
    service: Any = None,
) -> LoadReport:
    """Drive the four-phase deterministic load; returns the tallies.

    Builds a ``dispatcher="manual"`` :class:`~repro.api.app.ApiApp`
    over a fresh ``n_nodes``-shard fleet (or over ``service`` if one is
    supplied, which the caller then owns) and replays the phased
    request stream through the in-process ASGI transport.
    """
    from repro.cluster.fleet import ShardedSolverService

    if n_steady is None:
        n_steady = n_clients
    if overload_jobs is None:
        overload_jobs = 2 * edge_capacity
    overload_clients = max(1, min(overload_clients, n_clients))

    keys = {f"key-{i:04d}": f"client-{i:04d}" for i in range(n_clients)}
    keys["key-ratelimit"] = "client-ratelimit"
    clock = ManualClock()
    own_service = service is None
    if own_service:
        service = ShardedSolverService(
            n_nodes, n_workers_per_node=1, policy="P1", ordering="amd"
        )
    app = ApiApp(
        service, api_keys=keys, dispatcher="manual", clock=clock,
        edge_capacity=edge_capacity, rate=rate, burst=burst,
    )
    http = InProcessClient(app)
    docs = _matrix_docs(n_patterns)
    report = LoadReport()
    try:
        # phase 1: steady — one sync solve per client, pumped inline;
        # under capacity and under burst, so nothing may be shed
        for i in range(n_steady):
            doc, n = docs[i % len(docs)]
            resp = http.post("/v1/solve", api_key=f"key-{i % n_clients:04d}",
                             json={"matrix": doc, "rhs": [1.0] * n})
            _tally(report, "steady", _classify(resp, report))
            clock.advance(0.002)

        # phase 2: overload — async factorize burst past edge capacity
        # with no pumping; the overflow sheds deterministically
        job_ids: list[tuple[str, str]] = []
        for i in range(overload_jobs):
            doc, _ = docs[i % len(docs)]
            resp = http.post(
                "/v1/factorize", api_key=f"key-{i % overload_clients:04d}",
                json={"matrix": doc},
            )
            outcome = _classify(resp, report)
            _tally(report, "overload", outcome)
            if resp.status == 202:
                job_ids.append((resp.json()["job_id"],
                                f"key-{i % overload_clients:04d}"))
            clock.advance(1.0 / rate if rate > 0 else 0.0)
        for job_id, key in job_ids[:n_cancel]:
            resp = http.delete(f"/v1/jobs/{job_id}", api_key=key)
            _tally(report, "overload", _classify(resp, report))
        app.pump()
        for job_id, key in job_ids:
            resp = http.get(f"/v1/jobs/{job_id}", api_key=key)
            _tally(report, "overload", _classify(resp, report))
            if resp.status == 200:
                state = resp.json()["state"]
                report.job_states[state] = (
                    report.job_states.get(state, 0) + 1
                )

        # phase 3: deadline — already expired at dispatch, never served
        for i in range(n_deadline):
            doc, n = docs[i % len(docs)]
            resp = http.post(
                "/v1/solve", api_key=f"key-{i % n_clients:04d}",
                json={"matrix": doc, "rhs": [1.0] * n, "deadline_ms": 0},
            )
            _tally(report, "deadline", _classify(resp, report))

        # phase 4: ratelimit — frozen clock, dedicated client, so the
        # bucket admits exactly `burst` and sheds the rest
        for i in range(burst + ratelimit_extra):
            doc, n = docs[i % len(docs)]
            resp = http.post("/v1/solve", api_key="key-ratelimit",
                             json={"matrix": doc, "rhs": [1.0] * n})
            _tally(report, "ratelimit", _classify(resp, report))

        for name, value in app.metrics.snapshot().items():
            if name.startswith(("counter.api.", "counter.edge.")):
                report.metric_counters[name] = int(value)
    finally:
        app.close()
        if own_service:
            service.shutdown()
    return report
