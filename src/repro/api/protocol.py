"""The v1 wire protocol: JSON schemas, stable error codes, matrix codec.

Everything the front door says on the wire is defined here, away from
transport and policy concerns:

* **requests/responses** — small framework-free :class:`Request` /
  :class:`Response` records the ASGI adapter and the in-process test
  transport both speak;
* **error envelope** — every non-2xx body is the same shape::

      {"error": {"code": "<stable code>", "message": "...",
                 "request_id": "rid-..."}}

  with an optional ``retry_after_ms`` on backpressure codes.  Codes are
  part of the API contract (clients switch on them, not on prose) and
  each maps to exactly one HTTP status;
* **matrix codec** — sparse SPD matrices travel as canonical CSC
  triples (``shape`` / ``indptr`` / ``indices`` / ``data``), the same
  layout :class:`~repro.matrices.csc.CSCMatrix` stores, so decode is a
  validated zero-conversion construction.

Nothing here imports the service, the queue or any transport — the
protocol is the dependency floor of :mod:`repro.api`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

import numpy as np

from repro.matrices.csc import CSCMatrix

__all__ = [
    "API_VERSION",
    "ERROR_STATUS",
    "ApiError",
    "FactorizePayload",
    "Request",
    "Response",
    "SolvePayload",
    "decode_matrix",
    "encode_matrix",
    "error_response",
    "json_response",
    "parse_factorize_payload",
    "parse_solve_payload",
    "public_message",
]

API_VERSION = "v1"

#: the stable error-code -> HTTP-status contract.  Adding a code is a
#: protocol extension; changing a mapping is a breaking change.
ERROR_STATUS: dict[str, int] = {
    "invalid_request": 400,
    "unauthorized": 401,
    "not_found": 404,
    "method_not_allowed": 405,
    "conflict": 409,
    "numerical_error": 422,
    "rate_limited": 429,
    "overloaded": 429,
    "internal": 500,
    "unavailable": 503,
    "deadline_exceeded": 504,
}


#: exception types whose ``str()`` is considered publishable: domain
#: validation and availability errors whose messages describe the
#: *request* (shape mismatches, unknown policies, shutdown), never the
#: server's internals.  Matched by name so the protocol module keeps
#: its zero-dependency floor.
_PUBLIC_EXCEPTION_TYPES = frozenset({
    "ValueError",
    "KeyError",
    "TimeoutError",
    "RuntimeError",
    "NotPositiveDefiniteError",
})


def public_message(
    exc: BaseException, *, fallback: str = "internal error"
) -> str:
    """Wire-safe text for ``exc`` — the sanctioned sanitizer.

    :class:`ApiError` messages are crafted for the wire and pass
    through; the whitelisted domain exception types publish their
    ``str()`` (their messages describe the request, not the host); any
    other exception — whatever internal state, path, or type name its
    text carries — collapses to ``fallback``.  The wire-hygiene lint
    (RPL080) treats a value routed through here as clean, so every
    exception-to-envelope path should use it.
    """
    if isinstance(exc, ApiError):
        return exc.message
    if type(exc).__name__ in _PUBLIC_EXCEPTION_TYPES:
        return str(exc) or fallback
    return fallback


class ApiError(Exception):
    """A protocol-level failure carrying its stable error code."""

    def __init__(self, code: str, message: str, *,
                 retry_after_ms: int | None = None) -> None:
        if code not in ERROR_STATUS:
            raise ValueError(f"unknown error code {code!r}")
        super().__init__(message)
        self.code = code
        self.message = message
        self.retry_after_ms = retry_after_ms


@dataclass
class Request:
    """One HTTP request as the app core sees it (transport-free)."""

    method: str
    path: str
    headers: dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    def header(self, name: str, default: str = "") -> str:
        return self.headers.get(name.lower(), default)

    def json(self) -> dict:
        if not self.body:
            raise ApiError("invalid_request", "empty request body")
        try:
            obj = json.loads(self.body)
        except ValueError as exc:
            raise ApiError("invalid_request", f"malformed JSON: {exc}") from exc
        if not isinstance(obj, dict):
            raise ApiError("invalid_request", "request body must be an object")
        return obj


@dataclass
class Response:
    """One HTTP response as the app core produces it."""

    status: int
    body: bytes
    headers: dict[str, str] = field(default_factory=dict)

    def json(self) -> dict:
        return json.loads(self.body)


def json_response(status: int, obj: dict, *, request_id: str = "",
                  headers: dict[str, str] | None = None) -> Response:
    hdrs = {"content-type": "application/json"}
    if request_id:
        hdrs["x-request-id"] = request_id
    if headers:
        hdrs.update(headers)
    return Response(status, json.dumps(obj, sort_keys=True).encode(), hdrs)


def error_response(code: str, message: str, *, request_id: str = "",
                   retry_after_ms: int | None = None) -> Response:
    """The structured error envelope — the only non-2xx body shape."""
    err: dict[str, object] = {
        "code": code,
        "message": message,
        "request_id": request_id,
    }
    if retry_after_ms is not None:
        err["retry_after_ms"] = int(retry_after_ms)
    return json_response(
        ERROR_STATUS[code], {"error": err}, request_id=request_id
    )


# ----------------------------------------------------------------------
# matrix codec
# ----------------------------------------------------------------------
def encode_matrix(a: CSCMatrix) -> dict:
    """CSC triple as plain JSON-ready lists (what clients POST)."""
    return {
        "shape": [int(a.n_rows), int(a.n_cols)],
        "indptr": a.indptr.tolist(),
        "indices": a.indices.tolist(),
        "data": a.data.tolist(),
    }


def decode_matrix(obj: object) -> CSCMatrix:
    """Validated CSC construction from the wire form.

    Every malformation becomes an ``invalid_request`` envelope, never a
    traceback: the constructor's own checks are re-raised with the
    stable code attached.
    """
    if not isinstance(obj, dict):
        raise ApiError("invalid_request", "matrix must be an object")
    missing = [k for k in ("shape", "indptr", "indices", "data") if k not in obj]
    if missing:
        raise ApiError(
            "invalid_request", f"matrix is missing field(s): {', '.join(missing)}"
        )
    shape = obj["shape"]
    if (not isinstance(shape, (list, tuple)) or len(shape) != 2
            or not all(
                isinstance(d, int) and not isinstance(d, bool) and d > 0
                for d in shape
            )):
        raise ApiError(
            "invalid_request", "matrix.shape must be two positive integers"
        )
    try:
        indptr = np.asarray(obj["indptr"], dtype=np.int64)
        indices = np.asarray(obj["indices"], dtype=np.int64)
        data = np.asarray(obj["data"], dtype=np.float64)
    except (TypeError, ValueError) as exc:
        raise ApiError(
            "invalid_request", f"matrix arrays are not numeric: {exc}"
        ) from exc
    try:
        return CSCMatrix(
            (int(shape[0]), int(shape[1])), indptr, indices, data, check=True
        )
    except ValueError as exc:
        raise ApiError("invalid_request", f"invalid CSC matrix: {exc}") from exc


# ----------------------------------------------------------------------
# request payload schemas
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SolvePayload:
    """Parsed body of ``POST /v1/solve``."""

    a: CSCMatrix
    b: np.ndarray
    policy: str | None
    refine: bool
    tol: float
    deadline_ms: float | None


@dataclass(frozen=True)
class FactorizePayload:
    """Parsed body of ``POST /v1/factorize``."""

    a: CSCMatrix
    policy: str | None
    deadline_ms: float | None


def _parse_deadline(obj: dict) -> float | None:
    deadline = obj.get("deadline_ms")
    if deadline is None:
        return None
    if not isinstance(deadline, (int, float)) or isinstance(deadline, bool) \
            or deadline < 0:
        raise ApiError(
            "invalid_request", "deadline_ms must be a non-negative number"
        )
    return float(deadline)


def _parse_policy(obj: dict) -> str | None:
    policy = obj.get("policy")
    if policy is None:
        return None
    if not isinstance(policy, str) or not policy:
        raise ApiError("invalid_request", "policy must be a non-empty string")
    return policy


def parse_solve_payload(obj: dict) -> SolvePayload:
    a = decode_matrix(obj.get("matrix"))
    rhs = obj.get("rhs")
    if not isinstance(rhs, list) or not rhs:
        raise ApiError("invalid_request", "rhs must be a non-empty array")
    try:
        b = np.asarray(rhs, dtype=np.float64)
    except (TypeError, ValueError) as exc:
        raise ApiError("invalid_request", f"rhs is not numeric: {exc}") from exc
    if b.ndim not in (1, 2) or b.shape[0] != a.n_rows:
        raise ApiError(
            "invalid_request",
            f"rhs must have {a.n_rows} rows, got shape {b.shape}",
        )
    refine = obj.get("refine", False)
    if not isinstance(refine, bool):
        raise ApiError("invalid_request", "refine must be a boolean")
    tol = obj.get("tol", 1e-12)
    if not isinstance(tol, (int, float)) or isinstance(tol, bool) or tol < 0:
        raise ApiError("invalid_request", "tol must be a non-negative number")
    return SolvePayload(
        a=a, b=b, policy=_parse_policy(obj), refine=refine,
        tol=float(tol), deadline_ms=_parse_deadline(obj),
    )


def parse_factorize_payload(obj: dict) -> FactorizePayload:
    return FactorizePayload(
        a=decode_matrix(obj.get("matrix")),
        policy=_parse_policy(obj),
        deadline_ms=_parse_deadline(obj),
    )
