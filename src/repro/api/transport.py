"""Transports: in-process ASGI test client + stdlib HTTP bridge.

Two ways to reach the same :meth:`~repro.api.app.ApiApp.handle` core:

* :class:`InProcessClient` speaks real ASGI to the app — it builds the
  ``scope`` / ``receive`` / ``send`` triple and drives the app
  coroutine with a bare ``coro.send(None)`` loop.  That works without
  an event loop because the app's awaitables (its own ``receive`` /
  ``send``) never truly suspend; CI therefore exercises the ASGI
  adapter with zero extra dependencies.  Any real ASGI server
  (``uvicorn repro.api:create_app`` style) speaks to the identical
  code path.
* :func:`serve_http` binds the app behind the standard library's
  threading HTTP server — a real TCP wire for ``repro api-serve`` and
  ``curl``, again without new dependencies.  It calls ``handle``
  directly (the ASGI hop adds nothing over a real socket we own).
"""

from __future__ import annotations

import json as _json
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import TYPE_CHECKING, Any

from repro.api.protocol import Request, Response

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.api.app import ApiApp

__all__ = ["InProcessClient", "serve_http"]


class InProcessClient:
    """Synchronous ASGI client: no sockets, no event loop, full adapter."""

    def __init__(self, app: "ApiApp") -> None:
        self.app = app

    # ------------------------------------------------------------------
    def request(self, method: str, path: str, *,
                headers: dict[str, str] | None = None,
                json: dict | None = None,
                body: bytes = b"",
                api_key: str | None = None) -> Response:
        hdrs = {k.lower(): v for k, v in (headers or {}).items()}
        if api_key is not None:
            hdrs["x-api-key"] = api_key
        if json is not None:
            body = _json.dumps(json).encode()
            hdrs.setdefault("content-type", "application/json")
        scope = {
            "type": "http",
            "asgi": {"version": "3.0"},
            "method": method.upper(),
            "path": path,
            "headers": [
                (k.encode("latin-1"), v.encode("latin-1"))
                for k, v in hdrs.items()
            ],
        }
        inbox = [{"type": "http.request", "body": body, "more_body": False}]

        async def receive() -> dict[str, Any]:
            return inbox.pop(0)

        sent: list[dict[str, Any]] = []

        async def send(message: dict[str, Any]) -> None:
            sent.append(message)

        coro = self.app(scope, receive, send)
        try:
            while True:
                coro.send(None)
        except StopIteration:
            pass
        start = next(m for m in sent if m["type"] == "http.response.start")
        payload = b"".join(
            m.get("body", b"") for m in sent
            if m["type"] == "http.response.body"
        )
        resp_headers = {
            k.decode("latin-1"): v.decode("latin-1")
            for k, v in start.get("headers", [])
        }
        return Response(start["status"], payload, resp_headers)

    # convenience verbs -------------------------------------------------
    def get(self, path: str, **kw: Any) -> Response:
        return self.request("GET", path, **kw)

    def post(self, path: str, **kw: Any) -> Response:
        return self.request("POST", path, **kw)

    def delete(self, path: str, **kw: Any) -> Response:
        return self.request("DELETE", path, **kw)


def serve_http(app: "ApiApp", host: str = "127.0.0.1", port: int = 8080,
               *, quiet: bool = True) -> ThreadingHTTPServer:
    """Bind ``app`` behind a stdlib threading HTTP server.

    Returns the (already bound, not yet serving) server; the caller
    owns ``serve_forever()`` / ``shutdown()``.
    """

    class Handler(BaseHTTPRequestHandler):
        protocol_version = "HTTP/1.1"

        def _dispatch(self) -> None:
            length = int(self.headers.get("content-length") or 0)
            body = self.rfile.read(length) if length else b""
            headers = {k.lower(): v for k, v in self.headers.items()}
            resp = app.handle(
                Request(self.command.upper(), self.path, headers, body)
            )
            self.send_response(resp.status)
            for name, value in resp.headers.items():
                self.send_header(name, value)
            self.send_header("content-length", str(len(resp.body)))
            self.end_headers()
            self.wfile.write(resp.body)

        do_GET = do_POST = do_DELETE = do_PUT = _dispatch

        def log_message(
            self, fmt: str, *args: Any
        ) -> None:  # pragma: no cover - noise knob
            if not quiet:
                super().log_message(fmt, *args)

    return ThreadingHTTPServer((host, port), Handler)
