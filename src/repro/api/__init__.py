"""repro.api — the async front door in front of the solver fleet.

A dependency-free ASGI application exposing the versioned JSON
endpoints ``/v1/solve``, ``/v1/factorize``, ``/v1/jobs/{id}``,
``/v1/healthz`` and ``/v1/metrics`` over a
:class:`~repro.service.SolverService` or a
:class:`~repro.cluster.fleet.ShardedSolverService`, with API-key auth,
per-client token-bucket rate limiting, bounded fair admission with load
shedding, and a submit-then-poll job store for large factorizations.

See ``docs/architecture.md`` ("API front door") for the request
lifecycle and the protocol reference.
"""

from repro.api.admission import EdgeEntry, EdgeQueue
from repro.api.app import ApiApp
from repro.api.jobs import Job, JobState, JobStore
from repro.api.loadgen import LoadReport, run_load
from repro.api.middleware import (
    ApiKeyAuth,
    ManualClock,
    RateLimiter,
    RequestIds,
    TokenBucket,
)
from repro.api.protocol import (
    API_VERSION,
    ERROR_STATUS,
    ApiError,
    Request,
    Response,
    decode_matrix,
    encode_matrix,
    error_response,
    json_response,
)
from repro.api.transport import InProcessClient, serve_http

__all__ = [
    "API_VERSION",
    "ERROR_STATUS",
    "ApiApp",
    "ApiError",
    "ApiKeyAuth",
    "EdgeEntry",
    "EdgeQueue",
    "InProcessClient",
    "Job",
    "JobState",
    "JobStore",
    "LoadReport",
    "ManualClock",
    "RateLimiter",
    "Request",
    "RequestIds",
    "Response",
    "TokenBucket",
    "decode_matrix",
    "encode_matrix",
    "error_response",
    "json_response",
    "run_load",
    "serve_http",
]
