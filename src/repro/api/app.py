"""The ASGI front door: routing, middleware, admission, sync/async paths.

:class:`ApiApp` is a dependency-free ASGI application (``await
app(scope, receive, send)``) whose core, :meth:`ApiApp.handle`, is a
plain synchronous ``Request -> Response`` function — the ASGI adapter,
the stdlib HTTP bridge and the in-process test transport all call the
same core, so every transport exercises identical middleware, admission
and error paths.

Request lifecycle (the order is the contract)::

    request -> request-id -> route -> auth -> rate limit -> admission
            -> edge queue -> dispatch -> worker pool -> cache -> reply

* **sync path** — ``POST /v1/solve`` rides the edge queue like
  everything else (fairness and shedding apply), then blocks its caller
  until the entry is dispatched and served; cache hits make this the
  fast path.
* **async path** — ``POST /v1/factorize`` answers ``202`` with a job id
  once admitted; the dispatcher runs the factorization later and the
  client polls ``GET /v1/jobs/{id}`` (cancel with ``DELETE`` while
  queued).
* **backpressure** — the bounded :class:`~repro.api.admission.EdgeQueue`
  sheds on depth or on the service's memory/cache-pressure signal
  *before* any solver work is admitted, mirroring the runtime's
  memory-aware task admission; shed and rate-limited requests get the
  structured envelope, never a stack trace.

Dispatch runs on background threads by default; ``dispatcher="manual"``
turns the app into a deterministic state machine driven by explicit
:meth:`pump` calls — the mode the benchmark and the edge tests use.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable

import numpy as np

from repro.api.admission import EdgeEntry, EdgeQueue
from repro.api.jobs import JobState, JobStore
from repro.api.middleware import ApiKeyAuth, RateLimiter, RequestIds
from repro.api.protocol import (
    ApiError,
    Request,
    Response,
    error_response,
    json_response,
    parse_factorize_payload,
    parse_solve_payload,
    public_message,
)
from repro.dense.kernels import NotPositiveDefiniteError

__all__ = ["ApiApp"]


class _SyncWaiter:
    """Completion slot for the synchronous solve path."""

    __slots__ = ("event", "response")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.response: Response | None = None


class ApiApp:
    """Versioned JSON front door over a solver service (single or fleet).

    Parameters
    ----------
    service :
        A :class:`~repro.service.SolverService` or
        :class:`~repro.cluster.fleet.ShardedSolverService`; anything
        with ``solve(a, b, **kw)``, ``health()`` and ``metrics``.
    api_keys : dict or ApiKeyAuth
        ``key -> client`` identities; every data endpoint requires one.
    rate, burst, rate_overrides :
        Per-client token-bucket defaults (requests/second, bucket size)
        and per-client overrides.
    edge_capacity, memory_threshold :
        Admission bounds: total queued entries, and the cache-pressure
        level (from ``service.health()['cache_utilization']``) at or
        above which new work is shed.
    clock :
        Time source for rate limiting and edge deadlines
        (default ``time.monotonic``; tests inject
        :class:`~repro.api.middleware.ManualClock`).
    dispatcher : ``"thread"`` or ``"manual"``
        Background dispatch threads, or explicit :meth:`pump` driving.
    metrics :
        Metrics sink; defaults to ``service.metrics`` so API, edge and
        service instruments land in one ``/v1/metrics`` exposition.
    """

    def __init__(
        self,
        service: Any,
        *,
        api_keys: dict[str, str] | ApiKeyAuth,
        rate: float = 50.0,
        burst: int = 20,
        rate_overrides: dict[str, tuple[float, int]] | None = None,
        edge_capacity: int = 64,
        memory_threshold: float = 0.95,
        clock: Callable[[], float] | None = None,
        dispatcher: str = "thread",
        n_dispatchers: int = 2,
        metrics: Any = None,
        max_finished_jobs: int = 4096,
    ) -> None:
        if dispatcher not in ("thread", "manual"):
            raise ValueError("dispatcher must be 'thread' or 'manual'")
        self.service = service
        self.auth = (
            api_keys if isinstance(api_keys, ApiKeyAuth) else ApiKeyAuth(api_keys)
        )
        self.metrics = metrics if metrics is not None else service.metrics
        self._clock = clock if clock is not None else time.monotonic
        self.limiter = RateLimiter(
            rate, burst, clock=self._clock, overrides=rate_overrides
        )
        self.edge = EdgeQueue(
            edge_capacity,
            metrics=self.metrics,
            memory_signal=self._memory_pressure,
            memory_threshold=memory_threshold,
        )
        self.jobs = JobStore(max_finished=max_finished_jobs)
        self._rids = RequestIds()
        self._job_entries: dict[str, EdgeEntry] = {}
        self._job_entries_lock = threading.Lock()
        self._t0 = time.perf_counter()
        self._closed = False
        self._dispatchers: list[threading.Thread] = []
        if dispatcher == "thread":
            self._dispatchers = [
                threading.Thread(
                    target=self._dispatch_loop, name=f"api-dispatch-{i}",
                    daemon=True,
                )
                for i in range(max(1, n_dispatchers))
            ]
            for t in self._dispatchers:
                t.start()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Stop admitting and dispatching (the service stays up)."""
        self._closed = True
        self.edge.close()
        for t in self._dispatchers:
            t.join(timeout=5.0)

    def __enter__(self) -> "ApiApp":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # ASGI surface
    # ------------------------------------------------------------------
    async def __call__(
        self,
        scope: dict[str, Any],
        receive: Callable[[], Any],
        send: Callable[[dict[str, Any]], Any],
    ) -> None:
        if scope["type"] == "lifespan":
            while True:
                message = await receive()
                if message["type"] == "lifespan.startup":
                    await send({"type": "lifespan.startup.complete"})
                elif message["type"] == "lifespan.shutdown":
                    self.close()
                    await send({"type": "lifespan.shutdown.complete"})
                    return
            return
        if scope["type"] != "http":  # pragma: no cover - ws etc.
            raise RuntimeError(f"unsupported scope type {scope['type']!r}")
        body = b""
        while True:
            message = await receive()
            body += message.get("body", b"")
            if not message.get("more_body"):
                break
        headers = {
            k.decode("latin-1").lower(): v.decode("latin-1")
            for k, v in scope.get("headers", [])
        }
        resp = self.handle(
            Request(scope["method"].upper(), scope["path"], headers, body)
        )
        await send({
            "type": "http.response.start",
            "status": resp.status,
            "headers": [
                (k.encode("latin-1"), v.encode("latin-1"))
                for k, v in resp.headers.items()
            ],
        })
        await send({"type": "http.response.body", "body": resp.body})

    # ------------------------------------------------------------------
    # request core
    # ------------------------------------------------------------------
    def handle(self, request: Request) -> Response:
        """The transport-free core every adapter calls."""
        rid = self._rids.assign(request.headers)
        t0 = self._now()
        self.metrics.incr("api.requests")
        try:
            resp = self._route(request, rid)
        except ApiError as exc:
            resp = error_response(
                exc.code, exc.message, request_id=rid,
                retry_after_ms=exc.retry_after_ms,
            )
        except Exception as exc:  # envelope, never a stack trace
            resp = error_response(
                "internal", public_message(exc), request_id=rid
            )
        t1 = self._now()
        self._count_response(resp)
        self.metrics.observe("api.request", t1 - t0)
        self.metrics.span(f"{rid}:api", "api", "cpu.api", t0, t1)
        resp.headers.setdefault("x-request-id", rid)
        return resp

    def _count_response(self, resp: Response) -> None:
        if resp.status < 400:
            self.metrics.incr("api.served")
            return
        try:
            code = resp.json()["error"]["code"]
        except Exception:
            code = "internal"
        self.metrics.incr(f"api.error.{code}")
        if code == "deadline_exceeded":
            self.metrics.incr("api.deadline_exceeded")

    def _route(self, request: Request, rid: str) -> Response:
        path = request.path.rstrip("/") or "/"
        method = request.method
        if not path.startswith("/v1/"):
            raise ApiError(
                "not_found",
                f"unknown path {request.path!r}; this server speaks /v1 only",
            )
        tail = path[len("/v1/"):]
        if tail == "healthz":
            self._require(method, "GET")
            return self._healthz(rid)
        if tail == "metrics":
            self._require(method, "GET")
            # gauge mirrors (tier occupancy, shard rollups) are exported
            # on health() — refresh them so a bare scrape sees current
            # values rather than the last health check's
            self.service.health()
            return Response(
                200, self.metrics.render_text().encode(),
                {"content-type": "text/plain; charset=utf-8"},
            )
        if tail == "solve":
            self._require(method, "POST")
            client = self._authenticate(request)
            self._throttle(client)
            return self._solve(request, rid, client)
        if tail == "factorize":
            self._require(method, "POST")
            client = self._authenticate(request)
            self._throttle(client)
            return self._factorize(request, rid, client)
        if tail.startswith("jobs/"):
            job_id = tail[len("jobs/"):]
            client = self._authenticate(request)
            if method == "GET":
                return self._job_status(rid, client, job_id)
            if method == "DELETE":
                return self._job_cancel(rid, client, job_id)
            self._require(method, "GET")  # raises method_not_allowed
        raise ApiError("not_found", f"unknown path {request.path!r}")

    @staticmethod
    def _require(method: str, expected: str) -> None:
        if method != expected:
            raise ApiError(
                "method_not_allowed", f"use {expected} for this endpoint"
            )

    # ------------------------------------------------------------------
    # middleware steps
    # ------------------------------------------------------------------
    def _authenticate(self, request: Request) -> str:
        client = self.auth.client_for(request.headers)
        if client is None:
            raise ApiError(
                "unauthorized", "missing or unknown x-api-key header"
            )
        return client

    def _throttle(self, client: str) -> None:
        bucket = self.limiter.bucket(client)
        if not bucket.allow():
            retry_ms = (
                int(1000.0 / bucket.rate) + 1 if bucket.rate > 0 else 60_000
            )
            raise ApiError(
                "rate_limited",
                f"client {client!r} exceeded {bucket.rate:g} req/s "
                f"(burst {bucket.burst})",
                retry_after_ms=retry_ms,
            )

    def _memory_pressure(self) -> float:
        return float(self.service.health().get("cache_utilization", 0.0))

    # ------------------------------------------------------------------
    # endpoints
    # ------------------------------------------------------------------
    def _healthz(self, rid: str) -> Response:
        health = self.service.health()
        doc = {
            "status": health["status"],
            "service": health,
            "edge": {
                "queue_depth": self.edge.depth,
                "capacity": self.edge.capacity,
            },
            "jobs": self.jobs.counts(),
        }
        status = 200 if health.get("accepting") and not self._closed else 503
        return json_response(status, doc, request_id=rid)

    def _solve(self, request: Request, rid: str, client: str) -> Response:
        payload = parse_solve_payload(request.json())
        if self._closed:
            raise ApiError("unavailable", "server is shutting down")
        deadline = (
            None if payload.deadline_ms is None
            else self._clock() + payload.deadline_ms / 1000.0
        )
        waiter = _SyncWaiter()
        entry = EdgeEntry(
            client=client, request_id=rid, waiter=waiter, deadline=deadline,
            work=lambda timeout: self.service.solve(
                payload.a, payload.b, policy=payload.policy,
                refine=payload.refine, tol=payload.tol, timeout=timeout,
            ),
        )
        self._admit_or_raise(entry)
        if not self._dispatchers:
            self._pump_until(waiter)
        waiter.event.wait()
        assert waiter.response is not None
        return waiter.response

    def _factorize(self, request: Request, rid: str, client: str) -> Response:
        payload = parse_factorize_payload(request.json())
        if self._closed:
            raise ApiError("unavailable", "server is shutting down")
        deadline = (
            None if payload.deadline_ms is None
            else self._clock() + payload.deadline_ms / 1000.0
        )
        job = self.jobs.create(client, rid, now=self._clock())
        # the factorization is driven through the ordinary solve path
        # with a zero right-hand side: it warms both cache tiers, and a
        # numeric-tier hit makes resubmission of a known matrix cheap
        entry = EdgeEntry(
            client=client, request_id=rid, job=job, deadline=deadline,
            work=lambda timeout: self.service.solve(
                payload.a, np.zeros(payload.a.n_rows),
                policy=payload.policy, timeout=timeout,
            ),
        )
        with self._job_entries_lock:
            self._job_entries[job.job_id] = entry
        try:
            self._admit_or_raise(entry)
        except ApiError:
            with self._job_entries_lock:
                self._job_entries.pop(job.job_id, None)
            self.jobs.drop(job)
            raise
        self.metrics.incr("api.jobs_submitted")
        return json_response(
            202, {"job_id": job.job_id, "state": job.state}, request_id=rid
        )

    def _job_status(self, rid: str, client: str, job_id: str) -> Response:
        job = self.jobs.get(job_id)
        if job is None or job.client != client:
            # a foreign job id is indistinguishable from an unknown one
            raise ApiError("not_found", f"no job {job_id!r}")
        return json_response(200, job.describe(), request_id=rid)

    def _job_cancel(self, rid: str, client: str, job_id: str) -> Response:
        job = self.jobs.get(job_id)
        if job is None or job.client != client:
            raise ApiError("not_found", f"no job {job_id!r}")
        if not self.jobs.transition(
            job, JobState.CANCELLED, now=self._clock()
        ):
            raise ApiError(
                "conflict",
                f"job {job_id} is {job.state} and can no longer be cancelled",
            )
        entry = self._take_job_entry(job_id)
        if entry is not None:
            entry.cancelled = True
            self.edge.remove(entry)
        self.metrics.incr("api.jobs_cancelled")
        return json_response(200, job.describe(), request_id=rid)

    # ------------------------------------------------------------------
    # admission + dispatch
    # ------------------------------------------------------------------
    def _admit_or_raise(self, entry: EdgeEntry) -> None:
        reason = self.edge.admit(entry)
        if reason is None:
            return
        if reason == "memory_pressure":
            detail = "factor-cache memory pressure"
        elif reason == "closed":
            raise ApiError("unavailable", "server is shutting down")
        else:
            detail = f"edge queue full ({self.edge.capacity} entries)"
        raise ApiError(
            "overloaded", f"request shed: {detail}", retry_after_ms=1000
        )

    def pump(self, max_entries: int | None = None) -> int:
        """Manual dispatch: process up to ``max_entries`` queued entries.

        Returns the number processed.  This is the deterministic drive
        used by the benchmark and the tests; with background
        dispatchers running it is still safe (pop is atomic), just
        unnecessary.
        """
        done = 0
        while max_entries is None or done < max_entries:
            entry = self.edge.pop()
            if entry is None:
                break
            self._process_entry(entry)
            done += 1
        return done

    def _pump_until(self, waiter: _SyncWaiter) -> None:
        while not waiter.event.is_set():
            entry = self.edge.pop()
            if entry is None:
                break
            self._process_entry(entry)

    def _dispatch_loop(self) -> None:
        while True:
            entry = self.edge.pop(wait=True, timeout=0.2)
            if entry is None:
                if self._closed:
                    return
                continue
            try:
                self._process_entry(entry)
            except BaseException:  # pragma: no cover - never kill a dispatcher
                self.metrics.incr("api.dispatch_errors")

    def _take_job_entry(self, job_id: str) -> EdgeEntry | None:
        with self._job_entries_lock:
            return self._job_entries.pop(job_id, None)

    def _process_entry(self, entry: EdgeEntry) -> None:
        """Run one admitted entry to completion (no locks held here)."""
        if entry.job is not None:
            self._take_job_entry(entry.job.job_id)
            if entry.cancelled or entry.job.state != JobState.QUEUED:
                return
        timeout = None
        if entry.deadline is not None:
            timeout = entry.deadline - self._clock()
            if timeout <= 0:
                self._finish(entry, error=(
                    "deadline_exceeded",
                    "deadline expired while queued at the edge",
                ))
                return
        if entry.job is not None and not self.jobs.transition(
            entry.job, JobState.RUNNING, now=self._clock()
        ):
            return  # lost a cancellation race; the job is terminal
        try:
            outcome = entry.work(timeout)
        except TimeoutError:
            self._finish(entry, error=(
                "deadline_exceeded", "deadline expired before service",
            ))
        except NotPositiveDefiniteError as exc:
            self._finish(entry, error=(
                "numerical_error",
                f"matrix is not positive definite: {public_message(exc)}",
            ))
        except (ValueError, KeyError) as exc:
            self._finish(entry, error=("invalid_request", public_message(exc)))
        except RuntimeError as exc:
            self._finish(entry, error=("unavailable", public_message(exc)))
        except Exception as exc:  # envelope, never a stack trace
            self._finish(entry, error=("internal", public_message(exc)))
        else:
            self._finish(entry, outcome=outcome)

    def _finish(self, entry: EdgeEntry, *, outcome: Any = None,
                error: tuple[str, str] | None = None) -> None:
        if entry.job is not None:
            job = entry.job
            if error is not None:
                code, message = error
                state = (
                    JobState.DEADLINE_EXCEEDED
                    if code == "deadline_exceeded" else JobState.FAILED
                )
                if self.jobs.transition(
                    job, state, now=self._clock(), error=error
                ):
                    if state == JobState.DEADLINE_EXCEEDED:
                        self.metrics.incr("api.jobs_expired")
                        self.metrics.incr("api.deadline_exceeded")
                    else:
                        self.metrics.incr("api.jobs_failed")
            else:
                result = {
                    "tier": outcome.tier,
                    "degraded": outcome.degraded,
                    "n": int(outcome.x.shape[0]),
                    "cached": not outcome.degraded,
                }
                if self.jobs.transition(
                    job, JobState.DONE, now=self._clock(), result=result
                ):
                    self.metrics.incr("api.jobs_completed")
            return
        waiter = entry.waiter
        assert waiter is not None
        if error is not None:
            code, message = error
            waiter.response = error_response(
                code, message, request_id=entry.request_id
            )
        else:
            self.metrics.incr("api.solved")
            waiter.response = json_response(200, {
                "request_id": entry.request_id,
                "x": outcome.x.tolist(),
                "tier": outcome.tier,
                "degraded": outcome.degraded,
                "batch_size": outcome.batch_size,
            }, request_id=entry.request_id)
        waiter.event.set()

    # ------------------------------------------------------------------
    def _now(self) -> float:
        return time.perf_counter() - self._t0
