"""Edge admission control: a bounded fair queue that sheds, not buffers.

The front door applies the paper's admit-or-defer discipline at the
request layer: work is either *admitted* into a bounded queue or
*shed* with a structured envelope before it costs anything — the same
shape as the runtime's memory-aware admission (PR 2), which defers
supernode tasks whose projected update-stack bytes exceed the device
budget, and the fan-both solver's asynchronous task delivery.

Two shed triggers, checked in order:

* ``queue_full`` — total queued entries reached ``capacity``;
* ``memory_pressure`` — the ``memory_signal`` callable (the app wires
  it to :meth:`SolverService.health`'s ``cache_utilization``, the
  serving-layer proxy for the runtime's device-budget signal) reports
  at or above ``memory_threshold``.

Admitted entries wait in per-client FIFO lanes drained round-robin, so
one chatty client cannot starve the rest: with ``k`` active clients
each owns ``1/k`` of the dispatch slots regardless of arrival order.

The queue exports ``edge.queue_depth`` (gauge, with the ``_max``
high-water mark :meth:`ServiceMetrics.gauge` keeps) and
``edge.shed_total`` plus per-reason ``edge.shed_*`` counters.
"""

from __future__ import annotations

import threading
from collections import OrderedDict, deque
from dataclasses import dataclass, field
from typing import Any, Callable

__all__ = ["EdgeEntry", "EdgeQueue"]


@dataclass
class EdgeEntry:
    """One admitted unit of work waiting at the edge.

    ``work`` is the deferred service call (built by the app, closed over
    the parsed payload); it receives the remaining seconds until
    ``deadline`` (or ``None``).  Exactly one of ``job`` (async
    factorize) / ``waiter`` (sync solve) is set and receives the
    completion.  ``deadline`` is absolute on the app clock; ``None``
    means no edge deadline.
    """

    client: str
    request_id: str
    work: Callable[[float | None], object]
    job: object | None = None
    waiter: object | None = None
    deadline: float | None = None
    cancelled: bool = field(default=False, compare=False)


class EdgeQueue:
    """Bounded multi-lane FIFO with round-robin fairness and shedding."""

    def __init__(
        self,
        capacity: int = 64,
        *,
        metrics: Any = None,
        memory_signal: Callable[[], float] | None = None,
        memory_threshold: float = 0.95,
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be at least 1")
        if not 0.0 < memory_threshold <= 1.0:
            raise ValueError("memory_threshold must be in (0, 1]")
        self.capacity = int(capacity)
        self.memory_threshold = float(memory_threshold)
        self._memory_signal = memory_signal
        self._metrics = metrics
        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        # client -> FIFO lane; _rr cycles lane names for fair dispatch
        self._lanes: OrderedDict[str, deque[EdgeEntry]] = OrderedDict()
        self._rr: deque[str] = deque()
        self._count = 0
        self._closed = False

    # ------------------------------------------------------------------
    # admission
    # ------------------------------------------------------------------
    def admit(self, entry: EdgeEntry) -> str | None:
        """Admit ``entry`` or return the shed reason (never raises).

        The memory signal is read *outside* the queue lock — it may
        consult service-side state with locks of its own.
        """
        pressure = 0.0
        if self._memory_signal is not None:
            pressure = float(self._memory_signal())
        with self._cond:
            if self._closed:
                reason = "closed"
            elif self._count >= self.capacity:
                reason = "queue_full"
            elif pressure >= self.memory_threshold:
                reason = "memory_pressure"
            else:
                lane = self._lanes.get(entry.client)
                if lane is None:
                    lane = self._lanes[entry.client] = deque()
                    self._rr.append(entry.client)
                lane.append(entry)
                self._count += 1
                depth = self._count
                self._cond.notify()
                reason = None
        if self._metrics is not None:
            if reason is None:
                self._metrics.gauge("edge.queue_depth", depth)
            else:
                self._metrics.incr("edge.shed_total")
                self._metrics.incr(f"edge.shed_{reason}")
        return reason

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------
    def pop(
        self, *, wait: bool = False, timeout: float | None = None
    ) -> EdgeEntry | None:
        """Next entry round-robin across client lanes; ``None`` if empty.

        With ``wait=True`` blocks until an entry arrives, the queue is
        closed, or ``timeout`` elapses.
        """
        with self._cond:
            while True:
                entry = self._pop_locked()
                if entry is not None:
                    depth = self._count
                    break
                if not wait or self._closed:
                    return None
                if not self._cond.wait(timeout):
                    return None
        if self._metrics is not None:
            self._metrics.gauge("edge.queue_depth", depth)
        return entry

    def _pop_locked(self) -> EdgeEntry | None:
        while self._rr:
            client = self._rr[0]
            lane = self._lanes.get(client)
            if not lane:
                # lane drained (or emptied by cancellation): retire it
                self._rr.popleft()
                self._lanes.pop(client, None)
                continue
            entry = lane.popleft()
            self._count -= 1
            # rotate: this client goes to the back of the service order
            self._rr.rotate(-1)
            if not lane:
                self._lanes.pop(client, None)
                self._rr.remove(client)
            return entry
        return None

    def remove(self, entry: EdgeEntry) -> bool:
        """Cancellation hook: drop a still-queued entry; False if gone."""
        with self._cond:
            lane = self._lanes.get(entry.client)
            if lane is None:
                return False
            try:
                lane.remove(entry)
            except ValueError:
                return False
            self._count -= 1
            depth = self._count
        if self._metrics is not None:
            self._metrics.gauge("edge.queue_depth", depth)
        return True

    # ------------------------------------------------------------------
    # introspection / lifecycle
    # ------------------------------------------------------------------
    @property
    def depth(self) -> int:
        with self._cond:
            return self._count

    def close(self) -> None:
        """Stop admitting; wake blocked poppers so dispatchers exit."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()
