"""Supernodal multifrontal Cholesky: numeric phase and the public API.

The numeric phase walks the supernodal elimination tree in postorder,
assembling each frontal matrix from the original entries and the
children's update matrices (extend-add), running the factor-update under
the configured placement policy, and passing the update matrix up the
tree.  Forward/backward supernodal solves and double-precision iterative
refinement (which recovers the accuracy lost to single-precision GPU
kernels, Section III-B) complete the solver.
"""

from repro.multifrontal.batched import BatchParams, batch_groups
from repro.multifrontal.device_resident import (
    ResidencyStats,
    factorize_resident,
    flops_placement,
)
from repro.multifrontal.frontal import assemble_front, extend_add
from repro.multifrontal.numeric import FURecord, NumericFactor, factorize_numeric
from repro.multifrontal.schur import PartialFactorization, partial_factorize
from repro.multifrontal.solve_sim import SolveEstimate, simulate_solve
from repro.multifrontal.solve import solve_factored
from repro.multifrontal.refine import RefinementResult, iterative_refinement
from repro.multifrontal.solver import FactorizationStats, SparseCholeskySolver

__all__ = [
    "BatchParams",
    "batch_groups",
    "assemble_front",
    "extend_add",
    "factorize_resident",
    "ResidencyStats",
    "flops_placement",
    "FURecord",
    "NumericFactor",
    "factorize_numeric",
    "partial_factorize",
    "PartialFactorization",
    "simulate_solve",
    "SolveEstimate",
    "solve_factored",
    "iterative_refinement",
    "RefinementResult",
    "SparseCholeskySolver",
    "FactorizationStats",
]
