"""Frontal matrix assembly and the extend-add operation.

For supernode ``s`` with row structure ``rows`` (its own ``k`` columns
followed by ``m`` below-diagonal rows), the frontal matrix F is the
``(k+m) x (k+m)`` dense matrix holding

* the original entries ``A[i, j]`` for the supernode's columns (first
  ``k`` columns of F), and
* the accumulated update matrices of all children, scattered through the
  *extend-add* operation: child row indices are located in the parent's
  row list (both sorted, so one ``searchsorted``) and the child's U is
  added at the intersection.

F is kept numerically symmetric (full storage): the lower triangle is
the one that is semantically live, but full storage turns every scatter
into a single vectorized ``np.ix_`` update and lets the dense kernels
run without triangle bookkeeping.
"""

from __future__ import annotations

import numpy as np

from repro.matrices.csc import CSCMatrix
from repro.symbolic.symbolic import SymbolicFactor

__all__ = [
    "AssemblyPlan",
    "assemble_front",
    "assemble_front_planned",
    "build_assembly_plan",
    "extend_add",
    "get_assembly_plan",
    "assembly_bytes",
]


def assemble_front(
    a_lower: CSCMatrix,
    sf: SymbolicFactor,
    s: int,
    child_updates: list[tuple[np.ndarray, np.ndarray]],
) -> np.ndarray:
    """Build the frontal matrix of supernode ``s``.

    Parameters
    ----------
    a_lower : CSCMatrix
        Lower triangle of the *permuted* matrix (rows >= column).
    sf : SymbolicFactor
        The symbolic structure.
    s : int
        Supernode id.
    child_updates : list of (rows, U)
        Update matrices of the children: global row indices (sorted) and
        the dense symmetric update block.

    Returns
    -------
    The assembled (k+m) x (k+m) float64 frontal matrix.
    """
    rows = sf.rows[s]
    f_col, l_col = int(sf.super_ptr[s]), int(sf.super_ptr[s + 1])
    size = rows.size
    front = np.zeros((size, size), dtype=np.float64)
    # scatter original entries of the supernode's columns
    for j in range(f_col, l_col):
        ridx, vals = a_lower.column(j)
        keep = ridx >= j
        ridx, vals = ridx[keep], vals[keep]
        pos = np.searchsorted(rows, ridx)
        if pos.size:
            if np.any(pos >= size) or np.any(rows[pos] != ridx):
                raise ValueError(
                    f"supernode {s}: matrix entries outside symbolic pattern"
                )
            jj = j - f_col
            front[pos, jj] += vals
            off = ridx != j  # mirror off-diagonal entries only
            front[jj, pos[off]] += vals[off]
    # fold in the children
    for crows, cu in child_updates:
        extend_add(front, rows, crows, cu)
    return front


def extend_add(
    front: np.ndarray,
    parent_rows: np.ndarray,
    child_rows: np.ndarray,
    child_update: np.ndarray,
) -> None:
    """Scatter-add ``child_update`` into ``front`` (both full symmetric).

    ``child_rows`` must be a subset of ``parent_rows`` — guaranteed by
    the symbolic analysis (and asserted here, because a violation would
    silently corrupt the factorization).
    """
    if child_rows.size == 0:
        return
    idx = np.searchsorted(parent_rows, child_rows)
    if np.any(idx >= parent_rows.size) or np.any(parent_rows[idx] != child_rows):
        raise ValueError("extend-add: child rows not contained in parent front")
    front[np.ix_(idx, idx)] += child_update


class AssemblyPlan:
    """Precomputed scatter indices for assembling every front of one
    (matrix pattern, symbolic factor) pair.

    The symbolic structure fixes, for each supernode, *where* every
    original entry of A lands in the front and where each child's update
    block scatters into its parent — only the values change between
    factorizations.  The plan computes those index arrays once (one
    ``searchsorted`` per supernode instead of one per column, all
    containment checks hoisted out of the numeric loop) and is cached on
    the :class:`SymbolicFactor` via :func:`get_assembly_plan`, so
    repeated factorizations (refactorize, the serving layer's symbolic
    tier, benchmark repeats) skip index construction entirely.

    Scatter destinations within one front are unique by construction
    (CSC stores each (row, col) once; mirrored entries land strictly in
    the upper triangle), so a single fancy-indexed add reproduces the
    per-column loop bit for bit.
    """

    __slots__ = ("src", "dst", "rel_row", "rel_col", "nnz", "_indptr", "_indices")

    def __init__(self, a_lower: CSCMatrix, sf: SymbolicFactor):
        indptr, indices = a_lower.indptr, a_lower.indices
        n_super = sf.n_supernodes
        #: per supernode: gather indices into ``a_lower.data``
        self.src: list[np.ndarray] = [None] * n_super  # type: ignore[list-item]
        #: per supernode: flat scatter indices into ``front.ravel()``
        self.dst: list[np.ndarray] = [None] * n_super  # type: ignore[list-item]
        #: per supernode: its update rows located in the *parent* front,
        #: stored as the open-grid pair ``np.ix_`` would build
        self.rel_row: list[np.ndarray | None] = [None] * n_super
        self.rel_col: list[np.ndarray | None] = [None] * n_super
        self.nnz = int(a_lower.nnz)
        self._indptr = indptr
        self._indices = indices

        for s in range(n_super):
            rows = sf.rows[s]
            f_col, l_col = int(sf.super_ptr[s]), int(sf.super_ptr[s + 1])
            size = rows.size
            lo, hi = int(indptr[f_col]), int(indptr[l_col])
            ridx = indices[lo:hi]
            cols = np.repeat(
                np.arange(f_col, l_col, dtype=np.int64),
                np.diff(indptr[f_col:l_col + 1]),
            )
            keep = ridx >= cols
            src = np.arange(lo, hi, dtype=np.int64)[keep]
            ridx, cols = ridx[keep], cols[keep]
            pos = np.searchsorted(rows, ridx)
            if pos.size and (np.any(pos >= size) or np.any(rows[pos] != ridx)):
                raise ValueError(
                    f"supernode {s}: matrix entries outside symbolic pattern"
                )
            jj = cols - f_col
            off = ridx != cols  # mirror off-diagonal entries only
            self.src[s] = np.concatenate([src, src[off]])
            self.dst[s] = np.concatenate(
                [pos * size + jj, jj[off] * size + pos[off]]
            )

            # locate this supernode's update rows in its parent's front
            p = int(sf.sparent[s])
            if p >= 0 and rows.size > l_col - f_col:
                crows = rows[l_col - f_col:]
                prows = sf.rows[p]
                idx = np.searchsorted(prows, crows)
                if np.any(idx >= prows.size) or np.any(prows[idx] != crows):
                    raise ValueError(
                        "extend-add: child rows not contained in parent front"
                    )
                self.rel_row[s] = idx.reshape(-1, 1)
                self.rel_col[s] = idx.reshape(1, -1)

    def matches(self, a_lower: CSCMatrix) -> bool:
        """True when ``a_lower`` has the pattern this plan was built for."""
        indptr, indices = a_lower.indptr, a_lower.indices
        if indptr is self._indptr and indices is self._indices:
            return True
        return (
            int(a_lower.nnz) == self.nnz
            and np.array_equal(indptr, self._indptr)
            and np.array_equal(indices, self._indices)
        )


def build_assembly_plan(a_lower: CSCMatrix, sf: SymbolicFactor) -> AssemblyPlan:
    """Compute the scatter plan for ``(a_lower, sf)`` (no caching)."""
    return AssemblyPlan(a_lower, sf)


def get_assembly_plan(a_lower: CSCMatrix, sf: SymbolicFactor) -> AssemblyPlan:
    """Cached :class:`AssemblyPlan` for ``(a_lower, sf)``.

    The plan is stashed on the symbolic factor; a reuse with a different
    permuted lower-triangle pattern (checked with an O(nnz) array
    compare, far cheaper than a rebuild) rebuilds and re-caches.
    """
    plan = getattr(sf, "_assembly_plan", None)
    if plan is None or not plan.matches(a_lower):
        plan = AssemblyPlan(a_lower, sf)
        sf._assembly_plan = plan  # type: ignore[attr-defined]
    return plan


def assemble_front_planned(
    plan: AssemblyPlan,
    a_data: np.ndarray,
    size: int,
    s: int,
    child_updates: list[tuple[int, np.ndarray]],
) -> np.ndarray:
    """Planned equivalent of :func:`assemble_front`.

    ``child_updates`` carries ``(child_sid, U)`` pairs; the child's
    position in this front comes from the plan.  Bitwise identical to
    the unplanned path: same unique scatter destinations, same child
    fold-in order.
    """
    front = np.zeros((size, size), dtype=np.float64)
    front.ravel()[plan.dst[s]] += a_data[plan.src[s]]
    for c, cu in child_updates:
        front[plan.rel_row[c], plan.rel_col[c]] += cu
    return front


def assembly_bytes(
    front_size: int, child_sizes: list[int], word: int = 8
) -> float:
    """Memory traffic of assembling one front: zero-fill of the front
    plus read-modify-write of each child's update block.  Used to charge
    host time for the (memory-bound) assembly phase."""
    traffic = front_size * front_size * word
    for c in child_sizes:
        traffic += 2 * c * c * word  # stream child in, scatter into front
    return float(traffic)
