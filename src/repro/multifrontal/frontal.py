"""Frontal matrix assembly and the extend-add operation.

For supernode ``s`` with row structure ``rows`` (its own ``k`` columns
followed by ``m`` below-diagonal rows), the frontal matrix F is the
``(k+m) x (k+m)`` dense matrix holding

* the original entries ``A[i, j]`` for the supernode's columns (first
  ``k`` columns of F), and
* the accumulated update matrices of all children, scattered through the
  *extend-add* operation: child row indices are located in the parent's
  row list (both sorted, so one ``searchsorted``) and the child's U is
  added at the intersection.

F is kept numerically symmetric (full storage): the lower triangle is
the one that is semantically live, but full storage turns every scatter
into a single vectorized ``np.ix_`` update and lets the dense kernels
run without triangle bookkeeping.
"""

from __future__ import annotations

import numpy as np

from repro.matrices.csc import CSCMatrix
from repro.symbolic.symbolic import SymbolicFactor

__all__ = ["assemble_front", "extend_add", "assembly_bytes"]


def assemble_front(
    a_lower: CSCMatrix,
    sf: SymbolicFactor,
    s: int,
    child_updates: list[tuple[np.ndarray, np.ndarray]],
) -> np.ndarray:
    """Build the frontal matrix of supernode ``s``.

    Parameters
    ----------
    a_lower : CSCMatrix
        Lower triangle of the *permuted* matrix (rows >= column).
    sf : SymbolicFactor
        The symbolic structure.
    s : int
        Supernode id.
    child_updates : list of (rows, U)
        Update matrices of the children: global row indices (sorted) and
        the dense symmetric update block.

    Returns
    -------
    The assembled (k+m) x (k+m) float64 frontal matrix.
    """
    rows = sf.rows[s]
    f_col, l_col = int(sf.super_ptr[s]), int(sf.super_ptr[s + 1])
    size = rows.size
    front = np.zeros((size, size), dtype=np.float64)
    # scatter original entries of the supernode's columns
    for j in range(f_col, l_col):
        ridx, vals = a_lower.column(j)
        keep = ridx >= j
        ridx, vals = ridx[keep], vals[keep]
        pos = np.searchsorted(rows, ridx)
        if pos.size:
            if np.any(pos >= size) or np.any(rows[pos] != ridx):
                raise ValueError(
                    f"supernode {s}: matrix entries outside symbolic pattern"
                )
            jj = j - f_col
            front[pos, jj] += vals
            off = ridx != j  # mirror off-diagonal entries only
            front[jj, pos[off]] += vals[off]
    # fold in the children
    for crows, cu in child_updates:
        extend_add(front, rows, crows, cu)
    return front


def extend_add(
    front: np.ndarray,
    parent_rows: np.ndarray,
    child_rows: np.ndarray,
    child_update: np.ndarray,
) -> None:
    """Scatter-add ``child_update`` into ``front`` (both full symmetric).

    ``child_rows`` must be a subset of ``parent_rows`` — guaranteed by
    the symbolic analysis (and asserted here, because a violation would
    silently corrupt the factorization).
    """
    if child_rows.size == 0:
        return
    idx = np.searchsorted(parent_rows, child_rows)
    if np.any(idx >= parent_rows.size) or np.any(parent_rows[idx] != child_rows):
        raise ValueError("extend-add: child rows not contained in parent front")
    front[np.ix_(idx, idx)] += child_update


def assembly_bytes(
    front_size: int, child_sizes: list[int], word: int = 8
) -> float:
    """Memory traffic of assembling one front: zero-fill of the front
    plus read-modify-write of each child's update block.  Used to charge
    host time for the (memory-bound) assembly phase."""
    traffic = front_size * front_size * word
    for c in child_sizes:
        traffic += 2 * c * c * word  # stream child in, scatter into front
    return float(traffic)
