"""Double-precision iterative refinement.

The paper computes the GPU kernels in single precision ("the lost
accuracy could be readily regained by one or two steps of iterative
refinement using double precision sparse matrix-vector multiplication",
Section III-B).  This module is that loop: the (mixed-precision) factor
is the preconditioner, the residual is computed against the original
float64 matrix, and a couple of corrections restore double-precision
solve accuracy.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.matrices.csc import CSCMatrix
from repro.multifrontal.numeric import NumericFactor
from repro.multifrontal.solve import solve_factored

__all__ = ["RefinementResult", "iterative_refinement"]


@dataclass
class RefinementResult:
    """Solution plus the refinement trace."""

    x: np.ndarray
    iterations: int
    residual_norms: list[float]      # scaled residuals, initial first
    converged: bool

    @property
    def initial_residual(self) -> float:
        return self.residual_norms[0]

    @property
    def final_residual(self) -> float:
        return self.residual_norms[-1]


def _scaled_residual(a: CSCMatrix, x: np.ndarray, b: np.ndarray) -> tuple[np.ndarray, float]:
    r = b - a.matvec(x)
    scale = float(np.abs(b).max()) + float(np.abs(x).max()) + 1e-300
    return r, float(np.abs(r).max() / scale)


def iterative_refinement(
    a: CSCMatrix,
    factor: NumericFactor,
    b: np.ndarray,
    *,
    tol: float = 1e-12,
    max_iter: int = 5,
) -> RefinementResult:
    """Solve ``A x = b`` with the factored preconditioner plus refinement.

    Parameters
    ----------
    a : CSCMatrix
        The original full-symmetric matrix in float64.
    factor : NumericFactor
        Possibly mixed-precision factorization of ``P A P^T``.
    b : array
        Right-hand side.
    tol : float
        Target on the scaled residual ``||b - A x||_inf / (||b||_inf +
        ||x||_inf)``.
    max_iter : int
        Refinement-step budget (the paper needed "one or two steps").
    """
    b = np.asarray(b, dtype=np.float64)
    x = solve_factored(factor, b)
    r, rnorm = _scaled_residual(a, x, b)
    norms = [rnorm]
    it = 0
    while rnorm > tol and it < max_iter:
        dx = solve_factored(factor, r)
        x = x + dx
        r, rnorm = _scaled_residual(a, x, b)
        norms.append(rnorm)
        it += 1
        # stagnation guard: stop when refinement no longer helps
        if len(norms) >= 2 and norms[-1] > 0.5 * norms[-2]:
            break
    return RefinementResult(x=x, iterations=it, residual_norms=norms,
                            converged=rnorm <= tol)
