"""Supernodal triangular solves.

Given the factored panels (``[L1; L2]`` per supernode), solve
``L y = b`` by a forward sweep in supernode order and ``L^T x = y`` by
the reverse sweep.  Within a supernode the k x k unit work is a blocked
substitution (:func:`trsv_lower`); the cross-supernode coupling is a
dense panel gemv gathered/scattered through the front's row list.
"""

from __future__ import annotations

import numpy as np

from repro.multifrontal.numeric import NumericFactor

__all__ = ["trsv_lower", "trsv_lower_t", "solve_factored"]


def trsv_lower(l: np.ndarray, b: np.ndarray, *, block: int = 32) -> np.ndarray:
    """Solve ``L y = b`` with L dense lower triangular (blocked forward
    substitution; O(k^2) with matrix-vector inner steps)."""
    k = l.shape[0]
    y = b.astype(np.float64, copy=True)
    for j0 in range(0, k, block):
        j1 = min(j0 + block, k)
        if j0:
            y[j0:j1] -= l[j0:j1, :j0] @ y[:j0]
        for j in range(j0, j1):
            if j > j0:
                y[j] -= l[j, j0:j] @ y[j0:j]
            y[j] /= l[j, j]
    return y


def trsv_lower_t(l: np.ndarray, b: np.ndarray, *, block: int = 32) -> np.ndarray:
    """Solve ``L^T x = b`` (blocked backward substitution)."""
    k = l.shape[0]
    x = b.astype(np.float64, copy=True)
    blocks = list(range(0, k, block))
    for j0 in reversed(blocks):
        j1 = min(j0 + block, k)
        if j1 < k:
            x[j0:j1] -= l[j1:, j0:j1].T @ x[j1:]
        for j in range(j1 - 1, j0 - 1, -1):
            if j + 1 < j1:
                x[j] -= l[j + 1:j1, j] @ x[j + 1:j1]
            x[j] /= l[j, j]
    return x


def solve_factored(factor: NumericFactor, b: np.ndarray) -> np.ndarray:
    """Solve ``A x = b`` using the computed factorization of ``P A P^T``.

    Applies the permutation, runs the supernodal forward and backward
    sweeps, and permutes back.  ``b`` may be a single right-hand side of
    shape ``(n,)`` or a block of shape ``(n, nrhs)`` — the paper's
    motivation for direct methods is precisely "the potential for
    reusing the factorization when solving multiple systems with the
    same coefficient matrix", and the blocked substitutions handle the
    multi-RHS case with matrix-matrix work.
    """
    sf = factor.sf
    b = np.asarray(b, dtype=np.float64)
    if b.shape[0] != sf.n or b.ndim not in (1, 2):
        raise ValueError(
            f"rhs must have shape ({sf.n},) or ({sf.n}, nrhs), got {b.shape}"
        )
    y = b[sf.perm].copy()          # y = P b

    # forward: L y' = y
    for s in range(sf.n_supernodes):
        f = int(sf.super_ptr[s])
        k = sf.width(s)
        rows = sf.rows[s]
        panel = factor.panels[s]
        l1 = panel[:k, :]
        y[f:f + k] = trsv_lower(l1, y[f:f + k])
        if rows.size > k:
            y[rows[k:]] -= panel[k:, :] @ y[f:f + k]

    # backward: L^T x = y'
    for s in range(sf.n_supernodes - 1, -1, -1):
        f = int(sf.super_ptr[s])
        k = sf.width(s)
        rows = sf.rows[s]
        panel = factor.panels[s]
        if rows.size > k:
            y[f:f + k] -= panel[k:, :].T @ y[rows[k:]]
        y[f:f + k] = trsv_lower_t(panel[:k, :], y[f:f + k])

    x = np.empty_like(y)
    x[sf.perm] = y                  # x = P^T y
    return x
