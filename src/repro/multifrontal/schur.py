"""Partial factorization / Schur complement (extension).

Eliminating only the leading columns of ``P A P^T`` and returning the
*Schur complement* of the rest is a textbook multifrontal capability
(domain decomposition, static condensation, coupling sparse interiors
to dense interface solvers).  The multifrontal method makes it almost
free: stop the postorder walk at the boundary and merge the surviving
update matrices — they *are* the Schur complement contributions.

``partial_factorize`` eliminates every supernode whose columns fall
below ``n_eliminate`` (the boundary is snapped to a supernode edge) and
returns the factored interior plus the dense Schur complement of the
remaining columns, with the same per-call policy machinery (and
simulated timing) as the full driver.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.gpu.allocator import DeviceMemoryError
from repro.gpu.clock import TaskGraph, schedule_graph
from repro.gpu.device import SimulatedNode
from repro.matrices.csc import CSCMatrix
from repro.multifrontal.frontal import assemble_front, assembly_bytes, extend_add
from repro.multifrontal.numeric import FURecord
from repro.policies.base import Policy, PolicyP1, Worker
from repro.symbolic.symbolic import SymbolicFactor, factor_update_flops

__all__ = ["PartialFactorization", "partial_factorize", "solve_with_schur"]


@dataclass
class PartialFactorization:
    """Result of a partial multifrontal factorization.

    Attributes
    ----------
    n_eliminated : int
        Columns of the permuted matrix actually eliminated (snapped down
        to a supernode boundary from the requested count).
    schur : ndarray
        Dense Schur complement ``A_22 - A_21 A_11^{-1} A_12`` of the
        remaining columns, in permuted order.
    panels : dict
        Factor panels of the eliminated supernodes (supernode id ->
        (rows x k) array), enough to resume or to solve with the
        interior block.
    records : list of FURecord
        Per-call instrumentation of the eliminated part.
    makespan : float
        Simulated seconds of the partial factorization.
    perm : ndarray
        The overall permutation (from the symbolic factorization).
    """

    n_eliminated: int
    schur: np.ndarray
    panels: dict[int, np.ndarray]
    records: list[FURecord]
    makespan: float
    perm: np.ndarray

    @property
    def schur_order(self) -> int:
        return int(self.schur.shape[0])


def partial_factorize(
    a: CSCMatrix,
    sf: SymbolicFactor,
    policy: Policy,
    n_eliminate: int,
    *,
    node: SimulatedNode | None = None,
) -> PartialFactorization:
    """Eliminate the leading ``<= n_eliminate`` permuted columns and
    return the Schur complement of the rest.

    The boundary snaps *down* to the nearest supernode edge so whole
    supernodes are eliminated (use ``sf.super_ptr`` to pick an exact
    boundary).  ``n_eliminate = sf.n`` reproduces the full
    factorization's update-free terminal state with an empty Schur
    complement.
    """
    if not 0 <= n_eliminate <= sf.n:
        raise ValueError("n_eliminate out of range")
    if node is None:
        node = SimulatedNode(n_cpus=1, n_gpus=1)
    worker = Worker(node.cpus[0].engine, node.gpus[0] if node.gpus else None)

    # snap the boundary to a supernode edge
    boundary = int(np.searchsorted(sf.super_ptr, n_eliminate, side="right")) - 1
    n_elim_cols = int(sf.super_ptr[boundary])
    last_super = boundary  # supernodes [0, boundary) are eliminated

    a_perm = a.permute_symmetric(sf.perm)
    a_lower = a_perm.lower_triangle()
    kids = sf.schildren()
    p1 = PolicyP1()

    n = sf.n
    n_keep = n - n_elim_cols
    schur = np.zeros((n_keep, n_keep))
    # seed with the original entries of the kept block
    for j in range(n_elim_cols, n):
        ridx, vals = a_lower.column(j)
        keep = ridx >= j
        ridx, vals = ridx[keep], vals[keep]
        jj = j - n_elim_cols
        ii = ridx - n_elim_cols
        schur[ii, jj] += vals
        off = ridx != j
        schur[jj, ii[off]] += vals[off]

    updates: dict[int, tuple[np.ndarray, np.ndarray]] = {}
    final_task: dict[int, object] = {}
    records: list[FURecord] = []
    panels_store: dict[int, np.ndarray] = {}

    for s in sf.spost:
        s = int(s)
        if s >= last_super:
            continue
        rows = sf.rows[s]
        k = sf.width(s)
        m = rows.size - k
        child_ids = [c for c in kids[s] if c < last_super]
        child_updates = [updates.pop(c) for c in child_ids if c in updates]
        front = assemble_front(a_lower, sf, s, child_updates)
        t_asm = node.model.host_memory_time(
            assembly_bytes(rows.size, [cr.size for cr, _ in child_updates])
        )
        g = TaskGraph()
        deps = tuple(final_task[c] for c in child_ids if c in final_task)
        asm = g.add(f"assemble:{s}", worker.cpu_engine, t_asm, deps, "assemble")
        schedule_graph(g, engines=node.engines)
        base = policy.resolve(m, k, worker) if hasattr(policy, "resolve") else policy
        try:
            execution = base.execute(front, k, worker, node, deps=(asm,))
        except DeviceMemoryError:
            base = PolicyP1()
            execution = base.execute(front, k, worker, node, deps=(asm,))
        final_task[s] = execution.plan.final
        records.append(
            FURecord(
                sid=s, m=m, k=k, policy=base.name,
                start=execution.start, end=execution.end,
                components=execution.plan.duration_by_category(),
                flops=factor_update_flops(m, k),
            )
        )
        panel = front[:, :k].copy()
        if m > 0:
            u = front[k:, k:].copy()
            urows = rows[k:]
            parent = int(sf.sparent[s])
            if 0 <= parent < last_super:
                updates[s] = (urows, u)
            else:
                # the update reaches the kept block: fold it into the
                # Schur complement (all its rows are >= the boundary)
                if urows.min() < n_elim_cols:
                    raise AssertionError(
                        "update of an eliminated supernode reaches back "
                        "into the eliminated block"
                    )
                extend_add(
                    schur,
                    np.arange(n_elim_cols, n, dtype=np.int64),
                    urows,
                    u,
                )
        panels_store[s] = panel  # type: ignore[name-defined]

    return PartialFactorization(
        n_eliminated=n_elim_cols,
        schur=schur,
        panels=panels_store,  # type: ignore[name-defined]
        records=records,
        makespan=node.now,
        perm=sf.perm,
    )


def solve_with_schur(
    pf: PartialFactorization,
    sf: SymbolicFactor,
    b: np.ndarray,
) -> np.ndarray:
    """Solve ``A x = b`` from a partial factorization: interior sweeps
    through the stored panels, a dense solve on the Schur complement for
    the interface, and the interior back-substitution — the classic
    static-condensation solve of domain decomposition.

    Equivalent to a full solve (tested against it); useful when the same
    interface system couples to something external (another subdomain, a
    dense boundary-element block).
    """
    b = np.asarray(b, dtype=np.float64)
    if b.shape != (sf.n,):
        raise ValueError(f"rhs must have shape ({sf.n},)")
    from repro.multifrontal.solve import trsv_lower, trsv_lower_t

    ne = pf.n_eliminated
    boundary = int(np.searchsorted(sf.super_ptr, ne, side="right")) - 1
    y = b[sf.perm].copy()

    # forward sweep over the eliminated supernodes: after this,
    # y[:ne] = L11^{-1} (P b)_1 and y[ne:] = b_2 - L21 y_1
    for s in range(boundary):
        f = int(sf.super_ptr[s])
        k = sf.width(s)
        panel = pf.panels[s]
        rows = sf.rows[s]
        y[f:f + k] = trsv_lower(panel[:k, :], y[f:f + k])
        if rows.size > k:
            y[rows[k:]] -= panel[k:, :] @ y[f:f + k]

    # dense interface solve: S x_2 = y_2
    if ne < sf.n:
        y[ne:] = np.linalg.solve(pf.schur, y[ne:])

    # backward sweep: x_1 = L11^{-T} (y_1 - L21^T x_2)
    for s in range(boundary - 1, -1, -1):
        f = int(sf.super_ptr[s])
        k = sf.width(s)
        panel = pf.panels[s]
        rows = sf.rows[s]
        if rows.size > k:
            y[f:f + k] -= panel[k:, :].T @ y[rows[k:]]
        y[f:f + k] = trsv_lower_t(panel[:k, :], y[f:f + k])

    x = np.empty_like(y)
    x[sf.perm] = y
    return x
