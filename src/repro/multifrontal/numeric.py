"""Numeric multifrontal factorization driver (serial / single worker).

Walks the supernodal tree in postorder; per supernode: assemble the
front (charging host memory time), resolve the placement policy for its
(m, k), execute the factor-update (real numerics + simulated task
scheduling on the node's engines), stash the update matrix for the
parent, and record the call for the analysis layer.

The simulated makespan of the whole factorization is the node's final
engine time; per-call records carry the per-component busy times that
Figures 2/5/6 and Table IV are built from.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.dense.kernels import NotPositiveDefiniteError
from repro.gpu.allocator import DeviceMemoryError
from repro.gpu.device import SimulatedNode
from repro.matrices.csc import CSCMatrix
from repro.multifrontal.batched import (
    BatchGroup,
    BatchParams,
    batched_factor_update,
    resolve_batchable_groups,
)
from repro.multifrontal.frontal import (
    assemble_front_planned,
    assembly_bytes,
    get_assembly_plan,
)
from repro.policies.base import Policy, PolicyP1, Worker
from repro.symbolic.symbolic import SymbolicFactor, factor_update_flops

__all__ = ["FURecord", "NumericFactor", "factorize_numeric", "replay_factorize", "ReplayResult"]


@dataclass(frozen=True)
class FURecord:
    """Instrumentation record of one factor-update call."""

    sid: int
    m: int
    k: int
    policy: str
    start: float
    end: float
    components: dict[str, float]     # busy seconds per category
    flops: tuple[float, float, float]  # (N_P, N_T, N_S)

    @property
    def elapsed(self) -> float:
        return self.end - self.start

    @property
    def total_flops(self) -> float:
        return float(sum(self.flops))


@dataclass
class NumericFactor:
    """The computed factor plus everything the analysis layer wants."""

    sf: SymbolicFactor
    panels: list[np.ndarray]        # per-supernode (rows x k) [L1; L2]
    records: list[FURecord]
    makespan: float                 # simulated seconds, end-to-end
    node: SimulatedNode
    peak_update_bytes: int = 0
    assembly_seconds: float = 0.0
    #: batched small-front execution: stacked calls issued / fronts they
    #: covered (both 0 when batching was off or found nothing to group)
    batch_tasks: int = 0
    batched_fronts: int = 0

    @property
    def n(self) -> int:
        return self.sf.n

    @property
    def task_dispatches(self) -> int:
        """Number of per-front work dispatches the factorization issued:
        every unbatched supernode is one dispatch, every batch group one."""
        return self.sf.n_supernodes - self.batched_fronts + self.batch_tasks

    def simulated_time(self) -> float:
        return self.makespan

    def l_matrix(self) -> CSCMatrix:
        """Materialize L as a sparse matrix (mainly for tests/validation)."""
        rows_all, cols_all, vals_all = [], [], []
        for s in range(self.sf.n_supernodes):
            f = int(self.sf.super_ptr[s])
            k = self.sf.width(s)
            rows = self.sf.rows[s]
            panel = self.panels[s]
            for j in range(k):
                rr = rows[j:]
                rows_all.append(rr)
                cols_all.append(np.full(rr.size, f + j, dtype=np.int64))
                vals_all.append(panel[j:, j])
        return CSCMatrix.from_coo(
            np.concatenate(rows_all),
            np.concatenate(cols_all),
            np.concatenate(vals_all),
            (self.n, self.n),
        )

    def log_determinant(self) -> float:
        """``log det A = 2 * sum(log diag(L))`` — free with the factor
        (one of the classic byproducts of a direct method)."""
        total = 0.0
        for s in range(self.sf.n_supernodes):
            k = self.sf.width(s)
            d = np.diagonal(self.panels[s][:k, :k])
            if np.any(d <= 0):
                raise ValueError("factor has non-positive pivots")
            total += float(np.log(d).sum())
        return 2.0 * total

    def residual_norm(self, a: CSCMatrix) -> float:
        """``max |P A P^T - L L^T|`` via a randomized probe: compares
        ``L (L^T v)`` with ``(P A P^T) v`` for a few vectors (avoids
        materializing L L^T for large problems)."""
        ap = a.permute_symmetric(self.sf.perm)
        l = self.l_matrix()
        rng = np.random.default_rng(7)
        worst = 0.0
        for _ in range(3):
            v = rng.normal(size=self.n)
            lhs = l.matvec(l.rmatvec(v))
            rhs = ap.matvec(v)
            denom = np.abs(rhs).max() + 1.0
            worst = max(worst, float(np.abs(lhs - rhs).max() / denom))
        return worst


def factorize_numeric(
    a: CSCMatrix,
    sf: SymbolicFactor,
    policy: Policy,
    *,
    node: SimulatedNode | None = None,
    spost: "np.ndarray | None" = None,
    batching: BatchParams | None = None,
) -> NumericFactor:
    """Factor ``P A P^T = L L^T`` under ``policy`` on a (possibly fresh)
    simulated node, serially on worker 0.

    Parameters
    ----------
    a : CSCMatrix
        The original SPD matrix (full symmetric or lower storage).
    sf : SymbolicFactor
        Result of :func:`repro.symbolic.symbolic_factorize` on ``a``.
    policy : Policy
        A base policy or hybrid selector.
    node : SimulatedNode, optional
        Simulated hardware; defaults to one CPU + one GPU with the
        Tesla-T10 calibration.
    spost : array, optional
        Alternative supernode schedule (must be a valid postorder, e.g.
        from :func:`repro.symbolic.stack.stack_minimizing_postorder`);
        defaults to ``sf.spost``.
    batching : BatchParams, optional
        Batch same-shape leaf fronts at or below ``front_cutoff`` rows
        into single stacked kernel calls (host P1 groups only; numerics
        are bit-identical to the per-front path).  Default: off.
    """
    if node is None:
        node = SimulatedNode(n_cpus=1, n_gpus=1)
    worker = Worker(node.cpus[0].engine, node.gpus[0] if node.gpus else None)

    a_perm = a.permute_symmetric(sf.perm)
    a_lower = a_perm.lower_triangle()

    n_super = sf.n_supernodes
    panels: list[np.ndarray | None] = [None] * n_super
    updates: dict[int, np.ndarray] = {}
    final_task: dict[int, object] = {}
    records: list[FURecord] = []
    kids = sf.schildren()
    live_update_bytes = 0
    peak_update_bytes = 0
    assembly_seconds = 0.0
    # index construction (scatter destinations, extend-add positions) is
    # pattern-only work: precomputed once and cached on sf, so repeated
    # factorizations of the same structure skip it entirely
    plan = get_assembly_plan(a_lower, sf)
    a_data = a_lower.data

    from repro.gpu.clock import TaskGraph, schedule_graph

    groups, batch_of = resolve_batchable_groups(sf, policy, batching, worker)
    batched_fronts = sum(len(g) for g in groups)
    batch_tasks = 0
    #: per-member (panel, update) produced by a stacked group execution,
    #: consumed when the member's turn comes in the postorder walk
    batch_results: dict[int, tuple[np.ndarray, np.ndarray | None]] = {}
    batch_span: dict[tuple[int, int], tuple[object, float, float, dict]] = {}

    def run_batch(g: BatchGroup) -> None:
        nonlocal batch_tasks, assembly_seconds
        b = len(g)
        stack = np.empty((b, g.size, g.size), dtype=np.float64)
        for i, sid in enumerate(g.sids):
            stack[i] = assemble_front_planned(plan, a_data, g.size, sid, [])
        # one dispatched task chain for the whole group: assembly of all
        # members, then the P1 kernel sequence at B-scaled durations
        t_asm = b * node.model.host_memory_time(assembly_bytes(g.size, []))
        graph = TaskGraph()
        tag = f"batch:{g.size}x{g.k}"
        asm = graph.add(f"assemble:{tag}", worker.cpu_engine, t_asm, (), "assemble")
        t_potrf = node.model.kernel_time("cpu", "potrf", k=g.k)
        last = graph.add(
            f"potrf:{tag}", worker.cpu_engine, b * t_potrf, (asm,), "potrf"
        )
        single = {"potrf": t_potrf}
        if g.m > 0:
            t_trsm = node.model.kernel_time("cpu", "trsm", m=g.m, k=g.k)
            t_syrk = node.model.kernel_time("cpu", "syrk", m=g.m, k=g.k)
            t1 = graph.add(
                f"trsm:{tag}", worker.cpu_engine, b * t_trsm, (last,), "trsm"
            )
            last = graph.add(
                f"syrk:{tag}", worker.cpu_engine, b * t_syrk, (t1,), "syrk"
            )
            single.update(trsm=t_trsm, syrk=t_syrk)
        schedule_graph(graph, engines=node.engines)
        assembly_seconds += t_asm
        batch_tasks += 1
        batched_factor_update(stack, g.k, g.sids)
        for i, sid in enumerate(g.sids):
            u = stack[i, g.k:, g.k:].copy() if g.m > 0 else None
            batch_results[sid] = (stack[i, :, :g.k].copy(), u)
        start = min(t.start for t in graph.tasks)
        batch_span[(g.size, g.k)] = (last, start, last.end, single)

    schedule = sf.spost if spost is None else np.asarray(spost, dtype=np.int64)
    for s in schedule:
        s = int(s)
        if s in batch_of:
            g = batch_of[s]
            if s not in batch_results:
                run_batch(g)
            panel, u = batch_results.pop(s)
            final, start, end, single = batch_span[(g.size, g.k)]
            final_task[s] = final
            panels[s] = panel
            if u is not None:
                updates[s] = u
                live_update_bytes += u.size * 8
                peak_update_bytes = max(peak_update_bytes, live_update_bytes)
            records.append(
                FURecord(
                    sid=s, m=g.m, k=g.k, policy="P1",
                    start=start, end=end, components=dict(single),
                    flops=factor_update_flops(g.m, g.k),
                )
            )
            continue
        rows = sf.rows[s]
        k = sf.width(s)
        m = rows.size - k
        child_ids = kids[s]
        child_updates = [(c, updates.pop(c)) for c in child_ids if c in updates]
        live_update_bytes -= sum(u.size * 8 for _, u in child_updates)

        front = assemble_front_planned(
            plan, a_data, rows.size, s, child_updates
        )

        # charge assembly time on the host engine
        t_asm = node.model.host_memory_time(
            assembly_bytes(rows.size, [u.shape[0] for _, u in child_updates])
        )
        g = TaskGraph()
        deps = tuple(final_task[c] for c in child_ids if c in final_task)
        asm_task = g.add(f"assemble:{s}", worker.cpu_engine, t_asm, deps, "assemble")
        schedule_graph(g, engines=node.engines)
        assembly_seconds += t_asm

        base = policy.resolve(m, k, worker) if hasattr(policy, "resolve") else policy
        try:
            execution = base.execute(front, k, worker, node, deps=(asm_task,))
        except DeviceMemoryError:
            # the front does not fit on the device ("the memory
            # limitations of GPU ... requires deployment and coordination
            # among multiple CPUs and GPUs to handle large matrices",
            # Section IV-B) — fall back to the host for this call
            base = PolicyP1()
            execution = base.execute(front, k, worker, node, deps=(asm_task,))
        except NotPositiveDefiniteError as exc:
            f_col = int(sf.super_ptr[s])
            raise NotPositiveDefiniteError(
                f"matrix is not positive definite: Cholesky broke down in "
                f"supernode {s} (permuted columns {f_col}..{f_col + k - 1}, "
                f"original column ~{int(sf.perm[f_col])}): {exc}"
            ) from exc
        final_task[s] = execution.plan.final

        panels[s] = front[:, :k].copy()
        if m > 0:
            u = front[k:, k:].copy()
            updates[s] = u
            live_update_bytes += u.size * 8
            peak_update_bytes = max(peak_update_bytes, live_update_bytes)

        records.append(
            FURecord(
                sid=s,
                m=m,
                k=k,
                policy=base.name,
                start=execution.start,
                end=execution.end,
                components=execution.plan.duration_by_category(),
                flops=factor_update_flops(m, k),
            )
        )

    if updates:
        raise AssertionError("unconsumed update matrices: symbolic tree broken")

    return NumericFactor(
        sf=sf,
        panels=[p for p in panels],  # type: ignore[misc]
        records=records,
        makespan=node.now,
        node=node,
        peak_update_bytes=peak_update_bytes,
        assembly_seconds=assembly_seconds,
        batch_tasks=batch_tasks,
        batched_fronts=batched_fronts,
    )


@dataclass
class ReplayResult:
    """Timing-only walk of a factorization (no floating-point work).

    Produced by :func:`replay_factorize`: identical scheduling to
    :func:`factorize_numeric` — same task graphs, same engine contention,
    same records — at a small fraction of the cost.  The benchmark
    harness uses this for policy comparisons; numeric correctness is
    established separately by the test suite and the validation bench.
    """

    sf: SymbolicFactor
    records: list[FURecord]
    makespan: float
    node: SimulatedNode
    assembly_seconds: float = 0.0

    def simulated_time(self) -> float:
        return self.makespan


def replay_factorize(
    sf: SymbolicFactor,
    policy: Policy,
    *,
    node: SimulatedNode | None = None,
    spost: "np.ndarray | None" = None,
) -> ReplayResult:
    """Walk the supernodal tree charging simulated time under ``policy``
    without performing numerics.

    The task graphs are exactly those :func:`factorize_numeric` builds
    (same ``Policy.plan`` calls, same assembly charges, same engine
    timelines), so the resulting makespan and per-call records match a
    numeric run; only the frontal matrices are never touched.
    """
    from repro.gpu.clock import TaskGraph, schedule_graph

    if node is None:
        node = SimulatedNode(n_cpus=1, n_gpus=1)
    worker = Worker(node.cpus[0].engine, node.gpus[0] if node.gpus else None)

    kids = sf.schildren()
    final_task: dict[int, object] = {}
    records: list[FURecord] = []
    assembly_seconds = 0.0

    schedule = sf.spost if spost is None else np.asarray(spost, dtype=np.int64)
    for s in schedule:
        s = int(s)
        rows = sf.rows[s]
        k = sf.width(s)
        m = rows.size - k
        child_ids = kids[s]

        t_asm = node.model.host_memory_time(
            assembly_bytes(
                rows.size, [sf.rows[c].size - sf.width(c) for c in child_ids]
            )
        )
        g = TaskGraph()
        deps = tuple(final_task[c] for c in child_ids if c in final_task)
        asm_task = g.add(f"assemble:{s}", worker.cpu_engine, t_asm, deps, "assemble")
        assembly_seconds += t_asm

        base = policy.resolve(m, k, worker) if hasattr(policy, "resolve") else policy
        try:
            plan = base.plan(m, k, worker, node.model, g, deps=(asm_task,))
        except DeviceMemoryError:
            base = PolicyP1()
            g = TaskGraph()
            asm_task = g.add(
                f"assemble:{s}", worker.cpu_engine, t_asm, deps, "assemble"
            )
            plan = base.plan(m, k, worker, node.model, g, deps=(asm_task,))
        schedule_graph(g, engines=node.engines)
        final_task[s] = plan.final

        start = min(t.start for t in g.tasks)
        records.append(
            FURecord(
                sid=s, m=m, k=k, policy=base.name,
                start=start, end=plan.final.end,
                components=plan.duration_by_category(),
                flops=factor_update_flops(m, k),
            )
        )

    return ReplayResult(
        sf=sf, records=records, makespan=node.now, node=node,
        assembly_seconds=assembly_seconds,
    )
