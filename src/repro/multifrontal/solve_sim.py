"""Solve-phase timing model (extension).

The paper accelerates the *factorization*; the forward/backward solves
stay on the host.  This module prices the solve phase on both devices
so that choice can be examined — the interesting structure being that
triangular solves are **bandwidth-bound** (every factor entry is read
once per sweep and does ~2 flops with it), so a GPU pays off only when

* the factor panels are already device-resident (amortized upload, e.g.
  after a P4/device-resident factorization), and/or
* many right-hand sides are solved at once, turning the panel sweeps
  into compute-bound multi-RHS gemms.

``simulate_solve`` returns simulated seconds for one forward+backward
sweep over ``nrhs`` right-hand sides.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gpu.perfmodel import PerfModel
from repro.symbolic.symbolic import SymbolicFactor

__all__ = ["SolveEstimate", "simulate_solve"]


@dataclass(frozen=True)
class SolveEstimate:
    """Breakdown of one simulated solve."""

    seconds: float
    panel_bytes: float          # factor traffic per sweep (both sweeps incl.)
    transfer_seconds: float     # PCIe share (GPU only)
    compute_seconds: float
    device: str
    nrhs: int


def _factor_bytes(sf: SymbolicFactor, word: int) -> float:
    """Stored factor volume (read once per sweep)."""
    return float(sf.nnz_factor) * word


def simulate_solve(
    sf: SymbolicFactor,
    model: PerfModel,
    *,
    nrhs: int = 1,
    device: str = "cpu",
    panels_resident: bool = False,
) -> SolveEstimate:
    """Price one forward+backward solve.

    Parameters
    ----------
    device : "cpu" or "gpu"
    panels_resident : bool
        GPU only — the factor already lives in device memory (it was
        produced there), so no panel upload is charged.
    """
    if nrhs < 1:
        raise ValueError("nrhs must be positive")
    if device not in ("cpu", "gpu"):
        raise ValueError("device must be 'cpu' or 'gpu'")
    flops = 4.0 * sf.nnz_factor * nrhs          # 2 sweeps x 2 flops/entry
    if device == "cpu":
        word = 8
        bytes_ = 2.0 * _factor_bytes(sf, word)  # two sweeps
        t_mem = model.host_memory_time(bytes_)
        # flops ride along with the memory traffic on the host; charge
        # the max of the two bounds
        t_flop = flops / model.cpu["gemm"].peak
        t = max(t_mem, t_flop)
        return SolveEstimate(t, bytes_, 0.0, t, "cpu", nrhs)
    word = model.gpu_word
    bytes_ = 2.0 * _factor_bytes(sf, word)
    # device sweeps run at device-memory bandwidth; per-supernode kernel
    # launches add latency on the long dependent chain
    dev_bw = model.gpu_spec.device_bandwidth_gbs * 1e9
    launch = 2.0 * sf.n_supernodes * model.gpu["gemm"].launch_latency
    t_compute = max(bytes_ / dev_bw, flops / model.gpu["gemm"].peak) + launch
    t_transfer = 0.0
    if not panels_resident:
        t_transfer += model.transfer_time(_factor_bytes(sf, word), pinned=True)
    # rhs down, solution back
    rhs_bytes = sf.n * nrhs * word
    t_transfer += model.transfer_time(rhs_bytes, pinned=True)
    t_transfer += model.transfer_time(rhs_bytes, pinned=True)
    return SolveEstimate(
        t_compute + t_transfer, bytes_, t_transfer, t_compute, "gpu", nrhs
    )
