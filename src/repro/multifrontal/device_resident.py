"""Device-resident multifrontal factorization (the §VI-C copy optimization).

The paper's multi-GPU runs discovered that "a few copy optimizations
could be made for policy P4.  With the copy optimized version, P4 was
the better policy for even moderately sized frontal matrices."  The
mechanism this module implements is the natural one: when consecutive
supernodes along a tree path both run on the GPU, the child's update
matrix never leaves the device — the extend-add happens *on the GPU*
(at device-memory bandwidth, ~102 GB/s, not PCIe's ~1.4 GB/s), and only
the factored panel comes home.

Pipeline:

1. **placement pass** — a chooser (defaults to device-vs-host by total
   flops; any callable ``(m, k) -> bool`` works, e.g. a trained
   classifier thresholded on P4) assigns each supernode to the device
   or the host *before* the walk, because a child's transfer needs
   depend on its parent's placement;
2. **walk** — per supernode:

   * device-placed: H2D only of the original A entries and of any
     host-resident child updates; device-side extend-add; the blocked
     panel factorization (Figure 9); D2H of the factored panel; the
     update matrix *stays resident* (and stays float32);
   * host-placed: D2H of any device-resident child updates first, then
     the host path (P1);

3. **memory accounting** — resident updates live in the device pool;
   when capacity would be exceeded the largest resident update is
   spilled (D2H + eviction), so the driver degrades gracefully instead
   of failing, addressing the Section IV-B memory-limitation caveat.

Numerics are faithful: device-resident data is float32 end to end, so
update matrices accumulated across several generations of GPU
supernodes carry compounded single-precision error — iterative
refinement still recovers full accuracy, which the tests check.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.dense.blocked import blocked_cholesky_panels, default_panel_width
from repro.gpu.clock import TaskGraph, schedule_graph
from repro.gpu.cublas import panel_kernel_sequence
from repro.gpu.device import SimulatedNode
from repro.matrices.csc import CSCMatrix
from repro.multifrontal.frontal import extend_add
from repro.multifrontal.numeric import FURecord, NumericFactor
from repro.policies.base import PolicyP1, Worker
from repro.symbolic.symbolic import SymbolicFactor, factor_update_flops

__all__ = [
    "ResidencyStats",
    "flops_placement",
    "factorize_resident",
    "replay_resident",
]


class _ShapeOnly:
    """Stand-in for an update matrix in timing-only replays: carries the
    size/dtype bookkeeping the residency logic needs, no storage."""

    __slots__ = ("size", "itemsize")

    def __init__(self, m: int, itemsize: int):
        self.size = m * m
        self.itemsize = itemsize

    @property
    def nbytes(self) -> int:
        return self.size * self.itemsize

    def astype(self, dtype) -> "_ShapeOnly":
        m = int(round(self.size ** 0.5))
        return _ShapeOnly(m, np.dtype(dtype).itemsize)


@dataclass
class ResidencyStats:
    """Transfer and residency accounting of one device-resident run."""

    n_device_supernodes: int = 0
    n_host_supernodes: int = 0
    resident_reuse_bytes: float = 0.0    # update bytes that never crossed PCIe
    h2d_bytes: float = 0.0
    d2h_bytes: float = 0.0
    n_spills: int = 0
    peak_resident_bytes: int = 0


def flops_placement(threshold: float = 2e6) -> Callable[[int, int], bool]:
    """Default placement: device when the call's total flops exceed
    ``threshold`` (the paper's observation that copy-optimized P4 wins
    "for even moderately sized frontal matrices")."""

    def choose(m: int, k: int) -> bool:
        return sum(factor_update_flops(m, k)) >= threshold

    return choose


def factorize_resident(
    a: CSCMatrix,
    sf: SymbolicFactor,
    *,
    node: SimulatedNode | None = None,
    place_on_device: Callable[[int, int], bool] | None = None,
    numerics: bool = True,
) -> tuple[NumericFactor, ResidencyStats]:
    """Factor with device-resident update matrices.

    Returns the :class:`NumericFactor` (same contract as
    :func:`factorize_numeric`) plus the residency statistics.  With
    ``numerics=False`` (or via :func:`replay_resident`) only the timing
    walk runs — same task graphs, no floating point — enabling
    paper-scale synthetic workloads where no matrix exists.
    """
    if node is None:
        node = SimulatedNode(n_cpus=1, n_gpus=1)
    if not node.gpus:
        raise ValueError("device-resident factorization needs a GPU")
    model = node.model
    gpu = node.gpus[0]
    worker = Worker(node.cpus[0].engine, gpu)
    word = model.gpu_word
    capacity = gpu.spec.memory_bytes

    chooser = place_on_device if place_on_device is not None else flops_placement()
    n_super = sf.n_supernodes
    on_device = np.zeros(n_super, dtype=bool)
    for s in range(n_super):
        m, k = sf.update_size(s), sf.width(s)
        on_device[s] = bool(chooser(m, k)) and m >= 0

    if numerics:
        a_perm = a.permute_symmetric(sf.perm)
        a_lower = a_perm.lower_triangle()
    else:
        a_lower = a.lower_triangle() if a is not None else None
    kids = sf.schildren()
    p1 = PolicyP1()

    panels: list[np.ndarray | None] = [None] * n_super
    # update value + where it lives: ("host", fp64) or ("dev", fp32)
    updates: dict[int, tuple[np.ndarray, np.ndarray, str]] = {}
    final_task: dict[int, object] = {}
    records: list[FURecord] = []
    stats = ResidencyStats()
    resident_bytes = 0
    assembly_seconds = 0.0

    def transfer_task(g, name, engine, nbytes, deps):
        return g.add(name, engine, model.transfer_time(nbytes, pinned=True),
                     deps, "copy")

    for s in sf.spost:
        s = int(s)
        rows = sf.rows[s]
        k = sf.width(s)
        m = rows.size - k
        size = rows.size
        child_ids = kids[s]
        deps = tuple(final_task[c] for c in child_ids if c in final_task)
        g = TaskGraph()

        child_data = [updates.pop(c) for c in child_ids if c in updates]
        for crows, cu, loc in child_data:
            if loc == "dev":
                resident_bytes -= cu.nbytes

        if on_device[s]:
            stats.n_device_supernodes += 1
            # --- assemble on the device ---------------------------------
            if numerics:
                front32 = np.zeros((size, size), dtype=np.float32)
                _scatter_a_entries(front32, a_lower, sf, s)
            a_bytes = (
                _a_entry_bytes(a_lower, sf, s, word)
                if a_lower is not None
                else 2.0 * size * word  # structural estimate
            )
            last = transfer_task(g, "h2d:A", gpu.h2d_engine, a_bytes, deps)
            stats.h2d_bytes += a_bytes
            dev_asm_bytes = 2.0 * size * size * word
            for crows, cu, loc in child_data:
                if loc == "host":
                    nbytes = cu.size * word
                    last = transfer_task(
                        g, "h2d:child", gpu.h2d_engine, nbytes, (last,)
                    )
                    stats.h2d_bytes += nbytes
                    if numerics:
                        extend_add(front32, rows, crows, cu.astype(np.float32))
                else:
                    stats.resident_reuse_bytes += cu.nbytes
                    if numerics:
                        extend_add(front32, rows, crows, cu)
                dev_asm_bytes += 2.0 * cu.size * word
            # device-side extend-add at device memory bandwidth
            t_asm = dev_asm_bytes / (gpu.spec.device_bandwidth_gbs * 1e9)
            asm = g.add("dev-assemble", gpu.compute_engine, t_asm, (last,), "assemble")
            assembly_seconds += t_asm
            # --- factor on the device (Figure 9) -------------------------
            w = default_panel_width(k)
            if numerics:
                blocked_cholesky_panels(front32, k, w, gpu.cublas)
            prev = asm
            for c in panel_kernel_sequence(size, k, w):
                prev = g.add(
                    f"gpu:{c.kernel}", gpu.compute_engine,
                    model.kernel_time("gpu", c.kernel, m=c.m, n=c.n, k=c.k),
                    (prev,), c.kernel,
                )
            # panel comes home; the update stays
            panel_bytes = (k * k + m * k) * word
            t_panel = transfer_task(g, "d2h:L", gpu.d2h_engine, panel_bytes, (prev,))
            stats.d2h_bytes += panel_bytes
            final = g.add("done", worker.cpu_engine, 0.0, (t_panel,), "other")

            panels[s] = front32[:, :k].astype(np.float64) if numerics else None
            if m > 0:
                u32 = (
                    front32[k:, k:].copy() if numerics else _ShapeOnly(m, 4)
                )
                # spill if the resident set would overflow device memory
                while resident_bytes + u32.nbytes > capacity and updates:
                    victim = max(
                        (c for c in updates if updates[c][2] == "dev"),
                        key=lambda c: updates[c][1].nbytes,
                        default=None,
                    )
                    if victim is None:
                        break
                    vr, vu, _ = updates[victim]
                    nbytes = vu.size * word
                    final = transfer_task(
                        g, "d2h:spill", gpu.d2h_engine, nbytes, (final,)
                    )
                    stats.d2h_bytes += nbytes
                    stats.n_spills += 1
                    updates[victim] = (vr, vu.astype(np.float64), "host")
                    resident_bytes -= vu.nbytes
                updates[s] = (rows[k:], u32, "dev")
                resident_bytes += u32.nbytes
                stats.peak_resident_bytes = max(
                    stats.peak_resident_bytes, resident_bytes
                )
            schedule_graph(g, engines=node.engines)
            final_task[s] = final
            comp = g.total_by_category()
        else:
            stats.n_host_supernodes += 1
            # --- bring device children home, assemble and factor on host
            if numerics:
                front = np.zeros((size, size), dtype=np.float64)
                _scatter_a_entries(front, a_lower, sf, s)
            last_deps = list(deps)
            host_asm_bytes = size * size * 8.0
            for crows, cu, loc in child_data:
                if loc == "dev":
                    nbytes = cu.size * word
                    t = transfer_task(
                        g, "d2h:child", gpu.d2h_engine, nbytes, deps
                    )
                    stats.d2h_bytes += nbytes
                    last_deps.append(t)
                    if numerics:
                        extend_add(front, rows, crows, cu.astype(np.float64))
                else:
                    if numerics:
                        extend_add(front, rows, crows, cu)
                host_asm_bytes += 2.0 * cu.size * 8.0
            t_asm = model.host_memory_time(host_asm_bytes)
            asm = g.add(
                "assemble", worker.cpu_engine, t_asm, tuple(last_deps), "assemble"
            )
            assembly_seconds += t_asm
            plan = p1.plan(m, k, worker, model, g, deps=(asm,))
            if numerics:
                p1.apply(front, k, worker)
            schedule_graph(g, engines=node.engines)
            final_task[s] = plan.final
            panels[s] = front[:, :k].copy() if numerics else None
            if m > 0:
                updates[s] = (
                    rows[k:],
                    front[k:, k:].copy() if numerics else _ShapeOnly(m, 8),
                    "host",
                )
            comp = g.total_by_category()

        records.append(
            FURecord(
                sid=s, m=m, k=k,
                policy="P4r" if on_device[s] else "P1",
                start=min(t.start for t in g.tasks),
                end=max(t.end for t in g.tasks),
                components=comp,
                flops=factor_update_flops(m, k),
            )
        )

    if updates:
        raise AssertionError("unconsumed update matrices")
    nf = NumericFactor(
        sf=sf,
        panels=[p for p in panels],  # type: ignore[misc]
        records=records,
        makespan=node.now,
        node=node,
        peak_update_bytes=stats.peak_resident_bytes,
        assembly_seconds=assembly_seconds,
    )
    return nf, stats


def _scatter_a_entries(front, a_lower: CSCMatrix, sf: SymbolicFactor, s: int) -> None:
    rows = sf.rows[s]
    f_col, l_col = int(sf.super_ptr[s]), int(sf.super_ptr[s + 1])
    for j in range(f_col, l_col):
        ridx, vals = a_lower.column(j)
        keep = ridx >= j
        ridx, vals = ridx[keep], vals[keep]
        pos = np.searchsorted(rows, ridx)
        if pos.size and (np.any(pos >= rows.size) or np.any(rows[pos] != ridx)):
            raise ValueError(f"supernode {s}: entries outside symbolic pattern")
        jj = j - f_col
        front[pos, jj] += vals
        off = ridx != j
        front[jj, pos[off]] += vals[off]


def _a_entry_bytes(a_lower: CSCMatrix, sf: SymbolicFactor, s: int, word: int) -> float:
    f_col, l_col = int(sf.super_ptr[s]), int(sf.super_ptr[s + 1])
    nnz = int(a_lower.indptr[l_col] - a_lower.indptr[f_col])
    return float(nnz) * word * 2.0  # values + indices


def replay_resident(
    sf: SymbolicFactor,
    *,
    node: SimulatedNode | None = None,
    place_on_device: Callable[[int, int], bool] | None = None,
) -> tuple[NumericFactor, ResidencyStats]:
    """Timing-only device-resident walk (no matrix, no floating point).

    Same scheduling as :func:`factorize_resident`; the returned
    "factor" carries records and makespan but no panels.
    """
    return factorize_resident(
        None,  # type: ignore[arg-type]
        sf,
        node=node,
        place_on_device=place_on_device,
        numerics=False,
    )
