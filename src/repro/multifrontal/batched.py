"""Batched execution of small same-shape leaf fronts.

Profiles show that after the AssemblyPlan removed scatter overhead, the
remaining hot path of the warm factorize is per-front Python/BLAS
dispatch across thousands of tiny supernodes.  Leaf supernodes (no
children, so no extend-add inputs) whose fronts share one ``(rows, k)``
shape can be stacked into a single 3-D array and factored with *one*
sequence of stacked numpy calls — the same idea A64FX-class sparse
Cholesky codes use for front batching.

Bitwise safety: numpy's stacked ``cholesky``/``matmul`` gufuncs run the
identical LAPACK/BLAS kernel per slice, and the batched triangular solve
below replays :func:`repro.dense.kernels.trsm_right_lower` block for
block with batched matmuls, so every slice of the stacked result is
bit-identical to the per-front host P1 path.  That is asserted by the
``batched-vs-unbatched`` pairs of the verification lattice — batching is
a pure dispatch optimisation, never a numerics change.

Only groups whose resolved policy is the host ``P1`` path are batched;
anything routed to the (float32) device stays on the per-front path.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dense.kernels import NotPositiveDefiniteError, potrf
from repro.symbolic.symbolic import SymbolicFactor

__all__ = [
    "BatchParams",
    "BatchGroup",
    "batch_groups",
    "resolve_batchable_groups",
    "batched_trsm_right_lower",
    "batched_factor_update",
]


@dataclass(frozen=True)
class BatchParams:
    """Controls batched small-front execution.

    Attributes
    ----------
    front_cutoff : int
        Leaf fronts with at most this many rows are candidates for
        batching; 0 (the default) disables batching entirely.
    min_batch : int
        Minimum number of same-shape fronts to form a batch (a batch of
        one is just the per-front path with extra bookkeeping).
    """

    front_cutoff: int = 0
    min_batch: int = 2

    def __post_init__(self) -> None:
        if self.front_cutoff < 0:
            raise ValueError("BatchParams.front_cutoff must be >= 0")
        if self.min_batch < 2:
            raise ValueError("BatchParams.min_batch must be >= 2")

    @property
    def enabled(self) -> bool:
        return self.front_cutoff > 0


@dataclass(frozen=True)
class BatchGroup:
    """One batch: leaf supernodes sharing a front shape.

    ``sids`` is ascending, so stacking order — and therefore the batched
    numerics — is deterministic for a given symbolic factor.
    """

    size: int                # front rows (k + m)
    k: int                   # pivot columns
    sids: tuple[int, ...]

    @property
    def m(self) -> int:
        return self.size - self.k

    def __len__(self) -> int:
        return len(self.sids)


def batch_groups(sf: SymbolicFactor, params: BatchParams) -> list[BatchGroup]:
    """Group batchable leaf supernodes of ``sf`` by front shape.

    Deterministic: members ascend by supernode id within a group and
    groups are ordered by ``(size, k)``.
    """
    if not params.enabled:
        return []
    n_super = sf.n_supernodes
    has_child = np.zeros(n_super, dtype=bool)
    for s in range(n_super):
        p = int(sf.sparent[s])
        if p >= 0:
            has_child[p] = True
    by_shape: dict[tuple[int, int], list[int]] = {}
    for s in range(n_super):
        if has_child[s]:
            continue
        size = int(sf.rows[s].size)
        if size > params.front_cutoff:
            continue
        by_shape.setdefault((size, sf.width(s)), []).append(s)
    return [
        BatchGroup(size=size, k=k, sids=tuple(sids))
        for (size, k), sids in sorted(by_shape.items())
        if len(sids) >= params.min_batch
    ]


def resolve_batchable_groups(
    sf: SymbolicFactor,
    policy,
    params: BatchParams | None,
    worker,
) -> tuple[list[BatchGroup], dict[int, BatchGroup]]:
    """Batch groups whose policy resolves to the host P1 path.

    Groups routed anywhere else (a device policy would change numerics
    and precision) stay on the per-front path.  Returns the kept groups
    and a supernode-id -> group map.
    """
    if params is None or not params.enabled:
        return [], {}
    groups = []
    batch_of: dict[int, BatchGroup] = {}
    for g in batch_groups(sf, params):
        base = (
            policy.resolve(g.m, g.k, worker)
            if hasattr(policy, "resolve")
            else policy
        )
        if base.name != "P1":
            continue
        groups.append(g)
        for sid in g.sids:
            batch_of[sid] = g
    return groups, batch_of


def batched_trsm_right_lower(x: np.ndarray, l: np.ndarray) -> np.ndarray:
    """Stacked ``X L^T = B`` solve: per-slice replay of
    :func:`repro.dense.kernels.trsm_right_lower`.

    ``x`` is ``(B, m, k)``, ``l`` is ``(B, k, k)`` lower triangular.  The
    blocked forward substitution is reproduced step for step with batched
    matmuls so each slice is bit-identical to the 2-D kernel.
    """
    k = l.shape[-1]
    x = x.copy()
    nb = 32
    for j0 in range(0, k, nb):
        j1 = min(j0 + nb, k)
        if j0:
            x[:, :, j0:j1] -= x[:, :, :j0] @ l[:, j0:j1, :j0].transpose(0, 2, 1)
        ljj = l[:, j0:j1, j0:j1]
        for jj in range(j1 - j0):
            if jj:
                x[:, :, j0 + jj] -= (
                    x[:, :, j0:j0 + jj] @ ljj[:, jj, :jj, None]
                )[:, :, 0]
            x[:, :, j0 + jj] /= ljj[:, jj, jj, None]
    return x


def _batched_potrf(blocks: np.ndarray, sids: tuple[int, ...]) -> np.ndarray:
    """Stacked Cholesky; on breakdown, re-runs slices individually so the
    error names the offending supernode like the per-front path does."""
    try:
        return np.linalg.cholesky(blocks)
    except np.linalg.LinAlgError:
        for i, s in enumerate(sids):
            try:
                potrf(blocks[i])
            except NotPositiveDefiniteError as exc:
                raise NotPositiveDefiniteError(
                    f"batched pivot block of supernode {s} is not positive "
                    f"definite: {exc}"
                ) from exc
        raise  # pragma: no cover - stacked failure with no failing slice


def batched_factor_update(fronts: np.ndarray, k: int,
                          sids: tuple[int, ...]) -> None:
    """In-place stacked host P1 factor-update of ``(B, n, n)`` fronts.

    Mirrors ``PolicyP1.apply`` exactly: potrf of the pivot block, panel
    solve, rank-k update of the trailing block — each as one stacked
    call over the batch dimension.
    """
    l1 = _batched_potrf(fronts[:, :k, :k], sids)
    fronts[:, :k, :k] = l1
    if fronts.shape[1] > k:
        l2 = batched_trsm_right_lower(fronts[:, k:, :k], l1)
        fronts[:, k:, :k] = l2
        fronts[:, k:, k:] -= l2 @ l2.transpose(0, 2, 1)
