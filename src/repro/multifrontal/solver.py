"""High-level public API: :class:`SparseCholeskySolver`.

One object drives the whole pipeline the paper describes:

>>> from repro import SparseCholeskySolver
>>> solver = SparseCholeskySolver(a, ordering="nd", policy="model")
>>> solver.analyze().factorize()
>>> x = solver.solve(b)
>>> solver.stats.simulated_seconds     # the quantity the paper reports

Policies may be given by name (``"P1"``..``"P4"``, ``"P4c"``,
``"baseline"``, ``"ideal"``, ``"model"``) or as a
:class:`~repro.policies.base.Policy` instance.  ``policy="model"``
auto-trains a cost-sensitive classifier on synthetic timing data from
the node's performance model (the paper's auto-tuning loop) unless a
trained classifier is supplied.

Two orthogonal execution knobs:

* ``schedule="liu"`` (serial backend only) runs the elimination in
  Liu's stack-minimizing child order instead of the default postorder —
  same factor, lower peak update-stack memory;
* ``backend="static"``/``"dynamic"`` factor through the parallel
  schedulers (:mod:`repro.parallel` / :mod:`repro.runtime`) over a
  worker pool built from this solver's node; ``backend="dynamic"``
  additionally accepts ``memory_budget`` (admission control) and
  ``faults`` (a :class:`repro.runtime.FaultInjector`);
* ``backend="cluster"`` factors through the simulated multi-node fleet
  of :mod:`repro.cluster` (shape via ``cluster``, a
  :class:`repro.cluster.ClusterSpec`; defaults to two ranks matching
  this solver's node shape).  Every backend produces bit-identical
  factors.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.gpu.device import SimulatedNode
from repro.matrices.csc import CSCMatrix
from repro.multifrontal.batched import BatchParams
from repro.multifrontal.numeric import NumericFactor, factorize_numeric
from repro.multifrontal.refine import RefinementResult, iterative_refinement
from repro.multifrontal.solve import solve_factored
from repro.policies.base import Policy, make_policy
from repro.policies.hybrid import BaselineHybrid, IdealHybrid, ModelHybrid
from repro.symbolic.supernodes import AmalgamationParams
from repro.symbolic.symbolic import SymbolicFactor, symbolic_factorize

__all__ = ["SparseCholeskySolver", "FactorizationStats"]


@dataclass(frozen=True)
class FactorizationStats:
    """Summary statistics of a completed factorization."""

    n: int
    nnz_a: int
    nnz_factor: int
    n_supernodes: int
    total_flops: float
    simulated_seconds: float
    assembly_seconds: float
    peak_update_bytes: int
    policy_counts: dict[str, int]

    @property
    def effective_gflops(self) -> float:
        if self.simulated_seconds <= 0:
            return 0.0
        return self.total_flops / self.simulated_seconds / 1e9


class SparseCholeskySolver:
    """Multifrontal Cholesky solver with hybrid CPU-GPU policy scheduling."""

    def __init__(
        self,
        a: CSCMatrix,
        *,
        ordering: str = "nd",
        policy: str | Policy = "P1",
        node: SimulatedNode | None = None,
        amalgamation: AmalgamationParams | None = None,
        classifier=None,
        schedule: str = "post",
        backend: str = "serial",
        memory_budget: int | None = None,
        faults=None,
        cluster=None,
        batching: BatchParams | None = None,
    ):
        if a.n_rows != a.n_cols:
            raise ValueError("matrix must be square")
        if schedule not in ("post", "liu"):
            raise ValueError(f"unknown schedule {schedule!r} (post | liu)")
        if backend not in ("serial", "static", "dynamic", "cluster"):
            raise ValueError(
                f"unknown backend {backend!r} "
                "(serial | static | dynamic | cluster)"
            )
        if schedule == "liu" and backend != "serial":
            raise ValueError(
                "schedule='liu' orders the serial elimination; parallel "
                "backends choose their own execution order"
            )
        if (memory_budget is not None or faults is not None) and backend != "dynamic":
            raise ValueError("memory_budget/faults require backend='dynamic'")
        if cluster is not None and backend != "cluster":
            raise ValueError("cluster spec requires backend='cluster'")
        if batching is not None and backend == "cluster":
            raise ValueError(
                "batching is not supported by backend='cluster' (fronts "
                "are sharded across ranks before grouping could happen)"
            )
        self.a = a if a.is_structurally_symmetric() else a.symmetrize_from_lower()
        self.ordering = ordering
        self.node = node if node is not None else SimulatedNode(n_cpus=1, n_gpus=1)
        self.amalgamation = amalgamation
        self.schedule = schedule
        self.backend = backend
        self.memory_budget = memory_budget
        self.faults = faults
        self.cluster = cluster
        self.batching = batching
        self._policy = self._build_policy(policy, classifier)
        self.symbolic: SymbolicFactor | None = None
        self.factor: NumericFactor | None = None
        #: populated by the parallel backends: the full ParallelResult
        #: (schedule, worker busy times, dynamic runtime counters)
        self.parallel = None

    # ------------------------------------------------------------------
    def _build_policy(self, policy: str | Policy, classifier) -> Policy:
        if isinstance(policy, Policy):
            return policy
        name = policy.lower()
        if name in ("p1", "p2", "p3", "p4", "p4c"):
            return make_policy(policy.upper() if name != "p4c" else "P4c")
        if name == "baseline":
            return BaselineHybrid()
        if name == "ideal":
            return IdealHybrid(self.node.model)
        if name == "model":
            if classifier is None:
                from repro.autotune import train_default_classifier

                classifier = train_default_classifier(self.node.model)
            return ModelHybrid(classifier)
        raise ValueError(f"unknown policy {policy!r}")

    @property
    def policy(self) -> Policy:
        return self._policy

    # ------------------------------------------------------------------
    @classmethod
    def from_symbolic(
        cls,
        a: CSCMatrix,
        symbolic: SymbolicFactor,
        *,
        policy: str | Policy = "P1",
        node: SimulatedNode | None = None,
        classifier=None,
        schedule: str = "post",
        backend: str = "serial",
        memory_budget: int | None = None,
        faults=None,
        cluster=None,
        batching: BatchParams | None = None,
    ) -> "SparseCholeskySolver":
        """Build a solver around an existing symbolic factorization.

        The expensive ordering + analysis step is skipped entirely: only
        the numeric factorization (and solves) remain.  ``symbolic``
        must come from a matrix with the same sparsity pattern as ``a``
        (same canonical full-symmetric structure) — the caller is
        responsible for that invariant; the serving layer guarantees it
        by keying symbolic factors on a canonical pattern hash.
        """
        self = cls(
            a,
            ordering=symbolic.ordering,
            policy=policy,
            node=node,
            amalgamation=symbolic.amalgamation,
            classifier=classifier,
            schedule=schedule,
            backend=backend,
            memory_budget=memory_budget,
            faults=faults,
            cluster=cluster,
            batching=batching,
        )
        if symbolic.n != self.a.n_rows:
            raise ValueError(
                f"symbolic factor is for n={symbolic.n}, matrix has "
                f"n={self.a.n_rows}"
            )
        self.symbolic = symbolic
        return self

    def analyze(self) -> "SparseCholeskySolver":
        """Run ordering + symbolic factorization."""
        self.symbolic = symbolic_factorize(
            self.a, ordering=self.ordering, amalgamation=self.amalgamation
        )
        return self

    def _worker_pool(self):
        """Pool over this solver's node: one worker per host CPU, the
        first ``n_gpus`` of them owning a GPU each (the paper's design
        point of one host thread per GPU)."""
        from repro.parallel.workers import WorkerPool
        from repro.policies.base import Worker

        node = self.node
        workers = [
            Worker(
                node.cpus[i].engine,
                node.gpus[i] if i < len(node.gpus) else None,
            )
            for i in range(len(node.cpus))
        ]
        return WorkerPool(node=node, workers=workers)

    def factorize(self) -> "SparseCholeskySolver":
        """Run the numeric factorization (analyze first if needed)."""
        if self.symbolic is None:
            self.analyze()
        self.node.reset()
        if hasattr(self._policy, "selection_counts"):
            self._policy.selection_counts.clear()
        if self.backend == "serial":
            spost = None
            if self.schedule == "liu":
                from repro.symbolic.stack import stack_minimizing_postorder

                spost = stack_minimizing_postorder(self.symbolic)
            self.factor = factorize_numeric(
                self.a, self.symbolic, self._policy, node=self.node,
                spost=spost, batching=self.batching,
            )
        elif self.backend == "cluster":
            from repro.cluster.runtime import cluster_factorize
            from repro.cluster.topology import ClusterSpec

            spec = self.cluster
            if spec is None:
                spec = ClusterSpec(
                    n_ranks=2,
                    gpus_per_rank=1 if self.node.gpus else 0,
                    model=self.node.model,
                )
            result = cluster_factorize(
                self.a, self.symbolic, self._policy, spec
            )
            self.parallel = result
            self.factor = result.factor
        else:
            from repro.parallel.scheduler import parallel_factorize

            result = parallel_factorize(
                self.a, self.symbolic, self._policy, self._worker_pool(),
                backend=self.backend,
                memory_budget=self.memory_budget,
                faults=self.faults,
                batching=self.batching,
            )
            self.parallel = result
            self.factor = result.factor
        return self

    def solve(
        self,
        b: np.ndarray,
        *,
        refine: bool = True,
        tol: float = 1e-12,
        max_iter: int = 5,
    ) -> np.ndarray:
        """Solve ``A x = b``; refinement on by default (needed to recover
        double precision whenever a GPU policy touched the factor)."""
        if self.factor is None:
            self.factorize()
        if not refine:
            return solve_factored(self.factor, b)
        return self.solve_refined(b, tol=tol, max_iter=max_iter).x

    def solve_refined(
        self, b: np.ndarray, *, tol: float = 1e-12, max_iter: int = 5
    ) -> RefinementResult:
        """Like :meth:`solve` but returns the full refinement trace."""
        if self.factor is None:
            self.factorize()
        return iterative_refinement(
            self.a, self.factor, b, tol=tol, max_iter=max_iter
        )

    def update_values(self, a_new: CSCMatrix) -> "SparseCholeskySolver":
        """Swap in a matrix with the *same nonzero pattern* and refactor,
        reusing the ordering and symbolic analysis — the standard fast
        path for sequences of systems (time stepping, Newton iterations).
        """
        new_full = (
            a_new
            if a_new.is_structurally_symmetric()
            else a_new.symmetrize_from_lower()
        )
        same_pattern = (
            new_full.shape == self.a.shape
            and np.array_equal(new_full.indptr, self.a.indptr)
            and np.array_equal(new_full.indices, self.a.indices)
        )
        if not same_pattern:
            raise ValueError(
                "update_values requires an identical nonzero pattern; "
                "build a new solver for a different structure"
            )
        self.a = new_full
        if self.symbolic is not None:
            self.factor = None
            self.factorize()
        return self

    def refactorize(self, values) -> "SparseCholeskySolver":
        """Re-run the numeric factorization with new matrix values against
        the existing symbolic factor — the fast path for Newton iterations
        and time stepping, and the primitive behind the serving layer's
        symbolic cache tier.

        ``values`` is either a :class:`CSCMatrix` with the same nonzero
        pattern as the original matrix, or a 1-D array of new values
        aligned with the solver's canonical full-symmetric storage
        (``self.a.data``).
        """
        if isinstance(values, CSCMatrix):
            self.update_values(values)
            if self.factor is None:
                self.factorize()
            return self
        values = np.asarray(values, dtype=np.float64)
        if values.shape != self.a.data.shape:
            raise ValueError(
                f"values must align with the canonical storage "
                f"({self.a.data.shape}), got {values.shape}"
            )
        self.a = CSCMatrix(
            self.a.shape, self.a.indptr, self.a.indices, values, check=False
        )
        if self.symbolic is None:
            self.analyze()
        self.factor = None
        self.factorize()
        return self

    def log_determinant(self) -> float:
        """``log det A`` from the factor's pivots."""
        if self.factor is None:
            self.factorize()
        return self.factor.log_determinant()

    # ------------------------------------------------------------------
    @property
    def stats(self) -> FactorizationStats:
        if self.factor is None or self.symbolic is None:
            raise RuntimeError("factorize() first")
        counts: dict[str, int] = {}
        for r in self.factor.records:
            counts[r.policy] = counts.get(r.policy, 0) + 1
        return FactorizationStats(
            n=self.a.n_rows,
            nnz_a=self.a.nnz,
            nnz_factor=self.symbolic.nnz_factor,
            n_supernodes=self.symbolic.n_supernodes,
            total_flops=sum(r.total_flops for r in self.factor.records),
            simulated_seconds=self.factor.makespan,
            assembly_seconds=self.factor.assembly_seconds,
            peak_update_bytes=self.factor.peak_update_bytes,
            policy_counts=counts,
        )
