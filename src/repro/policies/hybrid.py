"""Hybrid policies: per-call selection among P1..P4 (paper Section VI).

A hybrid is a *selector*: ``resolve(m, k, worker)`` returns the base
policy to run for a factor-update of those dimensions.  The numeric
driver resolves before executing, so instrumentation records the base
policy actually used for every call.

* :class:`BaselineHybrid` (P_BH) — thresholds on the total operation
  count, using the transition points read off Figures 10/11: P1 below
  2e6 ops, P2 to 1.5e7, P3 to 9e10, P4 above.
* :class:`IdealHybrid` (P_IH) — the retrospective oracle: argmin of the
  (average) per-policy times; here priced by the same performance model
  that generates the observations, i.e. the true optimum.
* :class:`ModelHybrid` (P_MH) — the paper's contribution: a trained
  cost-sensitive multinomial-logistic classifier over matrix features
  (:mod:`repro.autotune`), evaluated as ``argmax x(A) . theta`` — an
  O(d r) decision per call (paper Eq. 5).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.gpu.perfmodel import PerfModel
from repro.policies.base import (
    Policy,
    PolicyP1,
    Worker,
    estimate_policy_time,
    make_policy,
)
from repro.symbolic.symbolic import factor_update_flops

__all__ = ["HybridPolicy", "BaselineHybrid", "IdealHybrid", "ModelHybrid"]


class HybridPolicy(Policy):
    """Base for per-call selectors; subclasses implement ``choose``."""

    needs_gpu = False

    def __init__(self, policies: dict[str, Policy] | None = None):
        self.policies = policies or {
            name: make_policy(name) for name in ("P1", "P2", "P3", "P4")
        }
        self._fallback = self.policies.get("P1", PolicyP1())
        self.selection_counts: dict[str, int] = {}

    def choose(self, m: int, k: int) -> str:
        raise NotImplementedError

    def resolve(self, m: int, k: int, worker: Worker) -> Policy:
        name = self.choose(m, k)
        pol = self.policies[name]
        if pol.needs_gpu and not worker.has_gpu:
            pol = self._fallback
        self.selection_counts[pol.name] = self.selection_counts.get(pol.name, 0) + 1
        return pol

    # hybrids are never planned/applied directly
    def plan(self, m, k, worker, model, graph, deps=()):
        return self.resolve(m, k, worker).plan(m, k, worker, model, graph, deps)

    def apply(self, front, k, worker):
        m = front.shape[0] - k
        return self.resolve(m, k, worker).apply(front, k, worker)


class BaselineHybrid(HybridPolicy):
    """P_BH — select purely on total F-U flops (Section V-B1)."""

    name = "PBH"

    #: the paper's transition points in total operations
    DEFAULT_THRESHOLDS = (2e6, 1.5e7, 9e10)

    def __init__(
        self,
        thresholds: tuple[float, float, float] = DEFAULT_THRESHOLDS,
        policies: dict[str, Policy] | None = None,
    ):
        super().__init__(policies)
        if not (thresholds[0] <= thresholds[1] <= thresholds[2]):
            raise ValueError("thresholds must be non-decreasing")
        self.thresholds = thresholds

    def choose(self, m: int, k: int) -> str:
        total = sum(factor_update_flops(m, k))
        t1, t2, t3 = self.thresholds
        if total < t1:
            return "P1"
        if total < t2:
            return "P2"
        if total < t3:
            return "P3"
        return "P4"


class IdealHybrid(HybridPolicy):
    """P_IH — the oracle: pick the argmin of the per-policy simulated
    times (memoized per (m, k))."""

    name = "PIH"

    def __init__(self, model: PerfModel, policies: dict[str, Policy] | None = None):
        super().__init__(policies)
        self.model = model
        self._cache: dict[tuple[int, int], str] = {}

    def choose(self, m: int, k: int) -> str:
        key = (m, k)
        hit = self._cache.get(key)
        if hit is not None:
            return hit
        best_name, best_t = "P1", float("inf")
        for name, pol in self.policies.items():
            t = estimate_policy_time(pol, m, k, self.model)
            if t < best_t:
                best_name, best_t = name, t
        self._cache[key] = best_name
        return best_name

    def policy_times(self, m: int, k: int) -> dict[str, float]:
        return {
            name: estimate_policy_time(pol, m, k, self.model)
            for name, pol in self.policies.items()
        }


class ModelHybrid(HybridPolicy):
    """P_MH — decide with a trained multinomial-logistic policy
    classifier; the prediction is the linear rule of paper Eq. 5."""

    name = "PMH"

    def __init__(self, classifier, policies: dict[str, Policy] | None = None):
        """``classifier`` is a trained
        :class:`repro.autotune.classifier.PolicyClassifier` whose class
        names are a subset of the policy table keys."""
        super().__init__(policies)
        self.classifier = classifier
        unknown = set(classifier.class_names) - set(self.policies)
        if unknown:
            raise ValueError(f"classifier predicts unknown policies: {unknown}")

    def choose(self, m: int, k: int) -> str:
        return str(self.classifier.predict_one(m, k))
