"""The four factor-update placement policies (Table VI) and the hybrids.

========  ========================================================
policy    placement
========  ========================================================
``P1``    potrf, trsm, syrk all on the host CPU (serial baseline)
``P2``    potrf, trsm on CPU; syrk on GPU (overlapped copies)
``P3``    potrf on CPU; trsm and syrk on GPU (overlapped copies)
``P4``    potrf, trsm, syrk all on GPU (Figure-9 blocked panels)
========  ========================================================

Hybrids select one of the four per F-U call:

* :class:`BaselineHybrid` — the paper's P_BH, thresholds on total flops
  (2e6 / 1.5e7 / 9e10),
* :class:`IdealHybrid` — the oracle P_IH, argmin of the measured times,
* :class:`ModelHybrid` — the paper's contribution P_MH, a trained
  cost-sensitive multinomial-logistic classifier (see
  :mod:`repro.autotune`).
"""

from repro.policies.base import (
    ALL_BASE_POLICIES,
    FUPlan,
    PolicyP1,
    PolicyP2,
    PolicyP3,
    PolicyP4,
    Policy,
    Worker,
    estimate_policy_time,
    make_policy,
)
from repro.policies.hybrid import (
    BaselineHybrid,
    HybridPolicy,
    IdealHybrid,
    ModelHybrid,
)

__all__ = [
    "Policy",
    "PolicyP1",
    "PolicyP2",
    "PolicyP3",
    "PolicyP4",
    "ALL_BASE_POLICIES",
    "FUPlan",
    "Worker",
    "make_policy",
    "estimate_policy_time",
    "HybridPolicy",
    "BaselineHybrid",
    "IdealHybrid",
    "ModelHybrid",
]
