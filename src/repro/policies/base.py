"""The four base placement policies for one factor-update call.

Every policy separates *planning* from *numerics*:

* :meth:`Policy.plan` appends :class:`SimTask` objects for the kernels,
  copies and host applies of one F-U call to a task graph — this is the
  timed artifact, and is also what the policy-time estimator and the
  auto-tuner's training-data generator price (no floating point work).
* :meth:`Policy.apply` performs the actual numerics on the frontal
  matrix in the matching order: host kernels in float64, device kernels
  in float32 through the simulated CUBLAS context (so GPU-touched results
  really carry single-precision error, as the paper's did).

``execute`` runs both and returns the factored blocks plus the scheduled
tasks; the numeric driver in :mod:`repro.multifrontal` threads engine
timelines through successive calls so copies and kernels of neighboring
supernodes contend realistically.

Transfer-volume accounting follows the paper's Equation 2:
``N_D(L1, L2) = k^2 + 2mk`` words for the trsm round trip and
``N_D(L2 L2^T) = m^2`` words for the update product, in device (float32)
words.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.dense import kernels as hk
from repro.dense.blocked import blocked_cholesky_panels, default_panel_width
from repro.gpu.clock import EngineTimeline, SimTask, TaskGraph, schedule_graph
from repro.gpu.cublas import panel_kernel_sequence
from repro.gpu.device import SimulatedGpu, SimulatedNode
from repro.gpu.perfmodel import PerfModel

__all__ = [
    "Worker",
    "FUPlan",
    "FUExecution",
    "Policy",
    "PolicyP1",
    "PolicyP2",
    "PolicyP3",
    "PolicyP4",
    "ALL_BASE_POLICIES",
    "make_policy",
    "estimate_policy_time",
]


@dataclass
class Worker:
    """An execution lane: one host CPU engine plus at most one GPU.

    The paper's multi-GPU configuration runs one host thread per GPU
    ("our approach uses the same number of threads as the number of
    available GPUs"), which is exactly this pairing.
    """

    cpu_engine: str
    gpu: SimulatedGpu | None = None

    @property
    def has_gpu(self) -> bool:
        return self.gpu is not None


@dataclass
class FUPlan:
    """The planned task graph of one F-U call."""

    graph: TaskGraph
    final: SimTask
    roles: dict[str, SimTask] = field(default_factory=dict)

    def duration_by_category(self) -> dict[str, float]:
        return self.graph.total_by_category()


@dataclass
class FUExecution:
    """Result of executing one F-U call under a policy."""

    l1: np.ndarray
    l2: np.ndarray
    u: np.ndarray
    plan: FUPlan
    start: float
    end: float

    @property
    def elapsed(self) -> float:
        return self.end - self.start


class Policy:
    """Base class; concrete policies implement ``plan`` and ``apply``."""

    name: str = "?"
    needs_gpu: bool = True

    # -- planning ---------------------------------------------------------
    def plan(
        self,
        m: int,
        k: int,
        worker: Worker,
        model: PerfModel,
        graph: TaskGraph,
        deps: tuple = (),
    ) -> FUPlan:
        raise NotImplementedError

    # -- numerics ---------------------------------------------------------
    def apply(
        self, front: np.ndarray, k: int, worker: Worker
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Factor ``front`` in place; returns views/arrays (L1, L2, U)."""
        raise NotImplementedError

    # -- combined ---------------------------------------------------------
    def execute(
        self,
        front: np.ndarray,
        k: int,
        worker: Worker,
        node: SimulatedNode,
        deps: tuple = (),
    ) -> FUExecution:
        if self.needs_gpu and not worker.has_gpu:
            raise ValueError(f"policy {self.name} requires a GPU worker")
        m = front.shape[0] - k
        graph = TaskGraph()
        plan = self.plan(m, k, worker, node.model, graph, deps)
        result = schedule_graph(graph, engines=node.engines)
        l1, l2, u = self.apply(front, k, worker)
        start = min(t.start for t in graph.tasks)
        return FUExecution(l1, l2, u, plan, start, plan.final.end)

    def applicable(self, worker: Worker) -> bool:
        return worker.has_gpu or not self.needs_gpu

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Policy {self.name}>"


def _host_apply_time(model: PerfModel, m: int) -> float:
    """Host-side ``U -= W`` axpy: read W, read+write U (3 m^2 doubles)."""
    return model.host_memory_time(3.0 * m * m * model.CPU_WORD)


class PolicyP1(Policy):
    """Everything on the host CPU in double precision."""

    name = "P1"
    needs_gpu = False

    def plan(self, m, k, worker, model, graph, deps=()):
        t_potrf = graph.add(
            "potrf", worker.cpu_engine,
            model.kernel_time("cpu", "potrf", k=k), deps, "potrf",
        )
        last = t_potrf
        roles = {"potrf": t_potrf}
        if m > 0:
            t_trsm = graph.add(
                "trsm", worker.cpu_engine,
                model.kernel_time("cpu", "trsm", m=m, k=k), (t_potrf,), "trsm",
            )
            t_syrk = graph.add(
                "syrk", worker.cpu_engine,
                model.kernel_time("cpu", "syrk", m=m, k=k), (t_trsm,), "syrk",
            )
            roles.update(trsm=t_trsm, syrk=t_syrk)
            last = t_syrk
        return FUPlan(graph, last, roles)

    def apply(self, front, k, worker):
        m = front.shape[0] - k
        l1 = hk.potrf(front[:k, :k])
        front[:k, :k] = l1
        l2 = front[k:, :k]
        u = front[k:, k:]
        if m > 0:
            l2[...] = hk.trsm_right_lower(l2, l1)
            hk.syrk(u, l2)
        return l1, l2, u


class PolicyP2(Policy):
    """potrf and trsm on the CPU; syrk offloaded to the GPU.

    Copies: H2D of the *solved* L2 (mk words, pinned), compute
    ``W = L2 L2^T`` on the device, D2H of W (m^2 words, pinned), then a
    host apply ``U -= W``.  The H2D cannot overlap the potrf/trsm because
    it needs the solved panel, so P2 pays the full transfer on its
    critical path — which is why it only wins a band of moderate sizes
    (Figures 10-12).
    """

    name = "P2"

    def plan(self, m, k, worker, model, graph, deps=()):
        gpu = worker.gpu
        word = model.gpu_word
        t_potrf = graph.add(
            "potrf", worker.cpu_engine,
            model.kernel_time("cpu", "potrf", k=k), deps, "potrf",
        )
        roles = {"potrf": t_potrf}
        if m == 0:
            return FUPlan(graph, t_potrf, roles)
        t_trsm = graph.add(
            "trsm", worker.cpu_engine,
            model.kernel_time("cpu", "trsm", m=m, k=k), (t_potrf,), "trsm",
        )
        # the working set lives for this one planned call: the pool's
        # high-water mark (capacity) keeps the warm-start pricing while
        # in_use returns to zero even if graph building raises
        with gpu.working_set(
            (m * k + m * m) * word, (m * k + m * m) * word
        ) as alloc:
            t_prep = graph.add(
                "pin/alloc", worker.cpu_engine, alloc, (t_trsm,), "alloc"
            )
            t_h2d = graph.add(
                "h2d:L2", gpu.h2d_engine,
                model.transfer_time(m * k * word, pinned=True), (t_prep,), "copy",
            )
            t_syrk = graph.add(
                "syrk", gpu.compute_engine,
                model.kernel_time("gpu", "syrk", m=m, k=k), (t_h2d,), "syrk",
            )
            t_d2h = graph.add(
                "d2h:W", gpu.d2h_engine,
                model.transfer_time(m * m * word, pinned=True), (t_syrk,), "copy",
            )
            t_apply = graph.add(
                "apply:U-=W", worker.cpu_engine,
                _host_apply_time(model, m), (t_d2h,), "assemble",
            )
        roles.update(trsm=t_trsm, h2d=t_h2d, syrk=t_syrk, d2h=t_d2h, apply=t_apply)
        return FUPlan(graph, t_apply, roles)

    def apply(self, front, k, worker):
        m = front.shape[0] - k
        l1 = hk.potrf(front[:k, :k])
        front[:k, :k] = l1
        l2 = front[k:, :k]
        u = front[k:, k:]
        if m > 0:
            l2[...] = hk.trsm_right_lower(l2, l1)
            ctx = worker.gpu.cublas
            x_dev = l2.astype(ctx.dtype)              # H2D
            w = ctx.syrk_outer(x_dev)                 # device compute
            u -= w.astype(np.float64)                 # D2H + host apply
        return l1, l2, u


class PolicyP3(Policy):
    """potrf on the CPU; trsm and syrk on the GPU, with the Section V-A2
    overlaps: H2D of the unsolved panel L2 runs *during* the host potrf,
    and the D2H of the solved L2 runs under the device syrk.

    ``overlap=False, pinned=False`` gives the paper's *basic GPU
    implementation* of Section IV — synchronous pageable copies strictly
    interleaved with the kernels — which is the configuration Figures
    2(b), 3, 5 and 6 and Table IV profile (registered as policy name
    ``"basic"``).
    """

    name = "P3"

    def __init__(self, *, overlap: bool = True, pinned: bool = True):
        self.overlap = overlap
        self.pinned = pinned
        if not (overlap and pinned):
            self.name = "P3basic"

    def plan(self, m, k, worker, model, graph, deps=()):
        gpu = worker.gpu
        word = model.gpu_word
        pinned = self.pinned
        with gpu.working_set(
            (k * k + m * k + m * m) * word,
            (k * k + m * k + m * m) * word if pinned else 0,
        ) as alloc:
            t_prep = graph.add("pin/alloc", worker.cpu_engine, alloc, deps, "alloc")
            t_potrf = graph.add(
                "potrf", worker.cpu_engine,
                model.kernel_time("cpu", "potrf", k=k), (t_prep,), "potrf",
            )
            roles = {"potrf": t_potrf}
            if m == 0:
                return FUPlan(graph, t_potrf, roles)
            # unsolved panel upload; overlaps the host potrf when enabled,
            # otherwise waits for it (the basic implementation's synchronous
            # cudaMemcpy after the host step)
            t_h2d_l2 = graph.add(
                "h2d:L2", gpu.h2d_engine,
                model.transfer_time(m * k * word, pinned=pinned),
                (t_prep,) if self.overlap else (t_potrf,), "copy",
            )
            t_h2d_l1 = graph.add(
                "h2d:L1", gpu.h2d_engine,
                model.transfer_time(k * k * word, pinned=pinned), (t_potrf,), "copy",
            )
            t_trsm = graph.add(
                "trsm", gpu.compute_engine,
                model.kernel_time("gpu", "trsm", m=m, k=k),
                (t_h2d_l2, t_h2d_l1), "trsm",
            )
            # solved panel comes home while the syrk runs (overlap) or before
            # the syrk may start (basic, synchronous)
            t_d2h_l2 = graph.add(
                "d2h:L2", gpu.d2h_engine,
                model.transfer_time(m * k * word, pinned=pinned), (t_trsm,), "copy",
            )
            t_syrk = graph.add(
                "syrk", gpu.compute_engine,
                model.kernel_time("gpu", "syrk", m=m, k=k),
                (t_trsm,) if self.overlap else (t_trsm, t_d2h_l2), "syrk",
            )
            t_d2h_w = graph.add(
                "d2h:W", gpu.d2h_engine,
                model.transfer_time(m * m * word, pinned=pinned), (t_syrk,), "copy",
            )
            t_apply = graph.add(
                "apply:U-=W", worker.cpu_engine,
                _host_apply_time(model, m), (t_d2h_w, t_d2h_l2), "assemble",
            )
        roles.update(
            trsm=t_trsm, syrk=t_syrk, h2d_l1=t_h2d_l1, h2d_l2=t_h2d_l2,
            d2h_l2=t_d2h_l2, d2h_w=t_d2h_w, apply=t_apply,
        )
        return FUPlan(graph, t_apply, roles)

    def apply(self, front, k, worker):
        m = front.shape[0] - k
        l1 = hk.potrf(front[:k, :k])
        front[:k, :k] = l1
        l2 = front[k:, :k]
        u = front[k:, k:]
        if m > 0:
            ctx = worker.gpu.cublas
            l1_dev = l1.astype(ctx.dtype)             # H2D
            l2_dev = l2.astype(ctx.dtype)             # H2D
            x_dev = ctx.trsm(l2_dev, l1_dev)          # device trsm
            l2[...] = x_dev.astype(np.float64)        # D2H
            w = ctx.syrk_outer(x_dev)                 # device syrk
            u -= w.astype(np.float64)                 # D2H + host apply
        return l1, l2, u


class PolicyP4(Policy):
    """Everything on the GPU: upload the whole frontal matrix, run the
    Figure-9 blocked panel factorization on the device, download the
    factored panel and the update matrix.

    ``copy_optimized=True`` models the Section VI-C variant discovered
    for the multi-GPU runs: triangle-only transfer volumes and the U
    download overlapped with the tail of the panel loop, which makes P4
    "the better policy for even moderately sized frontal matrices".
    """

    name = "P4"

    def __init__(self, *, copy_optimized: bool = False, panel_width: int | None = None):
        self.copy_optimized = copy_optimized
        self.panel_width = panel_width
        if copy_optimized:
            self.name = "P4c"

    def _width(self, k: int) -> int:
        return self.panel_width if self.panel_width else default_panel_width(k)

    def plan(self, m, k, worker, model, graph, deps=()):
        gpu = worker.gpu
        word = model.gpu_word
        s = m + k
        with gpu.working_set(s * s * word, s * s * word) as alloc:
            t_prep = graph.add(
                "pin/alloc", worker.cpu_engine, alloc, deps, "alloc"
            )
            if self.copy_optimized:
                up_words = s * (s + 1) // 2
                down_panel_words = k * (k + 1) // 2 + m * k
                down_u_words = m * (m + 1) // 2
            else:
                up_words = s * s
                down_panel_words = k * k + m * k
                down_u_words = m * m
            t_h2d = graph.add(
                "h2d:F", gpu.h2d_engine,
                model.transfer_time(up_words * word, pinned=True), (t_prep,), "copy",
            )
            # one task per device kernel of the blocked loop
            calls = panel_kernel_sequence(s, k, self._width(k))
            prev: SimTask = t_h2d
            kernel_tasks: list[SimTask] = []
            for c in calls:
                t = graph.add(
                    f"gpu:{c.kernel}", gpu.compute_engine,
                    model.kernel_time("gpu", c.kernel, m=c.m, n=c.n, k=c.k),
                    (prev,), c.kernel,
                )
                kernel_tasks.append(t)
                prev = t
            roles = {"h2d": t_h2d, "compute_last": prev}
            if self.copy_optimized and m > 0 and len(kernel_tasks) > 1:
                # U accumulates panel by panel; start draining it once ~80%
                # of the loop has retired
                drain_after = kernel_tasks[max(0, int(0.8 * len(kernel_tasks)) - 1)]
                t_d2h_u = graph.add(
                    "d2h:U", gpu.d2h_engine,
                    model.transfer_time(down_u_words * word, pinned=True),
                    (drain_after,), "copy",
                )
            elif m > 0:
                t_d2h_u = graph.add(
                    "d2h:U", gpu.d2h_engine,
                    model.transfer_time(down_u_words * word, pinned=True),
                    (prev,), "copy",
                )
            else:
                t_d2h_u = None
            t_d2h_panel = graph.add(
                "d2h:L", gpu.d2h_engine,
                model.transfer_time(down_panel_words * word, pinned=True),
                (prev,), "copy",
            )
            final_deps = [t_d2h_panel]
            if t_d2h_u is not None:
                final_deps.append(t_d2h_u)
                # ensure U is complete before its download finishes being used
                if t_d2h_u.deps and t_d2h_u.deps[0] is not prev:
                    t_sync = graph.add(
                        "sync:U", gpu.d2h_engine, 0.0, (prev, t_d2h_u), "other"
                    )
                    final_deps.append(t_sync)
            t_done = graph.add(
                "fu-done", worker.cpu_engine, 0.0, tuple(final_deps), "other"
            )
        roles["d2h_panel"] = t_d2h_panel
        if t_d2h_u is not None:
            roles["d2h_u"] = t_d2h_u
        return FUPlan(graph, t_done, roles)

    def apply(self, front, k, worker):
        ctx = worker.gpu.cublas
        f_dev = front.astype(ctx.dtype)               # H2D of the whole front
        blocked_cholesky_panels(f_dev, k, self._width(k), ctx)
        front[...] = f_dev.astype(np.float64)         # D2H
        return front[:k, :k], front[k:, :k], front[k:, k:]


ALL_BASE_POLICIES = ("P1", "P2", "P3", "P4")


def make_policy(name: str, **kwargs) -> Policy:
    """Construct a base policy by name (``P1`` .. ``P4``, ``P4c``)."""
    table = {
        "P1": PolicyP1,
        "P2": PolicyP2,
        "P3": PolicyP3,
        "P4": PolicyP4,
    }
    if name == "P4c":
        return PolicyP4(copy_optimized=True, **kwargs)
    if name == "basic":
        # the Section IV basic GPU implementation: trsm+syrk offloaded
        # with synchronous pageable copies
        return PolicyP3(overlap=False, pinned=False, **kwargs)
    if name not in table:
        raise ValueError(f"unknown policy {name!r}")
    return table[name](**kwargs)


def estimate_policy_time(
    policy: Policy, m: int, k: int, model: PerfModel, *, warm_pools: bool = True
) -> float:
    """Isolated simulated time of one F-U call under ``policy`` — fresh
    engines, no contention; this is the quantity T_ij the auto-tuner
    trains on and the per-call comparisons of Figures 10-12 plot.

    ``warm_pools=True`` (default) prices the steady state where the
    high-water-mark pools already fit the call (Section V-A2); pass
    False to include first-touch allocation costs.
    """
    node = SimulatedNode(model=model, n_cpus=1, n_gpus=1)
    worker = Worker("cpu0", node.gpus[0] if node.gpus else None)
    if warm_pools and worker.gpu is not None:
        s = m + k
        word = model.gpu_word
        worker.gpu.device_pool.capacity = max(1, s * s * word)
        worker.gpu.pinned_pool.capacity = max(1, s * s * word)
    graph = TaskGraph()
    plan = policy.plan(m, k, worker, model, graph, ())
    engines: dict[str, EngineTimeline] = {}
    res = schedule_graph(graph, engines=engines)
    return res.makespan
