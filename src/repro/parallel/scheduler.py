"""Critical-path list scheduling of the supernodal task DAG.

Static list scheduling with the standard "upward rank" priority: a
task's rank is its own duration plus the maximum rank of its parents
(here the tree has a single parent per task, so rank = distance to the
root in seconds).  Repeatedly take the highest-rank ready task and place
it on the worker where it can start earliest.

Large fronts near the root serialize the whole machine if bound to one
worker, so tasks whose flop count exceeds ``gang_threshold`` are
*gang-scheduled*: they wait for every worker and run at
``duration / (1 + (p - 1) * gang_efficiency)`` — the multifrontal analog
of WSMP switching to parallel dense kernels at the top of the
elimination tree.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.gpu.device import SimulatedNode
from repro.matrices.csc import CSCMatrix
from repro.multifrontal.batched import (
    BatchParams,
    batched_factor_update,
    resolve_batchable_groups,
)
from repro.multifrontal.frontal import (
    assemble_front_planned,
    assembly_bytes,
    get_assembly_plan,
)
from repro.multifrontal.numeric import FURecord, NumericFactor
from repro.parallel.workers import WorkerPool
from repro.policies.base import Policy, PolicyP1, Worker, estimate_policy_time
from repro.symbolic.symbolic import SymbolicFactor, factor_update_flops

__all__ = [
    "ScheduledTask",
    "ParallelResult",
    "list_schedule",
    "parallel_factorize",
    "postorder_numeric_factor",
]


@dataclass(frozen=True)
class ScheduledTask:
    """Placement of one supernode's work."""

    sid: int
    worker: int              # -1 when gang-scheduled on all workers
    start: float
    end: float
    policy: str
    gang: bool = False

    @property
    def elapsed(self) -> float:
        return self.end - self.start


@dataclass
class ParallelResult:
    """Outcome of a parallel (or serial) scheduled factorization."""

    makespan: float
    schedule: list[ScheduledTask]
    factor: NumericFactor | None = None
    worker_busy: list[float] = field(default_factory=list)
    #: populated by ``backend="dynamic"``: the full RuntimeResult
    #: (steal/admission/fault counters, spans, degraded task set)
    runtime: object | None = None
    #: work dispatches the schedule issued (each batch group counts once);
    #: ``None`` when the producing backend does not track it
    task_dispatches: int | None = None

    @property
    def degraded(self) -> bool:
        """True when the dynamic runtime degraded any task to P1 after
        injected GPU failures (always False for the static backend)."""
        return bool(self.runtime is not None and self.runtime.degraded)

    def speedup_vs(self, serial_seconds: float) -> float:
        return serial_seconds / self.makespan if self.makespan > 0 else float("inf")

    def utilization(self) -> float:
        if not self.worker_busy or self.makespan <= 0:
            return 0.0
        return float(np.mean(self.worker_busy) / self.makespan)


def _task_durations(
    sf: SymbolicFactor,
    policy: Policy,
    pool: WorkerPool,
) -> tuple[np.ndarray, list[str]]:
    """Per-supernode durations (assembly + F-U) and resolved policy names.

    Durations are isolated per-call makespans from the performance model;
    a worker without a GPU falls back to P1 — handled at placement time
    by pricing both variants.
    """
    model = pool.node.model
    n_super = sf.n_supernodes
    dur = np.zeros(n_super)
    names: list[str] = []
    gpu_worker = pool.gpu_worker()
    probe_worker = gpu_worker if gpu_worker is not None else pool.workers[0]
    kids = sf.schildren()
    dur_cache: dict[tuple[int, int], tuple[float, str]] = {}
    for s in range(n_super):
        k = sf.width(s)
        m = sf.update_size(s)
        key = (m, k)
        hit = dur_cache.get(key)
        if hit is None:
            base = (
                policy.resolve(m, k, probe_worker)
                if hasattr(policy, "resolve")
                else policy
            )
            t_fu = estimate_policy_time(base, m, k, model)
            hit = (t_fu, base.name)
            dur_cache[key] = hit
        t_fu, name = hit
        t_asm = model.host_memory_time(
            assembly_bytes(
                sf.rows[s].size, [sf.rows[c].size - sf.width(c) for c in kids[s]]
            )
        )
        dur[s] = t_fu + t_asm
        names.append(name)
    return dur, names


def list_schedule(
    sf: SymbolicFactor,
    policy: Policy,
    pool: WorkerPool,
    *,
    gang_threshold: float = 5e7,
    gang_efficiency: float = 0.8,
    batching: BatchParams | None = None,
) -> ParallelResult:
    """Compute the parallel schedule (no numerics).

    Returns start/end per supernode and the makespan.  With a single
    worker this degenerates to the serial postorder sum.  When
    ``batching`` is given, each group of same-shape host-P1 leaf fronts
    is placed as *one* task (members share its start/end), cutting the
    number of dispatched tasks without changing precedence.
    """
    n_super = sf.n_supernodes
    p = pool.n_workers
    dur, names = _task_durations(sf, policy, pool)
    gpu_worker = pool.gpu_worker()
    probe_worker = gpu_worker if gpu_worker is not None else pool.workers[0]
    groups, batch_of = resolve_batchable_groups(sf, policy, batching, probe_worker)

    # upward rank: seconds from this task to the root, inclusive
    rank = dur.copy()
    order = list(sf.spost[::-1])  # parents first
    for s in order:
        parent = int(sf.sparent[s])
        if parent >= 0:
            rank[s] = dur[s] + rank[parent]

    flops = np.array(
        [sum(factor_update_flops(sf.update_size(s), sf.width(s)))
         for s in range(n_super)]
    )
    kids = sf.schildren()
    n_pending = np.array([len(kids[s]) for s in range(n_super)])
    # max-heap on upward rank (negated for heapq)
    import heapq

    finish = np.zeros(n_super)
    worker_free = [0.0] * p
    worker_busy = [0.0] * p
    schedule: list[ScheduledTask] = []
    done = 0
    # batch groups first: members are leaves (ready at t=0); the whole
    # group is one dispatched task on the earliest-free worker
    for g in groups:
        dur_g = float(sum(dur[s] for s in g.sids))
        best_w = min(range(p), key=lambda w: (worker_free[w], w))
        start = worker_free[best_w]
        end = start + dur_g
        worker_free[best_w] = end
        worker_busy[best_w] += dur_g
        for sid in g.sids:
            schedule.append(ScheduledTask(sid, best_w, start, end, "P1", False))
            finish[sid] = end
            done += 1
            parent = int(sf.sparent[sid])
            if parent >= 0:
                n_pending[parent] -= 1

    ready = [
        (-float(rank[s]), s)
        for s in range(n_super)
        if n_pending[s] == 0 and s not in batch_of
    ]
    heapq.heapify(ready)
    while ready:
        # highest-rank ready task first
        _, s = heapq.heappop(ready)
        deps_done = max((finish[c] for c in kids[s]), default=0.0)
        gang = p > 1 and flops[s] >= gang_threshold
        if gang:
            start = max(deps_done, max(worker_free))
            speed = 1.0 + (p - 1) * gang_efficiency
            end = start + dur[s] / speed
            for w in range(p):
                worker_free[w] = end
                worker_busy[w] += (end - start)
            schedule.append(ScheduledTask(s, -1, start, end, names[s], True))
        else:
            # earliest-start placement
            best_w = min(
                range(p), key=lambda w: (max(worker_free[w], deps_done), w)
            )
            start = max(worker_free[best_w], deps_done)
            end = start + dur[s]
            worker_free[best_w] = end
            worker_busy[best_w] += dur[s]
            schedule.append(ScheduledTask(s, best_w, start, end, names[s], False))
        finish[s] = end
        done += 1
        parent = int(sf.sparent[s])
        if parent >= 0:
            n_pending[parent] -= 1
            if n_pending[parent] == 0:
                heapq.heappush(ready, (-float(rank[parent]), parent))
    if done != n_super:
        raise AssertionError("scheduler failed to place every supernode")
    makespan = float(finish.max()) if n_super else 0.0
    schedule.sort(key=lambda t: t.start)
    batched_fronts = sum(len(g) for g in groups)
    return ParallelResult(
        makespan, schedule, None, worker_busy,
        task_dispatches=n_super - batched_fronts + len(groups),
    )


def parallel_factorize(
    a: CSCMatrix,
    sf: SymbolicFactor,
    policy: Policy,
    pool: WorkerPool,
    *,
    gang_threshold: float = 5e7,
    gang_efficiency: float = 0.8,
    backend: str = "static",
    memory_budget: int | None = None,
    faults=None,
    batching: BatchParams | None = None,
) -> ParallelResult:
    """Schedule *and* numerically factor.

    ``backend="static"`` (default) uses the paper-faithful critical-path
    list scheduler; ``backend="dynamic"`` uses the event-driven runtime
    of :mod:`repro.runtime` (work stealing, memory-aware admission via
    ``memory_budget``, dispatch-time policy selection, optional fault
    injection via ``faults``).

    The numeric result is schedule-independent (each supernode's F-U is
    computed exactly once, with the dtype implied by its resolved
    policy), so numerics run in postorder on a canonical worker while
    times come from the chosen scheduler — both backends therefore
    produce bit-identical factors.  The one exception is a task the
    dynamic runtime *degraded* after injected GPU failures: its numerics
    run on the host P1 path, exactly as its simulated execution did.

    ``batching`` stacks same-shape host-P1 leaf fronts: the static
    scheduler additionally dispatches each group as one task; the dynamic
    runtime keeps its per-front schedule (dispatch-time policy selection
    and stealing operate per task) but still runs the stacked numerics.
    """
    runtime = None
    degraded_sids: frozenset = frozenset()
    if backend == "static":
        if memory_budget is not None or faults is not None:
            raise ValueError(
                "memory_budget/faults require backend='dynamic' "
                "(the static scheduler binds tasks up front)"
            )
        result = list_schedule(
            sf, policy, pool,
            gang_threshold=gang_threshold, gang_efficiency=gang_efficiency,
            batching=batching,
        )
    elif backend == "dynamic":
        from repro.runtime.engine import dynamic_schedule

        runtime = dynamic_schedule(
            sf, policy, pool, memory_budget=memory_budget, faults=faults,
        )
        degraded_sids = runtime.degraded_sids
        result = ParallelResult(
            runtime.makespan, list(runtime.schedule),
            worker_busy=list(runtime.worker_busy), runtime=runtime,
            # the dynamic runtime dispatches per front (policy selection
            # and stealing happen at task granularity) even when the
            # numerics below run stacked
            task_dispatches=len(runtime.schedule),
        )
    else:
        raise ValueError(f"unknown backend {backend!r} (static | dynamic)")

    gpu_worker = pool.gpu_worker()
    numeric_worker = gpu_worker if gpu_worker is not None else pool.workers[0]
    result.factor = postorder_numeric_factor(
        a, sf, policy, numeric_worker, pool.node,
        {t.sid: t for t in result.schedule},
        makespan=result.makespan, degraded_sids=degraded_sids,
        batching=batching,
    )
    if result.task_dispatches is None:
        result.task_dispatches = result.factor.task_dispatches
    return result


def postorder_numeric_factor(
    a: CSCMatrix,
    sf: SymbolicFactor,
    policy: Policy,
    numeric_worker: Worker,
    node: SimulatedNode,
    by_sid: dict[int, ScheduledTask],
    *,
    makespan: float,
    degraded_sids: frozenset = frozenset(),
    batching: BatchParams | None = None,
) -> NumericFactor:
    """Numeric factorization in canonical postorder against one worker.

    This is what makes every backend — serial, static, dynamic, and the
    cluster loop — bit-identical: whatever schedule produced the times
    in ``by_sid``, the panels are computed in ``sf.spost`` order with
    the policy resolved once per ``(m, k)`` against ``numeric_worker``.
    Tasks in ``degraded_sids`` run the host P1 path, exactly as their
    simulated execution did.
    """
    fallback = PolicyP1()
    a_perm = a.permute_symmetric(sf.perm)
    a_lower = a_perm.lower_triangle()
    kids = sf.schildren()
    panels: list[np.ndarray | None] = [None] * sf.n_supernodes
    updates: dict[int, np.ndarray] = {}
    records: list[FURecord] = []
    plan = get_assembly_plan(a_lower, sf)
    # stacked numerics for batched groups (host P1 leaves): bit-identical
    # per slice to the per-front path, so this never changes the factor.
    # Degraded members run P1 either way, hence they can stay batched.
    groups, batch_of = resolve_batchable_groups(
        sf, policy, batching, numeric_worker
    )
    batch_results: dict[int, tuple[np.ndarray, np.ndarray | None]] = {}

    def run_batch(g) -> None:
        stack = np.empty((len(g), g.size, g.size), dtype=np.float64)
        for i, sid in enumerate(g.sids):
            stack[i] = assemble_front_planned(plan, a_lower.data, g.size, sid, [])
        batched_factor_update(stack, g.k, g.sids)
        for i, sid in enumerate(g.sids):
            u = stack[i, g.k:, g.k:].copy() if g.m > 0 else None
            batch_results[sid] = (stack[i, :, :g.k].copy(), u)

    for s in sf.spost:
        s = int(s)
        if s in batch_of:
            g = batch_of[s]
            if s not in batch_results:
                run_batch(g)
            panel, u = batch_results.pop(s)
            panels[s] = panel
            if u is not None:
                updates[s] = u
            t = by_sid[s]
            records.append(
                FURecord(
                    sid=s, m=g.m, k=g.k, policy=t.policy,
                    start=t.start, end=t.end,
                    components={}, flops=factor_update_flops(g.m, g.k),
                )
            )
            continue
        rows = sf.rows[s]
        k = sf.width(s)
        m = rows.size - k
        child_updates = [(c, updates.pop(c)) for c in kids[s] if c in updates]
        front = assemble_front_planned(
            plan, a_lower.data, rows.size, s, child_updates
        )
        if s in degraded_sids:
            base = fallback
        else:
            base = (
                policy.resolve(m, k, numeric_worker)
                if hasattr(policy, "resolve")
                else policy
            )
        l1, l2, u = base.apply(front, k, numeric_worker)
        panels[s] = front[:, :k].copy()
        if m > 0:
            updates[s] = front[k:, k:].copy()
        t = by_sid[s]
        records.append(
            FURecord(
                sid=s, m=m, k=k, policy=t.policy, start=t.start, end=t.end,
                components={}, flops=factor_update_flops(m, k),
            )
        )
    return NumericFactor(
        sf=sf,
        panels=[pnl for pnl in panels],  # type: ignore[misc]
        records=records,
        makespan=makespan,
        node=node,
        batch_tasks=len(groups),
        batched_fronts=sum(len(g) for g in groups),
    )
