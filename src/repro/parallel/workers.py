"""Worker pools for the parallel runs.

A worker is a host CPU engine optionally paired with one GPU (the
paper's design point: "our approach uses the same number of threads as
the number of available GPUs").  ``make_worker_pool(n_cpus, n_gpus)``
builds the standard configurations:

* ``make_worker_pool(4, 0)`` — the 4-thread CPU run of Table VII,
* ``make_worker_pool(1, 1)`` — the single-GPU hybrid runs,
* ``make_worker_pool(2, 2)`` — the 2-thread/2-GPU run (last column).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gpu.device import SimulatedNode
from repro.gpu.perfmodel import PerfModel
from repro.policies.base import Worker

__all__ = ["WorkerPool", "make_worker_pool"]


@dataclass
class WorkerPool:
    """The node plus its worker lanes."""

    node: SimulatedNode
    workers: list[Worker]

    @property
    def n_workers(self) -> int:
        return len(self.workers)

    @property
    def n_gpus(self) -> int:
        return sum(1 for w in self.workers if w.has_gpu)

    def gpu_worker(self) -> Worker | None:
        """A canonical GPU-capable worker (used to run the numerics of
        device policies; which physical GPU is numerically irrelevant)."""
        for w in self.workers:
            if w.has_gpu:
                return w
        return None


def make_worker_pool(
    n_cpus: int,
    n_gpus: int,
    *,
    model: PerfModel | None = None,
) -> WorkerPool:
    """Build a pool of ``n_cpus`` workers, the first ``n_gpus`` of which
    own a GPU each.  Requires ``n_gpus <= n_cpus`` (a GPU is always
    driven by a dedicated host thread)."""
    if n_gpus > n_cpus:
        raise ValueError("each GPU needs its own host thread (n_gpus <= n_cpus)")
    kwargs = {} if model is None else {"model": model}
    node = SimulatedNode(n_cpus=n_cpus, n_gpus=n_gpus, **kwargs)
    workers = [
        Worker(node.cpus[i].engine, node.gpus[i] if i < n_gpus else None)
        for i in range(n_cpus)
    ]
    return WorkerPool(node=node, workers=workers)
