"""Task-parallel factorization over multiple workers.

The paper's Section VI-C runs WSMP's task-parallel formulation with 2
CPU threads and 2 GPUs (one host thread per GPU) and a 4-thread CPU-only
comparison.  This subpackage reproduces that with a static critical-path
list scheduler over the supernodal elimination tree: each supernode's
factor-update is one task, dependencies follow the tree, and large
fronts near the root can be gang-scheduled across all workers (the
multifrontal analog of switching to parallel BLAS at the top of the
tree).

The static list scheduler is the paper-faithful reproduction path and
the default (``parallel_factorize(..., backend="static")``).  The
event-driven runtime in :mod:`repro.runtime` plugs in behind the same
entry point as ``backend="dynamic"`` — work stealing, memory-aware
admission, dispatch-time policy selection, fault injection — and
produces bit-identical factors.
"""

from repro.parallel.scheduler import (
    ParallelResult,
    ScheduledTask,
    list_schedule,
    parallel_factorize,
)
from repro.parallel.workers import WorkerPool, make_worker_pool

__all__ = [
    "WorkerPool",
    "make_worker_pool",
    "list_schedule",
    "ScheduledTask",
    "ParallelResult",
    "parallel_factorize",
]
