"""Assemble the benchmark outputs into a single reproduction report.

``python -m repro.report`` (or :func:`build_report`) collects every
rendered table/figure under ``benchmarks/results/`` into one markdown
document, ordered to follow the paper, with the EXPERIMENTS.md
commentary as the preamble.  Run the benches first::

    pytest benchmarks/ --benchmark-only
    python -m repro.report --out REPORT.md
"""

from __future__ import annotations

import argparse
import os
import sys

__all__ = ["build_report", "main"]

#: presentation order (paper order); anything else is appended after
_ORDER = [
    "table1_gpu_spec",
    "table2_matrices",
    "fig2_load_distribution",
    "fig3_theoretical_speedup",
    "fig4_flop_rates",
    "table3_stabilized_rates",
    "fig5_fig6_component_times",
    "table4_potrf_share",
    "fig7_trsm_transition",
    "fig8_syrk_transition",
    "table5_gpu_potrf",
    "table6_policies",
    "fig10_fig11_policy_rates",
    "fig12_policy_map_small",
    "fig13_policy_map_large",
    "fig14_hybrid_speedup_map",
    "table7_end_to_end",
    "eqn12_cost_model",
    "remark_2d_vs_3d",
    "remark_tile_tuning",
    "validation_numeric",
    "ablation_cost_sensitive",
    "ablation_features",
    "ablation_overlap",
    "ablation_pinned_pool",
    "ablation_amalgamation",
    "ablation_stack_order",
    "ablation_precision",
    "extension_device_resident",
    "extension_cluster",
    "extension_solve_phase",
    "extension_serving",
    "extension_runtime",
]


def build_report(results_dir: str, out_path: str) -> int:
    """Concatenate results into ``out_path``; returns the section count."""
    if not os.path.isdir(results_dir):
        raise FileNotFoundError(
            f"{results_dir} not found — run `pytest benchmarks/ "
            "--benchmark-only` first"
        )
    available = {
        os.path.splitext(f)[0]: os.path.join(results_dir, f)
        for f in os.listdir(results_dir)
        if f.endswith(".txt")
    }
    ordered = [n for n in _ORDER if n in available]
    ordered += sorted(set(available) - set(_ORDER))
    sections = []
    for name in ordered:
        with open(available[name]) as fh:
            body = fh.read().rstrip()
        sections.append(f"## {name}\n\n```\n{body}\n```\n")
    header = (
        "# Reproduction report — Multifrontal Factorization of Sparse SPD "
        "Matrices on GPUs (IPDPS 2011)\n\n"
        "Generated from `benchmarks/results/`; see EXPERIMENTS.md for the "
        "paper-vs-measured commentary and DESIGN.md for the methodology.\n\n"
    )
    with open(out_path, "w") as fh:
        fh.write(header + "\n".join(sections))
    return len(sections)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(prog="repro.report")
    parser.add_argument(
        "--results",
        default=os.path.join(
            os.path.dirname(os.path.dirname(os.path.dirname(__file__))),
            "benchmarks", "results",
        ),
    )
    parser.add_argument("--out", default="REPORT.md")
    args = parser.parse_args(argv)
    n = build_report(args.results, args.out)
    print(f"wrote {args.out} with {n} sections")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
