"""Simulated CUBLAS: real float32 numerics plus model-priced durations.

The paper offloads trsm/gemm/syrk to CUBLAS 2.3 in *single precision*
(the T10's double-precision throughput is 8x lower), accepting reduced
accuracy that iterative refinement later recovers.  This context
reproduces both halves of that deal:

* **numerics** — kernels execute with NumPy in ``float32`` (or ``float64``
  when the model is switched to the dp parameter set), so the factor
  really loses precision the way the paper's did;
* **timing** — every kernel reports its simulated duration from the
  calibrated :class:`~repro.gpu.perfmodel.PerfModel`.

It also implements the :class:`~repro.dense.blocked.KernelProvider`
protocol, so the Figure-9 blocked panel algorithm runs unmodified on the
"device".  ``panel_kernel_sequence`` is the single source of truth for
the kernel call sequence of that algorithm — the numeric path is verified
against it in the tests, and the timing path prices it directly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dense import kernels as hk
from repro.gpu.perfmodel import PerfModel

__all__ = ["CublasContext", "panel_kernel_sequence", "KernelCall"]


@dataclass(frozen=True)
class KernelCall:
    """One (kernel, dims) record; dims follow the F-U conventions."""

    kernel: str
    m: int = 0
    n: int = 0
    k: int = 0


def panel_kernel_sequence(s: int, k: int, w: int) -> list[KernelCall]:
    """The exact GPU kernel sequence of the Figure-9 blocked algorithm on
    an s x s front with a k-column pivot block and panel width w."""
    calls: list[KernelCall] = []
    for j in range(0, k, w):
        wj = min(w, k - j)
        calls.append(KernelCall("potrf", k=wj))
        rest = j + wj
        if rest < s:
            calls.append(KernelCall("trsm", m=s - rest, k=wj))
            if rest < k:
                calls.append(KernelCall("syrk", m=k - rest, k=wj))
                calls.append(KernelCall("gemm", m=s - k, n=k - rest, k=wj))
                calls.append(KernelCall("syrk", m=s - k, k=wj))
            else:
                calls.append(KernelCall("syrk", m=s - k, k=wj))
    return calls


class CublasContext:
    """Device kernel provider: fp32 numerics + simulated durations.

    Use :meth:`last_call_seconds` (or the running :attr:`busy_seconds`)
    after each kernel for time attribution, or price call lists directly
    with :meth:`price`.
    """

    def __init__(self, model: PerfModel):
        self.model = model
        self.busy_seconds = 0.0
        self.last_call_seconds = 0.0
        self.calls: list[KernelCall] = []

    @property
    def dtype(self):
        """Device compute dtype: float32 under 'sp' (the paper's mode)."""
        return np.float32 if self.model.precision == "sp" else np.float64

    # -- internal ------------------------------------------------------
    def _charge(self, call: KernelCall) -> float:
        t = self.model.kernel_time(
            "gpu", call.kernel, m=call.m, n=call.n, k=call.k
        )
        self.busy_seconds += t
        self.last_call_seconds = t
        self.calls.append(call)
        return t

    def _as_device(self, a: np.ndarray) -> np.ndarray:
        if a.dtype != self.dtype:
            raise TypeError(
                f"device kernel received {a.dtype} array; transfer to the "
                f"device (astype {self.dtype}) first"
            )
        return a

    # -- KernelProvider protocol (numerics + charging) ------------------
    def potrf(self, a: np.ndarray) -> np.ndarray:
        a = self._as_device(a)
        self._charge(KernelCall("potrf", k=a.shape[0]))
        # fp32 Cholesky may hit spurious non-positive pivots for
        # ill-conditioned blocks; promote internally like the real
        # mixed-precision kernels do for the tiny w x w panel
        try:
            return hk.potrf(a).astype(self.dtype)
        except hk.NotPositiveDefiniteError:
            return hk.potrf(a.astype(np.float64)).astype(self.dtype)

    def trsm(self, b: np.ndarray, l: np.ndarray) -> np.ndarray:
        b = self._as_device(b)
        l = self._as_device(l)
        self._charge(KernelCall("trsm", m=b.shape[0], k=l.shape[0]))
        return hk.trsm_right_lower(b, l)

    def syrk(self, c: np.ndarray, x: np.ndarray) -> np.ndarray:
        c = self._as_device(c)
        x = self._as_device(x)
        self._charge(KernelCall("syrk", m=x.shape[0], k=x.shape[1]))
        return hk.syrk(c, x)

    def gemm(self, c: np.ndarray, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        c = self._as_device(c)
        self._charge(
            KernelCall("gemm", m=a.shape[0], n=b.shape[1], k=a.shape[1])
        )
        return hk.gemm(c, self._as_device(a), self._as_device(b))

    def syrk_outer(self, x: np.ndarray) -> np.ndarray:
        """``W = X X^T`` — the form policy P2 ships back to the host,
        which then applies ``U -= W`` locally (Section IV-B)."""
        x = self._as_device(x)
        self._charge(KernelCall("syrk", m=x.shape[0], k=x.shape[1]))
        return x @ x.T

    # -- pure pricing ----------------------------------------------------
    def price(self, calls: list[KernelCall]) -> float:
        """Total simulated seconds of a kernel call list (no numerics,
        no charging — used by the schedule estimators)."""
        return sum(
            self.model.kernel_time("gpu", c.kernel, m=c.m, n=c.n, k=c.k)
            for c in calls
        )
