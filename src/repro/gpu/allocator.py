"""High-water-mark memory pools (paper Section V-A2).

Pinned host memory makes transfers overlappable and faster, but
``cudaMallocHost`` is "prohibitively expensive when the data to be copied
is not large enough" — and supernodes are mostly small — so the paper
triggers allocation "only when the maximum allocated size over all the
previous calls is insufficient", for both pinned host buffers and device
memory.  :class:`HighWaterMarkPool` models exactly that: it owns one
logical buffer that only ever grows, charges allocation time on growth,
and satisfies any request within the current capacity for free.

The ablation bench ``test_ablation_pinned_pool`` swaps this for a
per-call allocator to show the degradation the paper describes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["AllocationStats", "HighWaterMarkPool", "PerCallPool", "DeviceMemoryError"]


class DeviceMemoryError(MemoryError):
    """Requested more device memory than the simulated GPU has."""


@dataclass
class AllocationStats:
    """Counters exposed for tests and the ablation benches."""

    n_requests: int = 0
    n_growths: int = 0
    bytes_requested: int = 0
    high_water: int = 0
    alloc_seconds: float = 0.0

    def as_counters(self, prefix: str) -> dict[str, float | int]:
        """Flatten into deterministic named counters (simulated-time and
        byte accounting only), for the benchmark harness's regression
        gate."""
        return {
            f"{prefix}.requests": int(self.n_requests),
            f"{prefix}.growths": int(self.n_growths),
            f"{prefix}.bytes_requested": int(self.bytes_requested),
            f"{prefix}.high_water": int(self.high_water),
            f"{prefix}.alloc_seconds": float(self.alloc_seconds),
        }


@dataclass
class HighWaterMarkPool:
    """Grow-only pool; allocation cost is charged only on growth.

    Parameters
    ----------
    alloc_time : callable(nbytes) -> float
        Cost model for a real allocation of ``nbytes`` (e.g.
        ``TransferParams.pinned_alloc_time``).
    capacity_limit : int or None
        Hard ceiling (device memory size); ``None`` = unlimited (pinned
        host memory).
    """

    alloc_time: object
    capacity_limit: int | None = None
    capacity: int = 0
    in_use: int = 0
    stats: AllocationStats = field(default_factory=AllocationStats)

    def request(self, nbytes: int) -> float:
        """Reserve ``nbytes``; returns the simulated seconds the request
        costs (0.0 when it fits under the high-water mark)."""
        if nbytes < 0:
            raise ValueError("negative allocation request")
        self.stats.n_requests += 1
        self.stats.bytes_requested += nbytes
        self.in_use += nbytes
        if nbytes <= self.capacity:
            return 0.0
        if self.capacity_limit is not None and nbytes > self.capacity_limit:
            self.in_use -= nbytes
            raise DeviceMemoryError(
                f"request of {nbytes} bytes exceeds device capacity "
                f"{self.capacity_limit}"
            )
        cost = float(self.alloc_time(nbytes))
        self.capacity = nbytes
        self.stats.n_growths += 1
        self.stats.high_water = max(self.stats.high_water, nbytes)
        self.stats.alloc_seconds += cost
        return cost

    def release(self, nbytes: int | None = None) -> None:
        """Return ``nbytes`` of reservations (all of them when omitted).

        The backing buffer is *kept* — that is the whole point of the
        high-water-mark strategy — only the ``in_use`` accounting drops,
        so long-lived owners (the dynamic runtime admitting concurrent
        fronts) can see what is logically live versus merely retained.
        """
        if nbytes is None:
            self.in_use = 0
        elif nbytes < 0:
            raise ValueError("negative release")
        else:
            self.in_use = max(0, self.in_use - nbytes)

    def reset_peak(self) -> None:
        """Forget the high-water mark: shrink the retained capacity to
        what is currently in use (e.g. between factorizations, so a new
        run re-measures its own peak instead of inheriting ours)."""
        self.capacity = self.in_use
        self.stats.high_water = self.in_use


@dataclass
class PerCallPool:
    """The naive strategy: allocate (and free) on every call.  Exists to
    quantify what the high-water-mark policy saves."""

    alloc_time: object
    capacity_limit: int | None = None
    in_use: int = 0
    stats: AllocationStats = field(default_factory=AllocationStats)

    def request(self, nbytes: int) -> float:
        if nbytes < 0:
            raise ValueError("negative allocation request")
        self.stats.n_requests += 1
        self.stats.bytes_requested += nbytes
        if self.capacity_limit is not None and nbytes > self.capacity_limit:
            raise DeviceMemoryError(
                f"request of {nbytes} bytes exceeds device capacity "
                f"{self.capacity_limit}"
            )
        self.in_use += nbytes
        cost = float(self.alloc_time(nbytes))
        self.stats.n_growths += 1
        self.stats.high_water = max(self.stats.high_water, nbytes)
        self.stats.alloc_seconds += cost
        return cost

    def release(self, nbytes: int | None = None) -> None:
        """Frees immediately (that is the naive strategy); only the
        ``in_use`` accounting exists, there is nothing retained."""
        if nbytes is None:
            self.in_use = 0
        elif nbytes < 0:
            raise ValueError("negative release")
        else:
            self.in_use = max(0, self.in_use - nbytes)

    def reset_peak(self) -> None:
        self.stats.high_water = self.in_use
