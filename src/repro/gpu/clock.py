"""Deterministic discrete-event scheduling of kernel/copy tasks.

The simulation model is intentionally minimal: a set of *engines* (a CPU
core, a GPU compute queue, the H2D and D2H DMA engines) each execute at
most one task at a time, in submission order, subject to explicit
dependencies.  This is exactly the semantics of CUDA streams pinned to
queues and is enough to express every overlap the paper exploits
(copy/compute overlap, CPU potrf concurrent with H2D transfers, D2H of
the solved panel under the syrk).

``schedule_graph`` computes start/end times for every task:

    start(t) = max(release, engine_free_at, max_{d in deps} end(d))

Tasks must be submitted in an order consistent with their dependencies
(policies build graphs topologically, so this holds by construction).
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "SimTask",
    "TaskGraph",
    "EngineTimeline",
    "engine_counters",
    "schedule_graph",
]


@dataclass
class SimTask:
    """One unit of simulated work bound to an engine.

    Attributes
    ----------
    name : str
        Human-readable label (``"syrk"``, ``"h2d:L2"``); also used by the
        instrumentation layer to attribute time to components.
    engine : str
        Engine identifier; tasks on the same engine serialize.
    duration : float
        Simulated seconds.
    deps : tuple of SimTask
        Tasks that must finish before this one starts.
    category : str
        Coarse component bucket for reporting: ``potrf | trsm | syrk |
        gemm | copy | assemble | other``.
    """

    name: str
    engine: str
    duration: float
    deps: tuple = ()
    category: str = "other"
    start: float = field(default=-1.0, compare=False)
    end: float = field(default=-1.0, compare=False)

    @property
    def scheduled(self) -> bool:
        return self.end >= 0.0


@dataclass
class EngineTimeline:
    """Per-engine availability and busy-time accounting."""

    name: str
    free_at: float = 0.0
    busy: float = 0.0
    n_tasks: int = 0

    def utilization(self, horizon: float) -> float:
        return self.busy / horizon if horizon > 0 else 0.0


class TaskGraph:
    """An appendable DAG of :class:`SimTask` with convenience constructors."""

    def __init__(self):
        self.tasks: list[SimTask] = []

    def add(
        self,
        name: str,
        engine: str,
        duration: float,
        deps: tuple | list = (),
        category: str = "other",
    ) -> SimTask:
        if duration < 0:
            raise ValueError(f"negative duration for task {name!r}")
        task = SimTask(name, engine, float(duration), tuple(deps), category)
        self.tasks.append(task)
        return task

    def extend(self, other: "TaskGraph") -> None:
        self.tasks.extend(other.tasks)

    def total_by_category(self) -> dict[str, float]:
        out: dict[str, float] = {}
        for t in self.tasks:
            out[t.category] = out.get(t.category, 0.0) + t.duration
        return out

    def __len__(self) -> int:
        return len(self.tasks)


@dataclass
class ScheduleResult:
    """Outcome of scheduling a task graph."""

    makespan: float
    engines: dict[str, EngineTimeline]
    tasks: list[SimTask]
    start_time: float = 0.0

    @property
    def elapsed(self) -> float:
        return self.makespan - self.start_time

    def time_by_category(self) -> dict[str, float]:
        """Busy time per category (not wall time — overlapped work counts
        fully, matching how the paper reports per-component costs)."""
        out: dict[str, float] = {}
        for t in self.tasks:
            out[t.category] = out.get(t.category, 0.0) + t.duration
        return out


def schedule_graph(
    graph: TaskGraph,
    *,
    start_time: float = 0.0,
    engines: dict[str, EngineTimeline] | None = None,
) -> ScheduleResult:
    """Assign start/end times to every task in ``graph``.

    Parameters
    ----------
    graph : TaskGraph
        Tasks in an order consistent with their dependencies.
    start_time : float
        Simulated release time of the whole graph.
    engines : dict, optional
        Pre-existing engine timelines to continue from (lets successive
        F-U calls share engine state so cross-call pipelining is modeled);
        new engines are created on first use.

    Returns
    -------
    ScheduleResult with per-task times filled in.
    """
    eng = engines if engines is not None else {}
    makespan = start_time
    for task in graph.tasks:
        for d in task.deps:
            if not d.scheduled:
                raise ValueError(
                    f"task {task.name!r} submitted before its dependency {d.name!r}"
                )
        timeline = eng.setdefault(task.engine, EngineTimeline(task.engine))
        ready = start_time
        for d in task.deps:
            ready = max(ready, d.end)
        task.start = max(ready, timeline.free_at)
        task.end = task.start + task.duration
        timeline.free_at = task.end
        timeline.busy += task.duration
        timeline.n_tasks += 1
        makespan = max(makespan, task.end)
    return ScheduleResult(makespan, eng, list(graph.tasks), start_time)


def engine_counters(
    engines: dict[str, EngineTimeline], prefix: str = "engine"
) -> dict[str, float | int]:
    """Flatten per-engine timelines into deterministic named counters.

    Everything here is derived from the virtual clock — simulated busy
    seconds, task counts, final availability — so the values are
    bit-stable across runs and machines.  The benchmark harness
    (:mod:`repro.bench`) records them as regression-gated counters.
    """
    out: dict[str, float | int] = {}
    for name in sorted(engines):
        t = engines[name]
        out[f"{prefix}.{name}.busy_seconds"] = float(t.busy)
        out[f"{prefix}.{name}.tasks"] = int(t.n_tasks)
        out[f"{prefix}.{name}.free_at"] = float(t.free_at)
    return out


def critical_path(result: ScheduleResult) -> list[SimTask]:
    """Recover one critical path (latest-finishing chain) for diagnostics."""
    if not result.tasks:
        return []
    current = max(result.tasks, key=lambda t: t.end)
    path = [current]
    while True:
        # the predecessor that pinned our start: a dep or the engine's
        # previous task ending exactly at our start
        blockers = [d for d in current.deps if d.end == current.start]
        if not blockers:
            same_engine = [
                t
                for t in result.tasks
                if t is not current and t.engine == current.engine and t.end == current.start
            ]
            blockers = same_engine
        if not blockers:
            break
        current = blockers[0]
        path.append(current)
    path.reverse()
    return path
