"""The simulated node: host CPU cores + attached simulated GPUs.

A :class:`SimulatedNode` owns the engine timelines shared by every
factor-update call of a factorization, so engine contention and
cross-call pipelining are modeled (e.g. the H2D engine still draining the
previous supernode's panel delays the next one).  Worker composition for
the parallel runs (Section VI-C's "2 CPU threads and 2 GPUs") pairs each
CPU engine with at most one GPU, matching the paper's design: "our
approach uses the same number of threads as the number of available
GPUs".
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field

from repro.gpu.allocator import HighWaterMarkPool, PerCallPool
from repro.gpu.clock import EngineTimeline
from repro.gpu.cublas import CublasContext
from repro.gpu.perfmodel import PerfModel, tesla_t10_model
from repro.gpu.spec import TESLA_T10, GpuSpec

__all__ = ["HostCpu", "SimulatedGpu", "SimulatedNode"]


@dataclass
class HostCpu:
    """One host CPU core (fp64 kernels)."""

    cpu_id: int = 0

    @property
    def engine(self) -> str:
        return f"cpu{self.cpu_id}"


class SimulatedGpu:
    """One simulated GPU: compute queue, two DMA engines, memory pools."""

    def __init__(
        self,
        model: PerfModel,
        gpu_id: int = 0,
        spec: GpuSpec = TESLA_T10,
        *,
        pinned_pooling: bool = True,
    ):
        self.model = model
        self.gpu_id = gpu_id
        self.spec = spec
        self.cublas = CublasContext(model)
        pool_cls = HighWaterMarkPool if pinned_pooling else PerCallPool
        self.device_pool = pool_cls(
            alloc_time=lambda b: 1e-4 + b / 5e9,  # cudaMalloc: cheap-ish
            capacity_limit=spec.memory_bytes,
        )
        self.pinned_pool = pool_cls(
            alloc_time=model.transfer.pinned_alloc_time,
            capacity_limit=None,
        )

    # engine names --------------------------------------------------------
    @property
    def compute_engine(self) -> str:
        return f"gpu{self.gpu_id}.compute"

    @property
    def h2d_engine(self) -> str:
        return f"gpu{self.gpu_id}.h2d"

    @property
    def d2h_engine(self) -> str:
        return f"gpu{self.gpu_id}.d2h"

    # memory ---------------------------------------------------------------
    def reserve(self, device_bytes: int, pinned_bytes: int) -> float:
        """Reserve working memory for one F-U call; returns the allocation
        cost in simulated seconds (zero under the high-water mark).

        The caller owns both reservations and must pair this with
        :meth:`release` (or use :meth:`working_set`, which releases
        structurally).  If the pinned request fails the device
        reservation is rolled back, so a failed reserve leaves both
        pools untouched.
        """
        cost = self.device_pool.request(device_bytes)
        try:
            cost += self.pinned_pool.request(pinned_bytes)
        except BaseException:
            self.device_pool.release(device_bytes)
            raise
        return cost

    def release(self, device_bytes: int, pinned_bytes: int) -> None:
        """Return a :meth:`reserve` made earlier to both pools."""
        self.device_pool.release(device_bytes)
        self.pinned_pool.release(pinned_bytes)

    @contextmanager
    def working_set(self, device_bytes: int, pinned_bytes: int):
        """Own a per-call working set for the duration of a block.

        Yields the allocation cost in simulated seconds; both pools are
        released on every exit path, so ``in_use`` cannot drift even
        when the block raises (e.g. an injected kernel fault).
        """
        cost = self.reserve(device_bytes, pinned_bytes)
        try:
            yield cost
        finally:
            self.release(device_bytes, pinned_bytes)


@dataclass
class SimulatedNode:
    """Host + GPUs + the shared engine timelines of one simulated run."""

    model: PerfModel = field(default_factory=tesla_t10_model)
    n_cpus: int = 1
    n_gpus: int = 1
    pinned_pooling: bool = True
    cpus: list[HostCpu] = field(init=False)
    gpus: list[SimulatedGpu] = field(init=False)
    engines: dict[str, EngineTimeline] = field(init=False)

    def __post_init__(self):
        if self.n_cpus < 1:
            raise ValueError("need at least one CPU")
        if self.n_gpus < 0:
            raise ValueError("negative GPU count")
        self.cpus = [HostCpu(i) for i in range(self.n_cpus)]
        self.gpus = [
            SimulatedGpu(self.model, i, pinned_pooling=self.pinned_pooling)
            for i in range(self.n_gpus)
        ]
        self.engines = {}

    @property
    def now(self) -> float:
        """Current simulated time = latest engine completion."""
        if not self.engines:
            return 0.0
        return max(t.free_at for t in self.engines.values())

    def reset(self) -> None:
        """Clear all timelines and memory pools (fresh run)."""
        self.engines = {}
        for g in self.gpus:
            g.cublas.busy_seconds = 0.0
            g.cublas.calls.clear()
            g.device_pool.capacity = 0
            g.device_pool.in_use = 0
            g.pinned_pool.capacity = 0 if hasattr(g.pinned_pool, "capacity") else 0
            g.pinned_pool.in_use = 0 if hasattr(g.pinned_pool, "in_use") else 0
