"""Chrome-trace export of simulated schedules.

Any scheduled task set (from a factorization's node, a
:class:`~repro.gpu.clock.ScheduleResult`, or a list of
:class:`~repro.gpu.clock.SimTask`) can be dumped in the Chrome Trace
Event Format and inspected in ``chrome://tracing`` / Perfetto — engines
become rows, tasks become slices colored by category, and overlap
(copy under compute, CPU under GPU) is visible at a glance.  Invaluable
when debugging why a policy's critical path is what it is.
"""

from __future__ import annotations

import json
import re
from typing import Iterable

from repro.gpu.clock import SimTask

__all__ = ["tasks_to_chrome_trace", "write_chrome_trace"]

#: stable thread ids per engine kind so related engines group together
_ENGINE_ORDER = ("cpu", "gpu", "nic")

#: cluster engines are namespaced ``node{i}.cpu`` / ``rank{i}.nic``; the
#: merged multi-node trace groups lanes node-major (all of node0, then
#: all of node1, ...), kind-ordered within each node
_NODE_PREFIX = re.compile(r"^(?:node|rank)(\d+)$")

_CATEGORY_COLOR = {
    "potrf": "thread_state_running",
    "trsm": "thread_state_runnable",
    "syrk": "thread_state_iowait",
    "gemm": "thread_state_unknown",
    "copy": "grey",
    "assemble": "yellow",
    "alloc": "black",
    "comm": "olive",
}


def _engine_rank(engine: str) -> int:
    """Position of the engine's kind in :data:`_ENGINE_ORDER`.

    Kinds match on any dot-separated component (``"cpu0"``,
    ``"gpu1.h2d"``, ``"rank0.nic"``); unknown kinds sort after all
    known ones.
    """
    for i, kind in enumerate(_ENGINE_ORDER):
        if any(part.startswith(kind) for part in engine.split(".")):
            return i
    return len(_ENGINE_ORDER)


def _engine_sort_key(engine: str) -> tuple[int, int, str]:
    """Row-ordering key: ``(node index, kind rank, name)``.

    Engines with a ``node{i}``/``rank{i}`` first component group
    node-major; un-namespaced engines keep node index -1 so single-node
    traces sort exactly as before.
    """
    head, _, rest = engine.partition(".")
    m = _NODE_PREFIX.match(head)
    if m:
        return (int(m.group(1)), _engine_rank(rest or head), engine)
    return (-1, _engine_rank(engine), engine)


def tasks_to_chrome_trace(
    tasks: Iterable[SimTask], *, time_unit: float = 1e6
) -> dict:
    """Convert scheduled tasks to a Chrome Trace Event Format dict.

    ``time_unit`` scales simulated seconds into trace microseconds
    (default: 1 simulated second = 1 trace second).  Engine rows are
    grouped node-major when engines carry a ``node{i}.``/``rank{i}.``
    namespace (all of node0's lanes, then node1's, ...), then by kind in
    :data:`_ENGINE_ORDER` (all CPUs, then GPUs, then NICs),
    alphabetically within a kind, regardless of which engine's task
    happens to appear first in the stream.
    """
    tasks = list(tasks)
    for t in tasks:
        if not t.scheduled:
            raise ValueError(f"task {t.name!r} is not scheduled yet")
    engines = {
        name: tid
        for tid, name in enumerate(
            sorted({t.engine for t in tasks}, key=_engine_sort_key)
        )
    }
    events = []
    for t in tasks:
        tid = engines[t.engine]
        event = {
            "name": t.name,
            "cat": t.category,
            "ph": "X",
            "ts": t.start * time_unit,
            "dur": max(t.duration * time_unit, 0.01),
            "pid": 0,
            "tid": tid,
        }
        color = _CATEGORY_COLOR.get(t.category)
        if color:
            event["cname"] = color
        events.append(event)
    # thread name metadata so rows are labeled by engine
    for engine, tid in sorted(engines.items(), key=lambda kv: kv[1]):
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 0,
                "tid": tid,
                "args": {"name": engine},
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(path, tasks: Iterable[SimTask], **kwargs) -> None:
    """Write a ``chrome://tracing``-loadable JSON file."""
    with open(path, "w") as fh:
        json.dump(tasks_to_chrome_trace(tasks, **kwargs), fh)
