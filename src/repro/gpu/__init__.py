"""The simulated CPU-GPU node.

The paper's experiments ran on an IBM HS21 blade (2x dual-core Xeon 5160)
attached to an Nvidia Tesla T10 over PCIe x8.  This environment has no
GPU, so — per the reproduction's substitution rule — this subpackage
provides a *discrete-event simulated device* whose kernels really compute
(in float32, like the paper's CUBLAS usage) while their *time* is charged
by a latency/throughput performance model calibrated against the paper's
measurements (Table III stabilized rates, Figure 7/8 CPU-GPU transition
points, the ~1.4 GB/s achieved PCIe bandwidth).

Components
----------
``clock``      deterministic event engine: engines, tasks, dependency
               scheduling, makespan/critical-path accounting.
``spec``       hardware description records (Table I).
``perfmodel``  the calibrated kernel/transfer timing model.
``allocator``  high-water-mark device & pinned-host memory pools (V-A2).
``cublas``     simulated CUBLAS context: fp32 kernels + time charging.
``device``     ties the above into a `SimulatedGpu` / `HostCpu` pair.
"""

from repro.gpu.clock import EngineTimeline, SimTask, TaskGraph, schedule_graph
from repro.gpu.spec import GpuSpec, HostSpec, TESLA_T10, XEON_5160_CORE
from repro.gpu.perfmodel import (
    KernelParams,
    PerfModel,
    TransferParams,
    fermi_c2050_model,
    tesla_t10_model,
)
from repro.gpu.allocator import AllocationStats, HighWaterMarkPool
from repro.gpu.cublas import CublasContext
from repro.gpu.device import HostCpu, SimulatedGpu, SimulatedNode

__all__ = [
    "SimTask",
    "TaskGraph",
    "EngineTimeline",
    "schedule_graph",
    "GpuSpec",
    "HostSpec",
    "TESLA_T10",
    "XEON_5160_CORE",
    "KernelParams",
    "TransferParams",
    "PerfModel",
    "tesla_t10_model",
    "fermi_c2050_model",
    "HighWaterMarkPool",
    "AllocationStats",
    "CublasContext",
    "SimulatedGpu",
    "HostCpu",
    "SimulatedNode",
]
