"""Hardware description records (the paper's Table I and host specs)."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["GpuSpec", "HostSpec", "TESLA_T10", "XEON_5160_CORE"]


@dataclass(frozen=True)
class GpuSpec:
    """GPU specification as reported in Table I of the paper."""

    name: str
    architecture: str
    clock_ghz: float
    scalar_cores: int
    sm_count: int
    device_bandwidth_gbs: float
    pcie_bandwidth_gbs: float
    memory_bytes: int
    shared_mem_per_sm_bytes: int
    peak_sp_gflops: float
    peak_dp_gflops: float
    sdk: str = "CUDA 2.3"
    compiler: str = "nvcc (-O3)"

    def table_rows(self) -> list[tuple[str, str]]:
        """Rows of Table I, for the bench harness to print."""
        return [
            ("GPU", self.name),
            ("Architecture Type", self.architecture),
            ("Clock (GHz)", f"{self.clock_ghz:g}"),
            ("Scalar Cores", f"{self.scalar_cores}({self.sm_count}x{self.scalar_cores // self.sm_count})"),
            ("Memory b/w (GB/s)", f"{self.device_bandwidth_gbs:g} (device) {self.pcie_bandwidth_gbs:g} (PCIe x8)"),
            ("Memory size", f"{self.memory_bytes // 2**30} GB"),
            ("Local Store (KB)", f"{self.shared_mem_per_sm_bytes // 1024} per SM"),
            ("SDK", self.sdk),
            ("Compiler", self.compiler),
        ]


@dataclass(frozen=True)
class HostSpec:
    """One core of the host CPU."""

    name: str
    clock_ghz: float
    peak_sp_gflops: float
    peak_dp_gflops: float
    l2_cache_bytes: int


#: The paper's Tesla T10 (one GPU of a Tesla S1070, PCIe x8 attach).
TESLA_T10 = GpuSpec(
    name="Tesla T10",
    architecture="multithread SIMD (SIMT)",
    clock_ghz=1.3,
    scalar_cores=240,
    sm_count=30,
    device_bandwidth_gbs=102.0,
    pcie_bandwidth_gbs=2.0,
    memory_bytes=4 * 2**30,
    shared_mem_per_sm_bytes=16 * 1024,
    peak_sp_gflops=624.0,
    peak_dp_gflops=78.0,
)

#: One core of the HS21 blade's Intel Xeon 5160 (3.0 GHz).
XEON_5160_CORE = HostSpec(
    name="Xeon 5160 (1 core)",
    clock_ghz=3.0,
    peak_sp_gflops=24.0,
    peak_dp_gflops=12.0,
    l2_cache_bytes=4 * 2**20,
)
