"""Calibrated latency/throughput performance model.

Every simulated kernel charges time with the classical two-parameter
model plus two size-dependent corrections that the paper's measurements
make clearly visible:

    t(kernel, dims) = t0 + flops(quantize(dims)) / (peak * eff(dims))

* ``t0`` — fixed launch/dispatch latency.  This alone produces the
  flop-rate ramp of Figure 4 (effective rate = N / (t0 + N/peak)
  saturates at ``peak`` for large N).
* ``quantize`` — GPU kernels pad dimensions to tile multiples, producing
  the jagged rate curves the paper notes for CUBLAS syrk (Fig. 8: "the
  jagged behavior ... m^2 k is only an approximate indicator of the exact
  number of operations, which depend on the data tile sizes").
* ``eff`` — narrow-dimension efficiency ``nmin / (nmin + narrow_half)``:
  a wide syrk with a thin k cannot fill the SIMT machine, so its
  sustained rate is far below peak.  This is what keeps the blocked
  panel potrf of Table V at 68-124 GF/s instead of the 160 GF/s syrk
  saturation rate.

Calibration targets (all from the paper):

==========================  =============================  ==============
quantity                     paper                          model
==========================  =============================  ==============
CPU potrf/trsm/syrk rates    8.84 / 9.24 / 10.02 GF/s       peaks (exact)
GPU trsm/syrk rates (fp32)   153.7 / 159.69 GF/s            peaks (exact)
trsm crossover, no copy      ~4e5 ops                       t0 = 42 us
trsm crossover, with copy    ~3e6 ops                       beta, latency
syrk crossover, no copy      ~1.5e5 ops                     t0 = 16 us
syrk with-copy grey zone     1e6 - 1e7 ops                  emergent
achieved PCIe bandwidth      ~1.4 GB/s                      pageable/pinned mix
blocked GPU potrf (m=0)      68-124 GF/s, rising with k     narrow_half
==========================  =============================  ==============

The GPU computes in float32 by default (the paper used CUBLAS single
precision because the T10's double throughput is 8x lower); a
double-precision parameter set with peaks scaled by the hardware's
sp:dp ratio is included for the "readily adapted to a double-precision
implementation" extension experiment.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace

from repro.gpu.spec import TESLA_T10, XEON_5160_CORE, GpuSpec, HostSpec

__all__ = ["KernelParams", "TransferParams", "PerfModel", "tesla_t10_model", "fermi_c2050_model"]


@dataclass(frozen=True)
class KernelParams:
    """Timing parameters of one kernel on one device."""

    launch_latency: float          # seconds
    peak: float                    # flops/s at saturation
    narrow_half: float = 0.0       # eff = nmin / (nmin + narrow_half)
    tile: int = 1                  # dimension quantization

    def efficiency(self, nmin: float) -> float:
        if self.narrow_half <= 0:
            return 1.0
        return nmin / (nmin + self.narrow_half)


@dataclass(frozen=True)
class TransferParams:
    """PCIe transfer model (paper IV-B: ~1.4 GB/s achieved over x8)."""

    latency: float = 15e-6             # per-transfer setup, seconds
    bw_pageable: float = 1.15e9        # bytes/s, synchronous pageable copies
    bw_pinned: float = 1.8e9           # bytes/s, pinned (async-capable)
    pinned_alloc_latency: float = 4e-4  # cudaMallocHost is expensive (V-A2)
    pinned_alloc_bw: float = 2.5e9     # bytes/s while growing the pool

    def time(self, nbytes: float, *, pinned: bool) -> float:
        bw = self.bw_pinned if pinned else self.bw_pageable
        return self.latency + nbytes / bw

    def pinned_alloc_time(self, nbytes: float) -> float:
        return self.pinned_alloc_latency + nbytes / self.pinned_alloc_bw


def _kernel_flops(kernel: str, m: int, n: int, k: int) -> float:
    """Asymptotic flop counts per kernel, matching the paper's accounting."""
    if kernel == "potrf":
        return k**3 / 3.0
    if kernel == "trsm":
        return float(m) * k * k
    if kernel == "syrk":
        return float(m) * m * k
    if kernel == "gemm":
        return 2.0 * m * n * k
    raise ValueError(f"unknown kernel {kernel!r}")


def _kernel_nmin(kernel: str, m: int, n: int, k: int) -> int:
    """The dimension that limits SIMT occupancy for each kernel shape."""
    if kernel == "potrf":
        return max(1, k)
    if kernel in ("trsm", "syrk"):
        return max(1, k)       # the panel width
    if kernel == "gemm":
        return max(1, min(n, k))
    raise ValueError(f"unknown kernel {kernel!r}")


def _quantize(x: int, tile: int) -> int:
    if tile <= 1 or x <= 0:
        return x
    return int(math.ceil(x / tile) * tile)


@dataclass
class PerfModel:
    """The full node timing model: CPU kernels, GPU kernels, transfers.

    ``precision`` selects the GPU parameter set: ``"sp"`` (the paper's
    configuration) or ``"dp"`` (the extension experiment).  CPU kernels
    are always double precision, as in WSMP.
    """

    cpu: dict[str, KernelParams]
    gpu_sp: dict[str, KernelParams]
    gpu_dp: dict[str, KernelParams]
    transfer: TransferParams
    gpu_spec: GpuSpec = TESLA_T10
    host_spec: HostSpec = XEON_5160_CORE
    precision: str = "sp"
    cpu_mem_bw: float = 6.0e9          # bytes/s for assembly/axpy work (Xeon 5160 streaming)
    jitter: float = 0.0                # multiplicative noise amplitude
    _jitter_salt: int = field(default=0x9E3779B9, repr=False)

    # word sizes used for transfer volumes
    CPU_WORD = 8
    GPU_WORD_SP = 4
    GPU_WORD_DP = 8

    @property
    def gpu(self) -> dict[str, KernelParams]:
        return self.gpu_sp if self.precision == "sp" else self.gpu_dp

    @property
    def gpu_word(self) -> int:
        return self.GPU_WORD_SP if self.precision == "sp" else self.GPU_WORD_DP

    def with_precision(self, precision: str) -> "PerfModel":
        if precision not in ("sp", "dp"):
            raise ValueError("precision must be 'sp' or 'dp'")
        return replace(self, precision=precision)

    # ------------------------------------------------------------------
    def _noise(self, kernel: str, device: str, m: int, n: int, k: int) -> float:
        """Deterministic multiplicative jitter in [1-j, 1+j] keyed on the
        call signature (reproducible 'measurement noise')."""
        if self.jitter <= 0:
            return 1.0
        # stable across processes (unlike built-in str hashing): xor-fold a
        # zlib.crc32 of the call signature with a splitmix-style salt
        import zlib

        sig = f"{kernel}|{device}|{m}|{n}|{k}".encode()
        h = (zlib.crc32(sig) ^ self._jitter_salt) & 0xFFFFFFFF
        h = (h * 0x45D9F3B) & 0xFFFFFFFF
        u = h / 0xFFFFFFFF
        return 1.0 + self.jitter * (2.0 * u - 1.0)

    def kernel_time(
        self, device: str, kernel: str, *, m: int = 0, n: int = 0, k: int = 0
    ) -> float:
        """Simulated seconds for one kernel invocation.

        ``device`` is ``"cpu"`` or ``"gpu"``.  Dimensions follow the F-U
        conventions: potrf(k), trsm(m, k), syrk(m, k), gemm(m, n, k).
        """
        table = self.cpu if device == "cpu" else self.gpu
        if kernel not in table:
            raise ValueError(f"no {device} parameters for kernel {kernel!r}")
        p = table[kernel]
        mq, nq, kq = (
            (m, n, k)
            if device == "cpu"
            else (_quantize(m, p.tile), _quantize(n, p.tile), _quantize(k, p.tile))
        )
        flops = _kernel_flops(kernel, mq, nq, kq)
        if flops <= 0:
            return 0.0
        eff = p.efficiency(_kernel_nmin(kernel, m, n, k))
        t = p.launch_latency + flops / (p.peak * eff)
        return t * self._noise(kernel, device, m, n, k)

    def kernel_rate(
        self, device: str, kernel: str, *, m: int = 0, n: int = 0, k: int = 0
    ) -> float:
        """Effective flops/s using the *nominal* (unquantized) counts —
        exactly how the paper computes observed rates."""
        t = self.kernel_time(device, kernel, m=m, n=n, k=k)
        flops = _kernel_flops(kernel, m, n, k)
        return flops / t if t > 0 else 0.0

    def transfer_time(self, nbytes: float, *, pinned: bool = True) -> float:
        return self.transfer.time(nbytes, pinned=pinned) * self._noise(
            "copy", "pcie", int(nbytes), 0, int(pinned)
        )

    def host_memory_time(self, nbytes: float) -> float:
        """Host-side memory-bound work (extend-add scatter, U -= W axpy)."""
        return nbytes / self.cpu_mem_bw

    # ------------------------------------------------------------------
    def stabilized_rates(self) -> dict[str, dict[str, float]]:
        """Table III: asymptotic rates and %-of-peak per kernel/device."""
        out: dict[str, dict[str, float]] = {"cpu": {}, "gpu": {}}
        for kern, p in self.cpu.items():
            out["cpu"][kern] = p.peak
        for kern, p in self.gpu.items():
            out["gpu"][kern] = p.peak
        return out

    def percent_peak(self, device: str, kernel: str) -> float:
        if device == "cpu":
            return 100.0 * self.cpu[kernel].peak / (self.host_spec.peak_dp_gflops * 1e9)
        hw_peak = (
            self.gpu_spec.peak_sp_gflops
            if self.precision == "sp"
            else self.gpu_spec.peak_dp_gflops
        ) * 1e9
        return 100.0 * self.gpu[kernel].peak / hw_peak


def tesla_t10_model(*, jitter: float = 0.0) -> PerfModel:
    """The default calibration: HS21 host + Tesla T10 over PCIe x8.

    CPU peaks are the paper's Table III stabilized rates verbatim; GPU
    launch latencies are solved from the Figure 7/8 transition points
    (see the module docstring); the ``narrow_half`` values reproduce the
    Table V blocked-potrf rates and the sub-peak behaviour of moderate-k
    calls in Figure 4.
    """
    cpu = {
        "potrf": KernelParams(launch_latency=2e-6, peak=8.84e9),
        "trsm": KernelParams(launch_latency=2e-6, peak=9.24e9),
        "syrk": KernelParams(launch_latency=2e-6, peak=10.02e9),
        "gemm": KernelParams(launch_latency=2e-6, peak=9.80e9),
    }
    gpu_sp = {
        # the wide trsm/syrk/gemm CUBLAS kernels
        "trsm": KernelParams(launch_latency=42e-6, peak=153.7e9, narrow_half=140, tile=32),
        "syrk": KernelParams(launch_latency=16e-6, peak=159.69e9, narrow_half=100, tile=32),
        "gemm": KernelParams(launch_latency=20e-6, peak=170.0e9, narrow_half=120, tile=32),
        # the "light-weight GPU kernel ... for performing potrf on a w x w
        # matrix" of Section V-A1 — latency-bound, low throughput
        "potrf": KernelParams(launch_latency=10e-6, peak=9.0e9, tile=16),
    }
    # T10 double precision: 78 vs 624 GF/s peak => scale throughputs by 8;
    # launch costs unchanged.
    gpu_dp = {
        name: KernelParams(
            launch_latency=p.launch_latency,
            peak=p.peak / 8.0,
            narrow_half=p.narrow_half,
            tile=p.tile,
        )
        for name, p in gpu_sp.items()
    }
    return PerfModel(
        cpu=cpu,
        gpu_sp=gpu_sp,
        gpu_dp=gpu_dp,
        transfer=TransferParams(),
        jitter=jitter,
    )


def fermi_c2050_model(*, jitter: float = 0.0) -> PerfModel:
    """The paper's footnote, instantiated: "The latest Fermi offering
    from Nvidia is expected to improve double precision performance
    significantly."

    A Tesla C2050-class device: 1030/515 GF/s sp/dp hardware peak (the
    dp:sp ratio improves from 1:8 to 1:2), ECC GDDR5 at ~144 GB/s, PCIe
    gen2 x16 at ~5 GB/s effective, and lower launch overheads (concurrent
    kernels, better driver).  Sustained Level-3 rates follow the same
    ~25% utilization the T10 CUBLAS showed (Table III) — Fermi-era
    MAGMA/CUBLAS did better, so this is a conservative sketch; the point
    of the model is the *dp policy structure*, which the extension bench
    examines.
    """
    cpu = {
        "potrf": KernelParams(launch_latency=2e-6, peak=8.84e9),
        "trsm": KernelParams(launch_latency=2e-6, peak=9.24e9),
        "syrk": KernelParams(launch_latency=2e-6, peak=10.02e9),
        "gemm": KernelParams(launch_latency=2e-6, peak=9.80e9),
    }
    gpu_sp = {
        "trsm": KernelParams(launch_latency=25e-6, peak=255e9, narrow_half=110, tile=32),
        "syrk": KernelParams(launch_latency=10e-6, peak=265e9, narrow_half=80, tile=32),
        "gemm": KernelParams(launch_latency=12e-6, peak=280e9, narrow_half=96, tile=32),
        "potrf": KernelParams(launch_latency=8e-6, peak=15e9, tile=16),
    }
    # Fermi's dp is half of sp, not an eighth
    gpu_dp = {
        name: KernelParams(
            launch_latency=p.launch_latency,
            peak=p.peak / 2.0,
            narrow_half=p.narrow_half,
            tile=p.tile,
        )
        for name, p in gpu_sp.items()
    }
    fermi = GpuSpec(
        name="Tesla C2050",
        architecture="Fermi (GF100)",
        clock_ghz=1.15,
        scalar_cores=448,
        sm_count=14,
        device_bandwidth_gbs=144.0,
        pcie_bandwidth_gbs=8.0,
        memory_bytes=3 * 2**30,
        shared_mem_per_sm_bytes=48 * 1024,
        peak_sp_gflops=1030.0,
        peak_dp_gflops=515.0,
        sdk="CUDA 3.x",
    )
    return PerfModel(
        cpu=cpu,
        gpu_sp=gpu_sp,
        gpu_dp=gpu_dp,
        transfer=TransferParams(
            latency=10e-6, bw_pageable=3.0e9, bw_pinned=5.0e9,
            pinned_alloc_latency=3e-4, pinned_alloc_bw=4e9,
        ),
        gpu_spec=fermi,
        jitter=jitter,
    )
