"""Solve-phase timing model."""

import pytest

from repro.multifrontal.solve_sim import simulate_solve
from repro.workload import paper_workload


@pytest.fixture(scope="module")
def wl():
    return paper_workload("lmco")


class TestSolveSim:
    def test_cpu_solve_is_bandwidth_bound(self, wl, model):
        est = simulate_solve(wl, model, nrhs=1, device="cpu")
        # one sweep reads nnz(L) doubles; two sweeps
        assert est.seconds == pytest.approx(
            2 * wl.nnz_factor * 8 / model.cpu_mem_bw, rel=0.5
        )

    def test_gpu_single_rhs_loses_without_residency(self, model):
        # many-supernode structure: per-supernode launch latency plus the
        # panel upload dwarf the (bandwidth-bound) sweep itself
        wl = paper_workload("kyushu")
        cpu = simulate_solve(wl, model, nrhs=1, device="cpu")
        gpu = simulate_solve(wl, model, nrhs=1, device="gpu")
        assert gpu.seconds > cpu.seconds
        assert gpu.transfer_seconds > 0.5 * gpu.seconds - 1e-9 or gpu.seconds > cpu.seconds

    def test_residency_flips_the_decision(self, wl, model):
        gpu_cold = simulate_solve(wl, model, nrhs=1, device="gpu")
        gpu_res = simulate_solve(
            wl, model, nrhs=1, device="gpu", panels_resident=True
        )
        assert gpu_res.seconds < gpu_cold.seconds
        assert gpu_res.transfer_seconds < gpu_cold.transfer_seconds

    def test_many_rhs_amortize_the_upload(self, wl, model):
        cpu = simulate_solve(wl, model, nrhs=256, device="cpu")
        gpu = simulate_solve(wl, model, nrhs=256, device="gpu")
        # panel upload is paid once for 256 sweeps of work
        assert gpu.seconds < cpu.seconds

    def test_nrhs_scaling_cpu(self, wl, model):
        t1 = simulate_solve(wl, model, nrhs=1, device="cpu").seconds
        t64 = simulate_solve(wl, model, nrhs=64, device="cpu").seconds
        # bandwidth-bound until the flops take over
        assert t64 >= t1

    def test_validation(self, wl, model):
        with pytest.raises(ValueError):
            simulate_solve(wl, model, nrhs=0)
        with pytest.raises(ValueError):
            simulate_solve(wl, model, device="tpu")
