"""The examples must stay runnable — each is executed as a subprocess.

The two heavyweight examples (multi-GPU scaling, cluster scaling, both
paper-scale) are exercised by their benchmark counterparts instead.
"""

import os
import subprocess
import sys

import pytest

EXAMPLES = os.path.join(os.path.dirname(os.path.dirname(__file__)), "examples")

FAST_EXAMPLES = [
    "quickstart.py",
    "structural_analysis.py",
    "mixed_precision_refinement.py",
    "copy_optimization.py",
    "schur_domain_decomposition.py",
    "serving_workflow.py",
]


def run_example(name, timeout=240):
    return subprocess.run(
        [sys.executable, os.path.join(EXAMPLES, name)],
        capture_output=True,
        text=True,
        timeout=timeout,
    )


@pytest.mark.parametrize("name", FAST_EXAMPLES)
def test_example_runs_clean(name):
    proc = run_example(name)
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert proc.stdout.strip(), "example produced no output"
    assert "Traceback" not in proc.stderr


def test_quickstart_reports_the_key_quantities():
    proc = run_example("quickstart.py")
    out = proc.stdout
    assert "policy usage" in out
    assert "refinement step" in out
    assert "simulated" in out or "GF/s" in out


def test_all_examples_present_and_documented():
    listed = sorted(
        f for f in os.listdir(EXAMPLES) if f.endswith(".py")
    )
    assert len(listed) >= 7
    for f in listed:
        with open(os.path.join(EXAMPLES, f)) as fh:
            head = fh.read(2000)
        assert '"""' in head, f"{f} lacks a docstring"
        assert "Run:" in head or "Run :" in head, f"{f} lacks run instructions"
