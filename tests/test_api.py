"""Tests for repro.api: protocol, middleware, admission, jobs, the app
core over both transports, and the end-to-end phased load acceptance.

Everything runs through the real ASGI adapter via the in-process client
(no sockets, no event loop) with ``dispatcher="manual"`` so every test
is deterministic; one test covers the threaded dispatcher and one the
stdlib HTTP bridge.
"""

from __future__ import annotations

import json
import threading
from pathlib import Path

import numpy as np
import pytest

from repro.api import (
    ERROR_STATUS,
    ApiApp,
    ApiError,
    ApiKeyAuth,
    EdgeEntry,
    EdgeQueue,
    InProcessClient,
    JobState,
    JobStore,
    ManualClock,
    RateLimiter,
    Request,
    RequestIds,
    TokenBucket,
    decode_matrix,
    encode_matrix,
    error_response,
)
from repro.api.loadgen import run_load
from repro.matrices import grid_laplacian_2d
from repro.service import ServiceMetrics, SolverService

try:
    from hypothesis import given, strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover
    HAVE_HYPOTHESIS = False

REPO = Path(__file__).resolve().parents[1]

A_SMALL = grid_laplacian_2d(4, 5)
DOC_SMALL = encode_matrix(A_SMALL)
RHS_SMALL = [1.0] * A_SMALL.n_rows


def make_app(service, **kw):
    kw.setdefault("api_keys", {"ka": "alice", "kb": "bob"})
    kw.setdefault("dispatcher", "manual")
    kw.setdefault("clock", ManualClock())
    return ApiApp(service, **kw)


@pytest.fixture(scope="module")
def service():
    svc = SolverService(n_workers=1, policy="P1", ordering="amd")
    yield svc
    svc.shutdown()


# ----------------------------------------------------------------------
# protocol
# ----------------------------------------------------------------------
class TestProtocol:
    def test_every_error_code_has_one_status(self):
        assert set(ERROR_STATUS) == {
            "invalid_request", "unauthorized", "not_found",
            "method_not_allowed", "conflict", "numerical_error",
            "rate_limited", "overloaded", "internal", "unavailable",
            "deadline_exceeded",
        }
        assert ERROR_STATUS["deadline_exceeded"] == 504
        assert ERROR_STATUS["overloaded"] == 429

    def test_unknown_error_code_rejected(self):
        with pytest.raises(ValueError, match="unknown error code"):
            ApiError("teapot", "no")

    def test_envelope_shape(self):
        resp = error_response("rate_limited", "slow down",
                              request_id="rid-1", retry_after_ms=250)
        assert resp.status == 429
        doc = resp.json()
        assert doc == {"error": {
            "code": "rate_limited", "message": "slow down",
            "request_id": "rid-1", "retry_after_ms": 250,
        }}

    def test_matrix_codec_roundtrip(self):
        b = decode_matrix(json.loads(json.dumps(DOC_SMALL)))
        assert b.shape == A_SMALL.shape
        np.testing.assert_array_equal(b.indptr, A_SMALL.indptr)
        np.testing.assert_array_equal(b.data, A_SMALL.data)

    @pytest.mark.parametrize("mutate,match", [
        (lambda d: d.pop("data"), "missing"),
        (lambda d: d.__setitem__("shape", [4]), "shape"),
        (lambda d: d.__setitem__("shape", [True, True]), "shape"),
        (lambda d: d.__setitem__("data", ["x"]), "not numeric"),
        (lambda d: d.__setitem__("indices", [99] * len(d["indices"])),
         "invalid CSC"),
    ])
    def test_matrix_codec_rejects(self, mutate, match):
        doc = json.loads(json.dumps(DOC_SMALL))
        mutate(doc)
        with pytest.raises(ApiError, match=match) as exc:
            decode_matrix(doc)
        assert exc.value.code == "invalid_request"

    def test_request_json_rejects_garbage(self):
        with pytest.raises(ApiError, match="malformed"):
            Request("POST", "/v1/solve", {}, b"{nope").json()
        with pytest.raises(ApiError, match="empty"):
            Request("POST", "/v1/solve", {}, b"").json()
        with pytest.raises(ApiError, match="object"):
            Request("POST", "/v1/solve", {}, b"[1]").json()


# ----------------------------------------------------------------------
# middleware
# ----------------------------------------------------------------------
class TestMiddleware:
    def test_auth_maps_keys_to_clients(self):
        auth = ApiKeyAuth({"k1": "alice", "k2": "alice", "k3": "bob"})
        assert auth.client_for({"x-api-key": "k2"}) == "alice"
        assert auth.client_for({"x-api-key": "nope"}) is None
        assert auth.client_for({}) is None
        assert auth.clients == ["alice", "bob"]
        with pytest.raises(ValueError):
            ApiKeyAuth({})

    def test_token_bucket_burst_then_refill(self):
        clock = ManualClock()
        bucket = TokenBucket(rate=2.0, burst=3, clock=clock)
        assert [bucket.allow() for _ in range(4)] == [True] * 3 + [False]
        clock.advance(1.0)                       # refills 2 tokens
        assert [bucket.allow() for _ in range(3)] == [True, True, False]
        clock.advance(100.0)                     # caps at burst
        assert [bucket.allow() for _ in range(4)] == [True] * 3 + [False]

    def test_rate_limiter_isolates_clients_and_overrides(self):
        clock = ManualClock()
        lim = RateLimiter(rate=1.0, burst=1, clock=clock,
                          overrides={"vip": (100.0, 5)})
        assert lim.allow("a") and not lim.allow("a")
        assert lim.allow("b")                    # b has its own bucket
        assert [lim.allow("vip") for _ in range(6)] == [True] * 5 + [False]

    def test_request_ids_sequential_and_propagated(self):
        rids = RequestIds()
        assert rids.assign({}) == "rid-00000001"
        assert rids.assign({}) == "rid-00000002"
        assert rids.assign({"x-request-id": "trace-7"}) == "trace-7"
        assert rids.assign({"x-request-id": "x" * 200}) == "rid-00000003"
        assert rids.assign({"x-request-id": "bad\nid"}) == "rid-00000004"

    @pytest.mark.skipif(not HAVE_HYPOTHESIS, reason="hypothesis not installed")
    @given(
        rate=st.floats(min_value=0.1, max_value=100.0,
                       allow_nan=False, allow_infinity=False),
        burst=st.integers(min_value=1, max_value=20),
        steps=st.lists(
            st.tuples(
                st.floats(min_value=0.0, max_value=5.0,
                          allow_nan=False, allow_infinity=False),
                st.integers(min_value=0, max_value=30),
            ),
            max_size=20,
        ),
    )
    def test_bucket_never_exceeds_rate_plus_burst(self, rate, burst, steps):
        """Over any window, admitted <= burst + rate * elapsed (+eps)."""
        clock = ManualClock()
        bucket = TokenBucket(rate=rate, burst=burst, clock=clock)
        admitted, elapsed = 0, 0.0
        for advance, attempts in steps:
            clock.advance(advance)
            elapsed += advance
            admitted += sum(bucket.allow() for _ in range(attempts))
        assert admitted <= burst + rate * elapsed + 1e-6


# ----------------------------------------------------------------------
# admission
# ----------------------------------------------------------------------
def _entry(client, rid="r"):
    return EdgeEntry(client=client, request_id=rid, work=lambda t: None)


class TestEdgeQueue:
    def test_sheds_when_full_with_metrics(self):
        m = ServiceMetrics()
        q = EdgeQueue(2, metrics=m)
        assert q.admit(_entry("a")) is None
        assert q.admit(_entry("a")) is None
        assert q.admit(_entry("b")) == "queue_full"
        snap = m.snapshot()
        assert snap["counter.edge.shed_total"] == 1
        assert snap["counter.edge.shed_queue_full"] == 1
        assert snap["gauge.edge.queue_depth"] == 2

    def test_sheds_on_memory_pressure(self):
        pressure = [0.0]
        q = EdgeQueue(8, memory_signal=lambda: pressure[0],
                      memory_threshold=0.9)
        assert q.admit(_entry("a")) is None
        pressure[0] = 0.95
        assert q.admit(_entry("a")) == "memory_pressure"

    def test_closed_queue_sheds(self):
        q = EdgeQueue(2)
        q.close()
        assert q.admit(_entry("a")) == "closed"

    def test_round_robin_fairness(self):
        q = EdgeQueue(16)
        for client, n in (("a", 3), ("b", 1), ("c", 1)):
            for i in range(n):
                q.admit(_entry(client, f"{client}{i}"))
        order = [q.pop().request_id for _ in range(5)]
        # one chatty client (a) cannot starve b and c
        assert order == ["a0", "b0", "c0", "a1", "a2"]
        assert q.pop() is None

    def test_remove_for_cancellation(self):
        q = EdgeQueue(4)
        e1, e2 = _entry("a", "1"), _entry("a", "2")
        q.admit(e1)
        q.admit(e2)
        assert q.remove(e1)
        assert not q.remove(e1)
        assert q.pop().request_id == "2"

    def test_blocking_pop_wakes_on_close(self):
        q = EdgeQueue(2)
        got = []
        t = threading.Thread(
            target=lambda: got.append(q.pop(wait=True, timeout=5.0))
        )
        t.start()
        q.close()
        t.join(timeout=5.0)
        assert not t.is_alive() and got == [None]


# ----------------------------------------------------------------------
# jobs
# ----------------------------------------------------------------------
class TestJobStore:
    def test_lifecycle_and_invalid_transitions(self):
        store = JobStore()
        job = store.create("alice", "rid-1", now=0.0)
        assert job.job_id == "job-00000001" and job.state == JobState.QUEUED
        assert store.transition(job, JobState.RUNNING, now=1.0)
        assert not store.transition(job, JobState.CANCELLED, now=1.5)
        assert store.transition(job, JobState.DONE, now=2.0,
                                result={"tier": "miss"})
        assert not store.transition(job, JobState.RUNNING, now=3.0)
        assert job.finished == 2.0
        assert store.get(job.job_id).describe()["result"] == {"tier": "miss"}

    def test_cancel_only_from_queued(self):
        store = JobStore()
        job = store.create("alice", "rid-1", now=0.0)
        assert store.transition(job, JobState.CANCELLED, now=1.0)
        assert job.state == JobState.CANCELLED
        assert not store.transition(job, JobState.RUNNING, now=2.0)

    def test_finished_retention_is_bounded(self):
        store = JobStore(max_finished=2)
        jobs = [store.create("a", f"r{i}", now=0.0) for i in range(4)]
        for j in jobs:
            store.transition(j, JobState.CANCELLED, now=1.0)
        assert len(store) == 2
        assert store.get(jobs[0].job_id) is None      # oldest evicted
        assert store.get(jobs[3].job_id) is not None

    def test_drop_forgets_shed_admissions(self):
        store = JobStore()
        job = store.create("a", "r", now=0.0)
        store.drop(job)
        assert store.get(job.job_id) is None and len(store) == 0

    def test_counts(self):
        store = JobStore()
        store.create("a", "r1", now=0.0)
        j = store.create("a", "r2", now=0.0)
        store.transition(j, JobState.CANCELLED, now=1.0)
        assert store.counts() == {"cancelled": 1, "queued": 1}


# ----------------------------------------------------------------------
# the app over the in-process ASGI transport
# ----------------------------------------------------------------------
class TestApp:
    def test_healthz_and_metrics_need_no_auth(self, service):
        with make_app(service) as app:
            c = InProcessClient(app)
            h = c.get("/v1/healthz")
            assert h.status == 200
            doc = h.json()
            assert doc["status"] == "ok"
            assert "cache_utilization" in doc["service"]
            assert doc["edge"]["capacity"] == app.edge.capacity
            m = c.get("/v1/metrics")
            assert m.status == 200
            assert m.headers["content-type"].startswith("text/plain")
            assert "counter.api.requests" in m.body.decode()

    def test_solve_roundtrip_solves_the_system(self, service):
        with make_app(service) as app:
            c = InProcessClient(app)
            r = c.post("/v1/solve", api_key="ka",
                       json={"matrix": DOC_SMALL, "rhs": RHS_SMALL})
            assert r.status == 200
            doc = r.json()
            x = np.asarray(doc["x"])
            residual = A_SMALL.matvec(x) - np.asarray(RHS_SMALL)
            assert np.linalg.norm(residual) < 1e-8
            assert doc["tier"] in ("miss", "symbolic", "numeric", "batched")
            assert r.headers["x-request-id"] == doc["request_id"]

    def test_unauthorized_and_unknown_paths_are_envelopes(self, service):
        with make_app(service) as app:
            c = InProcessClient(app)
            r = c.post("/v1/solve",
                       json={"matrix": DOC_SMALL, "rhs": RHS_SMALL})
            assert r.status == 401
            assert r.json()["error"]["code"] == "unauthorized"
            assert c.get("/v2/solve", api_key="ka").status == 404
            assert c.get("/v1/nope", api_key="ka").status == 404
            wrong = c.get("/v1/solve", api_key="ka")
            assert wrong.status == 405
            assert wrong.json()["error"]["code"] == "method_not_allowed"

    def test_invalid_body_is_an_envelope_not_a_traceback(self, service):
        with make_app(service) as app:
            c = InProcessClient(app)
            r = c.post("/v1/solve", api_key="ka", body=b"{broken")
            assert r.status == 400
            err = r.json()["error"]
            assert err["code"] == "invalid_request"
            assert "Traceback" not in err["message"]

    def test_rate_limited_envelope_carries_retry_after(self, service):
        with make_app(service, rate=10.0, burst=2) as app:
            c = InProcessClient(app)
            body = {"matrix": DOC_SMALL, "rhs": RHS_SMALL}
            assert c.post("/v1/solve", api_key="ka", json=body).status == 200
            assert c.post("/v1/solve", api_key="ka", json=body).status == 200
            r = c.post("/v1/solve", api_key="ka", json=body)
            assert r.status == 429
            err = r.json()["error"]
            assert err["code"] == "rate_limited"
            assert err["retry_after_ms"] > 0
            # bob has his own bucket and is still admitted
            assert c.post("/v1/solve", api_key="kb", json=body).status == 200

    def test_job_submit_poll_cancel(self, service):
        with make_app(service) as app:
            c = InProcessClient(app)
            r = c.post("/v1/factorize", api_key="ka",
                       json={"matrix": DOC_SMALL})
            assert r.status == 202
            jid = r.json()["job_id"]
            assert c.get(f"/v1/jobs/{jid}",
                         api_key="ka").json()["state"] == "queued"
            # bob cannot see alice's job
            assert c.get(f"/v1/jobs/{jid}", api_key="kb").status == 404
            app.pump()
            done = c.get(f"/v1/jobs/{jid}", api_key="ka").json()
            assert done["state"] == "done"
            assert done["result"]["degraded"] is False
            # cancelling a finished job is a conflict
            r = c.delete(f"/v1/jobs/{jid}", api_key="ka")
            assert r.status == 409
            assert r.json()["error"]["code"] == "conflict"
            # a queued job cancels cleanly and never runs
            jid2 = c.post("/v1/factorize", api_key="ka",
                          json={"matrix": DOC_SMALL}).json()["job_id"]
            assert c.delete(f"/v1/jobs/{jid2}",
                            api_key="ka").json()["state"] == "cancelled"
            assert app.pump() == 0

    def test_overload_sheds_with_envelope(self, service):
        with make_app(service, edge_capacity=2, rate=1000.0,
                      burst=100) as app:
            c = InProcessClient(app)
            results = [
                c.post("/v1/factorize", api_key="ka",
                       json={"matrix": DOC_SMALL})
                for _ in range(4)
            ]
            assert [r.status for r in results] == [202, 202, 429, 429]
            err = results[-1].json()["error"]
            assert err["code"] == "overloaded"
            assert err["retry_after_ms"] > 0
            snap = app.metrics.snapshot()
            assert snap["counter.edge.shed_queue_full"] == 2
            # the shed submissions left no ghost jobs behind
            assert len(app.jobs) == 2

    def test_memory_pressure_sheds(self, service):
        with make_app(service, memory_threshold=0.0 + 1e-9) as app:
            # threshold ~0: any cache utilization at all sheds
            app.edge.memory_threshold = 0.0 + 1e-12
            c = InProcessClient(app)
            service.solve(A_SMALL, np.ones(A_SMALL.n_rows))  # warm cache
            r = c.post("/v1/solve", api_key="ka",
                       json={"matrix": DOC_SMALL, "rhs": RHS_SMALL})
            assert r.status == 429
            assert r.json()["error"]["code"] == "overloaded"
            assert "memory" in r.json()["error"]["message"]

    def test_expired_deadline_is_504_and_never_reaches_the_cache(self):
        svc = SolverService(n_workers=1, policy="P1", ordering="amd")
        try:
            with make_app(svc) as app:
                c = InProcessClient(app)
                before = len(svc.cache)
                r = c.post("/v1/solve", api_key="ka",
                           json={"matrix": DOC_SMALL, "rhs": RHS_SMALL,
                                 "deadline_ms": 0})
                assert r.status == 504
                assert r.json()["error"]["code"] == "deadline_exceeded"
                assert len(svc.cache) == before       # nothing was cached
                snap = app.metrics.snapshot()
                assert snap["counter.api.deadline_exceeded"] == 1
        finally:
            svc.shutdown()

    def test_expired_job_deadline_marks_job(self, service):
        clock = ManualClock()
        with make_app(service, clock=clock) as app:
            c = InProcessClient(app)
            jid = c.post("/v1/factorize", api_key="ka",
                         json={"matrix": DOC_SMALL, "deadline_ms": 100},
                         ).json()["job_id"]
            clock.advance(1.0)                        # expire while queued
            app.pump()
            doc = c.get(f"/v1/jobs/{jid}", api_key="ka").json()
            assert doc["state"] == "deadline_exceeded"
            assert doc["error"]["code"] == "deadline_exceeded"

    def test_request_id_threads_into_spans(self, service):
        with make_app(service, metrics=ServiceMetrics()) as app:
            c = InProcessClient(app)
            c.get("/v1/healthz", headers={"x-request-id": "trace-42"})
            spans = app.metrics._spans
            assert any(
                s.name == "trace-42:api" and s.engine == "cpu.api"
                for s in spans
            )

    def test_asgi_lifespan_and_multi_chunk_body(self, service):
        with make_app(service) as app:
            received = []

            async def recv_lifespan():
                return ({"type": "lifespan.startup"} if not received
                        else {"type": "lifespan.shutdown"})

            async def send(m):
                received.append(m["type"])

            coro = app({"type": "lifespan"}, recv_lifespan, send)
            try:
                while True:
                    coro.send(None)
            except StopIteration:
                pass
            assert received == [
                "lifespan.startup.complete", "lifespan.shutdown.complete",
            ]

    def test_threaded_dispatcher_serves_sync_solves(self, service):
        app = ApiApp(service, api_keys={"k": "x"}, dispatcher="thread",
                     n_dispatchers=2)
        try:
            c = InProcessClient(app)
            rs = [
                c.post("/v1/solve", api_key="k",
                       json={"matrix": DOC_SMALL, "rhs": RHS_SMALL})
                for _ in range(4)
            ]
            assert [r.status for r in rs] == [200] * 4
        finally:
            app.close()

    def test_http_bridge_speaks_the_same_protocol(self, service):
        import urllib.error
        import urllib.request

        from repro.api import serve_http

        with make_app(service, dispatcher="thread") as app:
            server = serve_http(app, "127.0.0.1", 0)
            port = server.server_address[1]
            t = threading.Thread(target=server.serve_forever, daemon=True)
            t.start()
            try:
                body = json.dumps(
                    {"matrix": DOC_SMALL, "rhs": RHS_SMALL}).encode()
                req = urllib.request.Request(
                    f"http://127.0.0.1:{port}/v1/solve", data=body,
                    headers={"x-api-key": "ka"}, method="POST",
                )
                with urllib.request.urlopen(req, timeout=30) as r:
                    assert r.status == 200
                    assert json.loads(r.read())["tier"] in (
                        "miss", "symbolic", "numeric", "batched",
                    )
                with pytest.raises(urllib.error.HTTPError) as err:
                    urllib.request.urlopen(
                        f"http://127.0.0.1:{port}/v1/metricsz", timeout=30)
                assert err.value.code == 404
            finally:
                server.shutdown()


# ----------------------------------------------------------------------
# shed responses are always well-formed envelopes (property)
# ----------------------------------------------------------------------
@pytest.mark.skipif(not HAVE_HYPOTHESIS, reason="hypothesis not installed")
@given(
    capacity=st.integers(min_value=1, max_value=6),
    extra=st.integers(min_value=1, max_value=6),
)
def test_shed_requests_always_get_the_envelope(capacity, extra):
    svc = SolverService(n_workers=1, policy="P1", ordering="amd")
    try:
        with make_app(svc, edge_capacity=capacity, rate=1000.0,
                      burst=50) as app:
            c = InProcessClient(app)
            sheds = 0
            for _ in range(capacity + extra):
                r = c.post("/v1/factorize", api_key="ka",
                           json={"matrix": DOC_SMALL})
                if r.status != 202:
                    sheds += 1
                    assert r.status == ERROR_STATUS["overloaded"]
                    err = r.json()["error"]
                    assert set(err) == {
                        "code", "message", "request_id", "retry_after_ms",
                    }
                    assert err["code"] == "overloaded"
                    assert "Traceback" not in err["message"]
            assert sheds == extra
    finally:
        svc.shutdown()


# ----------------------------------------------------------------------
# end-to-end acceptance: 1000 clients over a 4-node fleet
# ----------------------------------------------------------------------
class TestEndToEnd:
    def test_thousand_clients_over_four_node_fleet(self):
        report = run_load(n_clients=1000, n_nodes=4)
        # zero unhandled exceptions / leaked tracebacks
        assert report.invalid_envelopes == 0
        # every request ended in exactly one known outcome
        allowed = {"served", "shed", "rate_limited", "deadline_exceeded",
                   "not_found", "conflict"}
        seen = {o for phase in report.phases.values() for o in phase}
        assert seen <= allowed
        assert report.total("internal") == 0
        # steady phase sheds nothing; the overload phase must shed
        assert report.phases["steady"] == {"served": 1000}
        assert report.phases["overload"]["shed"] > 0
        assert report.phases["deadline"] == {"deadline_exceeded": 8}
        assert report.phases["ratelimit"]["rate_limited"] > 0
        # async jobs all reached a terminal state
        assert set(report.job_states) <= {"done", "cancelled"}
        assert sum(report.job_states.values()) == 32

    def test_load_counters_are_bit_stable(self):
        kw = dict(n_clients=60, n_steady=80, edge_capacity=8,
                  overload_jobs=20, overload_clients=4, n_deadline=3)
        assert run_load(**kw).counters() == run_load(**kw).counters()

    def test_api_bench_cli(self, capsys):
        from repro.cli import main

        rc = main([
            "api-bench", "--clients", "30", "--steady", "40",
            "--edge-capacity", "6", "--overload-jobs", "14", "--json",
        ])
        assert rc == 0
        counters = json.loads(capsys.readouterr().out)
        assert counters["invalid_envelopes"] == 0
        assert counters["phase.overload.shed"] > 0


# ----------------------------------------------------------------------
# lint scope: repro.api is inside the concurrency fence
# ----------------------------------------------------------------------
class TestLintScopeApi:
    def test_api_in_concurrency_modules(self):
        from repro.lint import LintConfig

        assert "repro.api" in LintConfig().concurrency_modules

    def test_api_package_is_lint_clean(self):
        from repro.lint import run_lint

        res = run_lint([REPO / "src" / "repro" / "api"],
                       src_roots=[REPO / "src"])
        assert res.parse_errors == []
        assert [f.rule_id for f in res.findings] == []
