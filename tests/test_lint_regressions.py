"""Regression tests for the genuine findings repro-lint surfaced.

The first self-hosted lint run over ``src/repro`` reported five real
defects, all fixed in the same change that introduced the linter:

1. ``SimulatedGpu.reserve`` leaked the device reservation when the
   pinned request raised (RPL020, gpu/device.py);
2. policies P2/P3/P4 reserved per-call working sets and never released
   them, so ``in_use`` grew monotonically across a factorization
   (allocator-state invariant, fixed with ``working_set()``);
3. ``SolverService._build_solver`` trained the policy classifier while
   holding ``_classifier_lock`` (RPL002);
4. ``SolverService._collect_batch`` fired client-visible expiry events
   while holding ``_cond`` (RPL003);
5. service spans used ``worker{i}`` engine names the Chrome-trace
   exporter cannot lane-sort (RPL041).

The interprocedural flow pass (RPL05x-08x) surfaced three more, fixed
in the change that introduced it:

6. ``ApiApp.handle`` put ``f"{type(exc).__name__}: {exc}"`` in the
   catch-all error envelope, leaking internal exception types and
   messages to the wire (RPL080, api/app.py — now ``public_message``);
7. ``ApiApp._process_entry`` routed raw ``str(exc)`` through
   ``_finish`` into the job/waiter error envelope — the same leak, one
   call hop removed (RPL080, api/app.py);
8. ``SolverService.submit`` read ``self._stop`` before taking
   ``self._cond`` while every other access held it, racing
   ``_shutdown``'s write (RPL071, service/service.py — the check now
   lives inside the locked section).

Each test here pins either the fixed runtime behaviour or — for the
lock-discipline fixes whose behaviour is timing-dependent — that the
*pre-fix code shape* still trips the linter, so the defect cannot be
silently reintroduced.
"""

from __future__ import annotations

import textwrap
from pathlib import Path

import numpy as np
import pytest

from repro.gpu.allocator import DeviceMemoryError
from repro.gpu.device import SimulatedGpu, SimulatedNode
from repro.gpu.perfmodel import tesla_t10_model
from repro.lint import LintConfig
from repro.lint.checkers import all_checkers
from repro.lint.core import SourceFile
from repro.multifrontal import SparseCholeskySolver
from repro.verify.invariants import check_allocator_state


def lint_snippet(source: str, module: str = "repro.service.fake"):
    sf = SourceFile.parse(Path("fake.py"), module, textwrap.dedent(source))
    config = LintConfig(concurrency_modules=("repro.service",))
    findings = []
    for checker in all_checkers():
        findings.extend(checker.check([sf], config))
    return [f.rule_id for f in findings]


# ----------------------------------------------------------------------
# 1 + 2: allocator ownership
# ----------------------------------------------------------------------
class TestAllocatorOwnership:
    @pytest.mark.parametrize("policy", ["P2", "P3", "P4", "P4c"])
    def test_policy_plans_release_their_working_sets(
        self, lap2d_small, policy
    ):
        solver = SparseCholeskySolver(
            lap2d_small, ordering="amd", policy=policy
        )
        solver.analyze().factorize()
        gpu = solver.node.gpus[0]
        # pre-fix: every planned F-U call left its reservation behind,
        # so in_use ended a factorization at the *sum* of all calls
        assert gpu.device_pool.in_use == 0
        assert gpu.pinned_pool.in_use == 0
        # the high-water mark must survive the releases (warm start)
        assert gpu.device_pool.capacity > 0
        assert check_allocator_state(solver.node) == []

    def test_reserve_rolls_back_device_on_pinned_failure(self):
        gpu = SimulatedGpu(tesla_t10_model())

        def boom(nbytes):
            raise DeviceMemoryError("injected pinned failure")

        gpu.pinned_pool.request = boom
        with pytest.raises(DeviceMemoryError):
            gpu.reserve(1 << 20, 1 << 20)
        # pre-fix: the device reservation leaked on this path
        assert gpu.device_pool.in_use == 0

    def test_working_set_releases_on_exception(self):
        gpu = SimulatedGpu(tesla_t10_model())
        with pytest.raises(RuntimeError):
            with gpu.working_set(1 << 20, 1 << 16):
                assert gpu.device_pool.in_use == 1 << 20
                assert gpu.pinned_pool.in_use == 1 << 16
                raise RuntimeError("kernel fault mid-call")
        assert gpu.device_pool.in_use == 0
        assert gpu.pinned_pool.in_use == 0
        assert check_allocator_state(
            type("N", (), {"gpus": [gpu]})()
        ) == []

    def test_release_returns_both_pools(self):
        gpu = SimulatedGpu(tesla_t10_model())
        gpu.reserve(4096, 512)
        gpu.release(4096, 512)
        assert gpu.device_pool.in_use == 0
        assert gpu.pinned_pool.in_use == 0

    def test_prefix_reserve_shape_still_fires_rpl020(self):
        # the original SimulatedGpu.reserve body
        ids = lint_snippet("""
            def reserve(self, device_bytes, pinned_bytes):
                return self.device_pool.request(
                    device_bytes
                ) + self.pinned_pool.request(pinned_bytes)
        """)
        assert "RPL020" in ids


# ----------------------------------------------------------------------
# 3: classifier training under the lock
# ----------------------------------------------------------------------
class TestClassifierLockShape:
    def test_prefix_train_under_lock_shape_still_fires_rpl002(self):
        # the original _build_solver critical section
        ids = lint_snippet("""
            import threading
            from repro.autotune import train_default_classifier

            class SolverService:
                def __init__(self, factory):
                    self._classifier_lock = threading.Lock()
                    self._classifier = None
                    self._node_factory = factory

                def _build_solver(self):
                    with self._classifier_lock:
                        if self._classifier is None:
                            self._classifier = train_default_classifier(
                                self._node_factory().model
                            )
                        return self._classifier
        """)
        assert "RPL002" in ids
        assert "RPL003" in ids  # the factory call under the same lock

    def test_fixed_double_checked_publish_is_clean(self):
        ids = lint_snippet("""
            import threading
            from repro.autotune import train_default_classifier

            class SolverService:
                def __init__(self, factory):
                    self._classifier_lock = threading.Lock()
                    self._classifier = None
                    self._node_factory = factory

                def _build_solver(self):
                    with self._classifier_lock:
                        classifier = self._classifier
                    if classifier is None:
                        trained = train_default_classifier(
                            self._node_factory().model
                        )
                        with self._classifier_lock:
                            if self._classifier is None:
                                self._classifier = trained
                            classifier = self._classifier
                    return classifier
        """)
        assert "RPL002" not in ids
        assert "RPL003" not in ids

    def test_concurrent_model_solvers_share_one_classifier(
        self, lap2d_small
    ):
        # functional cross-check of the double-checked publish
        from repro.service import SolverService

        with SolverService(n_workers=2, policy="P1") as svc:
            reqs = [
                svc.submit(lap2d_small, np.ones(lap2d_small.n_rows))
                for _ in range(4)
            ]
            for r in reqs:
                r.result(timeout=300.0)


# ----------------------------------------------------------------------
# 4: expiry events fired under the queue condition
# ----------------------------------------------------------------------
class TestExpiryLockShape:
    def test_prefix_expire_under_cond_shape_still_fires_rpl003(self):
        # the original _collect_batch drain loop: _expire (which fires a
        # client-visible Event) called while _cond is held
        ids = lint_snippet("""
            import threading

            class SolverService:
                def __init__(self):
                    self._cond = threading.Condition()
                    self._queue = []

                def _expire(self, req):
                    req.event.set()

                def _collect_batch(self):
                    got = []
                    with self._cond:
                        while self._queue:
                            cand = self._queue.pop()
                            if cand.expired:
                                self._expire(cand)
                                continue
                            got.append(cand)
                    return got
        """)
        assert "RPL003" in ids

    def test_fixed_expire_outside_cond_is_clean(self):
        ids = lint_snippet("""
            import threading

            class SolverService:
                def __init__(self):
                    self._cond = threading.Condition()
                    self._queue = []

                def _expire(self, req):
                    req.event.set()

                def _collect_batch(self):
                    got = []
                    expired = []
                    with self._cond:
                        while self._queue:
                            cand = self._queue.pop()
                            if cand.expired:
                                expired.append(cand)
                                continue
                            got.append(cand)
                    for cand in expired:
                        self._expire(cand)
                    return got
        """)
        assert "RPL003" not in ids


# ----------------------------------------------------------------------
# 5: span engine names
# ----------------------------------------------------------------------
class TestSpanEngineNames:
    def test_service_spans_use_known_engine_kinds(self, lap2d_small):
        from repro.gpu.trace import _ENGINE_ORDER
        from repro.service import SolverService

        with SolverService(n_workers=2, policy="P1") as svc:
            reqs = [
                svc.submit(lap2d_small, np.ones(lap2d_small.n_rows))
                for _ in range(3)
            ]
            for r in reqs:
                r.result(timeout=300.0)
            spans = list(svc.metrics._spans)
        assert spans, "service should have recorded spans"
        for task in spans:
            kind = task.engine.split(".", 1)[0]
            assert kind in _ENGINE_ORDER, task.engine

    def test_prefix_worker_engine_shape_still_fires_rpl041(self):
        ids = lint_snippet("""
            class SolverService:
                def _process(self, req, worker):
                    engine = f"worker{worker}"
                    self.metrics.span("n", "solve", engine, 0.0, 1.0)
        """)
        assert "RPL041" in ids


# ----------------------------------------------------------------------
# 6 + 7: exception text leaking into /v1 envelopes
# ----------------------------------------------------------------------
class TestWireLeakShapes:
    def test_prefix_handle_catch_all_shape_still_fires_rpl080(self):
        # the original ApiApp.handle catch-all envelope
        ids = lint_snippet("""
            from repro.api.protocol import error_response

            class ApiApp:
                def handle(self, request, rid):
                    try:
                        return self._route(request, rid)
                    except Exception as exc:
                        return error_response(
                            "internal",
                            f"{type(exc).__name__}: {exc}",
                            request_id=rid,
                        )
        """, module="repro.api.fake")
        assert "RPL080" in ids

    def test_fixed_handle_public_message_is_clean(self):
        ids = lint_snippet("""
            from repro.api.protocol import error_response, public_message

            class ApiApp:
                def handle(self, request, rid):
                    try:
                        return self._route(request, rid)
                    except Exception as exc:
                        return error_response(
                            "internal", public_message(exc), request_id=rid
                        )
        """, module="repro.api.fake")
        assert "RPL080" not in ids

    def test_prefix_process_entry_chain_still_fires_rpl080(self):
        # the original _process_entry -> _finish error chain: the raw
        # exception text crosses one call hop before hitting the wire
        ids = lint_snippet("""
            from repro.api.protocol import error_response

            class ApiApp:
                def _process_entry(self, entry):
                    try:
                        out = self._run(entry)
                    except ValueError as exc:
                        self._finish(entry, ("invalid_request", str(exc)))
                    else:
                        self._finish(entry, None)

                def _finish(self, entry, error):
                    if error is not None:
                        code, message = error
                        return error_response(
                            code, message, request_id=entry
                        )
        """, module="repro.api.fake")
        assert "RPL080" in ids

    def test_fixed_process_entry_chain_is_clean(self):
        ids = lint_snippet("""
            from repro.api.protocol import error_response, public_message

            class ApiApp:
                def _process_entry(self, entry):
                    try:
                        out = self._run(entry)
                    except ValueError as exc:
                        self._finish(
                            entry, ("invalid_request", public_message(exc))
                        )
                    else:
                        self._finish(entry, None)

                def _finish(self, entry, error):
                    if error is not None:
                        code, message = error
                        return error_response(
                            code, message, request_id=entry
                        )
        """, module="repro.api.fake")
        assert "RPL080" not in ids

    def test_public_message_collapses_internal_exceptions(self):
        from repro.api.protocol import ApiError, public_message

        class Oops(Exception):
            pass

        # internal type + message never reach the caller
        assert public_message(Oops("/srv/host/secret")) == "internal error"
        # whitelisted domain validation text passes through
        assert (
            public_message(ValueError("rhs must have 4 rows"))
            == "rhs must have 4 rows"
        )
        # ApiError messages are crafted for the wire by definition
        assert (
            public_message(ApiError("invalid_request", "bad matrix"))
            == "bad matrix"
        )


# ----------------------------------------------------------------------
# 8: shutdown flag read outside the queue condition
# ----------------------------------------------------------------------
class TestStopFlagGuardShape:
    def test_prefix_stop_check_outside_cond_still_fires_rpl071(self):
        # the original SolverService.submit entry: _stop checked before
        # taking _cond, while _shutdown writes it under _cond
        ids = lint_snippet("""
            import threading

            class SolverService:
                def __init__(self):
                    self._cond = threading.Condition()
                    self._stop = False
                    self._queue = []

                def submit(self, a, b):
                    if self._stop:
                        raise RuntimeError("service is shut down")
                    with self._cond:
                        self._queue.append((a, b))

                def shutdown(self):
                    with self._cond:
                        self._stop = True

                def poll(self):
                    with self._cond:
                        return self._stop

                def drain(self):
                    with self._cond:
                        return self._stop
        """)
        assert "RPL071" in ids

    def test_fixed_stop_check_under_cond_is_clean(self):
        ids = lint_snippet("""
            import threading

            class SolverService:
                def __init__(self):
                    self._cond = threading.Condition()
                    self._stop = False
                    self._queue = []

                def submit(self, a, b):
                    with self._cond:
                        if self._stop:
                            raise RuntimeError("service is shut down")
                        self._queue.append((a, b))

                def shutdown(self):
                    with self._cond:
                        self._stop = True

                def poll(self):
                    with self._cond:
                        return self._stop

                def drain(self):
                    with self._cond:
                        return self._stop
        """)
        assert "RPL071" not in ids

    def test_submit_after_shutdown_raises(self, lap2d_small):
        import numpy as np

        from repro.service import SolverService

        svc = SolverService(n_workers=1, policy="P1")
        svc.shutdown()
        with pytest.raises(RuntimeError, match="shut down"):
            svc.submit(lap2d_small, np.ones(lap2d_small.n_rows))


# ----------------------------------------------------------------------
# dynamic-runtime cross-check: pools stay clean under injected faults
# ----------------------------------------------------------------------
class TestRuntimePoolsUnderFaults:
    def test_dynamic_run_with_faults_leaves_pools_consistent(
        self, lap2d_small
    ):
        from repro.parallel import make_worker_pool
        from repro.policies import make_policy
        from repro.runtime import FaultInjector, dynamic_schedule
        from repro.symbolic import symbolic_factorize

        sf = symbolic_factorize(lap2d_small, ordering="amd")
        pool = make_worker_pool(2, 1)
        res = dynamic_schedule(
            sf, make_policy("P2"), pool,
            faults=FaultInjector(kernel_failure_rate=0.2, seed=7),
        )
        assert res.makespan > 0
        assert check_allocator_state(pool.node) == []
