"""Tree profiles and the new generators."""

import numpy as np
import pytest

from repro.analysis import format_profile, profile_tree
from repro.matrices import (
    anisotropic_laplacian_3d,
    grid_laplacian_3d,
    shell_elasticity,
)
from repro.symbolic import symbolic_factorize
from repro.workload import geometric_nd_workload


class TestNewGenerators:
    def test_anisotropic_spd(self):
        a = anisotropic_laplacian_3d(4, 4, 4, weights=(1.0, 0.5, 0.01))
        d = a.to_dense()
        assert np.allclose(d, d.T)
        assert np.linalg.eigvalsh(d).min() > 0

    def test_anisotropic_same_pattern_as_isotropic(self):
        a = anisotropic_laplacian_3d(3, 4, 5)
        b = grid_laplacian_3d(3, 4, 5)
        assert np.array_equal(a.indptr, b.indptr)
        assert np.array_equal(a.indices, b.indices)

    def test_isotropic_weights_recover_laplacian(self):
        a = anisotropic_laplacian_3d(3, 3, 3, weights=(1.0, 1.0, 1.0))
        b = grid_laplacian_3d(3, 3, 3)
        assert a.allclose(b)

    def test_weights_change_the_numerics(self):
        a = anisotropic_laplacian_3d(3, 3, 3, weights=(1.0, 1.0, 0.01))
        b = grid_laplacian_3d(3, 3, 3)
        assert not a.allclose(b)
        # z-neighbor coupling is the weak one
        d = a.to_dense()
        assert abs(d[0, 1]) == pytest.approx(0.01)   # z neighbor (stride 1)
        assert abs(d[0, 3]) == pytest.approx(1.0)    # y neighbor

    def test_anisotropic_validation(self):
        with pytest.raises(ValueError):
            anisotropic_laplacian_3d(2, 2, 2, weights=(1.0, 0.0, 1.0))

    def test_shell_is_thin_3d(self):
        a = shell_elasticity(6, 6, thickness=2)
        assert a.n_rows == 6 * 6 * 2 * 3
        d = a.to_dense()
        assert np.linalg.eigvalsh(d).min() > 0

    def test_shell_separators_smaller_than_cube(self):
        # equal unknowns, thin vs cubic: the shell's largest front is
        # smaller (the premise of the workload calibration)
        shell = symbolic_factorize(shell_elasticity(12, 12, thickness=2, dof=1),
                                   ordering="nd")
        cube_n = round((12 * 12 * 2) ** (1 / 3))
        cube = symbolic_factorize(grid_laplacian_3d(cube_n + 1, cube_n, cube_n),
                                  ordering="nd")
        assert shell.mk_pairs()[:, 1].max() <= cube.mk_pairs()[:, 1].max() * 1.5

    def test_shell_validation(self):
        with pytest.raises(ValueError):
            shell_elasticity(4, 4, thickness=0)


class TestTreeProfile:
    @pytest.fixture(scope="class")
    def prof(self):
        return profile_tree(geometric_nd_workload(16, 16, 16, leaf_cells=8))

    def test_counts(self, prof):
        assert prof.n == 16**3
        assert prof.n_supernodes == prof.calls_by_depth.sum()

    def test_flops_partition(self, prof):
        assert prof.flops_by_depth.sum() == pytest.approx(prof.total_flops)

    def test_root_is_single_call(self, prof):
        assert prof.calls_by_depth[0] == 1

    def test_top10_dominance_on_3d(self, prof):
        # the paper's concentration property
        assert prof.flops_in_top10_calls > 0.3

    def test_small_call_fraction(self, prof):
        assert 0.9 < prof.small_call_fraction <= 1.0

    def test_real_matrix_profile(self, lap3d_small):
        sf = symbolic_factorize(lap3d_small, ordering="nd")
        p = profile_tree(sf)
        assert p.max_front >= p.widths.max()
        assert p.depth >= 1

    def test_format_contains_key_lines(self, prof):
        text = format_profile(prof)
        assert "small calls" in text
        assert "depth  0" in text
        assert "#" in text


class TestProfileMatchesAmalgamatedTree:
    """Regression: the profile must describe the symbolic factor
    actually used — the post-amalgamation tree, not the fundamental
    one (fronts, widths, depth and flop totals all shift when
    amalgamation merges supernodes)."""

    @pytest.mark.parametrize("preset", ("off", "default", "aggressive"))
    def test_profile_totals_match_symbolic_factor(self, lap3d_small, preset):
        from repro.symbolic import amalgamation_preset
        from repro.symbolic.symbolic import factor_update_flops

        sf = symbolic_factorize(
            lap3d_small, ordering="nd",
            amalgamation=amalgamation_preset(preset),
        )
        p = profile_tree(sf, amalgamation=preset)
        assert p.amalgamation == preset
        assert p.n_supernodes == sf.n_supernodes
        assert p.nnz_factor == sf.nnz_factor
        assert int(p.widths.sum()) == sf.n        # widths partition columns
        expected = sum(
            sum(factor_update_flops(int(m), int(k)))
            for m, k in sf.mk_pairs()
        )
        assert p.total_flops == pytest.approx(expected)

    def test_amalgamated_profile_differs_from_fundamental(self, lap3d_small):
        from repro.symbolic import amalgamation_preset

        off = profile_tree(symbolic_factorize(
            lap3d_small, ordering="nd",
            amalgamation=amalgamation_preset("off")))
        agg = profile_tree(symbolic_factorize(
            lap3d_small, ordering="nd",
            amalgamation=amalgamation_preset("aggressive")))
        assert agg.n_supernodes < off.n_supernodes
        assert agg.mean_width > off.mean_width

    def test_profile_matches_solver_tree(self, lap3d_small):
        # what the solver reports must be the tree the profile describes
        from repro.multifrontal import SparseCholeskySolver
        from repro.symbolic import amalgamation_preset

        solver = SparseCholeskySolver(
            lap3d_small, ordering="nd", policy="P1",
            amalgamation=amalgamation_preset("aggressive"),
        )
        solver.analyze().factorize()
        p = profile_tree(solver.symbolic, amalgamation="aggressive")
        assert p.n_supernodes == solver.stats.n_supernodes
        assert p.nnz_factor == solver.stats.nnz_factor
        assert p.total_flops == pytest.approx(float(solver.stats.total_flops))


class TestCliProfile:
    def test_profile_workload(self, capsys):
        from repro.cli import main

        assert main(["profile", "lmco", "--workload"]) == 0
        out = capsys.readouterr().out
        assert "tree profile" in out
        assert "flops by tree depth" in out

    def test_profile_file(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "m.mtx"
        main(["generate", "lap3d", "5", "5", "5", "--out", str(path)])
        assert main(["profile", str(path), "--ordering", "amd"]) == 0

    def test_profile_amalgamation_flag(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "m.mtx"
        main(["generate", "lap3d", "6", "6", "6", "--out", str(path)])

        def supernodes(extra):
            assert main(["profile", str(path), "--ordering", "amd",
                         *extra]) == 0
            out = capsys.readouterr().out
            return int(out.split("supernodes = ")[1].split(",")[0])

        n_off = supernodes(["--amalgamation", "off"])
        n_agg = supernodes(["--amalgamation", "aggressive"])
        assert n_agg < n_off
        assert main(["profile", str(path), "--amalgamation",
                     "aggressive"]) == 0
        assert "amalgamation: aggressive" in capsys.readouterr().out
