"""Failure modes: non-SPD inputs, broken structures, informative errors."""

import numpy as np
import pytest

from repro.dense.kernels import NotPositiveDefiniteError
from repro.matrices import grid_laplacian_2d, random_spd
from repro.matrices.csc import CSCMatrix, csc_from_dense
from repro.multifrontal import SparseCholeskySolver, factorize_numeric
from repro.policies import make_policy
from repro.symbolic import symbolic_factorize


def indefinite_matrix(n=30, seed=0):
    """Symmetric, full-pattern-like, but indefinite (one negative pivot)."""
    a = random_spd(n, seed=seed)
    a = a.copy()
    # flip one diagonal entry deep into the matrix
    target = n // 2
    for p in range(a.indptr[target], a.indptr[target + 1]):
        if a.indices[p] == target:
            a.data[p] = -abs(a.data[p])
    return a


class TestNonSPD:
    def test_error_carries_location_context(self):
        a = indefinite_matrix()
        sf = symbolic_factorize(a, ordering="amd")
        with pytest.raises(NotPositiveDefiniteError, match="supernode"):
            factorize_numeric(a, sf, make_policy("P1"))

    def test_error_mentions_original_column(self):
        a = indefinite_matrix()
        sf = symbolic_factorize(a, ordering="amd")
        with pytest.raises(NotPositiveDefiniteError, match="original column"):
            factorize_numeric(a, sf, make_policy("P1"))

    def test_solver_propagates(self):
        a = indefinite_matrix()
        s = SparseCholeskySolver(a, ordering="amd", policy="P1")
        with pytest.raises(NotPositiveDefiniteError):
            s.factorize()

    def test_negative_semidefinite_rejected(self):
        d = -np.eye(4)
        with pytest.raises(NotPositiveDefiniteError):
            SparseCholeskySolver(csc_from_dense(d), policy="P1").factorize()


class TestStructuralErrors:
    def test_extend_add_guard(self):
        # a corrupted symbolic structure must be caught, not silently
        # corrupt the factorization
        a = grid_laplacian_2d(5, 5)
        sf = symbolic_factorize(a, ordering="amd")
        # break one supernode's row list (drop a needed row)
        victim = next(
            s for s in range(sf.n_supernodes) if sf.update_size(s) > 1
        )
        sf.rows[victim] = sf.rows[victim][:-1]
        with pytest.raises((ValueError, AssertionError)):
            factorize_numeric(a, sf, make_policy("P1"))

    def test_validate_catches_broken_rows(self):
        a = grid_laplacian_2d(5, 5)
        sf = symbolic_factorize(a, ordering="amd")
        victim = next(
            s for s in range(sf.n_supernodes) if sf.update_size(s) > 0
        )
        sf.rows[victim] = sf.rows[victim][::-1].copy()  # unsorted
        with pytest.raises(AssertionError):
            sf.validate()

    def test_entries_outside_pattern_detected(self):
        # factor a matrix with an entry the symbolic pattern cannot hold:
        # couple the first and last grid points directly (column 0's
        # fundamental front only reaches its grid neighbors)
        from repro.symbolic import AmalgamationParams

        a = grid_laplacian_2d(8, 8)
        sf = symbolic_factorize(
            a, ordering="natural",
            amalgamation=AmalgamationParams(max_width=0),
        )
        d = a.to_dense()
        n = a.n_rows
        d[0, n - 1] = d[n - 1, 0] = -0.5
        d[0, 0] += 1.0
        d[n - 1, n - 1] += 1.0
        denser = csc_from_dense(d)
        with pytest.raises(ValueError):
            factorize_numeric(denser, sf, make_policy("P1"))


class TestZeroAndTiny:
    def test_1x1_matrix(self):
        a = csc_from_dense(np.array([[4.0]]))
        s = SparseCholeskySolver(a, policy="P1")
        x = s.solve(np.array([8.0]))
        assert x[0] == pytest.approx(2.0)
        assert s.log_determinant() == pytest.approx(np.log(4.0))

    def test_diagonal_matrix(self):
        a = csc_from_dense(np.diag([1.0, 4.0, 9.0]))
        s = SparseCholeskySolver(a, policy="P1")
        x = s.solve(np.ones(3))
        assert np.allclose(x, [1.0, 0.25, 1.0 / 9.0])

    def test_gpu_policy_on_diagonal_matrix(self):
        a = csc_from_dense(np.diag([1.0, 4.0, 9.0]))
        s = SparseCholeskySolver(a, policy="P3")
        x = s.solve(np.ones(3))
        assert np.allclose(x, [1.0, 0.25, 1.0 / 9.0], atol=1e-6)
